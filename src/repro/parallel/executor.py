"""Rank-local forward execution of a sharded Llama.

Each rank runs the *same* runtime driver (:func:`repro.runtime.driver.run_model`)
as the canonical model, through a :class:`ShardedContext` with two
substitutions: ``project`` computes only the rank's column blocks of every
projection, and ``gather`` is a real all-gather where the canonical context's
is the identity.  Everything else — RMSNorm, RoPE, softmax, SiLU, residual
adds — is the identical elementwise code on the identical replicated
tensors, so the gathered hidden state after every sublayer matches the
canonical bytes exactly:

    per layer:  gather(merged attention heads)   payload (B, T, dim)
                gather(W_SO output blocks)       payload (B, T, dim)
                gather(silu(W_G x) * W_U x)      payload (B, T, mlp_hidden)
                gather(W_D output blocks)        payload (B, T, dim)
    at the end: gather(logit blocks)             payload (B, T, vocab)

GQA attention runs entirely rank-locally: the rank projects the KV heads
covering its query-head run (replicating any head shared with a neighbor),
so no KV communication is ever needed — the paper-relevant consequence is
that the KV cache shards by *covering* heads, slightly above 1/P.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ParallelError
from repro.nn.kv_cache import RaggedModelCaches
from repro.nn.quantized import dequantize_weight
from repro.nn.rope import RotaryEmbedding
from repro.parallel.sharding import ProjectionShard, RankShard
from repro.runtime.context import ExecutionContext, expand_kv_heads, kv_expand_plan
from repro.runtime.driver import run_head, run_model
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor

_RMS_EPS = 1e-6  # matches repro.nn.normalization.RMSNorm's default


def project(shard: ProjectionShard, x: Tensor) -> Tensor:
    """The rank's output columns of a canonical blocked projection.

    Mirrors :func:`repro.nn.linear.blocked_project` block for block: each
    local edge is one basic-slice GEMM, concatenated in block order.  The
    bias chunk is added full-chunk-width afterwards, matching the
    canonical full-width bias add positionally.
    """
    if shard.quantized:
        # Dequantize the rank's chunk on the fly (the Tensor-graph
        # reference arm): per-output-column scales make the chunk's
        # dequantized values equal the same columns of the canonical full
        # dequantized matrix, so the blocked GEMMs below match bit for bit.
        if shard.u1_grid is not None:
            x = (x @ Tensor(dequantize_weight(shard.u1_grid, shard.u1_scales))) @ Tensor(
                dequantize_weight(shard.core_grid, shard.core_scales)
            )
        weight = Tensor(dequantize_weight(shard.grid, shard.scales))
    else:
        if shard.factorized:
            x = (x @ Tensor(shard.u1)) @ Tensor(shard.core)
        weight = Tensor(shard.weight)
    if len(shard.edges) == 1:
        out = x @ weight
    else:
        parts = [x @ weight[:, a:b] for a, b in shard.edges]
        out = Tensor.concatenate(parts, axis=-1)
    if shard.bias is not None:
        out = out + Tensor(shard.bias)
    return out


class ShardedContext(ExecutionContext):
    """One rank's view of the model for the shared runtime driver.

    Geometry attributes are rank-local (this rank's query-head run and its
    covering KV heads); ``gather`` reassembles full-width activations over
    the collective group in the fixed canonical block order.
    """

    causal = True
    fast_kind = "sharded"

    def __init__(self, shard: RankShard, group, rank: int) -> None:
        config = shard.config
        self.shard = shard
        self.group = group
        self.rank = rank
        self.n_layers = len(shard.layers)
        self.n_q_heads = shard.n_q_heads
        self.n_kv_heads = shard.n_kv_heads
        self.head_dim = config.head_dim
        self.kv_group = config.n_heads // config.kv_heads
        # Pipeline placement: middle stages neither embed nor project
        # logits — they map replicated hidden states to hidden states.
        self.has_embedding = shard.has_embedding
        self.has_head = shard.has_head
        self._kv_plan = kv_expand_plan(
            self.n_q_heads,
            self.kv_group,
            q_start=shard.q_span[0],
            kv_start=shard.kv_span[0],
        )
        self._rope = RotaryEmbedding(
            config.head_dim, config.max_seq_len, theta=config.rope_theta
        )

    def embed(self, tokens) -> Tensor:
        if self.shard.embed is None:
            raise ParallelError(
                f"stage {self.shard.stage} holds no embedding table"
            )
        return Tensor(self.shard.embed)[np.asarray(tokens)]

    def norm(self, layer: int, which: str, x: Tensor) -> Tensor:
        shard = self.shard.layers[layer]
        weight = shard.attn_norm if which == "attn" else shard.mlp_norm
        return F.rms_norm(x, Tensor(weight), eps=_RMS_EPS)

    def project(self, layer: int, role: str, x: Tensor) -> Tensor:
        return project(getattr(self.shard.layers[layer], role), x)

    def rope(self, x: Tensor, offset) -> Tensor:
        return self._rope.apply(x, offset=offset)

    def expand_kv(self, x: Tensor) -> Tensor:
        # For global query head h the canonical expansion selects KV head
        # h // group; the same selection runs against the rank-local KV
        # tensor (offset by the cover start), producing exactly the
        # canonical expanded tensor's [q_start, q_stop) head slice.
        return expand_kv_heads(
            x,
            self.n_q_heads,
            self.kv_group,
            q_start=self.shard.q_span[0],
            kv_start=self.shard.kv_span[0],
            plan=self._kv_plan,
        )

    def gather(self, local: Tensor) -> Tensor:
        return Tensor(self.group.all_gather(self.rank, local.data, axis=-1))

    def logits(self, x: Tensor) -> Tensor:
        if not self.has_head:
            raise ParallelError(
                f"stage {self.shard.stage} holds no output head"
            )
        x = F.rms_norm(x, Tensor(self.shard.final_norm), eps=_RMS_EPS)
        if self.shard.lm_head is not None:
            return self.gather(project(self.shard.lm_head, x))
        # Tied head: slice the full transposed embedding with the rank's
        # GLOBAL vocab edges — byte-compatible with the canonical
        # ``blocked_project(flat, embed.T, vocab_edges)``.
        batch, seq_len, dim = x.shape
        flat = x.reshape(batch * seq_len, dim)
        table = Tensor(self.shard.embed).T
        parts = [flat @ table[:, a:b] for a, b in self.shard.vocab_edges]
        local = parts[0] if len(parts) == 1 else Tensor.concatenate(parts, axis=-1)
        local = local.reshape(batch, seq_len, self.shard.vocab_hi - self.shard.vocab_lo)
        return self.gather(local)


class RankExecutor:
    """Drives one rank's slice of the model through a collective group.

    A thin facade over the shared runtime driver: both forward flavors are
    :func:`repro.runtime.driver.run_model` over this rank's
    :class:`ShardedContext`.
    """

    def __init__(self, shard: RankShard, group, rank: int) -> None:
        if rank != shard.rank:
            raise ParallelError(f"shard rank {shard.rank} driven as rank {rank}")
        self.shard = shard
        self.group = group
        self.rank = rank
        self.context = ShardedContext(shard, group, rank)

    def forward(
        self,
        tokens: np.ndarray,
        pad_mask: Optional[np.ndarray] = None,
        hidden: Optional[np.ndarray] = None,
        skip_head: bool = False,
    ) -> Tensor:
        """Full uncached forward: (B, T) ids -> replicated (B, T, vocab).

        On a non-first pipeline stage ``hidden`` carries the previous
        stage's replicated (B, T, dim) output in place of the embedding;
        a non-last stage returns the hidden state instead of logits, as
        does a last stage when ``skip_head`` defers the epilogue to one
        full-batch :meth:`head_only` call.
        """
        return run_model(
            self.context, tokens, pad_mask=pad_mask, hidden=hidden,
            skip_head=skip_head,
        )

    def forward_cached(
        self, tokens: np.ndarray, cache, hidden: Optional[np.ndarray] = None
    ) -> Tensor:
        """Forward over new ``tokens`` only, extending the rank-local
        ``cache`` (a :class:`~repro.nn.kv_cache.ModelKVCache` holding this
        rank's covering KV heads) in place."""
        return run_model(self.context, tokens, caches=cache, hidden=hidden)

    def forward_ragged(
        self,
        tokens: np.ndarray,
        caches: Sequence[object],
        new_lengths: np.ndarray,
        hidden: Optional[np.ndarray] = None,
        pad_to: int = 0,
        skip_head: bool = False,
    ) -> Tensor:
        """Ragged cached forward over this rank's KV-head slice.

        ``caches`` are per-sequence caches holding this rank's covering KV
        heads; the driver bundles one
        :class:`~repro.nn.kv_cache.RaggedLayerCaches` per layer, mirroring
        the canonical continuous-batching path.  ``pad_to`` floors the
        padded KV width (see :class:`RaggedModelCaches`) so a pipeline's
        row-microbatches stay bit-identical to the full-batch pass.
        """
        ragged = RaggedModelCaches(list(caches), new_lengths, pad_to=pad_to)
        return run_model(
            self.context, tokens, caches=ragged, hidden=hidden,
            skip_head=skip_head,
        )

    def head_only(self, hidden: np.ndarray) -> Tensor:
        """Final norm + LM head (+ logits gather) over a full hidden batch.

        The completion of a ``skip_head`` forward: the head GEMM against
        the transposed tied-embedding view is the one kernel whose
        low-order bits depend on the row count, so a chunked pipeline runs
        it exactly once with the canonical batch.
        """
        return run_head(self.context, hidden)
