"""Rank-local forward execution of a sharded Llama.

Each rank re-runs the canonical forward with two substitutions: it computes
only *its* column blocks of every projection, and it all-gathers where the
canonical code concatenates blocks.  Everything else — RMSNorm, RoPE,
softmax, SiLU, residual adds — is the identical elementwise code on the
identical replicated tensors, so the gathered hidden state after every
sublayer matches the canonical bytes exactly:

    per layer:  gather(merged attention heads)   payload (B, T, dim)
                gather(W_SO output blocks)       payload (B, T, dim)
                gather(silu(W_G x) * W_U x)      payload (B, T, mlp_hidden)
                gather(W_D output blocks)        payload (B, T, dim)
    at the end: gather(logit blocks)             payload (B, T, vocab)

GQA attention runs entirely rank-locally: the rank projects the KV heads
covering its query-head run (replicating any head shared with a neighbor),
so no KV communication is ever needed — the paper-relevant consequence is
that the KV cache shards by *covering* heads, slightly above 1/P.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ParallelError
from repro.nn.attention import _NEG_INF, causal_mask
from repro.nn.kv_cache import RaggedLayerCaches
from repro.nn.rope import RotaryEmbedding
from repro.parallel.sharding import LayerShard, ProjectionShard, RankShard
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor

_RMS_EPS = 1e-6  # matches repro.nn.normalization.RMSNorm's default


def project(shard: ProjectionShard, x: Tensor) -> Tensor:
    """The rank's output columns of a canonical blocked projection.

    Mirrors :func:`repro.nn.linear.blocked_project` block for block: each
    local edge is one basic-slice GEMM, concatenated in block order.  The
    bias chunk is added full-chunk-width afterwards, matching the
    canonical full-width bias add positionally.
    """
    if shard.factorized:
        x = (x @ Tensor(shard.u1)) @ Tensor(shard.core)
    weight = Tensor(shard.weight)
    if len(shard.edges) == 1:
        out = x @ weight
    else:
        parts = [x @ weight[:, a:b] for a, b in shard.edges]
        out = Tensor.concatenate(parts, axis=-1)
    if shard.bias is not None:
        out = out + Tensor(shard.bias)
    return out


class RankExecutor:
    """Drives one rank's slice of the model through a collective group."""

    def __init__(self, shard: RankShard, group, rank: int) -> None:
        if rank != shard.rank:
            raise ParallelError(f"shard rank {shard.rank} driven as rank {rank}")
        self.shard = shard
        self.group = group
        self.rank = rank
        config = shard.config
        self.head_dim = config.head_dim
        self.kv_group = config.n_heads // config.kv_heads
        self.rope = RotaryEmbedding(
            config.head_dim, config.max_seq_len, theta=config.rope_theta
        )
        self.scale = 1.0 / float(np.sqrt(config.head_dim))

    # -- head bookkeeping --------------------------------------------------
    def _split_heads(self, x: Tensor, batch: int, seq_len: int, n_heads: int) -> Tensor:
        return x.reshape(batch, seq_len, n_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _expand_kv(self, x: Tensor) -> Tensor:
        """GQA expansion restricted to this rank's query heads.

        For global query head ``h`` the canonical expansion selects KV head
        ``h // group``; here the same selection runs against the rank-local
        KV tensor (offset by the cover start), producing exactly the
        canonical expanded tensor's ``[q_start, q_stop)`` head slice.
        """
        if self.kv_group == 1:
            return x
        q_start, q_stop = self.shard.q_span
        kv_start = self.shard.kv_span[0]
        parts = []
        for head in range(q_start, q_stop):
            local = head // self.kv_group - kv_start
            parts.append(x[:, local : local + 1])
        return Tensor.concatenate(parts, axis=1)

    def _gather(self, local: Tensor) -> Tensor:
        return Tensor(self.group.all_gather(self.rank, local.data, axis=-1))

    # -- forward passes ----------------------------------------------------
    def forward(self, tokens: np.ndarray, pad_mask: Optional[np.ndarray] = None) -> Tensor:
        """Full uncached forward: (B, T) ids -> replicated (B, T, vocab)."""
        x = Tensor(self.shard.embed)[np.asarray(tokens)]
        for layer in self.shard.layers:
            x = x + self._attention(layer, F.rms_norm(x, Tensor(layer.attn_norm), eps=_RMS_EPS), pad_mask)
            x = x + self._mlp(layer, F.rms_norm(x, Tensor(layer.mlp_norm), eps=_RMS_EPS))
        return self._logits(x)

    def forward_ragged(
        self,
        tokens: np.ndarray,
        caches: Sequence[object],
        new_lengths: np.ndarray,
    ) -> Tensor:
        """Ragged cached forward over this rank's KV-head slice.

        ``caches`` are per-sequence caches holding this rank's covering KV
        heads; one :class:`RaggedLayerCaches` bundle per layer mirrors the
        canonical continuous-batching path.
        """
        tokens = np.asarray(tokens)
        x = Tensor(self.shard.embed)[tokens]
        for index, layer in enumerate(self.shard.layers):
            ragged = RaggedLayerCaches(
                [cache.layers[index] for cache in caches], new_lengths
            )
            normed = F.rms_norm(x, Tensor(layer.attn_norm), eps=_RMS_EPS)
            x = x + self._attention_ragged(layer, normed, ragged)
            x = x + self._mlp(layer, F.rms_norm(x, Tensor(layer.mlp_norm), eps=_RMS_EPS))
        return self._logits(x)

    # -- sublayers ---------------------------------------------------------
    def _attention(
        self, layer: LayerShard, h: Tensor, pad_mask: Optional[np.ndarray]
    ) -> Tensor:
        batch, seq_len, _ = h.shape
        n_q = self.shard.n_q_heads
        n_kv = self.shard.n_kv_heads
        q = self._split_heads(project(layer.w_q, h), batch, seq_len, n_q)
        k = self._split_heads(project(layer.w_k, h), batch, seq_len, n_kv)
        v = self._split_heads(project(layer.w_v, h), batch, seq_len, n_kv)
        q = self.rope.apply(q, offset=0)
        k = self.rope.apply(k, offset=0)
        k = self._expand_kv(k)
        v = self._expand_kv(v)
        scores = (q @ k.transpose(0, 1, 3, 2)) * self.scale
        scores = scores.masked_fill(
            causal_mask(seq_len)[None, None, :, :], _NEG_INF
        )
        if pad_mask is not None:
            pad_mask = np.asarray(pad_mask, dtype=bool)
            scores = scores.masked_fill(pad_mask[:, None, None, :], _NEG_INF)
        weights = F.softmax(scores, axis=-1)
        context = weights @ v
        merged_local = context.transpose(0, 2, 1, 3).reshape(
            batch, seq_len, n_q * self.head_dim
        )
        merged = self._gather(merged_local)
        return self._gather(project(layer.w_so, merged))

    def _attention_ragged(
        self, layer: LayerShard, h: Tensor, ragged: RaggedLayerCaches
    ) -> Tensor:
        batch, max_new, _ = h.shape
        n_q = self.shard.n_q_heads
        n_kv = self.shard.n_kv_heads
        lengths = ragged.new_lengths
        offsets = ragged.offsets
        q = self._split_heads(project(layer.w_q, h), batch, max_new, n_q)
        k = self._split_heads(project(layer.w_k, h), batch, max_new, n_kv)
        v = self._split_heads(project(layer.w_v, h), batch, max_new, n_kv)
        q = self.rope.apply(q, offset=offsets)
        k = self.rope.apply(k, offset=offsets)
        totals = offsets + lengths
        max_total = int(totals.max())
        full_k = np.zeros((batch, n_kv, max_total, self.head_dim), dtype=np.float32)
        full_v = np.zeros_like(full_k)
        for row, cache in enumerate(ragged.caches):
            valid = int(lengths[row])
            row_keys, row_values = cache.append(
                k.data[row : row + 1, :, :valid], v.data[row : row + 1, :, :valid]
            )
            full_k[row, :, : totals[row]] = row_keys[0]
            full_v[row, :, : totals[row]] = row_values[0]
        keys = self._expand_kv(Tensor(full_k))
        values = self._expand_kv(Tensor(full_v))
        scores = (q @ keys.transpose(0, 1, 3, 2)) * self.scale
        key_pos = np.arange(max_total, dtype=np.int64)[None, None, :]
        query_pos = (
            offsets[:, None, None]
            + np.arange(max_new, dtype=np.int64)[None, :, None]
        )
        invalid = (key_pos > query_pos) | (key_pos >= totals[:, None, None])
        scores = scores.masked_fill(invalid[:, None, :, :], _NEG_INF)
        weights = F.softmax(scores, axis=-1)
        context = weights @ values
        merged_local = context.transpose(0, 2, 1, 3).reshape(
            batch, max_new, n_q * self.head_dim
        )
        merged = self._gather(merged_local)
        return self._gather(project(layer.w_so, merged))

    def _mlp(self, layer: LayerShard, h: Tensor) -> Tensor:
        gate = project(layer.w_g, h)
        up = project(layer.w_u, h)
        hidden = self._gather(F.silu(gate) * up)
        return self._gather(project(layer.w_d, hidden))

    def _logits(self, x: Tensor) -> Tensor:
        x = F.rms_norm(x, Tensor(self.shard.final_norm), eps=_RMS_EPS)
        if self.shard.lm_head is not None:
            local = project(self.shard.lm_head, x)
            return self._gather(local)
        # Tied head: slice the full transposed embedding with the rank's
        # GLOBAL vocab edges — byte-compatible with the canonical
        # ``blocked_project(flat, embed.T, vocab_edges)``.
        batch, seq_len, dim = x.shape
        flat = x.reshape(batch * seq_len, dim)
        table = Tensor(self.shard.embed).T
        parts = [flat @ table[:, a:b] for a, b in self.shard.vocab_edges]
        local = parts[0] if len(parts) == 1 else Tensor.concatenate(parts, axis=-1)
        local = local.reshape(batch, seq_len, self.shard.vocab_hi - self.shard.vocab_lo)
        return self._gather(local)
