"""Collective communication with interchangeable backends.

Both backends expose the same four collectives — ``all_gather``,
``all_reduce``, ``broadcast``, ``barrier`` — with a *fixed reduction
order*: contributions are always combined rank 0 first, rank P-1 last,
regardless of arrival order.  Floating-point addition is not associative,
so this ordering (not just the math) is part of the contract that makes
results bit-identical across world sizes and backends.

- :class:`LocalGroup` runs ranks as threads of one process, synchronized
  by a :class:`threading.Barrier`.  Deterministic and cheap — the backend
  the test-suite equality sweeps and the serving engine use.
- :class:`ProcessGroup` (in :mod:`repro.parallel.process`) runs ranks as
  spawned processes exchanging payloads through POSIX shared memory.

Every collective also updates a :class:`CommStats` ledger.  ``wire_bytes``
counts bytes that would cross GPU interconnect links: for an all-gather of
a ``payload`` result, every rank must receive all chunks it does not own,
totalling ``(P-1) * payload`` across the group — an identity that holds
regardless of how unevenly the chunks split, which is what lets the
measured ledger agree *exactly* with the analytic projection.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import ParallelError


@dataclass
class CommStats:
    """Ledger of collective traffic, in the units the hardware model uses."""

    calls: int = 0
    payload_bytes: int = 0  # full (post-collective) tensor bytes
    wire_bytes: int = 0     # bytes crossing interconnect links
    elapsed_s: float = 0.0  # wall time rank 0 spent inside collectives

    def record(self, payload: int, wire: int, elapsed: float = 0.0) -> None:
        self.calls += 1
        self.payload_bytes += payload
        self.wire_bytes += wire
        self.elapsed_s += elapsed

    def snapshot(self) -> dict:
        return {
            "calls": self.calls,
            "payload_bytes": self.payload_bytes,
            "wire_bytes": self.wire_bytes,
            "elapsed_s": self.elapsed_s,
        }


def gather_wire_bytes(payload_bytes: int, world_size: int) -> int:
    """Interconnect bytes for one all-gather with a ``payload_bytes``
    result: each of the P ranks receives everything but its own chunk."""
    return (world_size - 1) * payload_bytes


def reduce_wire_bytes(payload_bytes: int, world_size: int) -> int:
    """Ring all-reduce moves ``2 (P-1)/P`` of the payload per rank;
    summed over ranks that is ``2 (P-1)`` payloads."""
    return 2 * (world_size - 1) * payload_bytes


def fixed_order_sum(parts: List[np.ndarray]) -> np.ndarray:
    """Sum contributions rank 0 first — the deterministic reduction order
    shared by every backend."""
    total = parts[0].copy()
    for part in parts[1:]:
        total += part
    return total


class LocalGroup:
    """In-process collective group: one thread per rank, shared memory.

    Collectives are three-phase: (1) every rank deposits its contribution
    and waits; (2) rank 0 combines in fixed rank order and publishes, all
    wait; (3) every rank reads the shared result and waits once more so
    the slots can be reused.  The returned array is shared read-only by
    all ranks — callers must not mutate it.
    """

    def __init__(self, world_size: int) -> None:
        if world_size <= 0:
            raise ParallelError(f"world_size must be positive, got {world_size}")
        self.world_size = int(world_size)
        self.stats = CommStats()
        self._slots: List[Optional[np.ndarray]] = [None] * self.world_size
        self._result: Optional[np.ndarray] = None
        if self.world_size > 1:
            self._barrier = threading.Barrier(self.world_size)

    # -- lifecycle ---------------------------------------------------------
    def abort(self) -> None:
        """Break peers out of a pending barrier after a rank failed."""
        if self.world_size > 1:
            self._barrier.abort()

    def reset(self) -> None:
        """Make the group usable again after :meth:`abort`."""
        if self.world_size > 1:
            self._barrier.reset()
        self._slots = [None] * self.world_size

    def _wait(self) -> None:
        try:
            self._barrier.wait()
        except threading.BrokenBarrierError as exc:
            raise ParallelError("collective aborted: a peer rank failed") from exc

    # -- collectives -------------------------------------------------------
    def barrier(self, rank: int) -> None:
        if self.world_size > 1:
            self._wait()

    def all_gather(self, rank: int, array: np.ndarray, axis: int = -1) -> np.ndarray:
        """Concatenate per-rank arrays along ``axis``, rank 0 first."""
        if self.world_size == 1:
            self.stats.record(array.nbytes, 0)
            return array
        started = time.perf_counter()
        self._slots[rank] = array
        self._wait()
        if rank == 0:
            result = np.concatenate(self._slots, axis=axis)
            self._result = result
            self.stats.record(
                result.nbytes,
                gather_wire_bytes(result.nbytes, self.world_size),
                time.perf_counter() - started,
            )
        self._wait()
        result = self._result
        self._wait()  # all ranks hold the result; slots are reusable
        return result

    def all_reduce(self, rank: int, array: np.ndarray) -> np.ndarray:
        """Element-wise sum across ranks, combined in fixed rank order."""
        if self.world_size == 1:
            self.stats.record(array.nbytes, 0)
            return array
        started = time.perf_counter()
        self._slots[rank] = array
        self._wait()
        if rank == 0:
            result = fixed_order_sum(self._slots)
            self._result = result
            self.stats.record(
                result.nbytes,
                reduce_wire_bytes(result.nbytes, self.world_size),
                time.perf_counter() - started,
            )
        self._wait()
        result = self._result
        self._wait()
        return result

    def broadcast(self, rank: int, array: Optional[np.ndarray], root: int = 0) -> np.ndarray:
        """Distribute ``root``'s array to every rank."""
        if self.world_size == 1:
            if array is None:
                raise ParallelError("broadcast root must supply an array")
            self.stats.record(array.nbytes, 0)
            return array
        started = time.perf_counter()
        if rank == root:
            if array is None:
                raise ParallelError("broadcast root must supply an array")
            self._result = array
        self._wait()
        result = self._result
        if rank == 0:
            self.stats.record(
                result.nbytes,
                (self.world_size - 1) * result.nbytes,
                time.perf_counter() - started,
            )
        self._wait()
        return result
