"""Collective communication with interchangeable backends.

Both backends expose the same four collectives — ``all_gather``,
``all_reduce``, ``broadcast``, ``barrier`` — with a *fixed reduction
order*: contributions are always combined rank 0 first, rank P-1 last,
regardless of arrival order.  Floating-point addition is not associative,
so this ordering (not just the math) is part of the contract that makes
results bit-identical across world sizes and backends.

- :class:`LocalGroup` runs ranks as threads of one process, synchronized
  by a :class:`threading.Barrier`.  Deterministic and cheap — the backend
  the test-suite equality sweeps and the serving engine use.
- :class:`ProcessGroup` (in :mod:`repro.parallel.process`) runs ranks as
  spawned processes exchanging payloads through POSIX shared memory.

Pipeline parallelism adds point-to-point ``send`` / ``recv`` (activations
forward only — inference has no backward pass).  P2P transfers land in the
same ledger under their own channel: one hop moves the payload across one
link, so ``wire_bytes == payload_bytes`` per send.

Every collective also updates a :class:`CommStats` ledger.  ``wire_bytes``
counts bytes that would cross GPU interconnect links: for an all-gather of
a ``payload`` result, every rank must receive all chunks it does not own,
totalling ``(P-1) * payload`` across the group — an identity that holds
regardless of how unevenly the chunks split, which is what lets the
measured ledger agree *exactly* with the analytic projection.  The ledger
also keeps a per-channel breakdown (``all_gather`` / ``all_reduce`` /
``broadcast`` / ``p2p``) whose totals always sum to the top-level counters.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ParallelError

COMM_CHANNELS = ("all_gather", "all_reduce", "broadcast", "p2p")


@dataclass
class CommStats:
    """Ledger of collective traffic, in the units the hardware model uses.

    ``channels`` breaks the same totals down by primitive; old snapshots
    without the key load as an empty breakdown (backward compatible), and
    ``CommStats(**snapshot)`` round-trips either shape.
    """

    calls: int = 0
    payload_bytes: int = 0  # full (post-collective) tensor bytes
    wire_bytes: int = 0     # bytes crossing interconnect links
    elapsed_s: float = 0.0  # wall time rank 0 spent inside collectives
    channels: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Plain attribute (not a field) so CommStats(**snapshot) keeps
        # working; guards concurrent p2p sends from multiple rank threads.
        self._lock = threading.Lock()

    def record(
        self, payload: int, wire: int, elapsed: float = 0.0,
        channel: str = "all_gather",
    ) -> None:
        with self._lock:
            self.calls += 1
            self.payload_bytes += payload
            self.wire_bytes += wire
            self.elapsed_s += elapsed
            entry = self.channels.setdefault(
                channel,
                {"calls": 0, "payload_bytes": 0, "wire_bytes": 0, "elapsed_s": 0.0},
            )
            entry["calls"] += 1
            entry["payload_bytes"] += payload
            entry["wire_bytes"] += wire
            entry["elapsed_s"] += elapsed

    def channel(self, name: str) -> Dict[str, float]:
        """One channel's counters (zeros if the channel never fired)."""
        return dict(
            self.channels.get(
                name,
                {"calls": 0, "payload_bytes": 0, "wire_bytes": 0, "elapsed_s": 0.0},
            )
        )

    def snapshot(self) -> dict:
        return {
            "calls": self.calls,
            "payload_bytes": self.payload_bytes,
            "wire_bytes": self.wire_bytes,
            "elapsed_s": self.elapsed_s,
            "channels": {name: dict(entry) for name, entry in self.channels.items()},
        }


def gather_wire_bytes(payload_bytes: int, world_size: int) -> int:
    """Interconnect bytes for one all-gather with a ``payload_bytes``
    result: each of the P ranks receives everything but its own chunk."""
    return (world_size - 1) * payload_bytes


def reduce_wire_bytes(payload_bytes: int, world_size: int) -> int:
    """Ring all-reduce moves ``2 (P-1)/P`` of the payload per rank;
    summed over ranks that is ``2 (P-1)`` payloads."""
    return 2 * (world_size - 1) * payload_bytes


def fixed_order_sum(parts: List[np.ndarray]) -> np.ndarray:
    """Sum contributions rank 0 first — the deterministic reduction order
    shared by every backend."""
    total = parts[0].copy()
    for part in parts[1:]:
        total += part
    return total


_P2P_ABORT = object()  # sentinel flooding queues so blocked recvs unblock


class LocalGroup:
    """In-process collective group: one thread per rank, shared memory.

    Collectives are three-phase: (1) every rank deposits its contribution
    and waits; (2) rank 0 combines in fixed rank order and publishes, all
    wait; (3) every rank reads the shared result and waits once more so
    the slots can be reused.  The returned array is shared read-only by
    all ranks — callers must not mutate it.

    ``stats`` lets several groups (per-stage TP groups plus the pipeline's
    P2P lanes) share one ledger, so a run's total traffic is a single
    snapshot regardless of how the grid was carved into groups.
    """

    def __init__(self, world_size: int, stats: Optional[CommStats] = None) -> None:
        if world_size <= 0:
            raise ParallelError(f"world_size must be positive, got {world_size}")
        self.world_size = int(world_size)
        self.stats = stats if stats is not None else CommStats()
        self._slots: List[Optional[np.ndarray]] = [None] * self.world_size
        self._result: Optional[np.ndarray] = None
        if self.world_size > 1:
            self._barrier = threading.Barrier(self.world_size)
        # Point-to-point lanes, created lazily per (src, dst) pair.
        self._lanes: Dict[Tuple[int, int], queue.Queue] = {}
        self._lanes_lock = threading.Lock()
        self._p2p_aborted = False

    # -- lifecycle ---------------------------------------------------------
    def abort(self) -> None:
        """Break peers out of a pending barrier after a rank failed."""
        if self.world_size > 1:
            self._barrier.abort()
        with self._lanes_lock:
            self._p2p_aborted = True
            for lane in self._lanes.values():
                lane.put(_P2P_ABORT)

    def reset(self) -> None:
        """Make the group usable again after :meth:`abort`."""
        if self.world_size > 1:
            self._barrier.reset()
        self._slots = [None] * self.world_size
        with self._lanes_lock:
            self._p2p_aborted = False
            self._lanes.clear()

    def _wait(self) -> None:
        try:
            self._barrier.wait()
        except threading.BrokenBarrierError as exc:
            raise ParallelError("collective aborted: a peer rank failed") from exc

    def _lane(self, src: int, dst: int) -> queue.Queue:
        for rank, label in ((src, "src"), (dst, "dst")):
            if not 0 <= rank < self.world_size:
                raise ParallelError(
                    f"p2p {label} rank {rank} out of range [0, {self.world_size})"
                )
        if src == dst:
            raise ParallelError(f"p2p send to self (rank {src})")
        with self._lanes_lock:
            lane = self._lanes.get((src, dst))
            if lane is None:
                lane = self._lanes[(src, dst)] = queue.Queue()
                if self._p2p_aborted:
                    lane.put(_P2P_ABORT)
            return lane

    # -- point-to-point ----------------------------------------------------
    def send(self, rank: int, dst: int, array: np.ndarray) -> None:
        """Ship ``array`` to rank ``dst`` (one hop: wire == payload).

        The receiver gets the same object — senders must not mutate the
        array after sending (copy workspace-backed buffers first).
        """
        started = time.perf_counter()
        lane = self._lane(rank, dst)
        lane.put(array)
        self.stats.record(
            array.nbytes, array.nbytes,
            time.perf_counter() - started, channel="p2p",
        )

    def recv(self, rank: int, src: int) -> np.ndarray:
        """Block until rank ``src``'s next send to this rank arrives."""
        lane = self._lane(src, rank)
        item = lane.get()
        if item is _P2P_ABORT:
            lane.put(_P2P_ABORT)  # keep later recvs unblocked too
            raise ParallelError("p2p recv aborted: a peer rank failed")
        return item

    # -- collectives -------------------------------------------------------
    def barrier(self, rank: int) -> None:
        if self.world_size > 1:
            self._wait()

    def all_gather(self, rank: int, array: np.ndarray, axis: int = -1) -> np.ndarray:
        """Concatenate per-rank arrays along ``axis``, rank 0 first."""
        if self.world_size == 1:
            self.stats.record(array.nbytes, 0)
            return array
        started = time.perf_counter()
        self._slots[rank] = array
        self._wait()
        if rank == 0:
            result = np.concatenate(self._slots, axis=axis)
            self._result = result
            self.stats.record(
                result.nbytes,
                gather_wire_bytes(result.nbytes, self.world_size),
                time.perf_counter() - started,
            )
        self._wait()
        result = self._result
        self._wait()  # all ranks hold the result; slots are reusable
        return result

    def all_reduce(self, rank: int, array: np.ndarray) -> np.ndarray:
        """Element-wise sum across ranks, combined in fixed rank order."""
        if self.world_size == 1:
            self.stats.record(array.nbytes, 0, channel="all_reduce")
            return array
        started = time.perf_counter()
        self._slots[rank] = array
        self._wait()
        if rank == 0:
            result = fixed_order_sum(self._slots)
            self._result = result
            self.stats.record(
                result.nbytes,
                reduce_wire_bytes(result.nbytes, self.world_size),
                time.perf_counter() - started,
                channel="all_reduce",
            )
        self._wait()
        result = self._result
        self._wait()
        return result

    def broadcast(self, rank: int, array: Optional[np.ndarray], root: int = 0) -> np.ndarray:
        """Distribute ``root``'s array to every rank."""
        if self.world_size == 1:
            if array is None:
                raise ParallelError("broadcast root must supply an array")
            self.stats.record(array.nbytes, 0, channel="broadcast")
            return array
        started = time.perf_counter()
        if rank == root:
            if array is None:
                raise ParallelError("broadcast root must supply an array")
            self._result = array
        self._wait()
        result = self._result
        if rank == 0:
            self.stats.record(
                result.nbytes,
                (self.world_size - 1) * result.nbytes,
                time.perf_counter() - started,
                channel="broadcast",
            )
        self._wait()
        return result
