"""Device mesh: which ranks own which blocks of each sharded dimension.

The canonical single-process model computes every projection in a fixed
column-block grid (:func:`repro.nn.linear.block_edges`): per query head for
W_Q, per KV head for W_K/W_V, and an ``n_heads``-block grid over the output
width of W_SO / the MLP / the LM head.  Tensor parallelism assigns each
rank a *contiguous run of whole blocks*; because a block's GEMM result
depends only on its own weight slice, any such assignment reproduces the
canonical bytes exactly once the per-rank results are concatenated in rank
order.

GQA couples query and KV ownership: a rank holding query heads ``[a, b)``
needs the KV heads covering them (``[a // g, ceil(b / g))`` for group size
``g``).  Covering ranges of adjacent ranks may overlap at a shared KV head;
the overlapped head is *replicated* — both ranks project it from the same
replicated input with the same weights, bit-identically — so GQA costs no
extra communication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ParallelError
from repro.models.config import ModelConfig
from repro.nn.linear import block_edges

Span = Tuple[int, int]


@dataclass(frozen=True)
class DeviceMesh:
    """A 1-D tensor-parallel mesh of ``world_size`` ranks."""

    world_size: int

    def __post_init__(self) -> None:
        if self.world_size <= 0:
            raise ParallelError(f"world_size must be positive, got {self.world_size}")

    def block_spans(self, n_blocks: int) -> List[Span]:
        """Assign ``n_blocks`` grid blocks to ranks as contiguous runs.

        Uses the same largest-first split as :func:`block_edges`, so rank
        loads differ by at most one block.  Every rank owns at least one
        block; sharding a grid finer than the mesh is an error.
        """
        if n_blocks < self.world_size:
            raise ParallelError(
                f"cannot shard {n_blocks} blocks across {self.world_size} ranks"
            )
        return block_edges(n_blocks, self.world_size)

    def head_span(self, n_heads: int, rank: int) -> Span:
        """Query heads ``[start, stop)`` owned by ``rank``."""
        return self.block_spans(n_heads)[rank]

    @staticmethod
    def kv_cover(q_span: Span, group: int) -> Span:
        """KV heads covering a run of query heads under GQA group size
        ``group`` (1 for MHA).  May overlap neighboring ranks' covers."""
        start, stop = q_span
        return (start // group, -(-stop // group))


def validate_mesh(config: ModelConfig, mesh: DeviceMesh) -> None:
    """Check that ``config`` can shard across ``mesh``.

    Every sharded grid — attention heads, the MLP block grid, the vocab
    block grid — must have at least one block per rank.
    """
    grids = {
        "attention heads": config.n_heads,
        "kv heads after GQA cover": config.n_heads,  # q grid dominates
        "mlp blocks": len(block_edges(config.mlp_hidden, config.n_heads)),
        "vocab blocks": len(block_edges(config.vocab_size, config.n_heads)),
        "output blocks": len(block_edges(config.dim, config.n_heads)),
    }
    for name, blocks in grids.items():
        if blocks < mesh.world_size:
            raise ParallelError(
                f"{config.name}: {name} ({blocks}) < world_size {mesh.world_size}"
            )
