"""Device mesh: a (pp, tp) grid of ranks over stages and tensor shards.

The canonical single-process model computes every projection in a fixed
column-block grid (:func:`repro.nn.linear.block_edges`): per query head for
W_Q, per KV head for W_K/W_V, and an ``n_heads``-block grid over the output
width of W_SO / the MLP / the LM head.  Tensor parallelism assigns each
rank a *contiguous run of whole blocks*; because a block's GEMM result
depends only on its own weight slice, any such assignment reproduces the
canonical bytes exactly once the per-rank results are concatenated in rank
order.

GQA couples query and KV ownership: a rank holding query heads ``[a, b)``
needs the KV heads covering them (``[a // g, ceil(b / g))`` for group size
``g``).  Covering ranges of adjacent ranks may overlap at a shared KV head;
the overlapped head is *replicated* — both ranks project it from the same
replicated input with the same weights, bit-identically — so GQA costs no
extra communication.

Pipeline parallelism adds a second, orthogonal axis: the decoder layers are
cut into ``pp`` contiguous *stages* (embedding lives in stage 0, the LM
head in the last stage) and each stage is internally tensor-sharded over
``tp`` ranks.  The flat rank numbering is stage-major::

    rank = stage * tp + tp_rank

Hidden states crossing a stage boundary are fully gathered (replicated)
activations, so the only new communication is a point-to-point send of the
(B, T, dim) hidden block from each TP rank of stage ``s`` to the same TP
rank of stage ``s + 1`` — byte counts that :mod:`repro.parallel.accounting`
projects exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ParallelError
from repro.models.config import ModelConfig
from repro.nn.linear import block_edges

Span = Tuple[int, int]


@dataclass(frozen=True)
class DeviceMesh:
    """A 2-D (pipeline × tensor) mesh of ``pp * tp`` ranks.

    The first (positional) field is the tensor-parallel degree, so the
    historical 1-D spelling ``DeviceMesh(n)`` still means "n tensor shards,
    one stage".  ``pp`` adds pipeline stages along the second axis.
    """

    tp: int = 1
    pp: int = 1

    def __post_init__(self) -> None:
        if self.tp <= 0:
            raise ParallelError(f"tp must be positive, got {self.tp}")
        if self.pp <= 0:
            raise ParallelError(f"pp must be positive, got {self.pp}")

    @property
    def world_size(self) -> int:
        """Total ranks on the grid (``pp * tp``)."""
        return self.pp * self.tp

    # -- tensor axis -------------------------------------------------------
    def block_spans(self, n_blocks: int) -> List[Span]:
        """Assign ``n_blocks`` grid blocks to TP ranks as contiguous runs.

        Uses the same largest-first split as :func:`block_edges`, so rank
        loads differ by at most one block.  Every rank owns at least one
        block; sharding a grid finer than the TP axis is an error.
        """
        if n_blocks < self.tp:
            raise ParallelError(
                f"cannot shard {n_blocks} blocks across {self.tp} ranks"
            )
        return block_edges(n_blocks, self.tp)

    def head_span(self, n_heads: int, rank: int) -> Span:
        """Query heads ``[start, stop)`` owned by TP rank ``rank``."""
        return self.block_spans(n_heads)[rank]

    @staticmethod
    def kv_cover(q_span: Span, group: int) -> Span:
        """KV heads covering a run of query heads under GQA group size
        ``group`` (1 for MHA).  May overlap neighboring ranks' covers."""
        start, stop = q_span
        return (start // group, -(-stop // group))

    # -- pipeline axis -----------------------------------------------------
    def stage_spans(
        self, n_layers: int, cut_points: Optional[Sequence[int]] = None
    ) -> List[Span]:
        """Layer runs ``[lo, hi)`` per stage, tiling ``[0, n_layers)``.

        By default layers split with the same largest-first balance
        heuristic as the block grids (stage loads differ by at most one
        layer).  ``cut_points`` overrides the interior boundaries: it must
        list ``pp - 1`` strictly increasing layer indices in
        ``(0, n_layers)``, and stage ``s`` then owns
        ``[cut[s-1], cut[s])`` — i.e. the cuts tile the layer range
        exactly once.
        """
        if n_layers < self.pp:
            raise ParallelError(
                f"cannot split {n_layers} layers into {self.pp} pipeline stages"
            )
        if cut_points is None:
            return block_edges(n_layers, self.pp)
        cuts = tuple(int(c) for c in cut_points)
        if len(cuts) != self.pp - 1:
            raise ParallelError(
                f"cut_points must list pp - 1 = {self.pp - 1} boundaries, "
                f"got {len(cuts)}"
            )
        bounds = (0,) + cuts + (n_layers,)
        for lo, hi in zip(bounds, bounds[1:]):
            if lo >= hi:
                raise ParallelError(
                    f"cut_points must be strictly increasing inside "
                    f"(0, {n_layers}), got {cuts}"
                )
        return [(lo, hi) for lo, hi in zip(bounds, bounds[1:])]

    # -- rank numbering (stage-major) --------------------------------------
    def rank_of(self, stage: int, tp_rank: int) -> int:
        """Flat rank of grid cell ``(stage, tp_rank)``."""
        if not 0 <= stage < self.pp:
            raise ParallelError(f"stage {stage} out of range [0, {self.pp})")
        if not 0 <= tp_rank < self.tp:
            raise ParallelError(f"tp_rank {tp_rank} out of range [0, {self.tp})")
        return stage * self.tp + tp_rank

    def coords_of(self, rank: int) -> Tuple[int, int]:
        """Grid cell ``(stage, tp_rank)`` of flat rank ``rank``."""
        if not 0 <= rank < self.world_size:
            raise ParallelError(
                f"rank {rank} out of range [0, {self.world_size})"
            )
        return divmod(rank, self.tp)


def validate_mesh(
    config: ModelConfig, mesh: DeviceMesh, world_size: Optional[int] = None
) -> None:
    """Check that ``config`` can shard across ``mesh``.

    Every tensor-sharded grid — attention heads, the MLP block grid, the
    vocab block grid — must have at least one block per TP rank, and the
    pipeline axis must have at least one decoder layer per stage.  When
    ``world_size`` is given it must equal the grid size ``pp * tp``.
    """
    if world_size is not None and world_size != mesh.world_size:
        raise ParallelError(
            f"mesh grid is pp={mesh.pp} x tp={mesh.tp} = {mesh.world_size} "
            f"ranks but world_size is {world_size}"
        )
    if mesh.pp > config.n_layers:
        raise ParallelError(
            f"{config.name}: {config.n_layers} layers < pp {mesh.pp} "
            f"(every stage needs at least one decoder layer)"
        )
    grids = {
        "attention heads": config.n_heads,
        "kv heads after GQA cover": config.n_heads,  # q grid dominates
        "mlp blocks": len(block_edges(config.mlp_hidden, config.n_heads)),
        "vocab blocks": len(block_edges(config.vocab_size, config.n_heads)),
        "output blocks": len(block_edges(config.dim, config.n_heads)),
    }
    for name, blocks in grids.items():
        if blocks < mesh.tp:
            raise ParallelError(
                f"{config.name}: {name} ({blocks}) < tp {mesh.tp}"
            )
