"""Thread-backed 2-D parallel Llama: the deterministic local backend.

:class:`ShardedLlama` wraps a canonical model as a ``pp x tp`` grid of
rank executors driven by a persistent thread pool.  Each pipeline stage
owns a contiguous run of decoder layers and is internally tensor-sharded
over its own :class:`~repro.parallel.collectives.LocalGroup`; stage
boundaries are crossed by point-to-point ``send``/``recv`` of the
replicated hidden state (activations flow forward only — inference).  It
quacks like the model where the serving engine needs it to — ``config``,
``eval()``, ``forward``/``forward_ragged``, plus a ``make_kv_pool`` hook
that gives the engine per-grid-cell KV pools holding only each cell's
covering KV heads *and* its stage's layers.

Pipelining: prefill batches are split into up to ``pp`` row-microbatches
that stream through the stages 1F1B-style — the blocking lane queues let
stage 0 start microbatch ``m+1`` while stage 1 still runs ``m`` — and
decode tokens travel the pipe one hop per step.  Row-splitting is
bit-exact (BLAS GEMMs over row subsets reproduce the full-batch bytes)
and the ragged attention pads every microbatch to the whole batch's
maximum KV width, so chunking never perturbs a reduction.

Exact-equality contract: for identical inputs (and identical per-sequence
cache histories), ``ShardedLlama(model, tp, pp=pp).forward(x)`` returns
the same bytes as ``model.forward(x)`` for every valid grid — see
:mod:`repro.parallel.executor` for why.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ParallelError
from repro.nn.linear import block_edges
from repro.parallel.accounting import (
    CommProjection,
    analytic_comm,
    analytic_p2p,
)
from repro.parallel.collectives import CommStats, LocalGroup
from repro.parallel.executor import RankExecutor
from repro.parallel.mesh import DeviceMesh
from repro.parallel.sharding import RankShard, shard_model
from repro.serving.paged import PagedKVStore
from repro.serving.pool import KVBlockPool
from repro.tensor.tensor import Tensor


class ShardedSequenceCache:
    """One request's KV state split across per-rank pools.

    Mirrors the :class:`~repro.serving.pool.PooledSequenceCache` surface
    the engine drives (``seq_len`` / ``reserve`` / ``free``).  The per-rank
    pools share one block geometry and receive every operation in the same
    order, so reservations succeed or exhaust symmetrically.
    """

    def __init__(self, rank_caches: Sequence[object]) -> None:
        self.rank_caches = list(rank_caches)

    @property
    def seq_len(self) -> int:
        return self.rank_caches[0].seq_len

    @property
    def closed(self) -> bool:
        return self.rank_caches[0].closed

    def reserve(self, new_tokens: int) -> None:
        for cache in self.rank_caches:
            cache.reserve(new_tokens)

    def note_tokens(self, tokens) -> None:
        """Fan the scheduler's token note out to every rank's slice (paged
        stores key their radix index on it; growable caches ignore it)."""
        for cache in self.rank_caches:
            note = getattr(cache, "note_tokens", None)
            if note is not None:
                note(tokens)

    def truncate(self, length: int) -> None:
        """Roll every rank's cache slice back to ``length`` positions.

        Ranks receive identical append/truncate sequences, so the slices
        stay in lockstep — the speculative rollback works under tensor
        parallelism exactly as it does canonically.
        """
        for cache in self.rank_caches:
            cache.truncate(length)

    def freeze_sealing(self) -> None:
        """Fan a variant hot-swap's seal freeze out to every rank's slice
        (growable caches have nothing to freeze and are skipped)."""
        for cache in self.rank_caches:
            freeze = getattr(cache, "freeze_sealing", None)
            if freeze is not None:
                freeze()

    def free(self) -> None:
        for cache in self.rank_caches:
            cache.free()


class ShardedKVPool:
    """Facade over one :class:`KVBlockPool` per rank.

    Each rank's pool stores only that rank's covering KV heads, so total
    cache memory is ~1/P per rank (slightly above when GQA covers
    overlap).  Admission-control queries delegate to rank 0 — all pools
    share the same block geometry.
    """

    def __init__(self, shards: Sequence[RankShard], n_blocks: int, block_tokens: int) -> None:
        self.pools: List[KVBlockPool] = [
            KVBlockPool(
                shard.config,
                n_blocks=n_blocks,
                block_tokens=block_tokens,
                kv_heads=shard.n_kv_heads,
                n_layers=shard.n_stage_layers,
            )
            for shard in shards
        ]

    @property
    def n_blocks(self) -> int:
        return self.pools[0].n_blocks

    @property
    def block_tokens(self) -> int:
        return self.pools[0].block_tokens

    @property
    def available_blocks(self) -> int:
        return self.pools[0].available_blocks

    @property
    def used_blocks(self) -> int:
        return self.pools[0].used_blocks

    @property
    def utilization(self) -> float:
        return self.pools[0].utilization

    @property
    def bytes_allocated(self) -> int:
        return sum(pool.bytes_allocated for pool in self.pools)

    def blocks_for_tokens(self, tokens: int) -> int:
        return self.pools[0].blocks_for_tokens(tokens)

    def fits(self, tokens: int) -> bool:
        return self.pools[0].fits(tokens)

    def allocate_sequence(self) -> ShardedSequenceCache:
        return ShardedSequenceCache([pool.allocate_sequence() for pool in self.pools])


class ShardedPagedStore(ShardedKVPool):
    """Per-rank :class:`~repro.serving.paged.PagedKVStore` facade.

    Every rank's store receives the identical operation sequence (acquire
    keys, token notes, append sizes, truncations, frees), and the radix
    walk is deterministic, so all ranks make the same sharing decisions —
    a prefix shared on rank 0 is shared on every rank.  Sharing telemetry
    delegates to rank 0.
    """

    def __init__(self, shards: Sequence[RankShard], n_blocks: int, block_tokens: int) -> None:
        self.pools: List[PagedKVStore] = [
            PagedKVStore(
                shard.config,
                n_blocks=n_blocks,
                block_tokens=block_tokens,
                kv_heads=shard.n_kv_heads,
                n_layers=shard.n_stage_layers,
            )
            for shard in shards
        ]

    def acquire_sequence(self, tokens=None, namespace=None) -> ShardedSequenceCache:
        caches = [
            pool.acquire_sequence(tokens, namespace=namespace) for pool in self.pools
        ]
        lengths = {cache.seq_len for cache in caches}
        if len(lengths) != 1:
            raise ParallelError(
                f"rank paged stores diverged: shared prefix lengths {sorted(lengths)}"
            )
        return ShardedSequenceCache(caches)

    # -- sharing telemetry (rank 0; identical on every rank) ---------------
    @property
    def prefix_lookups(self) -> int:
        return self.pools[0].prefix_lookups

    @property
    def prefix_hits(self) -> int:
        return self.pools[0].prefix_hits

    @property
    def shared_tokens(self) -> int:
        return self.pools[0].shared_tokens

    @property
    def cow_forks(self) -> int:
        return self.pools[0].cow_forks

    @property
    def evictions(self) -> int:
        return self.pools[0].evictions


class ShardedLlama:
    """2-D (pipeline x tensor) parallel execution on thread ranks.

    ``tp`` is the tensor-parallel degree within each stage (the historical
    second positional argument, so ``ShardedLlama(model, P)`` still means
    ``P`` tensor shards in one stage); ``pp`` adds pipeline stages.  Flat
    grid rank ``r = stage * tp + tp_rank`` indexes ``shards`` /
    ``executors`` and every :class:`ShardedSequenceCache`.
    """

    def __init__(
        self,
        model,
        tp: int = 1,
        pp: int = 1,
        cut_points: Optional[Tuple[int, ...]] = None,
        microbatches: Optional[int] = None,
    ) -> None:
        self.config = model.config
        self.mesh = DeviceMesh(tp, pp)
        self.tp = self.mesh.tp
        self.pp = self.mesh.pp
        self.world_size = self.mesh.world_size
        self.cut_points = tuple(cut_points) if cut_points is not None else None
        self._microbatches = microbatches
        self.shards = shard_model(model, self.mesh, cut_points=self.cut_points)
        # All collective groups feed one shared ledger so ``comm_stats``
        # sees the whole grid: one TP group per stage (all-gathers), plus a
        # grid-wide lane group for stage-boundary P2P when pp > 1.
        self.stats = CommStats()
        self.stage_groups = [
            LocalGroup(self.tp, stats=self.stats) for _ in range(self.pp)
        ]
        self.group = self.stage_groups[0]
        self.pipe = (
            LocalGroup(self.world_size, stats=self.stats) if self.pp > 1 else None
        )
        self.executors = [
            RankExecutor(shard, self.stage_groups[shard.stage], shard.rank)
            for shard in self.shards
        ]
        self._pool = ThreadPoolExecutor(
            max_workers=self.world_size, thread_name_prefix="mesh-rank"
        )
        self.padded_tokens = 0     # total padded tokens across forward calls
        self.forward_calls = 0     # logical forwards (engine steps)
        self.microbatch_passes = 0  # pipeline passes (chunks) issued

    # -- model facade ------------------------------------------------------
    def eval(self) -> "ShardedLlama":
        return self

    def close(self) -> None:
        self._pool.shutdown(wait=False)

    def _all_groups(self) -> List[LocalGroup]:
        groups = list(self.stage_groups)
        if self.pipe is not None:
            groups.append(self.pipe)
        return groups

    def _run(self, fn) -> List[object]:
        """Run ``fn(rank)`` on every grid rank in lockstep; propagate failures.

        On any rank's exception every group is aborted so peers blocked in
        a collective or a P2P recv fail fast; the first *causal* exception
        (not the secondary broken-barrier/aborted-recv ones) is re-raised.
        """
        futures = [self._pool.submit(self._guard, fn, rank) for rank in range(self.world_size)]
        results: List[object] = []
        causal: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except ParallelError as exc:
                results.append(None)
                if causal is None and "aborted" not in str(exc):
                    causal = exc
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                results.append(None)
                if causal is None:
                    causal = exc
        if causal is not None:
            for group in self._all_groups():
                group.reset()
            raise causal
        return results

    def _guard(self, fn, rank: int):
        try:
            return fn(rank)
        except BaseException:
            for group in self._all_groups():
                group.abort()
            raise

    # -- pipeline plumbing -------------------------------------------------
    def _row_chunks(self, rows: int) -> List[Tuple[int, int]]:
        """Contiguous row spans for the microbatch passes of one forward.

        Default: up to ``pp`` balanced chunks (1 chunk on a 1-stage pipe —
        the historical behavior, byte for byte).  Row-splitting preserves
        the exactness contract: every kernel reduces within a row, and the
        ragged path pads all chunks to the batch-global KV width.
        """
        want = self._microbatches if self._microbatches is not None else self.pp
        count = max(1, min(int(want), rows))
        return block_edges(rows, count)

    @property
    def _last_stage_rank(self) -> int:
        return (self.pp - 1) * self.tp

    def forward(self, tokens: np.ndarray, pad_mask: Optional[np.ndarray] = None) -> Tensor:
        tokens = np.asarray(tokens)
        chunks = self._row_chunks(tokens.shape[0])
        # A chunked forward defers the head: the tied-head GEMM's low bits
        # depend on the row count, so the last stage runs its layers per
        # chunk and the epilogue once over the concatenated batch.
        defer_head = len(chunks) > 1
        self._account(tokens.shape[0] * tokens.shape[1], passes=len(chunks))

        def work(rank: int) -> Optional[Tensor]:
            stage = rank // self.tp
            executor = self.executors[rank]
            outs: List[Tensor] = []
            for lo, hi in chunks:
                hidden = self.pipe.recv(rank, rank - self.tp) if stage > 0 else None
                mask = pad_mask[lo:hi] if pad_mask is not None else None
                out = executor.forward(
                    tokens[lo:hi], pad_mask=mask, hidden=hidden,
                    skip_head=defer_head,
                )
                if stage < self.pp - 1:
                    self.pipe.send(rank, rank + self.tp, out.data)
                else:
                    outs.append(out)
            if stage < self.pp - 1:
                return None
            if defer_head:
                return executor.head_only(
                    np.concatenate([out.data for out in outs], axis=0)
                )
            return outs[0]

        return self._run(work)[self._last_stage_rank]

    def __call__(self, tokens: np.ndarray, pad_mask: Optional[np.ndarray] = None) -> Tensor:
        return self.forward(tokens, pad_mask=pad_mask)

    def forward_ragged(
        self,
        tokens: np.ndarray,
        caches: Sequence[ShardedSequenceCache],
        new_lengths,
    ) -> Tensor:
        tokens = np.asarray(tokens)
        lengths = np.asarray(new_lengths, dtype=np.int64)
        caches = list(caches)
        # Pad every microbatch's attention to the whole batch's maximum KV
        # width so chunked reductions match the full-batch pass bit for bit.
        offsets = np.asarray([cache.seq_len for cache in caches], dtype=np.int64)
        pad_to = int((offsets + lengths).max())
        chunks = self._row_chunks(tokens.shape[0])
        defer_head = len(chunks) > 1
        self._account(tokens.shape[0] * tokens.shape[1], passes=len(chunks))

        def work(rank: int) -> Optional[Tensor]:
            stage = rank // self.tp
            executor = self.executors[rank]
            outs: List[Tensor] = []
            for lo, hi in chunks:
                hidden = self.pipe.recv(rank, rank - self.tp) if stage > 0 else None
                out = executor.forward_ragged(
                    tokens[lo:hi],
                    [cache.rank_caches[rank] for cache in caches[lo:hi]],
                    lengths[lo:hi],
                    hidden=hidden,
                    pad_to=pad_to,
                    skip_head=defer_head,
                )
                if stage < self.pp - 1:
                    self.pipe.send(rank, rank + self.tp, out.data)
                else:
                    outs.append(out)
            if stage < self.pp - 1:
                return None
            if defer_head:
                return executor.head_only(
                    np.concatenate([out.data for out in outs], axis=0)
                )
            return outs[0]

        return self._run(work)[self._last_stage_rank]

    def forward_cached(self, tokens: np.ndarray, cache: ShardedSequenceCache) -> Tensor:
        """Forward over new ``tokens`` only, extending ``cache`` in place.

        With :meth:`make_cache` this completes the cached-decoding surface
        the runtime :class:`~repro.runtime.decode.DecodeSession` drives, so
        greedy generation runs on the grid without code changes.  The
        batch shares one cache, so a decode step is a single microbatch
        streaming through the pipe one hop at a time.
        """
        tokens = np.asarray(tokens)
        self._account(tokens.shape[0] * tokens.shape[1], passes=1)

        def work(rank: int) -> Tensor:
            stage = rank // self.tp
            hidden = self.pipe.recv(rank, rank - self.tp) if stage > 0 else None
            out = self.executors[rank].forward_cached(
                tokens, cache.rank_caches[rank], hidden=hidden
            )
            if stage < self.pp - 1:
                self.pipe.send(rank, rank + self.tp, out.data)
            return out

        return self._run(work)[self._last_stage_rank]

    # -- serving hooks -----------------------------------------------------
    def make_kv_pool(
        self, n_blocks: int, block_tokens: int, paged: bool = False
    ) -> ShardedKVPool:
        """Per-grid-cell KV pools; ``paged`` selects the prefix-sharing
        store so parallel engines share prefixes exactly like single-rank
        ones.  Each cell's pool holds only its stage's layers and its
        rank's covering KV heads."""
        cls = ShardedPagedStore if paged else ShardedKVPool
        return cls(self.shards, n_blocks=n_blocks, block_tokens=block_tokens)

    def make_cache(self) -> ShardedSequenceCache:
        """A growable (non-pooled) per-sequence cache, one slice per grid
        cell, each holding only that cell's stage layers."""
        from repro.nn.kv_cache import ModelKVCache

        return ShardedSequenceCache(
            [ModelKVCache(shard.n_stage_layers) for shard in self.shards]
        )

    # -- communication accounting -----------------------------------------
    def _account(self, padded: int, passes: int = 1) -> None:
        self.padded_tokens += int(padded)
        self.forward_calls += 1
        self.microbatch_passes += int(passes)

    def comm_stats(self) -> CommStats:
        """The grid-wide shared ledger (all stages and the P2P lanes)."""
        return self.stats

    def comm_projection(self) -> CommProjection:
        """Analytic all-gather traffic for the forwards issued so far —
        must match the ledger's ``all_gather`` channel byte for byte."""
        return analytic_comm(
            self.config, self.padded_tokens, self.tp,
            self.forward_calls, self.microbatch_passes,
        )

    def p2p_projection(self) -> CommProjection:
        """Analytic stage-boundary P2P traffic — must match the ledger's
        ``p2p`` channel byte for byte (zero on a 1-stage pipe)."""
        return analytic_p2p(
            self.config, self.padded_tokens, self.pp, self.tp,
            self.microbatch_passes,
        )

    def comm_projections(self) -> dict:
        """Per-channel analytic projections keyed like the measured ledger."""
        return {"all_gather": self.comm_projection(), "p2p": self.p2p_projection()}
