"""Thread-backed tensor-parallel Llama: the deterministic local backend.

:class:`ShardedLlama` wraps a canonical model as ``world_size`` rank
executors driven by a persistent thread pool over a
:class:`~repro.parallel.collectives.LocalGroup`.  It quacks like the model
where the serving engine needs it to — ``config``, ``eval()``,
``forward``/``forward_ragged``, plus a ``make_kv_pool`` hook that gives
the engine *per-rank* KV pools holding only each rank's covering KV heads.

Exact-equality contract: for identical inputs (and identical per-sequence
cache histories), ``ShardedLlama(model, P).forward(x)`` returns the same
bytes as ``model.forward(x)`` for every valid ``P`` — see
:mod:`repro.parallel.executor` for why.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ParallelError
from repro.parallel.accounting import CommProjection, analytic_comm
from repro.parallel.collectives import CommStats, LocalGroup
from repro.parallel.executor import RankExecutor
from repro.parallel.mesh import DeviceMesh
from repro.parallel.sharding import RankShard, shard_model
from repro.serving.paged import PagedKVStore
from repro.serving.pool import KVBlockPool
from repro.tensor.tensor import Tensor


class ShardedSequenceCache:
    """One request's KV state split across per-rank pools.

    Mirrors the :class:`~repro.serving.pool.PooledSequenceCache` surface
    the engine drives (``seq_len`` / ``reserve`` / ``free``).  The per-rank
    pools share one block geometry and receive every operation in the same
    order, so reservations succeed or exhaust symmetrically.
    """

    def __init__(self, rank_caches: Sequence[object]) -> None:
        self.rank_caches = list(rank_caches)

    @property
    def seq_len(self) -> int:
        return self.rank_caches[0].seq_len

    @property
    def closed(self) -> bool:
        return self.rank_caches[0].closed

    def reserve(self, new_tokens: int) -> None:
        for cache in self.rank_caches:
            cache.reserve(new_tokens)

    def note_tokens(self, tokens) -> None:
        """Fan the scheduler's token note out to every rank's slice (paged
        stores key their radix index on it; growable caches ignore it)."""
        for cache in self.rank_caches:
            note = getattr(cache, "note_tokens", None)
            if note is not None:
                note(tokens)

    def truncate(self, length: int) -> None:
        """Roll every rank's cache slice back to ``length`` positions.

        Ranks receive identical append/truncate sequences, so the slices
        stay in lockstep — the speculative rollback works under tensor
        parallelism exactly as it does canonically.
        """
        for cache in self.rank_caches:
            cache.truncate(length)

    def freeze_sealing(self) -> None:
        """Fan a variant hot-swap's seal freeze out to every rank's slice
        (growable caches have nothing to freeze and are skipped)."""
        for cache in self.rank_caches:
            freeze = getattr(cache, "freeze_sealing", None)
            if freeze is not None:
                freeze()

    def free(self) -> None:
        for cache in self.rank_caches:
            cache.free()


class ShardedKVPool:
    """Facade over one :class:`KVBlockPool` per rank.

    Each rank's pool stores only that rank's covering KV heads, so total
    cache memory is ~1/P per rank (slightly above when GQA covers
    overlap).  Admission-control queries delegate to rank 0 — all pools
    share the same block geometry.
    """

    def __init__(self, shards: Sequence[RankShard], n_blocks: int, block_tokens: int) -> None:
        self.pools: List[KVBlockPool] = [
            KVBlockPool(
                shard.config,
                n_blocks=n_blocks,
                block_tokens=block_tokens,
                kv_heads=shard.n_kv_heads,
            )
            for shard in shards
        ]

    @property
    def n_blocks(self) -> int:
        return self.pools[0].n_blocks

    @property
    def block_tokens(self) -> int:
        return self.pools[0].block_tokens

    @property
    def available_blocks(self) -> int:
        return self.pools[0].available_blocks

    @property
    def used_blocks(self) -> int:
        return self.pools[0].used_blocks

    @property
    def utilization(self) -> float:
        return self.pools[0].utilization

    @property
    def bytes_allocated(self) -> int:
        return sum(pool.bytes_allocated for pool in self.pools)

    def blocks_for_tokens(self, tokens: int) -> int:
        return self.pools[0].blocks_for_tokens(tokens)

    def fits(self, tokens: int) -> bool:
        return self.pools[0].fits(tokens)

    def allocate_sequence(self) -> ShardedSequenceCache:
        return ShardedSequenceCache([pool.allocate_sequence() for pool in self.pools])


class ShardedPagedStore(ShardedKVPool):
    """Per-rank :class:`~repro.serving.paged.PagedKVStore` facade.

    Every rank's store receives the identical operation sequence (acquire
    keys, token notes, append sizes, truncations, frees), and the radix
    walk is deterministic, so all ranks make the same sharing decisions —
    a prefix shared on rank 0 is shared on every rank.  Sharing telemetry
    delegates to rank 0.
    """

    def __init__(self, shards: Sequence[RankShard], n_blocks: int, block_tokens: int) -> None:
        self.pools: List[PagedKVStore] = [
            PagedKVStore(
                shard.config,
                n_blocks=n_blocks,
                block_tokens=block_tokens,
                kv_heads=shard.n_kv_heads,
            )
            for shard in shards
        ]

    def acquire_sequence(self, tokens=None, namespace=None) -> ShardedSequenceCache:
        caches = [
            pool.acquire_sequence(tokens, namespace=namespace) for pool in self.pools
        ]
        lengths = {cache.seq_len for cache in caches}
        if len(lengths) != 1:
            raise ParallelError(
                f"rank paged stores diverged: shared prefix lengths {sorted(lengths)}"
            )
        return ShardedSequenceCache(caches)

    # -- sharing telemetry (rank 0; identical on every rank) ---------------
    @property
    def prefix_lookups(self) -> int:
        return self.pools[0].prefix_lookups

    @property
    def prefix_hits(self) -> int:
        return self.pools[0].prefix_hits

    @property
    def shared_tokens(self) -> int:
        return self.pools[0].shared_tokens

    @property
    def cow_forks(self) -> int:
        return self.pools[0].cow_forks

    @property
    def evictions(self) -> int:
        return self.pools[0].evictions


class ShardedLlama:
    """Tensor-parallel execution of a Llama model on thread ranks."""

    def __init__(self, model, world_size: int) -> None:
        self.config = model.config
        self.mesh = DeviceMesh(world_size)
        self.world_size = int(world_size)
        self.shards = shard_model(model, self.mesh)
        self.group = LocalGroup(world_size)
        self.executors = [
            RankExecutor(shard, self.group, shard.rank) for shard in self.shards
        ]
        self._pool = ThreadPoolExecutor(
            max_workers=world_size, thread_name_prefix="tp-rank"
        )
        self.padded_tokens = 0   # total padded tokens across forward calls
        self.forward_calls = 0

    # -- model facade ------------------------------------------------------
    def eval(self) -> "ShardedLlama":
        return self

    def close(self) -> None:
        self._pool.shutdown(wait=False)

    def _run(self, fn) -> List[object]:
        """Run ``fn(rank)`` on every rank in lockstep; propagate failures.

        On any rank's exception the group barrier is aborted so peers
        blocked in a collective fail fast; the first *causal* exception
        (not the secondary broken-barrier ones) is re-raised.
        """
        futures = [self._pool.submit(self._guard, fn, rank) for rank in range(self.world_size)]
        results: List[object] = []
        causal: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except ParallelError as exc:
                results.append(None)
                if causal is None and "aborted" not in str(exc):
                    causal = exc
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                results.append(None)
                if causal is None:
                    causal = exc
        if causal is not None:
            self.group.reset()
            raise causal
        return results

    def _guard(self, fn, rank: int):
        try:
            return fn(rank)
        except BaseException:
            self.group.abort()
            raise

    def forward(self, tokens: np.ndarray, pad_mask: Optional[np.ndarray] = None) -> Tensor:
        tokens = np.asarray(tokens)
        self._account(tokens.shape[0] * tokens.shape[1])
        results = self._run(
            lambda rank: self.executors[rank].forward(tokens, pad_mask=pad_mask)
        )
        return results[0]

    def __call__(self, tokens: np.ndarray, pad_mask: Optional[np.ndarray] = None) -> Tensor:
        return self.forward(tokens, pad_mask=pad_mask)

    def forward_ragged(
        self,
        tokens: np.ndarray,
        caches: Sequence[ShardedSequenceCache],
        new_lengths,
    ) -> Tensor:
        tokens = np.asarray(tokens)
        lengths = np.asarray(new_lengths, dtype=np.int64)
        self._account(tokens.shape[0] * tokens.shape[1])
        results = self._run(
            lambda rank: self.executors[rank].forward_ragged(
                tokens, [cache.rank_caches[rank] for cache in caches], lengths
            )
        )
        return results[0]

    def forward_cached(self, tokens: np.ndarray, cache: ShardedSequenceCache) -> Tensor:
        """Forward over new ``tokens`` only, extending ``cache`` in place.

        With :meth:`make_cache` this completes the cached-decoding surface
        the runtime :class:`~repro.runtime.decode.DecodeSession` drives, so
        greedy generation runs tensor-parallel without code changes.
        """
        tokens = np.asarray(tokens)
        self._account(tokens.shape[0] * tokens.shape[1])
        results = self._run(
            lambda rank: self.executors[rank].forward_cached(
                tokens, cache.rank_caches[rank]
            )
        )
        return results[0]

    # -- serving hooks -----------------------------------------------------
    def make_kv_pool(
        self, n_blocks: int, block_tokens: int, paged: bool = False
    ) -> ShardedKVPool:
        """Per-rank KV pools; ``paged`` selects the prefix-sharing store so
        TP engines share prefixes exactly like single-rank ones."""
        cls = ShardedPagedStore if paged else ShardedKVPool
        return cls(self.shards, n_blocks=n_blocks, block_tokens=block_tokens)

    def make_cache(self) -> ShardedSequenceCache:
        """A growable (non-pooled) per-sequence cache, one slice per rank."""
        from repro.nn.kv_cache import ModelKVCache

        return ShardedSequenceCache(
            [ModelKVCache(self.config.n_layers) for _ in range(self.world_size)]
        )

    # -- communication accounting -----------------------------------------
    def _account(self, padded: int) -> None:
        self.padded_tokens += int(padded)
        self.forward_calls += 1

    def comm_stats(self) -> CommStats:
        return self.group.stats

    def comm_projection(self) -> CommProjection:
        """Analytic traffic for the forward calls issued so far — must
        match :meth:`comm_stats` byte for byte."""
        return analytic_comm(
            self.config, self.padded_tokens, self.world_size, self.forward_calls
        )
