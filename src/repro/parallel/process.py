"""Spawned-process tensor-parallel backend over POSIX shared memory.

Each rank is a real OS process (``multiprocessing`` spawn start method, so
no state leaks through fork) running the same :class:`RankExecutor` as the
threaded backend, but its collectives move payloads through
``multiprocessing.shared_memory`` segments instead of a shared heap:

    1. every rank writes its contribution into its own per-call segment
       (a small shape header + float32 payload) and hits the barrier;
    2. every rank maps all peers' segments and combines them *itself* in
       fixed rank order — identical code on identical bytes, so all ranks
       hold bit-identical results without a designated root;
    3. a second barrier, then each rank unlinks its own segment.

The parent process never touches activation data; it only drives workers
over command pipes (forward / ragged-forward / free / stats / close).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ParallelError
from repro.parallel.collectives import (
    CommStats,
    fixed_order_sum,
    gather_wire_bytes,
    reduce_wire_bytes,
)
from repro.parallel.mesh import DeviceMesh
from repro.parallel.sharding import RankShard, shard_model
from repro.tensor.tensor import Tensor

_HEADER_SLOTS = 8  # int64 slots: ndim + up to 7 dims
_HEADER_BYTES = _HEADER_SLOTS * 8

# P2P segments carry a state word ahead of the shape header:
#   0 = sender still writing, 1 = ready, 2 = consumed (sender may unlink).
_P2P_SLOTS = 1 + _HEADER_SLOTS
_P2P_BYTES = _P2P_SLOTS * 8
_P2P_POLL_S = 0.0002
_P2P_TIMEOUT_S = 30.0


def _attach(name: str) -> shared_memory.SharedMemory:
    """Map a peer's segment without adopting cleanup responsibility.

    On Python >= 3.13 ``track=False`` skips resource-tracker registration.
    Earlier versions register the attachment, which is harmless here:
    spawned ranks share the parent's tracker process, so the owner's
    ``unlink()`` removes the single tracked entry for everyone.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        return shared_memory.SharedMemory(name=name)


class ProcessGroup:
    """Shared-memory collectives for one spawned rank.

    Constructed *inside* each worker around a shared
    ``multiprocessing.Barrier``.  Ranks call collectives in lockstep (the
    executor's schedule is deterministic), so a per-rank call counter
    yields matching segment names without any coordination.
    """

    def __init__(self, rank: int, world_size: int, barrier, session: str) -> None:
        self.rank = int(rank)
        self.world_size = int(world_size)
        self._barrier = barrier
        self._session = session
        self._call = 0
        self.stats = CommStats()
        # Point-to-point state: per-peer sequence counters kept in lockstep
        # by the deterministic schedule (the same trick as ``_call``), plus
        # the sent segments awaiting the receiver's consumed flag.
        self._p2p_out: Dict[int, int] = {}
        self._p2p_in: Dict[int, int] = {}
        self._p2p_pending: List[shared_memory.SharedMemory] = []

    def _name(self, call: int, rank: int) -> str:
        return f"{self._session}c{call}r{rank}"

    def _publish(self, call: int, array: np.ndarray) -> shared_memory.SharedMemory:
        array = np.ascontiguousarray(array, dtype=np.float32)
        segment = shared_memory.SharedMemory(
            name=self._name(call, self.rank),
            create=True,
            size=_HEADER_BYTES + max(array.nbytes, 1),
        )
        header = np.frombuffer(segment.buf, dtype=np.int64, count=_HEADER_SLOTS)
        header[0] = array.ndim
        header[1 : 1 + array.ndim] = array.shape
        del header  # views must die before the segment can close
        if array.size:
            flat = np.frombuffer(
                segment.buf, dtype=np.float32, count=array.size, offset=_HEADER_BYTES
            )
            flat[:] = array.ravel()
            del flat
        return segment

    def _read_peer(self, call: int, rank: int) -> np.ndarray:
        segment = _attach(self._name(call, rank))
        try:
            header = np.frombuffer(segment.buf, dtype=np.int64, count=_HEADER_SLOTS)
            shape = tuple(int(d) for d in header[1 : 1 + int(header[0])])
            del header
            size = int(np.prod(shape, dtype=np.int64)) if shape else 1
            flat = np.frombuffer(
                segment.buf, dtype=np.float32, count=size, offset=_HEADER_BYTES
            )
            data = flat.reshape(shape).copy()
            del flat  # views must die before the segment can close
            return data
        finally:
            segment.close()

    def _exchange(self, array: np.ndarray) -> List[np.ndarray]:
        """One publish/map round; returns all contributions in rank order."""
        self._call += 1
        call = self._call
        own = self._publish(call, array)
        self._barrier.wait()
        parts: List[np.ndarray] = []
        for rank in range(self.world_size):
            if rank == self.rank:
                parts.append(np.ascontiguousarray(array, dtype=np.float32))
            else:
                parts.append(self._read_peer(call, rank))
        self._barrier.wait()
        own.close()
        own.unlink()
        return parts

    # -- collectives -------------------------------------------------------
    def barrier(self, rank: int) -> None:
        if self.world_size > 1:
            self._barrier.wait()

    def all_gather(self, rank: int, array: np.ndarray, axis: int = -1) -> np.ndarray:
        if self.world_size == 1:
            self.stats.record(array.nbytes, 0)
            return array
        started = time.perf_counter()
        parts = self._exchange(array)
        result = np.concatenate(parts, axis=axis)
        self.stats.record(
            result.nbytes,
            gather_wire_bytes(result.nbytes, self.world_size),
            time.perf_counter() - started,
        )
        return result

    def all_reduce(self, rank: int, array: np.ndarray) -> np.ndarray:
        if self.world_size == 1:
            self.stats.record(array.nbytes, 0)
            return array
        started = time.perf_counter()
        parts = self._exchange(array)
        result = fixed_order_sum(parts)
        self.stats.record(
            result.nbytes,
            reduce_wire_bytes(result.nbytes, self.world_size),
            time.perf_counter() - started,
        )
        return result

    def broadcast(self, rank: int, array: Optional[np.ndarray], root: int = 0) -> np.ndarray:
        if self.world_size == 1:
            if array is None:
                raise ParallelError("broadcast root must supply an array")
            self.stats.record(array.nbytes, 0)
            return array
        contribution = array if rank == root else np.zeros((1,), dtype=np.float32)
        parts = self._exchange(np.asarray(contribution, dtype=np.float32))
        result = parts[root]
        if rank == 0:
            self.stats.record(
                result.nbytes, (self.world_size - 1) * result.nbytes
            )
        return result

    # -- point-to-point (pipeline stage boundaries; forward only) ----------
    def _p2p_name(self, src: int, dst: int, seq: int) -> str:
        return f"{self._session}p{src}t{dst}n{seq}"

    def _check_peer(self, peer: int, verb: str) -> None:
        if not 0 <= peer < self.world_size:
            raise ParallelError(
                f"cannot {verb} rank {peer} in a {self.world_size}-rank group"
            )
        if peer == self.rank:
            raise ParallelError(f"rank {self.rank} cannot {verb} itself")

    def send(self, rank: int, dst: int, array: np.ndarray) -> None:
        """Ship ``array`` to ``dst`` through a named segment.

        Non-blocking: the segment is parked on a pending list and unlinked
        once the receiver flips its consumed flag (swept lazily on later
        sends, or forced by :meth:`flush_p2p`), so send/recv pairs issued
        in any order across ranks cannot deadlock.
        """
        self._check_peer(dst, "send to")
        seq = self._p2p_out.get(dst, 0) + 1
        self._p2p_out[dst] = seq
        array = np.ascontiguousarray(array, dtype=np.float32)
        segment = shared_memory.SharedMemory(
            name=self._p2p_name(self.rank, dst, seq),
            create=True,
            size=_P2P_BYTES + max(array.nbytes, 1),
        )
        header = np.frombuffer(segment.buf, dtype=np.int64, count=_P2P_SLOTS)
        header[1] = array.ndim
        header[2 : 2 + array.ndim] = array.shape
        if array.size:
            flat = np.frombuffer(
                segment.buf, dtype=np.float32, count=array.size, offset=_P2P_BYTES
            )
            flat[:] = array.ravel()
            del flat
        header[0] = 1  # ready — flipped after the payload is in place
        del header  # views must die before the segment can close
        self._p2p_pending.append(segment)
        self._sweep_p2p(wait=False)
        # One hop: the payload crosses the wire once.
        self.stats.record(array.nbytes, array.nbytes, channel="p2p")

    def recv(self, rank: int, src: int, timeout: float = _P2P_TIMEOUT_S) -> np.ndarray:
        """Blocking receive of the next array sent by ``src``."""
        self._check_peer(src, "receive from")
        seq = self._p2p_in.get(src, 0) + 1
        self._p2p_in[src] = seq
        name = self._p2p_name(src, self.rank, seq)
        deadline = time.monotonic() + timeout
        while True:
            try:
                segment = _attach(name)
                break
            except FileNotFoundError:
                if time.monotonic() > deadline:
                    raise ParallelError(
                        f"p2p recv from rank {src} timed out waiting for {name}"
                    )
                time.sleep(_P2P_POLL_S)
        data: Optional[np.ndarray] = None
        try:
            header = np.frombuffer(segment.buf, dtype=np.int64, count=_P2P_SLOTS)
            try:
                while header[0] != 1:
                    if time.monotonic() > deadline:
                        raise ParallelError(
                            f"p2p recv from rank {src}: segment {name} never ready"
                        )
                    time.sleep(_P2P_POLL_S)
                shape = tuple(int(d) for d in header[2 : 2 + int(header[1])])
                size = int(np.prod(shape, dtype=np.int64)) if shape else 1
                flat = np.frombuffer(
                    segment.buf, dtype=np.float32, count=size, offset=_P2P_BYTES
                )
                data = flat.reshape(shape).copy()
                del flat
                header[0] = 2  # consumed — the sender may unlink
            finally:
                del header  # views must die before the segment can close
        finally:
            segment.close()
        return data

    def _sweep_p2p(self, wait: bool, timeout: float = _P2P_TIMEOUT_S) -> None:
        deadline = time.monotonic() + timeout
        remaining: List[shared_memory.SharedMemory] = []
        for segment in self._p2p_pending:
            header = np.frombuffer(segment.buf, dtype=np.int64, count=1)
            try:
                while wait and header[0] != 2:
                    if time.monotonic() > deadline:
                        raise ParallelError(
                            f"p2p segment {segment.name} never consumed"
                        )
                    time.sleep(_P2P_POLL_S)
                consumed = header[0] == 2
            finally:
                del header
            if consumed:
                segment.close()
                segment.unlink()
            else:
                remaining.append(segment)
        self._p2p_pending = remaining

    def flush_p2p(self, timeout: float = _P2P_TIMEOUT_S) -> None:
        """Block until every sent segment has been consumed and unlinked."""
        self._sweep_p2p(wait=True, timeout=timeout)


def _worker_main(rank: int, shard: RankShard, barrier, session: str, conn) -> None:
    """Worker loop: build an executor, serve commands until ``close``."""
    from repro.nn.kv_cache import ModelKVCache
    from repro.parallel.executor import RankExecutor

    group = ProcessGroup(rank, shard.world_size, barrier, session)
    executor = RankExecutor(shard, group, rank)
    caches: Dict[int, ModelKVCache] = {}
    while True:
        command = conn.recv()
        kind = command[0]
        try:
            if kind == "close":
                conn.send(("ok", None))
                return
            if kind == "forward":
                _, tokens, pad_mask = command
                logits = executor.forward(tokens, pad_mask=pad_mask)
                conn.send(("ok", logits.data if rank == 0 else None))
            elif kind == "ragged":
                _, tokens, seq_ids, lengths = command
                for seq_id in seq_ids:
                    if seq_id not in caches:
                        caches[seq_id] = ModelKVCache(shard.config.n_layers)
                logits = executor.forward_ragged(
                    tokens, [caches[seq_id] for seq_id in seq_ids], lengths
                )
                conn.send(("ok", logits.data if rank == 0 else None))
            elif kind == "free":
                _, seq_ids = command
                for seq_id in seq_ids:
                    caches.pop(seq_id, None)
                conn.send(("ok", None))
            elif kind == "p2pring":
                # Each rank ships (base + rank) one hop around the ring —
                # the cross-process exercise of send/recv and the ledger's
                # p2p channel.
                _, base = command
                payload = np.asarray(base, dtype=np.float32) + np.float32(rank)
                if group.world_size == 1:
                    conn.send(("ok", payload))
                else:
                    group.send(rank, (rank + 1) % group.world_size, payload)
                    received = group.recv(
                        rank, (rank - 1) % group.world_size
                    )
                    group.flush_p2p()
                    conn.send(("ok", received))
            elif kind == "stats":
                conn.send(("ok", group.stats.snapshot()))
            else:
                conn.send(("error", f"unknown command {kind!r}"))
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
            return


class ProcessShardedLlama:
    """Parent-side handle driving one spawned worker per rank.

    Runs the same :class:`RankExecutor` numerics as the threaded
    :class:`~repro.parallel.local.ShardedLlama`, but across real process
    boundaries — the backend that exercises serialization, the spawn start
    method, and shared-memory data movement.  Use as a context manager (or
    call :meth:`close`) to shut workers down.
    """

    _SESSIONS = 0

    def __init__(self, model, world_size: int) -> None:
        self.config = model.config
        self.world_size = int(world_size)
        shards = shard_model(model, DeviceMesh(world_size))
        context = mp.get_context("spawn")
        ProcessShardedLlama._SESSIONS += 1
        session = f"repro{os.getpid()}s{ProcessShardedLlama._SESSIONS}"
        # Keep the barrier referenced: Process.start() drops its args, and
        # losing the last reference would sem_unlink the named semaphore
        # before slow-booting spawned children rebuild it.
        self._barrier = context.Barrier(world_size) if world_size > 1 else None
        barrier = self._barrier
        self._conns = []
        self._procs = []
        self._next_seq = 0
        self._closed = False
        for shard in shards:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(shard.rank, shard, barrier, session, child_conn),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(process)

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "ProcessShardedLlama":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            try:
                if conn.poll(5.0):
                    conn.recv()
            except (EOFError, OSError):
                pass
        for process in self._procs:
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()

    def eval(self) -> "ProcessShardedLlama":
        return self

    # -- command fan-out ---------------------------------------------------
    def _command(self, command: tuple):
        if self._closed:
            raise ParallelError("backend already closed")
        for conn in self._conns:
            conn.send(command)
        replies = []
        for rank, conn in enumerate(self._conns):
            status, value = conn.recv()
            if status != "ok":
                self.close()
                raise ParallelError(f"rank {rank} failed: {value}")
            replies.append(value)
        return replies

    # -- model facade ------------------------------------------------------
    def forward(self, tokens: np.ndarray, pad_mask: Optional[np.ndarray] = None) -> Tensor:
        tokens = np.asarray(tokens)
        replies = self._command(("forward", tokens, pad_mask))
        return Tensor(replies[0])

    def __call__(self, tokens: np.ndarray, pad_mask: Optional[np.ndarray] = None) -> Tensor:
        return self.forward(tokens, pad_mask=pad_mask)

    def make_cache(self) -> "ProcessSequenceCache":
        seq_id = self._next_seq
        self._next_seq += 1
        return ProcessSequenceCache(self, seq_id)

    def forward_ragged(
        self,
        tokens: np.ndarray,
        caches: Sequence["ProcessSequenceCache"],
        new_lengths,
    ) -> Tensor:
        tokens = np.asarray(tokens)
        lengths = np.asarray(new_lengths, dtype=np.int64)
        seq_ids = [cache.seq_id for cache in caches]
        replies = self._command(("ragged", tokens, seq_ids, lengths))
        for cache, extra in zip(caches, lengths):
            cache._len += int(extra)
        return Tensor(replies[0])

    def p2p_ring(self, base: np.ndarray) -> List[np.ndarray]:
        """Drive one send/recv ring pass; returns each rank's received
        array (rank ``r`` gets ``base + (r - 1) % world_size``)."""
        return self._command(("p2pring", np.asarray(base, dtype=np.float32)))

    def comm_stats(self) -> CommStats:
        """Rank 0's ledger (wire totals already count the whole group)."""
        snapshot = self._command(("stats",))[0]
        return CommStats(**snapshot)


class ProcessSequenceCache:
    """Parent-side mirror of one sequence's worker-resident KV caches."""

    def __init__(self, backend: ProcessShardedLlama, seq_id: int) -> None:
        self._backend = backend
        self.seq_id = seq_id
        self._len = 0

    @property
    def seq_len(self) -> int:
        return self._len

    def free(self) -> None:
        self._backend._command(("free", [self.seq_id]))
