"""2-D parallel execution backend (pipeline x tensor, bit-exact).

Public surface:

- :class:`DeviceMesh` / :func:`shard_model` — partition a Llama model over
  a ``(pp, tp)`` grid: contiguous layer runs per stage, Megatron-style
  column shards along the canonical block grids within each stage.
- :class:`LocalGroup` / :class:`ProcessGroup` — interchangeable collective
  backends (threads + shared heap, spawned processes + shared memory)
  with a fixed reduction order, plus point-to-point ``send``/``recv`` for
  stage boundaries.
- :class:`ShardedLlama` — thread-backed grid facade (serving-capable).
- :class:`ProcessShardedLlama` — process-backed model facade.
- :func:`analytic_comm` / :func:`analytic_p2p` — exact projections of the
  executor's all-gather and pipeline P2P traffic, validated
  byte-for-byte against the measured :class:`CommStats` channels.
"""

from repro.parallel.accounting import (
    CommProjection,
    analytic_comm,
    analytic_p2p,
    gathered_width,
)
from repro.parallel.collectives import COMM_CHANNELS, CommStats, LocalGroup
from repro.parallel.executor import RankExecutor
from repro.parallel.mesh import DeviceMesh, validate_mesh
from repro.parallel.local import (
    ShardedKVPool,
    ShardedLlama,
    ShardedPagedStore,
    ShardedSequenceCache,
)
from repro.parallel.process import ProcessGroup, ProcessShardedLlama
from repro.parallel.sharding import RankShard, shard_model
from repro.runtime.program import StageProgram, partition_program

__all__ = [
    "COMM_CHANNELS",
    "CommProjection",
    "CommStats",
    "DeviceMesh",
    "LocalGroup",
    "ProcessGroup",
    "ProcessShardedLlama",
    "RankExecutor",
    "RankShard",
    "ShardedKVPool",
    "ShardedLlama",
    "ShardedPagedStore",
    "ShardedSequenceCache",
    "StageProgram",
    "analytic_comm",
    "analytic_p2p",
    "gathered_width",
    "partition_program",
    "shard_model",
    "validate_mesh",
]
