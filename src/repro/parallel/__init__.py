"""Tensor-parallel execution backend (multi-rank, bit-exact).

Public surface:

- :class:`DeviceMesh` / :func:`shard_model` — partition a Llama model
  Megatron-style along the canonical block grids.
- :class:`LocalGroup` / :class:`ProcessGroup` — interchangeable collective
  backends (threads + shared heap, spawned processes + shared memory)
  with a fixed reduction order.
- :class:`ShardedLlama` — thread-backed model facade (serving-capable).
- :class:`ProcessShardedLlama` — process-backed model facade.
- :func:`analytic_comm` — exact projection of the executor's collective
  traffic, validated byte-for-byte against measured :class:`CommStats`.
"""

from repro.parallel.accounting import CommProjection, analytic_comm, gathered_width
from repro.parallel.collectives import CommStats, LocalGroup
from repro.parallel.executor import RankExecutor
from repro.parallel.mesh import DeviceMesh, validate_mesh
from repro.parallel.local import (
    ShardedKVPool,
    ShardedLlama,
    ShardedPagedStore,
    ShardedSequenceCache,
)
from repro.parallel.process import ProcessGroup, ProcessShardedLlama
from repro.parallel.sharding import RankShard, shard_model

__all__ = [
    "CommProjection",
    "CommStats",
    "DeviceMesh",
    "LocalGroup",
    "ProcessGroup",
    "ProcessShardedLlama",
    "RankExecutor",
    "RankShard",
    "ShardedKVPool",
    "ShardedLlama",
    "ShardedPagedStore",
    "ShardedSequenceCache",
    "analytic_comm",
    "gathered_width",
    "shard_model",
    "validate_mesh",
]
