"""Partition a canonical LlamaModel into per-rank weight shards.

Every shard is a plain dataclass of NumPy arrays — picklable, so the same
:class:`RankShard` drives both the threaded :class:`~repro.parallel.local.
ShardedLlama` backend and the spawned-process backend.

Megatron-style layout over the canonical block grids:

- ``w_q``: column blocks per query head; a rank takes its head run.
- ``w_k`` / ``w_v``: column blocks per KV head; a rank takes the GQA
  *cover* of its query heads (overlapping heads replicate across ranks).
- ``w_so`` / ``w_g`` / ``w_u`` / ``w_d`` / LM head: the canonical
  ``n_heads``-block grid over the output width; a rank takes a contiguous
  block run.  (These are output-column shards of the canonical blocked
  projection, which is what makes the sharded result bit-identical — a
  Megatron row-parallel split of W_SO/W_D would change the reduction
  order of the inner products and therefore the low-order bits.)
- Decomposed tensors (:class:`~repro.nn.factorized.FactorizedLinear`):
  U1 and the core have no contraction-free axis wider than the rank, so
  they replicate; only U2's output columns shard.
- Norm weights, RoPE tables, and the embedding table replicate.  The tied
  LM head keeps the *full* embedding so each rank can slice
  ``embed.T[:, a:b]`` exactly the way the canonical forward does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ParallelError
from repro.models.config import ModelConfig
from repro.nn import (
    FactorizedLinear,
    Linear,
    QuantizedFactorizedLinear,
    QuantizedLinear,
)
from repro.nn.linear import block_edges
from repro.parallel.mesh import DeviceMesh, Span, validate_mesh

Edges = List[Span]


def _localize(edges: Edges, span: Span) -> Tuple[int, int, Edges]:
    """Global column range + rank-local edges for grid blocks ``span``."""
    start_block, stop_block = span
    lo = edges[start_block][0]
    hi = edges[stop_block - 1][1]
    local = [(a - lo, b - lo) for a, b in edges[start_block:stop_block]]
    return lo, hi, local


@dataclass(frozen=True)
class ProjectionShard:
    """One rank's columns of a (possibly factorized/quantized) projection.

    ``weight`` holds the rank's contiguous output-column chunk for a dense
    layer; for a factorized layer ``u1``/``core`` are the replicated
    low-rank prefix and ``weight`` is the U2 column chunk.  ``edges`` are
    the canonical block boundaries *relative to the chunk* — the reduction
    layout the rank must reproduce.

    Quantized-storage projections keep ``weight`` None and carry int8
    grids instead: ``grid`` is the dense (or U2) column chunk with its
    matching per-column fp32 ``scales`` slice — per-output-column scales
    make every chunk self-contained — and a quantized factor chain
    replicates ``u1_grid``/``core_grid`` + scales the same way the fp32
    chain replicates U1/core.
    """

    weight: Optional[np.ndarray] = None
    edges: Edges = field(default_factory=list)
    bias: Optional[np.ndarray] = None
    u1: Optional[np.ndarray] = None
    core: Optional[np.ndarray] = None
    grid: Optional[np.ndarray] = None
    scales: Optional[np.ndarray] = None
    u1_grid: Optional[np.ndarray] = None
    u1_scales: Optional[np.ndarray] = None
    core_grid: Optional[np.ndarray] = None
    core_scales: Optional[np.ndarray] = None
    bits: Optional[int] = None

    @property
    def factorized(self) -> bool:
        return self.u1 is not None

    @property
    def quantized(self) -> bool:
        return self.grid is not None

    @property
    def out_width(self) -> int:
        return self.weight.shape[1] if self.weight is not None else self.grid.shape[1]


def _chunk(weight: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """A C-contiguous copy of columns ``[lo, hi)`` — the basic-slice copy
    whose GEMM results match the canonical full-width view exactly."""
    return np.ascontiguousarray(weight[:, lo:hi])


def shard_projection(module, edges: Edges, span: Span) -> ProjectionShard:
    """Shard a Linear/FactorizedLinear or quantized twin over grid ``span``."""
    lo, hi, local = _localize(edges, span)
    bias = None
    if module.bias is not None:
        bias = np.ascontiguousarray(module.bias.data[lo:hi])
    if isinstance(module, QuantizedFactorizedLinear):
        return ProjectionShard(
            edges=local,
            bias=bias,
            grid=_chunk(module.u2_grid, lo, hi),
            scales=module.u2_scales[lo:hi].copy(),
            u1_grid=module.u1_grid.copy(),
            u1_scales=module.u1_scales.copy(),
            core_grid=module.core_grid.copy(),
            core_scales=module.core_scales.copy(),
            bits=module.bits,
        )
    if isinstance(module, QuantizedLinear):
        return ProjectionShard(
            edges=local,
            bias=bias,
            grid=_chunk(module.grid, lo, hi),
            scales=module.scales[lo:hi].copy(),
            bits=module.bits,
        )
    if isinstance(module, FactorizedLinear):
        return ProjectionShard(
            weight=_chunk(module.u2.data, lo, hi),
            edges=local,
            bias=bias,
            u1=module.u1.data.copy(),
            core=module.core.data.copy(),
        )
    if isinstance(module, Linear):
        return ProjectionShard(
            weight=_chunk(module.weight.data, lo, hi), edges=local, bias=bias
        )
    raise ParallelError(f"cannot shard module of type {type(module).__name__}")


@dataclass(frozen=True)
class LayerShard:
    """One decoder layer's weights as seen by one rank."""

    attn_norm: np.ndarray
    w_q: ProjectionShard
    w_k: ProjectionShard
    w_v: ProjectionShard
    w_so: ProjectionShard
    mlp_norm: np.ndarray
    w_g: ProjectionShard
    w_u: ProjectionShard
    w_d: ProjectionShard


@dataclass(frozen=True)
class RankShard:
    """Everything one rank needs to run its slice of the model.

    On a 2-D mesh a shard is one grid cell: ``rank`` is the *tensor* rank
    within its stage's TP group (``world_size`` is that group's size, i.e.
    ``tp``), and ``stage`` / ``n_stages`` / ``layer_lo`` / ``layer_hi``
    place the cell on the pipeline axis.  ``layers`` holds only the
    stage's own decoder layers; the embedding table is kept where it is
    used (stage 0 for the prologue, the last stage when the head is tied)
    and the output-head fields are populated on the last stage only.
    """

    config: ModelConfig
    rank: int
    world_size: int
    q_span: Span           # query heads [start, stop)
    kv_span: Span          # covering KV heads [start, stop)
    embed: Optional[np.ndarray]  # replicated (vocab, dim) table, where used
    final_norm: Optional[np.ndarray]
    lm_head: Optional[ProjectionShard]  # None when the head is tied
    vocab_lo: int          # global logit columns this rank produces
    vocab_hi: int
    vocab_edges: Edges     # rank's blocks in GLOBAL coordinates: the tied
                           # head slices the full ``embed.T`` with these,
                           # exactly as the canonical forward does
    layers: List[LayerShard] = field(default_factory=list)
    stage: int = 0
    n_stages: int = 1
    layer_lo: int = 0
    layer_hi: int = -1     # set by shard_model; -1 means len(layers)

    @property
    def n_q_heads(self) -> int:
        return self.q_span[1] - self.q_span[0]

    @property
    def n_kv_heads(self) -> int:
        return self.kv_span[1] - self.kv_span[0]

    @property
    def has_embedding(self) -> bool:
        """Does this stage run the token-embedding prologue?"""
        return self.stage == 0

    @property
    def has_head(self) -> bool:
        """Does this stage run the final norm + LM head epilogue?"""
        return self.stage == self.n_stages - 1

    @property
    def n_stage_layers(self) -> int:
        return len(self.layers)

    @property
    def global_rank(self) -> int:
        """Flat stage-major rank on the (pp, tp) grid."""
        return self.stage * self.world_size + self.rank


def shard_model(
    model, mesh: DeviceMesh, cut_points: Optional[Tuple[int, ...]] = None
) -> List[RankShard]:
    """Split a :class:`~repro.models.llama.LlamaModel` into per-rank shards.

    The model itself is untouched (weights are copied), so the canonical
    reference and the sharded execution can run side by side.  The result
    is flat in stage-major grid order (``rank = stage * tp + tp_rank``);
    on a 1-D mesh that is the historical rank list.  ``cut_points``
    overrides the pipeline's interior layer boundaries (see
    :meth:`DeviceMesh.stage_spans`).
    """
    config: ModelConfig = model.config
    validate_mesh(config, mesh)
    group = config.n_heads // config.kv_heads

    q_edges = block_edges(config.dim, config.n_heads)
    kv_edges = block_edges(config.kv_heads * config.head_dim, config.kv_heads)
    out_edges = block_edges(config.dim, config.n_heads)
    hidden_edges = block_edges(config.mlp_hidden, config.n_heads)
    vocab_edges = block_edges(config.vocab_size, config.n_heads)

    out_spans = mesh.block_spans(len(out_edges))
    hidden_spans = mesh.block_spans(len(hidden_edges))
    vocab_spans = mesh.block_spans(len(vocab_edges))
    head_spans = mesh.block_spans(config.n_heads)
    stage_spans = mesh.stage_spans(config.n_layers, cut_points)

    shards: List[RankShard] = []
    for stage, (layer_lo, layer_hi) in enumerate(stage_spans):
        last_stage = stage == mesh.pp - 1
        # The embedding table lives where it is used: the prologue (stage
        # 0) and, when the head is tied, the epilogue (last stage).
        keeps_embed = stage == 0 or (last_stage and model.lm_head is None)
        for rank in range(mesh.tp):
            q_span = head_spans[rank]
            kv_span = DeviceMesh.kv_cover(q_span, group)
            layers: List[LayerShard] = []
            for block in list(model.blocks)[layer_lo:layer_hi]:
                layers.append(
                    LayerShard(
                        attn_norm=block.attn_norm.weight.data.copy(),
                        w_q=shard_projection(block.attn.w_q, q_edges, q_span),
                        w_k=shard_projection(block.attn.w_k, kv_edges, kv_span),
                        w_v=shard_projection(block.attn.w_v, kv_edges, kv_span),
                        w_so=shard_projection(block.attn.w_so, out_edges, out_spans[rank]),
                        mlp_norm=block.mlp_norm.weight.data.copy(),
                        w_g=shard_projection(block.mlp.w_g, hidden_edges, hidden_spans[rank]),
                        w_u=shard_projection(block.mlp.w_u, hidden_edges, hidden_spans[rank]),
                        w_d=shard_projection(block.mlp.w_d, out_edges, out_spans[rank]),
                    )
                )
            vocab_lo = vocab_hi = 0
            rank_vocab_edges: Edges = []
            lm_head = None
            if last_stage:
                vocab_lo, vocab_hi, _ = _localize(vocab_edges, vocab_spans[rank])
                start_block, stop_block = vocab_spans[rank]
                rank_vocab_edges = list(vocab_edges[start_block:stop_block])
                if model.lm_head is not None:
                    lm_head = shard_projection(
                        model.lm_head, vocab_edges, vocab_spans[rank]
                    )
            shards.append(
                RankShard(
                    config=config,
                    rank=rank,
                    world_size=mesh.tp,
                    q_span=q_span,
                    kv_span=kv_span,
                    embed=model.embed.weight.data.copy() if keeps_embed else None,
                    final_norm=(
                        model.final_norm.weight.data.copy() if last_stage else None
                    ),
                    lm_head=lm_head,
                    vocab_lo=vocab_lo,
                    vocab_hi=vocab_hi,
                    vocab_edges=rank_vocab_edges,
                    layers=layers,
                    stage=stage,
                    n_stages=mesh.pp,
                    layer_lo=layer_lo,
                    layer_hi=layer_hi,
                )
            )
    return shards

