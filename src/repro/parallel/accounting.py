"""Analytic communication model for the sharded executor.

The executor's collective schedule is fixed by construction — per layer it
gathers the merged attention heads (width ``dim``), the attention output
(``dim``), the MLP hidden activation (``mlp_hidden``), and the MLP output
(``dim``); after the last layer it gathers the logits (``vocab_size``) —
so its traffic can be predicted exactly from the padded token count:

    calls    = n_forward_calls * (4 * n_layers + 1)
    payload  = 4 bytes * padded_tokens * (n_layers * (3*dim + mlp_hidden)
                                          + vocab_size)
    wire     = (P - 1) * payload

Gather widths are invariant under decomposition (a factorized projection
changes the GEMMs, not the gathered activations), and the wire identity
``(P-1) * payload`` holds for arbitrarily uneven chunk splits, so the
measured :class:`~repro.parallel.collectives.CommStats` ledger must agree
with this projection byte for byte — the cross-check the serve benchmark
prints.  Projected latency reuses the hardware model's NVLink ring terms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hwmodel.device import GPUSpec
from repro.models.config import ModelConfig

BYTES_FP32 = 4  # the executor moves float32 activations


@dataclass(frozen=True)
class CommProjection:
    """Predicted collective traffic for a batch of forward passes."""

    world_size: int
    calls: int
    payload_bytes: int
    wire_bytes: int

    def latency_s(self, gpu: GPUSpec) -> float:
        """Ring-style projection: each rank sends/receives its share of the
        wire traffic at NVLink bandwidth, plus one launch per collective."""
        if self.world_size <= 1:
            return 0.0
        per_rank_bytes = self.wire_bytes / self.world_size
        return (
            per_rank_bytes / (gpu.nvlink_bandwidth_gbs * 1e9)
            + self.calls * gpu.kernel_overhead_s
        )

    def to_dict(self) -> dict:
        return {
            "world_size": self.world_size,
            "calls": self.calls,
            "payload_bytes": self.payload_bytes,
            "wire_bytes": self.wire_bytes,
        }


def gathered_width(config: ModelConfig) -> int:
    """Columns gathered per padded token over one full forward pass."""
    per_layer = 3 * config.dim + config.mlp_hidden
    return config.n_layers * per_layer + config.vocab_size


def analytic_comm(
    config: ModelConfig,
    padded_tokens: int,
    world_size: int,
    forward_calls: int = 1,
) -> CommProjection:
    """Exact projection of the executor's all-gather traffic.

    ``padded_tokens`` is the total ``batch_rows * max_row_len`` across the
    ``forward_calls`` forward passes (padded slots are gathered too — the
    executor moves rectangular tensors).
    """
    payload = BYTES_FP32 * padded_tokens * gathered_width(config)
    calls = forward_calls * (4 * config.n_layers + 1)
    return CommProjection(
        world_size=world_size,
        calls=calls,
        payload_bytes=payload,
        wire_bytes=(world_size - 1) * payload,
    )
