"""Analytic communication model for the sharded executor.

The executor's collective schedule is fixed by construction — per layer it
gathers the merged attention heads (width ``dim``), the attention output
(``dim``), the MLP hidden activation (``mlp_hidden``), and the MLP output
(``dim``); after the last layer it gathers the logits (``vocab_size``) —
so its traffic can be predicted exactly from the padded token count:

    calls    = microbatch_passes * 4 * n_layers + n_forward_calls
    payload  = 4 bytes * padded_tokens * (n_layers * (3*dim + mlp_hidden)
                                          + vocab_size)
    wire     = (P - 1) * payload

(an unchunked forward is one microbatch pass, recovering the historical
``n_forward_calls * (4 * n_layers + 1)``)

Gather widths are invariant under decomposition (a factorized projection
changes the GEMMs, not the gathered activations), and the wire identity
``(P-1) * payload`` holds for arbitrarily uneven chunk splits, so the
measured :class:`~repro.parallel.collectives.CommStats` ledger must agree
with this projection byte for byte — the cross-check the serve benchmark
prints.  Projected latency reuses the hardware model's NVLink ring terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hwmodel.device import GPUSpec
from repro.models.config import ModelConfig

BYTES_FP32 = 4  # the executor moves float32 activations


@dataclass(frozen=True)
class CommProjection:
    """Predicted collective traffic for a batch of forward passes."""

    world_size: int
    calls: int
    payload_bytes: int
    wire_bytes: int

    def latency_s(self, gpu: GPUSpec) -> float:
        """Ring-style projection: each rank sends/receives its share of the
        wire traffic at NVLink bandwidth, plus one launch per collective."""
        if self.world_size <= 1:
            return 0.0
        per_rank_bytes = self.wire_bytes / self.world_size
        return (
            per_rank_bytes / (gpu.nvlink_bandwidth_gbs * 1e9)
            + self.calls * gpu.kernel_overhead_s
        )

    def to_dict(self) -> dict:
        return {
            "world_size": self.world_size,
            "calls": self.calls,
            "payload_bytes": self.payload_bytes,
            "wire_bytes": self.wire_bytes,
        }


def gathered_width(config: ModelConfig) -> int:
    """Columns gathered per padded token over one full forward pass."""
    per_layer = 3 * config.dim + config.mlp_hidden
    return config.n_layers * per_layer + config.vocab_size


def analytic_comm(
    config: ModelConfig,
    padded_tokens: int,
    world_size: int,
    forward_calls: int = 1,
    microbatch_passes: Optional[int] = None,
) -> CommProjection:
    """Exact projection of the executor's all-gather traffic.

    ``padded_tokens`` is the total ``batch_rows * max_row_len`` across the
    ``forward_calls`` forward passes (padded slots are gathered too — the
    executor moves rectangular tensors).

    The payload identity survives pipelining unchanged: every padded token
    crosses every layer exactly once regardless of which stage owns the
    layer, so the summed gather payload depends only on the total token
    count.  Calls split into per-layer gathers — ``4 * n_layers`` per
    microbatch pass, distributed over stages as ``sum(4 * stage_layers)``
    — plus ONE logits gather per logical forward (a chunked pipeline
    defers the epilogue to a single full-batch head call).  Callers on a
    (pp, tp) grid pass ``world_size=tp`` (gathers run within a stage's TP
    group) and ``microbatch_passes``; unchunked callers omit it and the
    historical ``forward_calls * (4 * n_layers + 1)`` falls out.
    """
    passes = forward_calls if microbatch_passes is None else microbatch_passes
    payload = BYTES_FP32 * padded_tokens * gathered_width(config)
    calls = passes * 4 * config.n_layers + forward_calls
    return CommProjection(
        world_size=world_size,
        calls=calls,
        payload_bytes=payload,
        wire_bytes=(world_size - 1) * payload,
    )


def analytic_p2p(
    config: ModelConfig,
    padded_tokens: int,
    pp: int,
    tp: int,
    microbatch_passes: int = 1,
) -> CommProjection:
    """Exact projection of the pipeline's point-to-point traffic.

    At each of the ``pp - 1`` stage boundaries every TP rank ships the
    replicated (B, T, dim) hidden block of its microbatch to the same rank
    of the next stage — one hop, so wire == payload:

        calls    = microbatch_passes * (pp - 1) * tp
        payload  = 4 bytes * padded_tokens * dim * (pp - 1) * tp
        wire     = payload

    ``padded_tokens`` is the total across all microbatch passes, exactly
    as for :func:`analytic_comm`; a 1-stage pipe projects zero traffic.
    """
    hops = (pp - 1) * tp
    payload = BYTES_FP32 * padded_tokens * config.dim * hops
    return CommProjection(
        world_size=pp * tp,
        calls=microbatch_passes * hops,
        payload_bytes=payload,
        wire_bytes=payload,
    )
