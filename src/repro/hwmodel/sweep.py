"""Parameter sweeps over the hardware model: GPU SKUs and batch sizes.

Extends the paper's single-testbed study (4x A100) with the question a
deployment engineer asks next: do the decomposition savings transfer to
other GPUs and serving points?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.decomposition.config import DecompositionConfig
from repro.hwmodel.device import available_gpus
from repro.hwmodel.profiler import ServingConfig, compare_to_baseline, profile
from repro.models.config import ModelConfig


@dataclass(frozen=True)
class GPUSweepPoint:
    """Decomposition savings on one GPU SKU."""

    gpu: str
    per_gpu_batch: int
    speedup: float
    latency_saving: float
    energy_saving: float
    memory_saving: float
    baseline_latency_s: float


def _fit_batch(config: ModelConfig, serving: ServingConfig) -> ServingConfig:
    """Halve the per-GPU batch until the dense model fits the SKU."""
    from repro.errors import HardwareModelError

    current = serving
    while True:
        try:
            profile(config, current)
            return current
        except HardwareModelError:
            if current.per_gpu_batch <= 1:
                raise
            current = ServingConfig(
                gpu=current.gpu,
                n_gpus=current.n_gpus,
                seq_len=current.seq_len,
                per_gpu_batch=max(current.per_gpu_batch // 2, 1),
                parallelism=current.parallelism,
                host_overhead_fraction=current.host_overhead_fraction,
            )


def sweep_gpus(
    config: ModelConfig,
    decomposition: DecompositionConfig,
    gpus: Optional[Sequence[str]] = None,
    serving: ServingConfig = ServingConfig(),
) -> List[GPUSweepPoint]:
    """Evaluate one decomposition's savings across GPU SKUs.

    SKUs with less memory automatically fall back to smaller per-GPU
    batches (halving until the dense model fits).
    """
    if gpus is None:
        gpus = available_gpus()
    points: List[GPUSweepPoint] = []
    for gpu in gpus:
        gpu_serving = _fit_batch(
            config,
            ServingConfig(
                gpu=gpu,
                n_gpus=serving.n_gpus,
                seq_len=serving.seq_len,
                per_gpu_batch=serving.per_gpu_batch,
                parallelism=serving.parallelism,
                host_overhead_fraction=serving.host_overhead_fraction,
            ),
        )
        comparison = compare_to_baseline(config, decomposition, gpu_serving)
        points.append(
            GPUSweepPoint(
                gpu=gpu,
                per_gpu_batch=gpu_serving.per_gpu_batch,
                speedup=comparison["speedup"],
                latency_saving=comparison["latency_saving"],
                energy_saving=comparison["energy_saving"],
                memory_saving=comparison["memory_saving"],
                baseline_latency_s=comparison["baseline"].latency_s,
            )
        )
    return points


@dataclass(frozen=True)
class BatchSweepPoint:
    """Serving characteristics at one per-GPU batch size."""

    per_gpu_batch: int
    latency_s: float
    throughput_tokens_per_s: float
    memory_per_gpu_gb: float
    memory_bound_fraction: float


def sweep_batch_sizes(
    config: ModelConfig,
    batches: Sequence[int] = (1, 4, 16, 64, 256, 1024),
    serving: ServingConfig = ServingConfig(),
    decomposition: Optional[DecompositionConfig] = None,
) -> List[BatchSweepPoint]:
    """Throughput/latency/memory across batch sizes.

    Shows the roofline transition the paper's Section 2.2 describes: small
    batches are bandwidth-bound, large batches compute-bound.
    """
    points: List[BatchSweepPoint] = []
    for batch in batches:
        batch_serving = ServingConfig(
            gpu=serving.gpu,
            n_gpus=serving.n_gpus,
            seq_len=serving.seq_len,
            per_gpu_batch=int(batch),
            parallelism=serving.parallelism,
            host_overhead_fraction=serving.host_overhead_fraction,
        )
        result = profile(config, batch_serving, decomposition=decomposition)
        points.append(
            BatchSweepPoint(
                per_gpu_batch=int(batch),
                latency_s=result.latency_s,
                throughput_tokens_per_s=result.throughput_tokens_per_s,
                memory_per_gpu_gb=result.memory_per_gpu_gb,
                memory_bound_fraction=result.memory_bound_fraction,
            )
        )
    return points
