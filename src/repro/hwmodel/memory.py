"""GPU memory-footprint model.

Total per-GPU memory = sharded weights + KV cache + activation working set
+ framework overhead (CUDA context, allocator reserves).  The overhead term
is why the paper observes ~0.4 % memory reduction per 1 % parameter
reduction rather than a full 1 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.decomposition.config import DecompositionConfig
from repro.errors import HardwareModelError
from repro.hwmodel.device import GPUSpec
from repro.models.config import ModelConfig
from repro.models.params import (
    BYTES_PER_PARAM_FP16,
    decomposed_parameters,
    total_parameters,
)


@dataclass(frozen=True)
class MemoryFootprint:
    """Per-GPU memory breakdown in bytes."""

    weights: float
    kv_cache: float
    activations: float
    framework: float

    @property
    def total(self) -> float:
        return self.weights + self.kv_cache + self.activations + self.framework

    def as_gb(self) -> dict:
        gb = 1024**3
        return {
            "weights_gb": self.weights / gb,
            "kv_cache_gb": self.kv_cache / gb,
            "activations_gb": self.activations / gb,
            "framework_gb": self.framework / gb,
            "total_gb": self.total / gb,
        }


def quantized_projection_bytes(
    height: int, width: int, rank: Optional[int], bits: int
) -> float:
    """Storage of one quantized projection: packed ints + fp32 scales.

    Dense (rank None): an (H, W) grid at ``bits`` per weight plus one fp32
    scale per output column.  Decomposed: the U·Γ·V chain with each factor
    quantized independently, each carrying per-output-column scales.
    """
    if rank is None:
        return height * width * bits / 8.0 + width * 4.0
    params = height * rank + rank * rank + rank * width
    scale_cols = rank + rank + width
    return params * bits / 8.0 + scale_cols * 4.0


def model_weight_bytes(
    config: ModelConfig, decomposition: Optional[DecompositionConfig] = None
) -> int:
    """Bytes of the (possibly decomposed / quantized) model weights.

    Weights are modeled at FP16; when the decomposition carries ``bits``,
    every per-layer projection's FP16 term is swapped for its quantized
    storage (grid at ``bits`` per weight + fp32 scales) while embeddings,
    norms, and the LM head stay FP16 — mirroring what
    :func:`repro.compression.quantization.quantize_model_real` quantizes.
    """
    if decomposition is None or decomposition.is_identity:
        params = total_parameters(config)
    else:
        decomposition.validate(config)
        params = decomposed_parameters(
            config, decomposition.layers, decomposition.roles, decomposition.rank
        )
    base = params * BYTES_PER_PARAM_FP16
    bits = None if decomposition is None else decomposition.bits
    if bits is None:
        return base
    total = float(base)
    decomposed = (
        set(decomposition.pairs()) if not decomposition.is_identity else set()
    )
    for layer in range(config.n_layers):
        for role in config.tensor_roles:
            height, width = config.tensor_shape(role)
            if (layer, role) in decomposed:
                rank = decomposition.rank
                fp16_params = height * rank + rank * rank + rank * width
                quantized = quantized_projection_bytes(height, width, rank, bits)
            else:
                fp16_params = height * width
                quantized = quantized_projection_bytes(height, width, None, bits)
            total += quantized - fp16_params * BYTES_PER_PARAM_FP16
    return int(round(total))


def kv_cache_bytes(config: ModelConfig, batch: int, seq_len: int) -> int:
    """FP16 key+value cache for a decoding batch."""
    return (
        2 * batch * seq_len * config.n_layers * config.kv_dim * BYTES_PER_PARAM_FP16
    )


def activation_bytes(config: ModelConfig, batch: int, seq_len: int) -> int:
    """Peak live activation estimate: a few residual-stream-sized buffers
    plus the widest intermediate (MLP hidden or attention scores)."""
    tokens = batch * seq_len
    residual = tokens * config.dim
    widest = max(
        tokens * config.mlp_hidden,
        batch * config.n_heads * seq_len * seq_len,
        tokens * config.vocab_size,
    )
    return (4 * residual + 2 * widest) * BYTES_PER_PARAM_FP16


def memory_footprint(
    config: ModelConfig,
    gpu: GPUSpec,
    batch: int,
    seq_len: int,
    n_gpus: int = 1,
    decomposition: Optional[DecompositionConfig] = None,
    use_kv_cache: bool = False,
) -> MemoryFootprint:
    """Per-GPU memory footprint under tensor parallelism."""
    if n_gpus <= 0:
        raise HardwareModelError("n_gpus must be positive")
    weights = model_weight_bytes(config, decomposition) / n_gpus
    kv = kv_cache_bytes(config, batch, seq_len) / n_gpus if use_kv_cache else 0.0
    acts = activation_bytes(config, batch, seq_len) / n_gpus
    footprint = MemoryFootprint(
        weights=weights,
        kv_cache=kv,
        activations=acts,
        framework=float(gpu.framework_overhead_bytes),
    )
    if footprint.total > gpu.hbm_bytes:
        raise HardwareModelError(
            f"footprint {footprint.total / 1024**3:.1f} GB exceeds "
            f"{gpu.name} capacity {gpu.hbm_bytes / 1024**3:.0f} GB"
        )
    return footprint


def max_batch_size(
    config: ModelConfig,
    gpu: GPUSpec,
    seq_len: int,
    n_gpus: int = 1,
    decomposition: Optional[DecompositionConfig] = None,
    ceiling: int = 4096,
) -> int:
    """Largest batch that fits — the paper's throughput-oriented setting."""
    best = 0
    low, high = 1, ceiling
    while low <= high:
        mid = (low + high) // 2
        try:
            memory_footprint(
                config, gpu, mid, seq_len, n_gpus=n_gpus, decomposition=decomposition
            )
        except HardwareModelError:
            high = mid - 1
        else:
            best = mid
            low = mid + 1
    if best == 0:
        raise HardwareModelError(
            f"model {config.name} does not fit on {n_gpus}x {gpu.name} at any batch"
        )
    return best
