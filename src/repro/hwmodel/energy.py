"""Energy model: power-trace simulation and integration.

The paper estimates GPU energy as "the area under the power-time graph
using nvidia-smi-reported average power".  This module reproduces that
methodology: a utilization-driven power model produces an nvidia-smi-style
sampled trace, and energy is the trapezoidal integral of that trace.  Under
saturation (the paper's max-batch setting) power pins at the cap, so energy
savings track latency savings — the paper's matching ~0.5 %/1 % ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import HardwareModelError
from repro.hwmodel.device import GPUSpec


def power_at_utilization(gpu: GPUSpec, utilization: float) -> float:
    """Board power as a function of utilization (linear idle->TDP model)."""
    if not 0.0 <= utilization <= 1.0:
        raise HardwareModelError(f"utilization must be in [0, 1], got {utilization}")
    return gpu.idle_watts + (gpu.tdp_watts - gpu.idle_watts) * utilization


def energy_joules(
    latency_s: float, gpu: GPUSpec, utilization: float = 1.0, n_gpus: int = 1
) -> float:
    """Closed-form energy for a steady-state run at fixed utilization."""
    if latency_s < 0:
        raise HardwareModelError("latency must be non-negative")
    return latency_s * power_at_utilization(gpu, utilization) * n_gpus


@dataclass
class PowerTrace:
    """A sampled power trace (what nvidia-smi polling produces)."""

    times_s: np.ndarray
    watts: np.ndarray

    def energy_joules(self) -> float:
        """Area under the power-time graph (trapezoidal rule)."""
        if len(self.times_s) < 2:
            return 0.0
        integrate = getattr(np, "trapezoid", None) or np.trapz  # numpy<2 fallback
        return float(integrate(self.watts, self.times_s))

    @property
    def mean_watts(self) -> float:
        return float(np.mean(self.watts))

    @property
    def duration_s(self) -> float:
        return float(self.times_s[-1] - self.times_s[0])


class PowerTraceSimulator:
    """nvidia-smi-style sampler over a simulated inference run.

    The run alternates between busy phases (inference batches at
    ``utilization``) separated by short host-side gaps; samples are taken at
    ``sample_interval_s`` with Gaussian meter noise, mirroring how the
    paper's two-minute steady-state measurements are collected.
    """

    def __init__(
        self,
        gpu: GPUSpec,
        sample_interval_s: float = 0.1,
        meter_noise_watts: float = 3.0,
        seed: int = 0,
    ) -> None:
        if sample_interval_s <= 0:
            raise HardwareModelError("sample interval must be positive")
        self.gpu = gpu
        self.sample_interval_s = sample_interval_s
        self.meter_noise_watts = meter_noise_watts
        self._rng = np.random.default_rng(seed)

    def run(
        self,
        batch_latency_s: float,
        n_batches: int,
        utilization: float = 1.0,
        gap_s: float = 0.0,
    ) -> PowerTrace:
        """Simulate ``n_batches`` back-to-back batches and sample power."""
        if batch_latency_s <= 0 or n_batches <= 0:
            raise HardwareModelError("batch latency and count must be positive")
        busy_power = power_at_utilization(self.gpu, utilization)
        idle_power = self.gpu.idle_watts
        total = n_batches * (batch_latency_s + gap_s)
        times = np.arange(0.0, total, self.sample_interval_s)
        period = batch_latency_s + gap_s
        in_busy = (times % period) < batch_latency_s
        watts = np.where(in_busy, busy_power, idle_power).astype(np.float64)
        watts += self._rng.normal(0.0, self.meter_noise_watts, size=watts.shape)
        watts = np.clip(watts, 0.0, self.gpu.tdp_watts * 1.05)
        return PowerTrace(times_s=times, watts=watts)


def measure_energy_like_paper(
    gpu: GPUSpec,
    batch_latency_s: float,
    min_duration_s: float = 120.0,
    utilization: float = 1.0,
    seed: int = 0,
) -> tuple:
    """Replicate the paper's protocol: run >= 2 minutes, integrate the trace.

    Returns (energy per batch in joules, the full PowerTrace).
    """
    n_batches = max(int(np.ceil(min_duration_s / batch_latency_s)), 1)
    simulator = PowerTraceSimulator(gpu, seed=seed)
    trace = simulator.run(batch_latency_s, n_batches, utilization=utilization)
    per_batch = trace.energy_joules() / n_batches
    return per_batch, trace
