"""Analytic GPU performance model (latency / energy / memory)."""

from repro.hwmodel.device import (
    A100_40GB,
    A100_80GB,
    GPUSpec,
    H100_80GB,
    V100_32GB,
    available_gpus,
    get_gpu,
)
from repro.hwmodel.sweep import (
    BatchSweepPoint,
    GPUSweepPoint,
    sweep_batch_sizes,
    sweep_gpus,
)
from repro.hwmodel.generation import (
    GenerationProfile,
    decode_workload,
    generation_profile,
)
from repro.hwmodel.energy import (
    PowerTrace,
    PowerTraceSimulator,
    energy_joules,
    measure_energy_like_paper,
    power_at_utilization,
)
from repro.hwmodel.memory import (
    MemoryFootprint,
    activation_bytes,
    kv_cache_bytes,
    max_batch_size,
    memory_footprint,
    model_weight_bytes,
    quantized_projection_bytes,
)
from repro.hwmodel.profiler import (
    ProfileResult,
    ServingConfig,
    compare_to_baseline,
    device_latency,
    profile,
)
from repro.hwmodel.roofline import (
    OpTiming,
    achieved_flops,
    memory_bound_fraction,
    pipeline_p2p_seconds,
    time_op,
    time_workload,
    workload_latency,
)
from repro.hwmodel.workload import (
    Op,
    Workload,
    build_workload,
    split_tensor_parallel,
    stage_workloads,
)

__all__ = [
    "GPUSpec",
    "get_gpu",
    "available_gpus",
    "A100_80GB",
    "A100_40GB",
    "H100_80GB",
    "V100_32GB",
    "Op",
    "Workload",
    "build_workload",
    "stage_workloads",
    "split_tensor_parallel",
    "pipeline_p2p_seconds",
    "OpTiming",
    "time_op",
    "time_workload",
    "workload_latency",
    "memory_bound_fraction",
    "achieved_flops",
    "MemoryFootprint",
    "memory_footprint",
    "model_weight_bytes",
    "quantized_projection_bytes",
    "kv_cache_bytes",
    "activation_bytes",
    "max_batch_size",
    "PowerTrace",
    "PowerTraceSimulator",
    "power_at_utilization",
    "energy_joules",
    "measure_energy_like_paper",
    "ServingConfig",
    "ProfileResult",
    "profile",
    "compare_to_baseline",
    "GenerationProfile",
    "decode_workload",
    "generation_profile",
    "GPUSweepPoint",
    "BatchSweepPoint",
    "sweep_gpus",
    "sweep_batch_sizes",
]
