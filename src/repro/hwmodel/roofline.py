"""Roofline latency model (Williams et al.), op by op.

Each kernel's execution time is the maximum of its compute time at the
achievable FLOP rate and its memory time at the achievable bandwidth, plus a
fixed launch overhead.  Transformer inference at small batch sits left of
the ridge point (memory-bound), the regime the paper's Section 2.2 argues
motivates footprint optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.hwmodel.device import GPUSpec
from repro.hwmodel.workload import BYTES_FP16, Op, Workload


@dataclass(frozen=True)
class OpTiming:
    """Per-op latency decomposition."""

    op: Op
    compute_s: float
    memory_s: float
    overhead_s: float

    @property
    def latency_s(self) -> float:
        return max(self.compute_s, self.memory_s) + self.overhead_s

    @property
    def memory_bound(self) -> bool:
        return self.memory_s >= self.compute_s


def time_op(op: Op, gpu: GPUSpec) -> OpTiming:
    """Roofline timing of a single kernel."""
    compute_s = op.flops / (gpu.peak_flops * gpu.compute_efficiency)
    memory_s = op.total_bytes / (gpu.hbm_bandwidth * gpu.memory_efficiency)
    return OpTiming(op=op, compute_s=compute_s, memory_s=memory_s, overhead_s=gpu.kernel_overhead_s)


def time_workload(workload: Workload, gpu: GPUSpec) -> List[OpTiming]:
    return [time_op(op, gpu) for op in workload.ops]


def workload_latency(workload: Workload, gpu: GPUSpec) -> float:
    """Total sequential latency of a workload on one GPU, in seconds."""
    return sum(timing.latency_s for timing in time_workload(workload, gpu))


def memory_bound_fraction(workload: Workload, gpu: GPUSpec) -> float:
    """Fraction of total latency spent in memory-bound kernels."""
    timings = time_workload(workload, gpu)
    total = sum(t.latency_s for t in timings)
    if total == 0:
        return 0.0
    bound = sum(t.latency_s for t in timings if t.memory_bound)
    return bound / total


def allreduce_seconds(payload_bytes: float, gpu: GPUSpec, n_gpus: int) -> float:
    """Ring all-reduce time for one ``payload_bytes`` tensor across
    ``n_gpus`` over NVLink: each GPU moves ``2 (P-1)/P`` of the payload at
    the per-direction link bandwidth, plus one launch overhead."""
    if n_gpus <= 1:
        return 0.0
    ring_factor = 2.0 * (n_gpus - 1) / n_gpus
    wire_s = payload_bytes * ring_factor / (gpu.nvlink_bandwidth_gbs * 1e9)
    return wire_s + gpu.kernel_overhead_s


def tp_allreduce_seconds(
    dim: int, n_layers: int, batch_tokens: int, gpu: GPUSpec, n_gpus: int
) -> float:
    """Megatron tensor-parallel communication for one forward pass: two
    all-reduces per layer (attention output and MLP output) of the
    (batch_tokens, dim) residual activation."""
    if n_gpus <= 1:
        return 0.0
    payload = float(batch_tokens * dim * BYTES_FP16)
    return 2.0 * n_layers * allreduce_seconds(payload, gpu, n_gpus)


def pipeline_p2p_seconds(
    dim: int, batch_tokens: int, gpu: GPUSpec, pp: int
) -> float:
    """Pipeline-parallel activation hand-off: crossing ``pp - 1`` stage
    boundaries ships the (batch_tokens, dim) hidden block one hop each, at
    per-direction NVLink bandwidth plus one launch per hop.  Unlike the
    tensor-parallel all-reduces this cost sits on the critical path exactly
    once per traversal — a microbatch (or decode token) pays it serially."""
    if pp <= 1:
        return 0.0
    payload = float(batch_tokens * dim * BYTES_FP16)
    hop_s = payload / (gpu.nvlink_bandwidth_gbs * 1e9) + gpu.kernel_overhead_s
    return (pp - 1) * hop_s


def achieved_flops(workload: Workload, gpu: GPUSpec) -> float:
    """FLOP/s the workload sustains end to end (for MFU-style reporting)."""
    latency = workload_latency(workload, gpu)
    if latency == 0:
        return 0.0
    return workload.flops / latency
