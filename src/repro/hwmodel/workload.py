"""Extract an operator-level workload from a model configuration.

Each transformer forward pass is flattened into a list of :class:`Op`
records (FLOPs, weight bytes, activation bytes).  Decomposed tensors
contribute three smaller GEMMs instead of one dense GEMM — including their
extra kernel launches and activation traffic, which is why measured latency
savings are smaller than parameter savings (the paper's ~0.5 % latency per
1 % parameters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.decomposition.config import DecompositionConfig
from repro.errors import HardwareModelError
from repro.models.config import ModelConfig

BYTES_FP16 = 2


@dataclass(frozen=True)
class Op:
    """One kernel: a GEMM or a streaming (elementwise/normalization) op."""

    name: str
    flops: float             # multiply-accumulate counted as 2 FLOPs
    weight_bytes: float      # parameter traffic (read once per pass)
    activation_bytes: float  # input + output activation traffic

    @property
    def total_bytes(self) -> float:
        return self.weight_bytes + self.activation_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte moved — the roofline x-axis."""
        if self.total_bytes == 0:
            return float("inf")
        return self.flops / self.total_bytes


@dataclass
class Workload:
    """A full forward pass as an op list plus identifying metadata."""

    model: str
    batch: int
    seq_len: int
    ops: List[Op] = field(default_factory=list)

    @property
    def flops(self) -> float:
        return sum(op.flops for op in self.ops)

    @property
    def macs(self) -> float:
        return self.flops / 2.0

    @property
    def weight_bytes(self) -> float:
        return sum(op.weight_bytes for op in self.ops)

    @property
    def total_bytes(self) -> float:
        return sum(op.total_bytes for op in self.ops)

    @property
    def n_kernels(self) -> int:
        return len(self.ops)


def _linear_op(
    name: str, batch_tokens: int, in_features: int, out_features: int
) -> Op:
    flops = 2.0 * batch_tokens * in_features * out_features
    weight_bytes = float(in_features * out_features * BYTES_FP16)
    activation_bytes = float(batch_tokens * (in_features + out_features) * BYTES_FP16)
    return Op(name, flops, weight_bytes, activation_bytes)


def _factorized_ops(
    name: str, batch_tokens: int, in_features: int, out_features: int, rank: int
) -> List[Op]:
    """The three GEMMs of a Tucker-2 decomposed linear layer."""
    return [
        _linear_op(f"{name}.u1", batch_tokens, in_features, rank),
        _linear_op(f"{name}.core", batch_tokens, rank, rank),
        _linear_op(f"{name}.u2", batch_tokens, rank, out_features),
    ]


def _attention_bmm_ops(
    name: str, batch: int, seq_len: int, n_heads: int, head_dim: int
) -> List[Op]:
    """QK^T and PV batched matmuls (no weights, pure activation traffic)."""
    score_flops = 2.0 * batch * n_heads * seq_len * seq_len * head_dim
    score_bytes = float(
        batch * n_heads * (2 * seq_len * head_dim + seq_len * seq_len) * BYTES_FP16
    )
    context_flops = 2.0 * batch * n_heads * seq_len * seq_len * head_dim
    context_bytes = score_bytes
    softmax_bytes = float(2 * batch * n_heads * seq_len * seq_len * BYTES_FP16)
    return [
        Op(f"{name}.qk", score_flops, 0.0, score_bytes),
        Op(f"{name}.softmax", 0.0, 0.0, softmax_bytes),
        Op(f"{name}.pv", context_flops, 0.0, context_bytes),
    ]


def _norm_op(name: str, batch_tokens: int, dim: int) -> Op:
    return Op(name, 0.0, float(dim * BYTES_FP16), float(2 * batch_tokens * dim * BYTES_FP16))


def build_workload(
    config: ModelConfig,
    batch: int,
    seq_len: int,
    decomposition: Optional[DecompositionConfig] = None,
) -> Workload:
    """Flatten one forward pass into ops, honoring a decomposition γ."""
    if batch <= 0 or seq_len <= 0:
        raise HardwareModelError("batch and seq_len must be positive")
    if seq_len > config.max_seq_len:
        raise HardwareModelError(
            f"seq_len {seq_len} exceeds model max {config.max_seq_len}"
        )
    decomposed_pairs: Dict[Tuple[int, str], int] = {}
    if decomposition is not None and not decomposition.is_identity:
        decomposition.validate(config)
        decomposed_pairs = decomposition.pruned_rank_set()

    tokens = batch * seq_len
    workload = Workload(model=config.name, batch=batch, seq_len=seq_len)

    # Embedding lookup: streams one row per token.
    workload.ops.append(
        Op("embed", 0.0, 0.0, float(tokens * config.dim * 2 * BYTES_FP16))
    )

    for layer in range(config.n_layers):
        prefix = f"layer{layer}"
        workload.ops.append(_norm_op(f"{prefix}.attn_norm", tokens, config.dim))
        for role in config.tensor_roles:
            height, width = config.tensor_shape(role)
            key = (layer, role)
            if key in decomposed_pairs:
                workload.ops.extend(
                    _factorized_ops(
                        f"{prefix}.{role}", tokens, height, width, decomposed_pairs[key]
                    )
                )
            else:
                workload.ops.append(_linear_op(f"{prefix}.{role}", tokens, height, width))
        workload.ops.extend(
            _attention_bmm_ops(f"{prefix}.attn", batch, seq_len, config.n_heads, config.head_dim)
        )
        workload.ops.append(_norm_op(f"{prefix}.mlp_norm", tokens, config.dim))
        # Residual adds and activation functions: streaming traffic.
        workload.ops.append(
            Op(
                f"{prefix}.elementwise",
                0.0,
                0.0,
                float(4 * tokens * config.dim * BYTES_FP16),
            )
        )

    workload.ops.append(_norm_op("final_norm", tokens, config.dim))
    workload.ops.append(_linear_op("lm_head", tokens, config.dim, config.vocab_size))
    return workload


def split_tensor_parallel(workload: Workload, n_gpus: int) -> Workload:
    """Shard a workload across ``n_gpus`` (Megatron-style tensor parallel).

    GEMM FLOPs and weight bytes divide evenly; attention and elementwise
    traffic also shard by heads/columns.  Communication cost is added by the
    profiler, not here.
    """
    if n_gpus <= 0:
        raise HardwareModelError("n_gpus must be positive")
    if n_gpus == 1:
        return workload
    sharded = Workload(
        model=f"{workload.model}/tp{n_gpus}",
        batch=workload.batch,
        seq_len=workload.seq_len,
    )
    for op in workload.ops:
        sharded.ops.append(
            Op(
                op.name,
                op.flops / n_gpus,
                op.weight_bytes / n_gpus,
                op.activation_bytes / n_gpus,
            )
        )
    return sharded
