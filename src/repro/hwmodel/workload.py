"""Extract an operator-level workload from a model configuration.

Each transformer forward pass is flattened into a list of :class:`Op`
records (FLOPs, weight bytes, activation bytes).  Decomposed tensors
contribute three smaller GEMMs instead of one dense GEMM — including their
extra kernel launches and activation traffic, which is why measured latency
savings are smaller than parameter savings (the paper's ~0.5 % latency per
1 % parameters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.decomposition.config import DecompositionConfig
from repro.errors import HardwareModelError
from repro.models.config import ModelConfig

BYTES_FP16 = 2


@dataclass(frozen=True)
class Op:
    """One kernel: a GEMM or a streaming (elementwise/normalization) op.

    ``parallelism`` declares how the op behaves under Megatron-style tensor
    parallelism and ``shard_dim`` gives the size of the axis it shards
    along (its finest semantically splittable unit — heads for attention,
    columns/rows for MLP and LM head, the rank for factor chains):

    - ``"replicated"``: every GPU does the whole op (norms, embeddings,
      residual elementwise on the replicated hidden state).
    - ``"column"``: output columns shard; the input activation is
      replicated, the output is 1/P of the columns.
    - ``"row"``: input rows shard; the input activation is 1/P, the output
      (a partial sum to be all-reduced) is full width.
    - ``"sharded"``: both activations shard (attention score/context
      batched matmuls, which split cleanly by head).
    """

    name: str
    flops: float             # multiply-accumulate counted as 2 FLOPs
    weight_bytes: float      # parameter traffic (read once per pass)
    activation_bytes: float  # input + output activation traffic
    parallelism: str = "replicated"
    shard_dim: int = 0
    act_in_bytes: float = 0.0   # input share of activation_bytes (GEMMs)
    act_out_bytes: float = 0.0  # output share of activation_bytes (GEMMs)

    @property
    def total_bytes(self) -> float:
        return self.weight_bytes + self.activation_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte moved — the roofline x-axis."""
        if self.total_bytes == 0:
            return float("inf")
        return self.flops / self.total_bytes

    def shard_share(self, n_gpus: int) -> float:
        """The bottleneck GPU's share of this op under ``n_gpus``-way TP.

        Whole units of ``shard_dim`` are distributed, so the largest shard
        carries ``ceil(shard_dim / n_gpus)`` of them — exactly ``1/P`` only
        when the dimension divides evenly.  A rank-1 factor chain
        (``shard_dim == 1``) cannot shard at all and stays replicated,
        which is why decomposed variants scale *worse* under TP.
        """
        if self.parallelism == "replicated" or self.shard_dim <= 0:
            return 1.0
        units = -(-self.shard_dim // n_gpus)  # ceil division
        return min(1.0, units / self.shard_dim)


@dataclass
class Workload:
    """A full forward pass as an op list plus identifying metadata."""

    model: str
    batch: int
    seq_len: int
    ops: List[Op] = field(default_factory=list)

    @property
    def flops(self) -> float:
        return sum(op.flops for op in self.ops)

    @property
    def macs(self) -> float:
        return self.flops / 2.0

    @property
    def weight_bytes(self) -> float:
        return sum(op.weight_bytes for op in self.ops)

    @property
    def total_bytes(self) -> float:
        return sum(op.total_bytes for op in self.ops)

    @property
    def n_kernels(self) -> int:
        return len(self.ops)


def _linear_op(
    name: str,
    batch_tokens: int,
    in_features: int,
    out_features: int,
    parallelism: str = "replicated",
    shard_dim: int = 0,
) -> Op:
    flops = 2.0 * batch_tokens * in_features * out_features
    weight_bytes = float(in_features * out_features * BYTES_FP16)
    act_in = float(batch_tokens * in_features * BYTES_FP16)
    act_out = float(batch_tokens * out_features * BYTES_FP16)
    return Op(
        name,
        flops,
        weight_bytes,
        act_in + act_out,
        parallelism=parallelism,
        shard_dim=shard_dim,
        act_in_bytes=act_in,
        act_out_bytes=act_out,
    )


def _role_parallelism(config: ModelConfig, role: str) -> Tuple[str, int]:
    """How a role's GEMM shards: Megatron column/row parallel + granularity.

    Q/K/V and FFN-in are column-parallel (Q by query head, K/V by KV
    head); the attention output and FFN-down are row-parallel (their input
    axis is what shards).  The granularity is the finest splittable unit:
    heads for attention projections, individual columns/rows for the MLP.
    """
    if role == "w_q":
        return ("column", config.n_heads)
    if role in ("w_k", "w_v"):
        return ("column", config.kv_heads)
    if role == "w_so":
        return ("row", config.n_heads)
    if role in ("w_g", "w_u", "w_int"):
        return ("column", config.mlp_hidden)
    if role in ("w_d", "w_out"):
        return ("row", config.mlp_hidden)
    raise HardwareModelError(f"no tensor-parallel layout for role {role!r}")


def _factorized_ops(
    name: str, batch_tokens: int, in_features: int, out_features: int, rank: int
) -> List[Op]:
    """The three GEMMs of a Tucker-2 decomposed linear layer.

    The factor chain shards along its contraction-free rank axis: U1
    column-parallel over rank, the core fully sharded, U2 row-parallel over
    rank.  All three bottom out at ``shard_dim=rank``, so low-rank chains
    (rank < n_gpus) stop sharding — decomposition trades away TP scaling.
    """
    return [
        _linear_op(f"{name}.u1", batch_tokens, in_features, rank, "column", rank),
        _linear_op(f"{name}.core", batch_tokens, rank, rank, "sharded", rank),
        _linear_op(f"{name}.u2", batch_tokens, rank, out_features, "row", rank),
    ]


def _attention_bmm_ops(
    name: str, batch: int, seq_len: int, n_heads: int, head_dim: int
) -> List[Op]:
    """QK^T and PV batched matmuls (no weights, pure activation traffic)."""
    score_flops = 2.0 * batch * n_heads * seq_len * seq_len * head_dim
    score_bytes = float(
        batch * n_heads * (2 * seq_len * head_dim + seq_len * seq_len) * BYTES_FP16
    )
    context_flops = 2.0 * batch * n_heads * seq_len * seq_len * head_dim
    context_bytes = score_bytes
    softmax_bytes = float(2 * batch * n_heads * seq_len * seq_len * BYTES_FP16)
    return [
        Op(f"{name}.qk", score_flops, 0.0, score_bytes, "sharded", n_heads),
        Op(f"{name}.softmax", 0.0, 0.0, softmax_bytes, "sharded", n_heads),
        Op(f"{name}.pv", context_flops, 0.0, context_bytes, "sharded", n_heads),
    ]


def _norm_op(name: str, batch_tokens: int, dim: int) -> Op:
    return Op(name, 0.0, float(dim * BYTES_FP16), float(2 * batch_tokens * dim * BYTES_FP16))


def build_workload(
    config: ModelConfig,
    batch: int,
    seq_len: int,
    decomposition: Optional[DecompositionConfig] = None,
) -> Workload:
    """Flatten one forward pass into ops, honoring a decomposition γ."""
    if batch <= 0 or seq_len <= 0:
        raise HardwareModelError("batch and seq_len must be positive")
    if seq_len > config.max_seq_len:
        raise HardwareModelError(
            f"seq_len {seq_len} exceeds model max {config.max_seq_len}"
        )
    decomposed_pairs: Dict[Tuple[int, str], int] = {}
    if decomposition is not None and not decomposition.is_identity:
        decomposition.validate(config)
        decomposed_pairs = decomposition.pruned_rank_set()

    tokens = batch * seq_len
    workload = Workload(model=config.name, batch=batch, seq_len=seq_len)

    # Embedding lookup: streams one row per token.
    workload.ops.append(
        Op("embed", 0.0, 0.0, float(tokens * config.dim * 2 * BYTES_FP16))
    )

    for layer in range(config.n_layers):
        prefix = f"layer{layer}"
        workload.ops.append(_norm_op(f"{prefix}.attn_norm", tokens, config.dim))
        for role in config.tensor_roles:
            height, width = config.tensor_shape(role)
            key = (layer, role)
            if key in decomposed_pairs:
                workload.ops.extend(
                    _factorized_ops(
                        f"{prefix}.{role}", tokens, height, width, decomposed_pairs[key]
                    )
                )
            else:
                mode, shard_dim = _role_parallelism(config, role)
                workload.ops.append(
                    _linear_op(f"{prefix}.{role}", tokens, height, width, mode, shard_dim)
                )
        workload.ops.extend(
            _attention_bmm_ops(f"{prefix}.attn", batch, seq_len, config.n_heads, config.head_dim)
        )
        workload.ops.append(_norm_op(f"{prefix}.mlp_norm", tokens, config.dim))
        # Residual adds and activation functions: streaming traffic.
        workload.ops.append(
            Op(
                f"{prefix}.elementwise",
                0.0,
                0.0,
                float(4 * tokens * config.dim * BYTES_FP16),
            )
        )

    workload.ops.append(_norm_op("final_norm", tokens, config.dim))
    workload.ops.append(
        _linear_op(
            "lm_head", tokens, config.dim, config.vocab_size, "column", config.vocab_size
        )
    )
    return workload


def _shard_op(op: Op, n_gpus: int) -> Op:
    """One op as seen by the bottleneck GPU under ``n_gpus``-way TP."""
    share = op.shard_share(n_gpus)
    if share >= 1.0:
        return op
    if op.parallelism == "column":
        # Input activation replicated, weight and output columns sharded.
        act_in, act_out = op.act_in_bytes, op.act_out_bytes * share
    elif op.parallelism == "row":
        # Input rows sharded; output is a full-width partial sum.
        act_in, act_out = op.act_in_bytes * share, op.act_out_bytes
    else:  # "sharded": both sides split (head-parallel bmm, core GEMM)
        act_in, act_out = op.act_in_bytes * share, op.act_out_bytes * share
    if op.act_in_bytes or op.act_out_bytes:
        activation_bytes = act_in + act_out
    else:
        activation_bytes = op.activation_bytes * share
        act_in = act_out = 0.0
    return Op(
        op.name,
        op.flops * share,
        op.weight_bytes * share,
        activation_bytes,
        parallelism=op.parallelism,
        shard_dim=op.shard_dim,
        act_in_bytes=act_in,
        act_out_bytes=act_out,
    )


def split_tensor_parallel(workload: Workload, n_gpus: int) -> Workload:
    """The bottleneck GPU's workload under Megatron-style tensor parallelism.

    Each op shards according to its declared ``parallelism``: GEMM FLOPs and
    weight bytes scale by :meth:`Op.shard_share` (a ceil-division share, so
    uneven dimensions leave one GPU with more than 1/P), while activation
    traffic keeps its replicated side full-size — a column-parallel GEMM
    still reads the whole input, a row-parallel GEMM still writes a
    full-width partial sum.  Replicated ops (norms, embeddings, residual
    elementwise on the replicated hidden state) are untouched: they are the
    Amdahl floor that keeps TP speedups sublinear.  Communication cost is
    added by the profiler, not here.
    """
    if n_gpus <= 0:
        raise HardwareModelError("n_gpus must be positive")
    if n_gpus == 1:
        return workload
    sharded = Workload(
        model=f"{workload.model}/tp{n_gpus}",
        batch=workload.batch,
        seq_len=workload.seq_len,
    )
    for op in workload.ops:
        sharded.ops.append(_shard_op(op, n_gpus))
    return sharded
