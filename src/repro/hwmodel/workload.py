"""Map the executed layer program to an operator-level cost workload.

Each transformer forward pass is flattened into a list of :class:`Op`
records (FLOPs, weight bytes, activation bytes) by walking the *same*
:class:`~repro.runtime.program.ModelProgram` the runtime driver executes —
the analytic projection can therefore never drift from the executed code.
Decomposed tensors contribute three smaller GEMMs instead of one dense GEMM
— including their extra kernel launches and activation traffic, which is
why measured latency savings are smaller than parameter savings (the
paper's ~0.5 % latency per 1 % parameters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.decomposition.config import DecompositionConfig
from repro.errors import HardwareModelError
from repro.models.config import ModelConfig
from repro.runtime.program import (
    ATTN_CONTEXT,
    ATTN_SCORES,
    ATTN_SOFTMAX,
    ELEMENTWISE,
    EMBED,
    NORM,
    PROJ,
    OpSpec,
    build_model_program,
    partition_program,
)

BYTES_FP16 = 2


@dataclass(frozen=True)
class Op:
    """One kernel: a GEMM or a streaming (elementwise/normalization) op.

    ``parallelism`` declares how the op behaves under Megatron-style tensor
    parallelism and ``shard_dim`` gives the size of the axis it shards
    along (its finest semantically splittable unit — heads for attention,
    columns/rows for MLP and LM head, the rank for factor chains):

    - ``"replicated"``: every GPU does the whole op (norms, embeddings,
      residual elementwise on the replicated hidden state).
    - ``"column"``: output columns shard; the input activation is
      replicated, the output is 1/P of the columns.
    - ``"row"``: input rows shard; the input activation is 1/P, the output
      (a partial sum to be all-reduced) is full width.
    - ``"sharded"``: both activations shard (attention score/context
      batched matmuls, which split cleanly by head).
    """

    name: str
    flops: float             # multiply-accumulate counted as 2 FLOPs
    weight_bytes: float      # parameter traffic (read once per pass)
    activation_bytes: float  # input + output activation traffic
    parallelism: str = "replicated"
    shard_dim: int = 0
    act_in_bytes: float = 0.0   # input share of activation_bytes (GEMMs)
    act_out_bytes: float = 0.0  # output share of activation_bytes (GEMMs)

    @property
    def total_bytes(self) -> float:
        return self.weight_bytes + self.activation_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte moved — the roofline x-axis."""
        if self.total_bytes == 0:
            return float("inf")
        return self.flops / self.total_bytes

    def shard_share(self, n_gpus: int) -> float:
        """The bottleneck GPU's share of this op under ``n_gpus``-way TP.

        Whole units of ``shard_dim`` are distributed, so the largest shard
        carries ``ceil(shard_dim / n_gpus)`` of them — exactly ``1/P`` only
        when the dimension divides evenly.  A rank-1 factor chain
        (``shard_dim == 1``) cannot shard at all and stays replicated,
        which is why decomposed variants scale *worse* under TP.
        """
        if self.parallelism == "replicated" or self.shard_dim <= 0:
            return 1.0
        units = -(-self.shard_dim // n_gpus)  # ceil division
        return min(1.0, units / self.shard_dim)


@dataclass
class Workload:
    """A full forward pass as an op list plus identifying metadata."""

    model: str
    batch: int
    seq_len: int
    ops: List[Op] = field(default_factory=list)

    @property
    def flops(self) -> float:
        return sum(op.flops for op in self.ops)

    @property
    def macs(self) -> float:
        return self.flops / 2.0

    @property
    def weight_bytes(self) -> float:
        return sum(op.weight_bytes for op in self.ops)

    @property
    def total_bytes(self) -> float:
        return sum(op.total_bytes for op in self.ops)

    @property
    def n_kernels(self) -> int:
        return len(self.ops)


def _linear_op(
    name: str,
    batch_tokens: int,
    in_features: int,
    out_features: int,
    parallelism: str = "replicated",
    shard_dim: int = 0,
    bits: Optional[int] = None,
) -> Op:
    flops = 2.0 * batch_tokens * in_features * out_features
    if bits is None:
        weight_bytes = float(in_features * out_features * BYTES_FP16)
    else:
        # Quantized storage: the GEMM streams the int grid plus one fp32
        # scale per output column (energy follows bytes via the roofline).
        weight_bytes = in_features * out_features * bits / 8.0 + out_features * 4.0
    act_in = float(batch_tokens * in_features * BYTES_FP16)
    act_out = float(batch_tokens * out_features * BYTES_FP16)
    return Op(
        name,
        flops,
        weight_bytes,
        act_in + act_out,
        parallelism=parallelism,
        shard_dim=shard_dim,
        act_in_bytes=act_in,
        act_out_bytes=act_out,
    )


def _norm_op(name: str, batch_tokens: int, dim: int) -> Op:
    return Op(name, 0.0, float(dim * BYTES_FP16), float(2 * batch_tokens * dim * BYTES_FP16))


def op_from_spec(
    spec: OpSpec, batch: int, seq_len: int, bits: Optional[int] = None
) -> Op:
    """Cost one program op for a concrete (batch, seq_len).

    This is the entire bridge between the executed layer program and the
    analytic model: GEMMs charge 2·t·in·out FLOPs plus weight and
    activation traffic, the attention batched matmuls charge head-parallel
    score/context work with no weights, and norms/embeddings/residual
    elementwise ops are pure streaming traffic.

    ``bits`` projects quantized weight storage onto the per-layer
    projection GEMMs (the LM head stays fp16, matching what
    ``quantize_model_real`` quantizes); all other op kinds are unaffected.
    """
    tokens = batch * seq_len
    if spec.kind == PROJ:
        return _linear_op(
            spec.name,
            tokens,
            spec.in_features,
            spec.out_features,
            spec.parallelism,
            spec.shard_dim,
            bits=None if spec.role == "lm_head" else bits,
        )
    if spec.kind == NORM:
        return _norm_op(spec.name, tokens, spec.in_features)
    if spec.kind == EMBED:
        # Embedding lookup: streams one row per token.
        return Op(spec.name, 0.0, 0.0, float(tokens * spec.in_features * 2 * BYTES_FP16))
    if spec.kind == ELEMENTWISE:
        # Residual adds and activation functions: streaming traffic.
        return Op(spec.name, 0.0, 0.0, float(4 * tokens * spec.in_features * BYTES_FP16))
    # Attention batched matmuls: no weights, pure activation traffic,
    # head-parallel (in_features = head_dim, shard_dim = n_heads).
    n_heads, head_dim = spec.shard_dim, spec.in_features
    if spec.kind == ATTN_SOFTMAX:
        softmax_bytes = float(2 * batch * n_heads * seq_len * seq_len * BYTES_FP16)
        return Op(spec.name, 0.0, 0.0, softmax_bytes, "sharded", n_heads)
    if spec.kind in (ATTN_SCORES, ATTN_CONTEXT):
        bmm_flops = 2.0 * batch * n_heads * seq_len * seq_len * head_dim
        bmm_bytes = float(
            batch * n_heads * (2 * seq_len * head_dim + seq_len * seq_len) * BYTES_FP16
        )
        return Op(spec.name, bmm_flops, 0.0, bmm_bytes, "sharded", n_heads)
    raise HardwareModelError(f"no cost model for op kind {spec.kind!r}")


def build_workload(
    config: ModelConfig,
    batch: int,
    seq_len: int,
    decomposition: Optional[DecompositionConfig] = None,
    pp: int = 1,
    stage: Optional[int] = None,
    cut_points: Optional[tuple] = None,
) -> Workload:
    """Flatten one forward pass into ops, honoring a decomposition γ.

    The op list is obtained by walking
    :func:`repro.runtime.program.build_model_program` — the same program
    the runtime driver executes — and costing each :class:`OpSpec` with
    :func:`op_from_spec`.

    With ``pp > 1`` the program is first cut into pipeline stages
    (:func:`repro.runtime.program.partition_program`, honoring
    ``cut_points``) and the returned workload covers only sub-program
    ``stage`` — the embedding prologue on stage 0, the final-norm/LM-head
    epilogue on the last stage, each stage's own layer run in between —
    exactly what that stage's GPUs execute.
    """
    if batch <= 0 or seq_len <= 0:
        raise HardwareModelError("batch and seq_len must be positive")
    if seq_len > config.max_seq_len:
        raise HardwareModelError(
            f"seq_len {seq_len} exceeds model max {config.max_seq_len}"
        )
    program = build_model_program(config, decomposition)
    bits = None if decomposition is None else decomposition.bits
    if pp <= 1 and stage is None:
        workload = Workload(model=config.name, batch=batch, seq_len=seq_len)
        workload.ops.extend(
            op_from_spec(spec, batch, seq_len, bits=bits)
            for spec in program.all_ops()
        )
        return workload
    if stage is None:
        raise HardwareModelError(
            f"pp={pp} needs a stage index: the workload is per stage"
        )
    stages = partition_program(program, pp, cut_points)
    if not 0 <= stage < len(stages):
        raise HardwareModelError(f"stage {stage} outside 0..{len(stages) - 1}")
    sub = stages[stage]
    workload = Workload(
        model=f"{config.name}/stage{stage}of{pp}", batch=batch, seq_len=seq_len
    )
    workload.ops.extend(
        op_from_spec(spec, batch, seq_len, bits=bits) for spec in sub.all_ops()
    )
    return workload


def stage_workloads(
    config: ModelConfig,
    batch: int,
    seq_len: int,
    decomposition: Optional[DecompositionConfig] = None,
    pp: int = 1,
    cut_points: Optional[tuple] = None,
) -> List[Workload]:
    """One workload per pipeline stage; their ops concatenate to the full
    pass (the stages tile the program exactly once)."""
    if pp <= 1:
        return [build_workload(config, batch, seq_len, decomposition)]
    return [
        build_workload(
            config, batch, seq_len, decomposition,
            pp=pp, stage=stage, cut_points=cut_points,
        )
        for stage in range(pp)
    ]


def _shard_op(op: Op, n_gpus: int) -> Op:
    """One op as seen by the bottleneck GPU under ``n_gpus``-way TP."""
    share = op.shard_share(n_gpus)
    if share >= 1.0:
        return op
    if op.parallelism == "column":
        # Input activation replicated, weight and output columns sharded.
        act_in, act_out = op.act_in_bytes, op.act_out_bytes * share
    elif op.parallelism == "row":
        # Input rows sharded; output is a full-width partial sum.
        act_in, act_out = op.act_in_bytes * share, op.act_out_bytes
    else:  # "sharded": both sides split (head-parallel bmm, core GEMM)
        act_in, act_out = op.act_in_bytes * share, op.act_out_bytes * share
    if op.act_in_bytes or op.act_out_bytes:
        activation_bytes = act_in + act_out
    else:
        activation_bytes = op.activation_bytes * share
        act_in = act_out = 0.0
    return Op(
        op.name,
        op.flops * share,
        op.weight_bytes * share,
        activation_bytes,
        parallelism=op.parallelism,
        shard_dim=op.shard_dim,
        act_in_bytes=act_in,
        act_out_bytes=act_out,
    )


def split_tensor_parallel(workload: Workload, n_gpus: int) -> Workload:
    """The bottleneck GPU's workload under Megatron-style tensor parallelism.

    Each op shards according to its declared ``parallelism``: GEMM FLOPs and
    weight bytes scale by :meth:`Op.shard_share` (a ceil-division share, so
    uneven dimensions leave one GPU with more than 1/P), while activation
    traffic keeps its replicated side full-size — a column-parallel GEMM
    still reads the whole input, a row-parallel GEMM still writes a
    full-width partial sum.  Replicated ops (norms, embeddings, residual
    elementwise on the replicated hidden state) are untouched: they are the
    Amdahl floor that keeps TP speedups sublinear.  Communication cost is
    added by the profiler, not here.
    """
    if n_gpus <= 0:
        raise HardwareModelError("n_gpus must be positive")
    if n_gpus == 1:
        return workload
    sharded = Workload(
        model=f"{workload.model}/tp{n_gpus}",
        batch=workload.batch,
        seq_len=workload.seq_len,
    )
    for op in workload.ops:
        sharded.ops.append(_shard_op(op, n_gpus))
    return sharded
