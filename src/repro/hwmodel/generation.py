"""Autoregressive-generation cost model: prefill + per-token decode.

The paper's Section 2.2 argument — LLMs sit in the memory-bound roofline
regime — is sharpest during *decode*: each generated token re-streams all
weights for a single token's worth of FLOPs.  This module models a full
generation (prefill over the prompt, then ``new_tokens`` decode steps with
a growing KV cache) and exposes how decomposition savings differ between
the compute-bound prefill and the bandwidth-bound decode phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.decomposition.config import DecompositionConfig
from repro.errors import HardwareModelError
from repro.hwmodel.device import GPUSpec
from repro.hwmodel.energy import energy_joules
from repro.hwmodel.memory import kv_cache_bytes, memory_footprint
from repro.hwmodel.profiler import ServingConfig
from repro.hwmodel.roofline import (
    memory_bound_fraction,
    pipeline_p2p_seconds,
    tp_allreduce_seconds,
    workload_latency,
)
from repro.hwmodel.workload import (
    BYTES_FP16,
    Op,
    Workload,
    build_workload,
    op_from_spec,
    split_tensor_parallel,
)
from repro.models.config import ModelConfig
from repro.runtime.program import (
    ATTN_KINDS,
    ATTN_SCORES,
    build_model_program,
    partition_program,
)


def _decode_attention_op(
    layer, batch: int, context_len: int, kv_dim: int
) -> Op:
    """Attention against the KV cache: q (1 token) vs K/V (context_len)."""
    spec = layer.attention
    kv_bytes = 2.0 * batch * context_len * kv_dim * BYTES_FP16
    attn_flops = 2.0 * 2.0 * batch * spec.n_heads * context_len * spec.head_dim
    score_bytes = 2.0 * batch * spec.n_heads * context_len * BYTES_FP16
    return Op(
        f"layer{layer.index}.attn_kv",
        attn_flops,
        0.0,
        kv_bytes + score_bytes,
        "sharded",
        spec.n_heads,
    )


def decode_workload(
    config: ModelConfig,
    batch: int,
    context_len: int,
    decomposition: Optional[DecompositionConfig] = None,
    pp: int = 1,
    stage: Optional[int] = None,
    cut_points: Optional[tuple] = None,
) -> Workload:
    """One decode step: a single new token per sequence.

    Walks the same :class:`~repro.runtime.program.ModelProgram` as
    :func:`~repro.hwmodel.workload.build_workload`, with one substitution:
    the three prefill attention batched matmuls become a single
    ``attn_kv`` op that reads the full KV cache of ``context_len``
    positions for one new query token.  With ``pp > 1`` the walk covers
    only pipeline ``stage``'s sub-program (its layer slice, plus the
    embedding on stage 0 and the head on the last stage) — each stage
    reads only its own layers' KV cache.
    """
    if batch <= 0 or context_len <= 0:
        raise HardwareModelError("batch and context_len must be positive")
    program = build_model_program(config, decomposition)
    name = f"{config.name}/decode"
    if pp > 1 or stage is not None:
        if stage is None:
            raise HardwareModelError(
                f"pp={pp} needs a stage index: the decode step is per stage"
            )
        stages = partition_program(program, pp, cut_points)
        if not 0 <= stage < len(stages):
            raise HardwareModelError(f"stage {stage} outside 0..{len(stages) - 1}")
        program = stages[stage]
        name = f"{config.name}/decode-stage{stage}of{pp}"
    bits = None if decomposition is None else decomposition.bits
    workload = Workload(model=name, batch=batch, seq_len=1)
    workload.ops.extend(
        op_from_spec(spec, batch, 1, bits=bits) for spec in program.prologue
    )
    for layer in program.layers:
        for spec in layer.ops:
            if spec.kind in ATTN_KINDS:
                if spec.kind == ATTN_SCORES:
                    workload.ops.append(
                        _decode_attention_op(layer, batch, context_len, config.kv_dim)
                    )
                continue
            workload.ops.append(op_from_spec(spec, batch, 1, bits=bits))
    workload.ops.extend(
        op_from_spec(spec, batch, 1, bits=bits) for spec in program.epilogue
    )
    return workload


@dataclass(frozen=True)
class GenerationProfile:
    """Latency/energy breakdown of one full generation request."""

    model: str
    batch: int
    prompt_len: int
    new_tokens: int
    prefill_s: float
    decode_s: float
    decode_s_per_token: float
    energy_j: float
    decode_memory_bound_fraction: float
    kv_cache_gb: float
    # Pipeline-parallel shape: 1F1B prefill over ``microbatches`` chunks
    # leaves (pp-1)/(M+pp-1) of the stage-slots idle when stages balance;
    # ``pipeline_bubble_fraction`` is the imbalance-aware value computed
    # from the actual per-stage latencies (0.0 when pp == 1).
    pp: int = 1
    microbatches: int = 1
    pipeline_bubble_fraction: float = 0.0

    @property
    def total_s(self) -> float:
        return self.prefill_s + self.decode_s

    @property
    def tokens_per_second(self) -> float:
        if self.decode_s == 0:
            return 0.0
        return self.batch * self.new_tokens / self.decode_s


def _stage_layer_counts(config: ModelConfig, pp: int, cut_points) -> List[int]:
    """Layers per pipeline stage, honoring an explicit cut override."""
    from repro.parallel.mesh import DeviceMesh

    spans = DeviceMesh(tp=1, pp=pp).stage_spans(config.n_layers, cut_points)
    return [hi - lo for lo, hi in spans]


def generation_profile(
    config: ModelConfig,
    gpu: GPUSpec,
    batch: int = 1,
    prompt_len: int = 128,
    new_tokens: int = 128,
    decomposition: Optional[DecompositionConfig] = None,
    n_gpus: int = 1,
    pp: int = 1,
    microbatches: Optional[int] = None,
    cut_points: Optional[tuple] = None,
) -> GenerationProfile:
    """Profile prefill + ``new_tokens`` decode steps on one GPU or under a
    (``pp`` pipeline stages) x (``n_gpus``-way tensor shards) grid.

    Multi-GPU latency is *not* single-GPU latency divided by the device
    count: each workload is sharded op by op (:func:`split_tensor_parallel`,
    which leaves norms/embeddings/residual work replicated) and charged two
    ring all-reduces per layer over NVLink, so the TP speedup is sublinear
    — increasingly so at decode batch sizes where the activation payload is
    tiny but the per-collective launch overhead is not.

    The pipeline axis follows the executor's schedule: prefill runs 1F1B
    over ``microbatches`` row-chunks (default ``min(pp, batch)``) so the
    critical path is one traversal of all stages plus ``M - 1`` repeats of
    the slowest stage, while decode is strictly sequential per token — each
    new token must cross every stage, so pp adds hop latency to decode
    instead of speeding it up (the classic PP decode weakness the paper's
    memory-bound argument predicts).
    """
    if new_tokens <= 0:
        raise HardwareModelError("new_tokens must be positive")
    if pp < 1:
        raise HardwareModelError(f"pipeline depth must be >= 1, got {pp}")
    n_microbatches = (
        max(1, min(pp, batch)) if microbatches is None else max(1, int(microbatches))
    )
    stage_layers = _stage_layer_counts(config, pp, cut_points)

    # Prefill: per-stage full-batch latencies, 1F1B-combined.  A microbatch
    # is 1/M of the rows, so stage s costs L_s / M per chunk; the critical
    # path walks every stage once, then repeats the bottleneck stage M - 1
    # times, plus the serial P2P hops of the first traversal.
    stage_lats = []
    for stage in range(pp):
        workload = build_workload(
            config, batch, prompt_len, decomposition=decomposition,
            pp=pp, stage=stage if pp > 1 else None, cut_points=cut_points,
        )
        stage_lats.append(
            workload_latency(split_tensor_parallel(workload, n_gpus), gpu)
            + tp_allreduce_seconds(
                config.dim, stage_layers[stage], batch * prompt_len, gpu, n_gpus
            )
        )
    chunk_tokens = batch * prompt_len / n_microbatches
    prefill_s = (
        (sum(stage_lats) + (n_microbatches - 1) * max(stage_lats)) / n_microbatches
        + pipeline_p2p_seconds(config.dim, chunk_tokens, gpu, pp)
    )
    # Idle stage-slots over the 1F1B schedule; reduces to the textbook
    # (pp-1)/(M+pp-1) when the stages balance exactly.
    bubble = 0.0
    if pp > 1:
        compute_span = (
            sum(stage_lats) + (n_microbatches - 1) * max(stage_lats)
        ) / n_microbatches
        bubble = max(0.0, 1.0 - sum(stage_lats) / (pp * compute_span))

    # Decode latency varies with context length only through the KV-cache
    # term; sample a few context lengths and use the trapezoid average.
    # Summing per-stage latencies (plus each stage's allreduce share and
    # the serial hops) models the sequential token walk across stages.
    contexts = [prompt_len, prompt_len + new_tokens // 2, prompt_len + new_tokens]
    comm_step = tp_allreduce_seconds(config.dim, config.n_layers, batch, gpu, n_gpus)
    hop_step = pipeline_p2p_seconds(config.dim, batch, gpu, pp)
    step_latencies = []
    bound_fractions = []
    for context in contexts:
        stage_steps = []
        fractions = []
        for stage in range(pp):
            step = decode_workload(
                config, batch, context, decomposition=decomposition,
                pp=pp, stage=stage if pp > 1 else None, cut_points=cut_points,
            )
            stage_steps.append(
                workload_latency(split_tensor_parallel(step, n_gpus), gpu)
            )
            fractions.append(memory_bound_fraction(step, gpu))
        step_latencies.append(sum(stage_steps) + comm_step + hop_step)
        bound_fractions.append(sum(fractions) / len(fractions))
    mean_step = (
        0.25 * step_latencies[0] + 0.5 * step_latencies[1] + 0.25 * step_latencies[2]
    )
    decode_s = mean_step * new_tokens
    energy = energy_joules(
        prefill_s + decode_s, gpu, utilization=1.0, n_gpus=n_gpus * pp
    )
    kv_gb = kv_cache_bytes(config, batch, prompt_len + new_tokens) / 1024**3
    return GenerationProfile(
        model=config.name,
        batch=batch,
        prompt_len=prompt_len,
        new_tokens=new_tokens,
        prefill_s=prefill_s,
        decode_s=decode_s,
        decode_s_per_token=mean_step,
        energy_j=energy,
        decode_memory_bound_fraction=float(sum(bound_fractions) / len(bound_fractions)),
        kv_cache_gb=kv_gb,
        pp=pp,
        microbatches=n_microbatches,
        pipeline_bubble_fraction=bubble,
    )
