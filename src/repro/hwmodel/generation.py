"""Autoregressive-generation cost model: prefill + per-token decode.

The paper's Section 2.2 argument — LLMs sit in the memory-bound roofline
regime — is sharpest during *decode*: each generated token re-streams all
weights for a single token's worth of FLOPs.  This module models a full
generation (prefill over the prompt, then ``new_tokens`` decode steps with
a growing KV cache) and exposes how decomposition savings differ between
the compute-bound prefill and the bandwidth-bound decode phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.decomposition.config import DecompositionConfig
from repro.errors import HardwareModelError
from repro.hwmodel.device import GPUSpec
from repro.hwmodel.energy import energy_joules
from repro.hwmodel.memory import kv_cache_bytes, memory_footprint
from repro.hwmodel.profiler import ServingConfig
from repro.hwmodel.roofline import (
    memory_bound_fraction,
    tp_allreduce_seconds,
    workload_latency,
)
from repro.hwmodel.workload import (
    BYTES_FP16,
    Op,
    Workload,
    build_workload,
    op_from_spec,
    split_tensor_parallel,
)
from repro.models.config import ModelConfig
from repro.runtime.program import ATTN_KINDS, ATTN_SCORES, build_model_program


def _decode_attention_op(
    layer, batch: int, context_len: int, kv_dim: int
) -> Op:
    """Attention against the KV cache: q (1 token) vs K/V (context_len)."""
    spec = layer.attention
    kv_bytes = 2.0 * batch * context_len * kv_dim * BYTES_FP16
    attn_flops = 2.0 * 2.0 * batch * spec.n_heads * context_len * spec.head_dim
    score_bytes = 2.0 * batch * spec.n_heads * context_len * BYTES_FP16
    return Op(
        f"layer{layer.index}.attn_kv",
        attn_flops,
        0.0,
        kv_bytes + score_bytes,
        "sharded",
        spec.n_heads,
    )


def decode_workload(
    config: ModelConfig,
    batch: int,
    context_len: int,
    decomposition: Optional[DecompositionConfig] = None,
) -> Workload:
    """One decode step: a single new token per sequence.

    Walks the same :class:`~repro.runtime.program.ModelProgram` as
    :func:`~repro.hwmodel.workload.build_workload`, with one substitution:
    the three prefill attention batched matmuls become a single
    ``attn_kv`` op that reads the full KV cache of ``context_len``
    positions for one new query token.
    """
    if batch <= 0 or context_len <= 0:
        raise HardwareModelError("batch and context_len must be positive")
    program = build_model_program(config, decomposition)
    workload = Workload(model=f"{config.name}/decode", batch=batch, seq_len=1)
    workload.ops.extend(op_from_spec(spec, batch, 1) for spec in program.prologue)
    for layer in program.layers:
        for spec in layer.ops:
            if spec.kind in ATTN_KINDS:
                if spec.kind == ATTN_SCORES:
                    workload.ops.append(
                        _decode_attention_op(layer, batch, context_len, config.kv_dim)
                    )
                continue
            workload.ops.append(op_from_spec(spec, batch, 1))
    workload.ops.extend(op_from_spec(spec, batch, 1) for spec in program.epilogue)
    return workload


@dataclass(frozen=True)
class GenerationProfile:
    """Latency/energy breakdown of one full generation request."""

    model: str
    batch: int
    prompt_len: int
    new_tokens: int
    prefill_s: float
    decode_s: float
    decode_s_per_token: float
    energy_j: float
    decode_memory_bound_fraction: float
    kv_cache_gb: float

    @property
    def total_s(self) -> float:
        return self.prefill_s + self.decode_s

    @property
    def tokens_per_second(self) -> float:
        if self.decode_s == 0:
            return 0.0
        return self.batch * self.new_tokens / self.decode_s


def generation_profile(
    config: ModelConfig,
    gpu: GPUSpec,
    batch: int = 1,
    prompt_len: int = 128,
    new_tokens: int = 128,
    decomposition: Optional[DecompositionConfig] = None,
    n_gpus: int = 1,
) -> GenerationProfile:
    """Profile prefill + ``new_tokens`` decode steps on one GPU or under a
    Megatron tensor-parallel split across ``n_gpus``.

    Multi-GPU latency is *not* single-GPU latency divided by ``n_gpus``:
    each workload is sharded op by op (:func:`split_tensor_parallel`, which
    leaves norms/embeddings/residual work replicated) and charged two ring
    all-reduces per layer over NVLink, so the speedup is sublinear —
    increasingly so at decode batch sizes where the activation payload is
    tiny but the per-collective launch overhead is not.
    """
    if new_tokens <= 0:
        raise HardwareModelError("new_tokens must be positive")
    prefill = build_workload(config, batch, prompt_len, decomposition=decomposition)
    comm_prefill = tp_allreduce_seconds(
        config.dim, config.n_layers, batch * prompt_len, gpu, n_gpus
    )
    prefill_s = (
        workload_latency(split_tensor_parallel(prefill, n_gpus), gpu) + comm_prefill
    )

    # Decode latency varies with context length only through the KV-cache
    # term; sample a few context lengths and use the trapezoid average.
    contexts = [prompt_len, prompt_len + new_tokens // 2, prompt_len + new_tokens]
    comm_step = tp_allreduce_seconds(config.dim, config.n_layers, batch, gpu, n_gpus)
    step_latencies = []
    bound_fractions = []
    for context in contexts:
        step = decode_workload(config, batch, context, decomposition=decomposition)
        step_latencies.append(
            workload_latency(split_tensor_parallel(step, n_gpus), gpu) + comm_step
        )
        bound_fractions.append(memory_bound_fraction(step, gpu))
    mean_step = (
        0.25 * step_latencies[0] + 0.5 * step_latencies[1] + 0.25 * step_latencies[2]
    )
    decode_s = mean_step * new_tokens
    energy = energy_joules(prefill_s + decode_s, gpu, utilization=1.0, n_gpus=n_gpus)
    kv_gb = kv_cache_bytes(config, batch, prompt_len + new_tokens) / 1024**3
    return GenerationProfile(
        model=config.name,
        batch=batch,
        prompt_len=prompt_len,
        new_tokens=new_tokens,
        prefill_s=prefill_s,
        decode_s=decode_s,
        decode_s_per_token=mean_step,
        energy_j=energy,
        decode_memory_bound_fraction=float(sum(bound_fractions) / len(bound_fractions)),
        kv_cache_gb=kv_gb,
    )
