"""End-to-end inference profiling: latency + energy + memory in one call.

This is the analytic stand-in for the paper's measurement stack
(torch.cuda.event timing, nvidia-smi power/memory) on 4x A100-80GB.  Given
a model configuration, an optional decomposition γ, and a serving setting,
it returns a :class:`ProfileResult` whose ratios against the dense baseline
regenerate Figures 10-12.

Two parallelism modes are modeled:

- ``"data"`` (default, matching the paper's setup — Llama-2-7B fits on a
  single 80 GB GPU, so the four GPUs each hold full weights and split the
  benchmark batch): per-GPU latency is the roofline time of a per-GPU batch.
- ``"tensor"`` (Megatron-style): weights and GEMMs shard across GPUs with
  two all-reduces per layer.

``host_overhead_fraction`` models the model-size-independent share of the
serving loop (harness bookkeeping, tokenization, batch assembly, kernel
scheduling).  The paper measures ~0.5 % latency saving per 1 % parameter
reduction while ~96 % of parameters sit in GEMMs; an ideal roofline alone
would predict ~0.9 %/1 %, so roughly 45 % of the measured end-to-end time
must be size-independent.  The default is calibrated accordingly and the
calibration is documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.decomposition.config import DecompositionConfig
from repro.errors import HardwareModelError
from repro.hwmodel.device import GPUSpec, get_gpu
from repro.hwmodel.energy import energy_joules
from repro.hwmodel.memory import MemoryFootprint, memory_footprint
from repro.hwmodel.roofline import (
    memory_bound_fraction,
    tp_allreduce_seconds,
    workload_latency,
)
from repro.hwmodel.workload import build_workload, split_tensor_parallel
from repro.models.config import ModelConfig


@dataclass(frozen=True)
class ServingConfig:
    """How the model is served (the paper's throughput-oriented setting)."""

    gpu: str = "a100-80gb"
    n_gpus: int = 4
    seq_len: int = 128
    per_gpu_batch: int = 1024
    parallelism: str = "data"  # "data" or "tensor"
    host_overhead_fraction: float = 0.45

    def __post_init__(self) -> None:
        if self.parallelism not in ("data", "tensor"):
            raise HardwareModelError(f"unknown parallelism {self.parallelism!r}")
        if not 0.0 <= self.host_overhead_fraction < 1.0:
            raise HardwareModelError("host_overhead_fraction must be in [0, 1)")
        if self.n_gpus <= 0 or self.per_gpu_batch <= 0 or self.seq_len <= 0:
            raise HardwareModelError("n_gpus, per_gpu_batch, seq_len must be positive")

    def resolve_gpu(self) -> GPUSpec:
        return get_gpu(self.gpu)

    @property
    def global_batch(self) -> int:
        if self.parallelism == "data":
            return self.per_gpu_batch * self.n_gpus
        return self.per_gpu_batch


@dataclass(frozen=True)
class ProfileResult:
    """Latency / energy / memory of one configuration."""

    model: str
    batch: int
    seq_len: int
    n_gpus: int
    device_s: float    # roofline (GPU kernel) time per forward pass
    overhead_s: float  # host-side, model-size-independent time
    energy_j: float
    memory: MemoryFootprint
    memory_bound_fraction: float

    @property
    def latency_s(self) -> float:
        return self.device_s + self.overhead_s

    @property
    def throughput_tokens_per_s(self) -> float:
        if self.latency_s == 0:
            return 0.0
        return self.batch * self.seq_len / self.latency_s

    @property
    def memory_per_gpu_gb(self) -> float:
        return self.memory.total / 1024**3


def device_latency(
    config: ModelConfig,
    serving: ServingConfig,
    decomposition: Optional[DecompositionConfig] = None,
) -> float:
    """Pure GPU (roofline) latency of one forward pass, in seconds."""
    gpu = serving.resolve_gpu()
    if serving.parallelism == "data":
        workload = build_workload(
            config, serving.per_gpu_batch, serving.seq_len, decomposition=decomposition
        )
        return workload_latency(workload, gpu)
    workload = build_workload(
        config, serving.per_gpu_batch, serving.seq_len, decomposition=decomposition
    )
    sharded = split_tensor_parallel(workload, serving.n_gpus)
    latency = workload_latency(sharded, gpu)
    latency += tp_allreduce_seconds(
        config.dim,
        config.n_layers,
        serving.per_gpu_batch * serving.seq_len,
        gpu,
        serving.n_gpus,
    )
    return latency


def profile(
    config: ModelConfig,
    serving: ServingConfig = ServingConfig(),
    decomposition: Optional[DecompositionConfig] = None,
    host_overhead_s: Optional[float] = None,
) -> ProfileResult:
    """Profile one (model, decomposition, serving) triple.

    ``host_overhead_s`` pins the absolute host overhead; by default it is
    derived from this run's own device time and the serving config's
    overhead fraction.  :func:`compare_to_baseline` pins it to the *dense*
    model's overhead for both runs so the comparison is apples-to-apples.
    """
    gpu = serving.resolve_gpu()
    device_s = device_latency(config, serving, decomposition)
    if host_overhead_s is None:
        fraction = serving.host_overhead_fraction
        host_overhead_s = device_s * fraction / (1.0 - fraction)
    latency = device_s + host_overhead_s
    energy = energy_joules(latency, gpu, utilization=1.0, n_gpus=serving.n_gpus)
    weight_shards = serving.n_gpus if serving.parallelism == "tensor" else 1
    memory = memory_footprint(
        config,
        gpu,
        serving.per_gpu_batch,
        serving.seq_len,
        n_gpus=weight_shards,
        decomposition=decomposition,
    )
    workload = build_workload(
        config, serving.per_gpu_batch, serving.seq_len, decomposition=decomposition
    )
    return ProfileResult(
        model=config.name,
        batch=serving.global_batch,
        seq_len=serving.seq_len,
        n_gpus=serving.n_gpus,
        device_s=device_s,
        overhead_s=host_overhead_s,
        energy_j=energy,
        memory=memory,
        memory_bound_fraction=memory_bound_fraction(workload, gpu),
    )


def compare_to_baseline(
    config: ModelConfig,
    decomposition: DecompositionConfig,
    serving: ServingConfig = ServingConfig(),
) -> dict:
    """Dense-vs-decomposed deltas: the quantities Figures 10-12 plot."""
    baseline = profile(config, serving)
    treated = profile(
        config, serving, decomposition=decomposition, host_overhead_s=baseline.overhead_s
    )
    return {
        "batch": baseline.batch,
        "baseline": baseline,
        "decomposed": treated,
        "speedup": baseline.latency_s / treated.latency_s,
        "latency_saving": 1.0 - treated.latency_s / baseline.latency_s,
        "energy_saving": 1.0 - treated.energy_j / baseline.energy_j,
        "memory_saving": 1.0 - treated.memory.total / baseline.memory.total,
    }
