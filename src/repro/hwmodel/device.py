"""GPU device specifications for the analytic performance model.

The paper measures on 4x NVIDIA A100-80GB at a 300 W power cap with
``torch.cuda.event`` timing and ``nvidia-smi`` power sampling.  This module
captures the published device parameters those measurements are bounded by,
plus empirical efficiency factors (achievable fraction of peak) that any
real kernel library exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import HardwareModelError

GB = 1024**3


@dataclass(frozen=True)
class GPUSpec:
    """Published characteristics of one GPU SKU."""

    name: str
    peak_fp16_tflops: float      # dense tensor-core peak, TFLOP/s
    hbm_bytes: int               # on-board memory capacity
    hbm_bandwidth_gbs: float     # peak HBM bandwidth, GB/s
    tdp_watts: float             # board power limit
    idle_watts: float            # power at idle
    nvlink_bandwidth_gbs: float  # per-direction interconnect bandwidth
    # Achievable fractions of peak for large GEMMs / streaming kernels.
    compute_efficiency: float = 0.60
    memory_efficiency: float = 0.80
    # Fixed per-kernel launch/dispatch overhead.
    kernel_overhead_s: float = 6e-6
    # Non-model memory resident on each GPU (CUDA context, allocator,
    # framework workspace) — the reason 1% fewer parameters frees <1% of
    # observed GPU memory.
    framework_overhead_bytes: int = int(1.6 * GB)

    def __post_init__(self) -> None:
        if self.peak_fp16_tflops <= 0 or self.hbm_bandwidth_gbs <= 0:
            raise HardwareModelError(f"invalid peak rates for {self.name}")
        if not 0 < self.compute_efficiency <= 1 or not 0 < self.memory_efficiency <= 1:
            raise HardwareModelError(f"efficiencies must be in (0, 1] for {self.name}")
        if self.idle_watts >= self.tdp_watts:
            raise HardwareModelError(f"idle power must be below TDP for {self.name}")

    @property
    def peak_flops(self) -> float:
        return self.peak_fp16_tflops * 1e12

    @property
    def hbm_bandwidth(self) -> float:
        return self.hbm_bandwidth_gbs * 1e9

    @property
    def ridge_intensity(self) -> float:
        """FLOP/byte at the roofline ridge point (compute = memory time)."""
        return (self.peak_flops * self.compute_efficiency) / (
            self.hbm_bandwidth * self.memory_efficiency
        )


_SPECS: Dict[str, GPUSpec] = {}


def _register(spec: GPUSpec) -> GPUSpec:
    _SPECS[spec.name] = spec
    return spec


# The paper's testbed: A100 80GB at a 300 W limit ("the power consumption of
# the GPU is always the maximum (300W in the case of NVIDIA A100 80GB)").
A100_80GB = _register(
    GPUSpec(
        name="a100-80gb",
        peak_fp16_tflops=312.0,
        hbm_bytes=80 * GB,
        hbm_bandwidth_gbs=1935.0,
        tdp_watts=300.0,
        idle_watts=55.0,
        nvlink_bandwidth_gbs=300.0,
    )
)

A100_40GB = _register(
    GPUSpec(
        name="a100-40gb",
        peak_fp16_tflops=312.0,
        hbm_bytes=40 * GB,
        hbm_bandwidth_gbs=1555.0,
        tdp_watts=400.0,
        idle_watts=55.0,
        nvlink_bandwidth_gbs=300.0,
    )
)

H100_80GB = _register(
    GPUSpec(
        name="h100-80gb",
        peak_fp16_tflops=989.0,
        hbm_bytes=80 * GB,
        hbm_bandwidth_gbs=3350.0,
        tdp_watts=700.0,
        idle_watts=70.0,
        nvlink_bandwidth_gbs=450.0,
    )
)

V100_32GB = _register(
    GPUSpec(
        name="v100-32gb",
        peak_fp16_tflops=125.0,
        hbm_bytes=32 * GB,
        hbm_bandwidth_gbs=900.0,
        tdp_watts=300.0,
        idle_watts=50.0,
        nvlink_bandwidth_gbs=150.0,
    )
)


def get_gpu(name: str) -> GPUSpec:
    try:
        return _SPECS[name]
    except KeyError:
        raise HardwareModelError(
            f"unknown GPU {name!r}; available: {sorted(_SPECS)}"
        ) from None


def available_gpus() -> Tuple[str, ...]:
    return tuple(sorted(_SPECS))
