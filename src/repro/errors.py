"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """An operation received tensors with incompatible shapes."""


class GradientError(ReproError, RuntimeError):
    """Backward pass was requested on an invalid graph or tensor."""


class ConfigError(ReproError, ValueError):
    """A model or decomposition configuration is invalid."""


class DecompositionError(ReproError, RuntimeError):
    """Tucker/SVD decomposition failed or was misused."""


class EvaluationError(ReproError, RuntimeError):
    """The evaluation harness was driven with inconsistent inputs."""


class HardwareModelError(ReproError, ValueError):
    """The analytic hardware model received an invalid specification."""


class CheckpointError(ReproError, IOError):
    """A model checkpoint could not be saved or restored."""


class ServingError(ReproError, RuntimeError):
    """The serving engine was driven with invalid requests or state."""


class PoolExhaustedError(ServingError):
    """The preallocated KV-cache block pool has no free blocks left."""


class ParallelError(ReproError, RuntimeError):
    """The tensor-parallel runtime was misconfigured or a rank failed."""
