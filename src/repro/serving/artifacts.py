"""Persistent serve-bench run artifacts.

Every ``repro serve-bench`` invocation can persist itself as a run
directory::

    benchmarks/runs/<name>/
        manifest.json    # everything needed to reproduce the run:
                         #   model, variants, engine config, tp, gpu,
                         #   the trace description (family + params + seed)
        metrics.jsonl    # raw per-request samples, one JSON object per
                         #   line, tagged with the variant that served it
        summary.json     # the aggregate ServeBenchReport (percentiles,
                         #   throughput, prefix stats, identity verdict)

The split keeps the summary small and diff-able while the raw samples stay
greppable/streamable; and because **all** trace randomness flows through
one seeded :class:`numpy.random.Generator` recorded in the manifest,
:func:`trace_from_manifest` rebuilds the exact trace bit for bit — a run
directory is a complete, replayable experiment record.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

from repro.errors import ServingError
from repro.serving.bench import ServeBenchReport
from repro.serving.trace import TraceRequest, make_trace

MANIFEST_NAME = "manifest.json"
METRICS_NAME = "metrics.jsonl"
SUMMARY_NAME = "summary.json"


def trace_manifest(
    family: str,
    n_requests: int,
    rate_rps: float,
    vocab_size: int,
    seed: int,
    **params,
) -> dict:
    """The manifest's trace section: exactly :func:`make_trace`'s inputs."""
    return {
        "family": family,
        "n_requests": int(n_requests),
        "rate_rps": float(rate_rps),
        "vocab_size": int(vocab_size),
        "seed": int(seed),
        "params": dict(params),
    }


def trace_from_manifest(manifest: dict) -> List[TraceRequest]:
    """Rebuild a run's trace, bit-identically, from its manifest."""
    try:
        spec = manifest["trace"] if "trace" in manifest else manifest
        return make_trace(
            spec["family"],
            spec["n_requests"],
            spec["rate_rps"],
            spec["vocab_size"],
            seed=spec["seed"],
            **spec.get("params", {}),
        )
    except KeyError as missing:
        raise ServingError(f"manifest trace section missing key {missing}") from None


def write_run_artifact(
    run_dir, manifest: dict, report: ServeBenchReport
) -> Path:
    """Persist one serve-bench run as ``<run_dir>/{manifest,metrics,summary}``.

    ``manifest`` must carry a ``"trace"`` section (see
    :func:`trace_manifest`) so the run can be replayed.  Raw per-request
    samples are moved out of the summary into ``metrics.jsonl``; the
    summary keeps only aggregates.
    """
    if "trace" not in manifest:
        raise ServingError("run manifest must include a 'trace' section")
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)

    (run_dir / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2) + "\n")

    summary = report.to_dict()
    lines = []
    for result in summary["results"]:
        for record in result.pop("requests"):
            lines.append(json.dumps({"variant": result["spec"], **record}))
    (run_dir / METRICS_NAME).write_text(
        "\n".join(lines) + ("\n" if lines else "")
    )
    (run_dir / SUMMARY_NAME).write_text(json.dumps(summary, indent=2) + "\n")
    return run_dir


def load_run(run_dir) -> Tuple[dict, dict, List[dict]]:
    """Read a run directory back: (manifest, summary, per-request records)."""
    run_dir = Path(run_dir)
    for name in (MANIFEST_NAME, SUMMARY_NAME, METRICS_NAME):
        if not (run_dir / name).exists():
            raise ServingError(f"run directory {run_dir} is missing {name}")
    manifest = json.loads((run_dir / MANIFEST_NAME).read_text())
    summary = json.loads((run_dir / SUMMARY_NAME).read_text())
    records = [
        json.loads(line)
        for line in (run_dir / METRICS_NAME).read_text().splitlines()
        if line.strip()
    ]
    return manifest, summary, records


def records_by_variant(records: List[dict]) -> Dict[str, List[dict]]:
    """Group ``metrics.jsonl`` records by the variant that served them."""
    grouped: Dict[str, List[dict]] = {}
    for record in records:
        grouped.setdefault(record["variant"], []).append(record)
    return grouped


__all__ = [
    "MANIFEST_NAME",
    "METRICS_NAME",
    "SUMMARY_NAME",
    "load_run",
    "records_by_variant",
    "trace_from_manifest",
    "trace_manifest",
    "write_run_artifact",
]
