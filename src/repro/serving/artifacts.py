"""Persistent serve-bench run artifacts.

Every ``repro serve-bench`` invocation can persist itself as a run
directory::

    benchmarks/runs/<name>/
        manifest.json    # everything needed to reproduce the run:
                         #   model, variants, engine config, tp, gpu,
                         #   the trace description (family + params + seed)
        metrics.jsonl    # raw per-request samples, one JSON object per
                         #   line, tagged with the variant that served it
        summary.json     # the aggregate ServeBenchReport (percentiles,
                         #   throughput, prefix stats, identity verdict)
        report.md        # human-readable rendering: variant table,
                         #   per-QoS-class percentiles, router decisions
        router.jsonl     # router decision log (routed runs only),
                         #   one decision per line

The split keeps the summary small and diff-able while the raw samples stay
greppable/streamable; and because **all** trace randomness flows through
one seeded :class:`numpy.random.Generator` recorded in the manifest,
:func:`trace_from_manifest` rebuilds the exact trace bit for bit — a run
directory is a complete, replayable experiment record.

Separately, :func:`append_trajectory` keeps the repo's long-lived perf
ledger (``benchmarks/trajectory.jsonl``): every bench invocation appends
one summary line (date, commit, model, tokens/s, goodput), so performance
evidence survives in-repo rather than only as ephemeral CI artifacts.
"""

from __future__ import annotations

import datetime as _datetime
import json
import subprocess
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ServingError
from repro.serving.bench import ServeBenchReport
from repro.serving.trace import TraceRequest, make_trace

MANIFEST_NAME = "manifest.json"
METRICS_NAME = "metrics.jsonl"
SUMMARY_NAME = "summary.json"
REPORT_NAME = "report.md"
ROUTER_LOG_NAME = "router.jsonl"

#: Default location of the repo-persistent performance ledger.
TRAJECTORY_PATH = Path("benchmarks") / "trajectory.jsonl"


def trace_manifest(
    family: str,
    n_requests: int,
    rate_rps: float,
    vocab_size: int,
    seed: int,
    **params,
) -> dict:
    """The manifest's trace section: exactly :func:`make_trace`'s inputs."""
    return {
        "family": family,
        "n_requests": int(n_requests),
        "rate_rps": float(rate_rps),
        "vocab_size": int(vocab_size),
        "seed": int(seed),
        "params": dict(params),
    }


def trace_from_manifest(manifest: dict) -> List[TraceRequest]:
    """Rebuild a run's trace, bit-identically, from its manifest."""
    try:
        spec = manifest["trace"] if "trace" in manifest else manifest
        return make_trace(
            spec["family"],
            spec["n_requests"],
            spec["rate_rps"],
            spec["vocab_size"],
            seed=spec["seed"],
            **spec.get("params", {}),
        )
    except KeyError as missing:
        raise ServingError(f"manifest trace section missing key {missing}") from None


def write_run_artifact(
    run_dir, manifest: dict, report: ServeBenchReport
) -> Path:
    """Persist one serve-bench run as ``<run_dir>/{manifest,metrics,summary}``.

    ``manifest`` must carry a ``"trace"`` section (see
    :func:`trace_manifest`) so the run can be replayed.  Raw per-request
    samples are moved out of the summary into ``metrics.jsonl``; the
    summary keeps only aggregates.  A human-readable ``report.md`` is
    rendered alongside, and routed runs additionally get the router's
    decision log as ``router.jsonl``.
    """
    if "trace" not in manifest:
        raise ServingError("run manifest must include a 'trace' section")
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)

    (run_dir / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2) + "\n")

    summary = report.to_dict()
    lines = []
    for result in summary["results"]:
        for record in result.pop("requests"):
            lines.append(json.dumps({"variant": result["spec"], **record}))
    (run_dir / METRICS_NAME).write_text(
        "\n".join(lines) + ("\n" if lines else "")
    )
    (run_dir / SUMMARY_NAME).write_text(json.dumps(summary, indent=2) + "\n")
    (run_dir / REPORT_NAME).write_text(render_report(manifest, summary))
    decision_lines = [
        json.dumps({"variant": result["spec"], **decision})
        for result in summary["results"]
        if result.get("router")
        for decision in result["router"].get("decisions", [])
    ]
    if decision_lines:
        (run_dir / ROUTER_LOG_NAME).write_text("\n".join(decision_lines) + "\n")
    return run_dir


def _ms(value) -> str:
    return "-" if value is None else f"{1e3 * float(value):.1f}"


def _pct(value) -> str:
    return "-" if value is None else f"{100.0 * float(value):.1f}%"


def render_report(manifest: dict, summary: dict) -> str:
    """Markdown rendering of one run: what a human reads first.

    Works from the same dicts the JSON artifacts persist (``summary`` with
    per-request records already moved out), so it can also be regenerated
    offline from a loaded run directory.
    """
    trace = manifest.get("trace", {})
    lines: List[str] = []
    lines.append(f"# serve-bench run: {summary.get('model', '?')}")
    lines.append("")
    lines.append(
        f"- **gpu projection:** {summary.get('gpu', '?')} · **tp:** "
        f"{summary.get('tp', 1)} · **seed:** {summary.get('seed')}"
    )
    if trace:
        lines.append(
            f"- **trace:** {trace.get('family', '?')} · "
            f"{trace.get('n_requests', '?')} requests @ "
            f"{trace.get('rate_rps', '?')} rps (seed {trace.get('seed', '?')})"
        )
    qos_info = summary.get("qos_info")
    if qos_info:
        classes = ", ".join(
            f"{cls['name']} (floor {cls['quality_floor']}, "
            f"slo {_ms(cls.get('ttft_slo_s'))}ms)"
            for cls in qos_info.get("classes", [])
        )
        lines.append(
            f"- **qos:** unit TTFT {_ms(qos_info.get('unit_ttft_s'))}ms · {classes}"
        )
    lines.append("")

    lines.append("## Variants")
    lines.append("")
    lines.append(
        "| variant | pr % | finished | ttft p50 (ms) | ttft p95 (ms) "
        "| decode tok/s | goodput |"
    )
    lines.append("|---|---|---|---|---|---|---|")
    for result in summary.get("results", []):
        goodput = result.get("goodput")
        goodput_cell = (
            f"{goodput['good']}/{goodput['eligible']} ({_pct(goodput['rate'])})"
            if goodput
            else "-"
        )
        lines.append(
            f"| {result['spec']} "
            f"| {100.0 * result.get('parameter_reduction', 0.0):.1f} "
            f"| {result.get('finished', 0)}/{result.get('n_requests', 0)} "
            f"| {_ms(result.get('ttft_p50_s'))} "
            f"| {_ms(result.get('ttft_p95_s'))} "
            f"| {result.get('decode_tokens_per_s', 0.0):.1f} "
            f"| {goodput_cell} |"
        )
    comparison = summary.get("goodput_vs_fixed")
    if comparison:
        verdict = "beats" if comparison.get("beats_best_fixed") else "TRAILS"
        lines.append("")
        lines.append(
            f"**Goodput:** routed {_pct(comparison['routed'])} {verdict} the best "
            f"fixed variant ({_pct(comparison['best_fixed'])}; worst "
            f"{_pct(comparison['worst_fixed'])})."
        )
    lines.append("")

    class_rows: List[str] = []
    for result in summary.get("results", []):
        goodput = result.get("goodput")
        if not goodput:
            continue
        for name, per in sorted(goodput.get("per_class", {}).items()):
            class_rows.append(
                f"| {result['spec']} | {name} "
                f"| {per.get('quality_floor') or '-'} "
                f"| {_ms(per.get('ttft_slo_s'))} "
                f"| {per.get('good', 0)}/{per.get('eligible', 0)} "
                f"| {per.get('slo_violations', 0)} "
                f"| {per.get('quality_violations', 0)} "
                f"| {_ms(per.get('ttft_p50_s'))} "
                f"| {_ms(per.get('ttft_p95_s'))} |"
            )
    if class_rows:
        lines.append("## Per-class outcomes")
        lines.append("")
        lines.append(
            "| variant | class | floor | slo (ms) | good | slo miss "
            "| floor miss | ttft p50 (ms) | ttft p95 (ms) |"
        )
        lines.append("|---|---|---|---|---|---|---|---|---|")
        lines.extend(class_rows)
        lines.append("")

    for result in summary.get("results", []):
        router = result.get("router")
        if not router:
            continue
        lines.append("## Router decisions")
        lines.append("")
        lines.append(
            f"Ladder {' > '.join(router.get('ladder', []))} · "
            f"{router.get('downgrades', 0)} downgrades, "
            f"{router.get('upgrades', 0)} upgrades, "
            f"{router.get('swaps', 0)} mid-flight hot-swaps."
        )
        decisions = router.get("decisions", [])
        if decisions:
            lines.append("")
            lines.append("| step | t (s) | action | from | to | queue | running |")
            lines.append("|---|---|---|---|---|---|---|")
            for decision in decisions:
                lines.append(
                    f"| {decision.get('step')} | {decision.get('now', 0.0):.3f} "
                    f"| {decision.get('action')} | {decision.get('from')} "
                    f"| {decision.get('to')} | {decision.get('queue_depth')} "
                    f"| {decision.get('running')} |"
                )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _git_commit() -> Optional[str]:
    """Short commit hash of the working tree, or None outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def append_trajectory(entry: dict, path=None) -> Path:
    """Append one summary line to the repo's performance ledger.

    Stamps the entry with today's date and the current short commit hash
    (callers may pre-set either key to override), then appends it as one
    JSON line to ``path`` (default :data:`TRAJECTORY_PATH`), creating
    parent directories as needed.  Append-only by design: the ledger is a
    time series, never rewritten.
    """
    path = TRAJECTORY_PATH if path is None else Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    stamped = {
        "date": _datetime.date.today().isoformat(),
        "commit": _git_commit(),
        **entry,
    }
    with path.open("a") as handle:
        handle.write(json.dumps(stamped) + "\n")
    return path


def load_run(run_dir) -> Tuple[dict, dict, List[dict]]:
    """Read a run directory back: (manifest, summary, per-request records)."""
    run_dir = Path(run_dir)
    for name in (MANIFEST_NAME, SUMMARY_NAME, METRICS_NAME):
        if not (run_dir / name).exists():
            raise ServingError(f"run directory {run_dir} is missing {name}")
    manifest = json.loads((run_dir / MANIFEST_NAME).read_text())
    summary = json.loads((run_dir / SUMMARY_NAME).read_text())
    records = [
        json.loads(line)
        for line in (run_dir / METRICS_NAME).read_text().splitlines()
        if line.strip()
    ]
    return manifest, summary, records


def records_by_variant(records: List[dict]) -> Dict[str, List[dict]]:
    """Group ``metrics.jsonl`` records by the variant that served them."""
    grouped: Dict[str, List[dict]] = {}
    for record in records:
        grouped.setdefault(record["variant"], []).append(record)
    return grouped


__all__ = [
    "MANIFEST_NAME",
    "METRICS_NAME",
    "REPORT_NAME",
    "ROUTER_LOG_NAME",
    "SUMMARY_NAME",
    "TRAJECTORY_PATH",
    "append_trajectory",
    "load_run",
    "records_by_variant",
    "render_report",
    "trace_from_manifest",
    "trace_manifest",
    "write_run_artifact",
]
