"""Synthetic request traces: seeded Poisson plus production-shaped families.

The original benchmark replayed one seeded Poisson process with uniform
prompt/output lengths.  Real serving traffic is not that polite, and the
gains of the paged prefix-sharing store only show on traffic shaped like
production: tenant mixes repeating system prompts, diurnal load swings,
arrival bursts, and heavy-tailed lengths.  This module provides one
generator per family:

- ``poisson``   — the classic homogeneous baseline (uniform lengths);
- ``diurnal``   — a sinusoidally rate-modulated Poisson process (thinning),
  compressing a day-shaped load curve into the trace window;
- ``bursty``    — a two-state Markov-modulated Poisson process: quiet
  background traffic punctuated by dense bursts;
- ``heavy-tail``— Poisson arrivals with log-normal prompt/output lengths
  clamped to the model window (a few huge prompts dominate token volume);
- ``prefix``    — a shared-prefix tenant mix: every request prepends its
  tenant's fixed prompt prefix (Zipf-weighted tenant popularity), the
  regime where cross-request prefix sharing pays.

All randomness flows through **one** :class:`numpy.random.Generator`
(``rng`` param, or seeded via ``seed``), and :func:`make_trace` accepts a
plain ``(family, params)`` description — exactly what a serve-bench run
manifest records — so any trace replays bit-identically from its manifest.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ServingError


@dataclass(frozen=True)
class TraceRequest:
    """One arrival in a synthetic trace."""

    arrival_time: float
    prompt: np.ndarray
    max_new_tokens: int
    tenant: Optional[int] = None   # prefix-family tenant id (None elsewhere)
    qos: Optional[str] = None      # QoS class name (``qos_mix`` sampling)


def _resolve_rng(rng: Optional[np.random.Generator], seed: int) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng(seed)


def _check_common(n_requests: int, vocab_size: int) -> None:
    if n_requests <= 0:
        raise ServingError("n_requests must be positive")
    if vocab_size <= 0:
        raise ServingError("vocab_size must be positive")


def _check_range(name: str, bounds: Tuple[int, int]) -> None:
    low, high = bounds
    if low <= 0 or high < low:
        raise ServingError(f"{name} range must satisfy 0 < low <= high")


def _uniform_length(rng: np.random.Generator, bounds: Tuple[int, int]) -> int:
    return int(rng.integers(bounds[0], bounds[1] + 1))


def _lognormal_length(
    rng: np.random.Generator, bounds: Tuple[int, int], sigma: float
) -> int:
    """A log-normal draw whose median sits at the range's geometric mean,
    clamped into ``bounds`` — the classic heavy-tail length model."""
    low, high = bounds
    median = float(np.sqrt(low * high))
    draw = rng.lognormal(mean=np.log(median), sigma=sigma)
    return int(min(high, max(low, round(draw))))


def _request(
    arrival: float,
    prompt_tokens: np.ndarray,
    max_new_tokens: int,
    tenant: Optional[int] = None,
) -> TraceRequest:
    return TraceRequest(
        arrival_time=float(arrival),
        prompt=np.asarray(prompt_tokens, dtype=np.int64),
        max_new_tokens=int(max_new_tokens),
        tenant=tenant,
    )


def poisson_trace(
    n_requests: int,
    rate_rps: float,
    vocab_size: int,
    prompt_len: Tuple[int, int] = (8, 32),
    new_tokens: Tuple[int, int] = (4, 16),
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> List[TraceRequest]:
    """A Poisson-arrival trace of ``n_requests`` random-token requests.

    ``prompt_len`` and ``new_tokens`` are inclusive ``(low, high)`` ranges.
    """
    _check_common(n_requests, vocab_size)
    if rate_rps <= 0:
        raise ServingError("rate_rps must be positive")
    _check_range("prompt_len", tuple(prompt_len))
    _check_range("new_tokens", tuple(new_tokens))
    rng = _resolve_rng(rng, seed)
    gaps = rng.exponential(scale=1.0 / rate_rps, size=n_requests)
    arrivals = np.cumsum(gaps)
    trace: List[TraceRequest] = []
    for index in range(n_requests):
        length = _uniform_length(rng, tuple(prompt_len))
        budget = _uniform_length(rng, tuple(new_tokens))
        prompt = rng.integers(0, vocab_size, size=length, dtype=np.int64)
        trace.append(_request(arrivals[index], prompt, budget))
    return trace


def diurnal_trace(
    n_requests: int,
    rate_rps: float,
    vocab_size: int,
    prompt_len: Tuple[int, int] = (8, 32),
    new_tokens: Tuple[int, int] = (4, 16),
    peak_ratio: float = 4.0,
    period_s: float = 10.0,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> List[TraceRequest]:
    """A nonhomogeneous Poisson process with a sinusoidal day/night curve.

    The instantaneous rate swings between ``rate_rps`` (trough) and
    ``rate_rps * peak_ratio`` (peak) with period ``period_s`` (a compressed
    "day").  Arrivals are generated by thinning a homogeneous process at
    the peak rate.
    """
    _check_common(n_requests, vocab_size)
    if rate_rps <= 0 or peak_ratio < 1.0 or period_s <= 0:
        raise ServingError("need rate_rps > 0, peak_ratio >= 1, period_s > 0")
    _check_range("prompt_len", tuple(prompt_len))
    _check_range("new_tokens", tuple(new_tokens))
    rng = _resolve_rng(rng, seed)
    peak = rate_rps * peak_ratio
    trace: List[TraceRequest] = []
    t = 0.0
    while len(trace) < n_requests:
        t += float(rng.exponential(scale=1.0 / peak))
        # rate(t) in [rate_rps, peak], trough at t=0 (cold start).
        phase = 0.5 * (1.0 - np.cos(2.0 * np.pi * t / period_s))
        rate_t = rate_rps + (peak - rate_rps) * phase
        if rng.uniform() > rate_t / peak:
            continue  # thinned
        length = _uniform_length(rng, tuple(prompt_len))
        budget = _uniform_length(rng, tuple(new_tokens))
        prompt = rng.integers(0, vocab_size, size=length, dtype=np.int64)
        trace.append(_request(t, prompt, budget))
    return trace


def bursty_trace(
    n_requests: int,
    rate_rps: float,
    vocab_size: int,
    prompt_len: Tuple[int, int] = (8, 32),
    new_tokens: Tuple[int, int] = (4, 16),
    burst_factor: float = 8.0,
    mean_burst_s: float = 0.2,
    mean_quiet_s: float = 1.0,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> List[TraceRequest]:
    """A two-state Markov-modulated Poisson process (quiet / burst).

    Quiet periods arrive at ``rate_rps``; bursts multiply the rate by
    ``burst_factor``.  State dwell times are exponential with the given
    means, so inter-arrival gaps are overdispersed relative to Poisson —
    the queueing regime that stresses admission control and preemption.
    """
    _check_common(n_requests, vocab_size)
    if rate_rps <= 0 or burst_factor < 1.0 or mean_burst_s <= 0 or mean_quiet_s <= 0:
        raise ServingError(
            "need rate_rps > 0, burst_factor >= 1, positive dwell times"
        )
    _check_range("prompt_len", tuple(prompt_len))
    _check_range("new_tokens", tuple(new_tokens))
    rng = _resolve_rng(rng, seed)
    trace: List[TraceRequest] = []
    t = 0.0
    bursting = False
    state_left = float(rng.exponential(scale=mean_quiet_s))
    while len(trace) < n_requests:
        rate = rate_rps * (burst_factor if bursting else 1.0)
        gap = float(rng.exponential(scale=1.0 / rate))
        while gap >= state_left:
            # Cross into the next dwell period; re-draw the residual gap
            # at the new rate (memorylessness makes this exact).
            t += state_left
            bursting = not bursting
            rate = rate_rps * (burst_factor if bursting else 1.0)
            state_left = float(
                rng.exponential(scale=mean_burst_s if bursting else mean_quiet_s)
            )
            gap = float(rng.exponential(scale=1.0 / rate))
        t += gap
        state_left -= gap
        length = _uniform_length(rng, tuple(prompt_len))
        budget = _uniform_length(rng, tuple(new_tokens))
        prompt = rng.integers(0, vocab_size, size=length, dtype=np.int64)
        trace.append(_request(t, prompt, budget))
    return trace


def heavy_tail_trace(
    n_requests: int,
    rate_rps: float,
    vocab_size: int,
    prompt_len: Tuple[int, int] = (8, 64),
    new_tokens: Tuple[int, int] = (4, 32),
    sigma: float = 0.8,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> List[TraceRequest]:
    """Poisson arrivals with log-normal (heavy-tailed) lengths.

    Most requests are short; a few near the ``high`` clamp dominate token
    volume — the length regime where chunked prefill and the token budget
    actually matter.
    """
    _check_common(n_requests, vocab_size)
    if rate_rps <= 0 or sigma <= 0:
        raise ServingError("rate_rps and sigma must be positive")
    _check_range("prompt_len", tuple(prompt_len))
    _check_range("new_tokens", tuple(new_tokens))
    rng = _resolve_rng(rng, seed)
    gaps = rng.exponential(scale=1.0 / rate_rps, size=n_requests)
    arrivals = np.cumsum(gaps)
    trace: List[TraceRequest] = []
    for index in range(n_requests):
        length = _lognormal_length(rng, tuple(prompt_len), sigma)
        budget = _lognormal_length(rng, tuple(new_tokens), sigma)
        prompt = rng.integers(0, vocab_size, size=length, dtype=np.int64)
        trace.append(_request(arrivals[index], prompt, budget))
    return trace


def shared_prefix_trace(
    n_requests: int,
    rate_rps: float,
    vocab_size: int,
    n_tenants: int = 4,
    prefix_tokens: int = 32,
    suffix_len: Tuple[int, int] = (4, 12),
    new_tokens: Tuple[int, int] = (4, 16),
    zipf_alpha: float = 1.0,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> List[TraceRequest]:
    """A multi-tenant mix where every request repeats its tenant's prefix.

    Each of ``n_tenants`` tenants owns a fixed random ``prefix_tokens``-long
    prompt prefix (system prompt / few-shot examples); requests pick a
    tenant with Zipf-weighted popularity (``zipf_alpha=0`` → uniform) and
    append a private uniform-length suffix.  Align ``prefix_tokens`` to the
    engine's ``block_tokens`` to make the whole prefix shareable.
    """
    _check_common(n_requests, vocab_size)
    if rate_rps <= 0:
        raise ServingError("rate_rps must be positive")
    if n_tenants <= 0 or prefix_tokens <= 0:
        raise ServingError("n_tenants and prefix_tokens must be positive")
    if zipf_alpha < 0:
        raise ServingError("zipf_alpha must be non-negative")
    _check_range("suffix_len", tuple(suffix_len))
    _check_range("new_tokens", tuple(new_tokens))
    rng = _resolve_rng(rng, seed)
    prefixes = [
        rng.integers(0, vocab_size, size=prefix_tokens, dtype=np.int64)
        for _ in range(n_tenants)
    ]
    weights = np.array([1.0 / (i + 1) ** zipf_alpha for i in range(n_tenants)])
    weights /= weights.sum()
    gaps = rng.exponential(scale=1.0 / rate_rps, size=n_requests)
    arrivals = np.cumsum(gaps)
    trace: List[TraceRequest] = []
    for index in range(n_requests):
        tenant = int(rng.choice(n_tenants, p=weights))
        suffix = rng.integers(
            0, vocab_size, size=_uniform_length(rng, tuple(suffix_len)), dtype=np.int64
        )
        prompt = np.concatenate([prefixes[tenant], suffix])
        budget = _uniform_length(rng, tuple(new_tokens))
        trace.append(_request(arrivals[index], prompt, budget, tenant=tenant))
    return trace


#: family name -> generator; every generator takes
#: (n_requests, rate_rps, vocab_size, ..., seed=, rng=) and returns a list
#: of :class:`TraceRequest`.
TRACE_FAMILIES = {
    "poisson": poisson_trace,
    "diurnal": diurnal_trace,
    "bursty": bursty_trace,
    "heavy-tail": heavy_tail_trace,
    "prefix": shared_prefix_trace,
}


def assign_qos(
    trace: List[TraceRequest],
    mix: Dict[str, float],
    rng: np.random.Generator,
) -> List[TraceRequest]:
    """Tag each request with a QoS class sampled from ``mix`` (name ->
    weight).  Sampling consumes the same generator as the trace itself, so
    a manifest replay reproduces the class assignment bit for bit."""
    if not mix:
        raise ServingError("qos mix must name at least one class")
    names = list(mix)
    weights = np.asarray([mix[name] for name in names], dtype=np.float64)
    if np.any(weights <= 0):
        raise ServingError(f"qos mix weights must be positive: {mix}")
    weights /= weights.sum()
    picks = rng.choice(len(names), size=len(trace), p=weights)
    return [
        replace(request, qos=names[int(pick)])
        for request, pick in zip(trace, picks)
    ]


def make_trace(
    family: str,
    n_requests: int,
    rate_rps: float,
    vocab_size: int,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
    qos_mix: Optional[Dict[str, float]] = None,
    **params,
) -> List[TraceRequest]:
    """Build a trace from a ``(family, params)`` description.

    This is the manifest replay entry point: a serve-bench run records
    exactly these arguments in ``manifest.json``, and feeding them back
    reproduces the trace bit for bit.  ``qos_mix`` (class name -> weight)
    additionally samples a QoS class per request, drawn from the same
    generator stream after the family's own draws.
    """
    try:
        generator = TRACE_FAMILIES[family]
    except KeyError:
        raise ServingError(
            f"unknown trace family {family!r}; have {sorted(TRACE_FAMILIES)}"
        ) from None
    rng = _resolve_rng(rng, seed)
    trace = generator(n_requests, rate_rps, vocab_size, rng=rng, **params)
    if qos_mix is not None:
        trace = assign_qos(trace, qos_mix, rng)
    return trace


def trace_stats(trace: List[TraceRequest]) -> Dict[str, float]:
    """Shape summary of a trace (recorded alongside bench results)."""
    if not trace:
        raise ServingError("cannot summarize an empty trace")
    prompts = np.asarray([t.prompt.size for t in trace], dtype=np.float64)
    budgets = np.asarray([t.max_new_tokens for t in trace], dtype=np.float64)
    arrivals = np.asarray([t.arrival_time for t in trace], dtype=np.float64)
    span = float(arrivals.max() - arrivals.min())
    gaps = np.diff(np.sort(arrivals))
    burstiness = (
        float(gaps.std() / gaps.mean()) if gaps.size and gaps.mean() > 0 else 0.0
    )
    tenants = {t.tenant for t in trace if t.tenant is not None}
    qos_classes = {t.qos for t in trace if t.qos is not None}
    return {
        "n_requests": len(trace),
        "span_s": span,
        "mean_rate_rps": len(trace) / span if span > 0 else float("inf"),
        "prompt_mean": float(prompts.mean()),
        "prompt_p95": float(np.quantile(prompts, 0.95)),
        "prompt_max": float(prompts.max()),
        "new_tokens_mean": float(budgets.mean()),
        "gap_cv": burstiness,  # coefficient of variation; 1.0 == Poisson
        "n_tenants": len(tenants),
        "n_qos_classes": len(qos_classes),
    }


__all__ = [
    "TRACE_FAMILIES",
    "TraceRequest",
    "assign_qos",
    "bursty_trace",
    "diurnal_trace",
    "heavy_tail_trace",
    "make_trace",
    "poisson_trace",
    "shared_prefix_trace",
    "trace_stats",
]
