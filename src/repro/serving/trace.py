"""Synthetic request traces for the serving benchmark.

Arrivals follow a Poisson process (exponential inter-arrival gaps at a
given rate); prompt lengths and generation budgets are drawn uniformly from
caller-supplied ranges, and prompt tokens uniformly from the model's
vocabulary.  Everything is driven by a seeded generator, so the same trace
can be replayed against every model variant for an apples-to-apples
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ServingError


@dataclass(frozen=True)
class TraceRequest:
    """One arrival in a synthetic trace."""

    arrival_time: float
    prompt: np.ndarray
    max_new_tokens: int


def poisson_trace(
    n_requests: int,
    rate_rps: float,
    vocab_size: int,
    prompt_len: Tuple[int, int] = (8, 32),
    new_tokens: Tuple[int, int] = (4, 16),
    seed: int = 0,
) -> List[TraceRequest]:
    """A Poisson-arrival trace of ``n_requests`` random-token requests.

    ``prompt_len`` and ``new_tokens`` are inclusive ``(low, high)`` ranges.
    """
    if n_requests <= 0:
        raise ServingError("n_requests must be positive")
    if rate_rps <= 0:
        raise ServingError("rate_rps must be positive")
    if vocab_size <= 0:
        raise ServingError("vocab_size must be positive")
    for name, (low, high) in (("prompt_len", prompt_len), ("new_tokens", new_tokens)):
        if low <= 0 or high < low:
            raise ServingError(f"{name} range must satisfy 0 < low <= high")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate_rps, size=n_requests)
    arrivals = np.cumsum(gaps)
    trace: List[TraceRequest] = []
    for index in range(n_requests):
        length = int(rng.integers(prompt_len[0], prompt_len[1] + 1))
        budget = int(rng.integers(new_tokens[0], new_tokens[1] + 1))
        prompt = rng.integers(0, vocab_size, size=length, dtype=np.int64)
        trace.append(
            TraceRequest(
                arrival_time=float(arrivals[index]),
                prompt=prompt,
                max_new_tokens=budget,
            )
        )
    return trace
