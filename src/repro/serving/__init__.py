"""In-process serving subsystem: continuous batching over pooled KV blocks.

The paper characterizes decomposition's latency/energy/memory effects in a
*serving* setting (Figures 10-12).  This package provides the measurement
substrate: an iteration-level scheduler (:class:`InferenceEngine`) that
mixes prefill chunks and decode steps in one ragged batch per step, a
preallocated block-based KV-cache pool shared across requests
(:class:`KVBlockPool`), a lazy registry of decomposed model variants
(:class:`VariantRegistry`), and a trace-replay benchmark
(:func:`run_serve_bench`) that pairs measured throughput with the analytic
roofline projection from :mod:`repro.hwmodel`.
"""

from repro.serving.bench import (
    ServeBenchReport,
    VariantBenchResult,
    bench_variant,
    replay_trace,
    run_serve_bench,
)
from repro.serving.engine import EngineConfig, InferenceEngine, StepReport
from repro.serving.metrics import EngineMetrics, SampleStats
from repro.serving.pool import KVBlockPool, PooledLayerCache, PooledSequenceCache
from repro.serving.request import (
    ACTIVE_STATES,
    TERMINAL_STATES,
    GenerationRequest,
    GenerationResult,
    RequestState,
)
from repro.serving.trace import TraceRequest, poisson_trace
from repro.serving.variants import (
    ModelVariant,
    VariantRegistry,
    parse_variant_spec,
)

__all__ = [
    "ACTIVE_STATES",
    "TERMINAL_STATES",
    "EngineConfig",
    "EngineMetrics",
    "GenerationRequest",
    "GenerationResult",
    "InferenceEngine",
    "KVBlockPool",
    "ModelVariant",
    "PooledLayerCache",
    "PooledSequenceCache",
    "RequestState",
    "SampleStats",
    "ServeBenchReport",
    "StepReport",
    "TraceRequest",
    "VariantBenchResult",
    "VariantRegistry",
    "bench_variant",
    "parse_variant_spec",
    "poisson_trace",
    "replay_trace",
    "run_serve_bench",
]
