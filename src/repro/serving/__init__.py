"""In-process serving subsystem: continuous batching over pooled KV blocks.

The paper characterizes decomposition's latency/energy/memory effects in a
*serving* setting (Figures 10-12).  This package provides the measurement
substrate: an iteration-level scheduler (:class:`InferenceEngine`) that
mixes prefill chunks and decode steps in one ragged batch per step, a
preallocated block-based KV-cache pool shared across requests
(:class:`KVBlockPool`), a lazy registry of decomposed model variants
(:class:`VariantRegistry`), and a trace-replay benchmark
(:func:`run_serve_bench`) that pairs measured throughput with the analytic
roofline projection from :mod:`repro.hwmodel`.

On top of that sits the QoS subsystem (:mod:`repro.serving.qos`):
per-request service classes with TTFT SLOs and quality floors, a
load-aware :class:`RankRouter` that walks the variant quality ladder under
load (hot-swapping a live request's decode variant between steps), and
goodput scoring that judges routed replays against every fixed variant.
"""

from repro.serving.artifacts import (
    append_trajectory,
    load_run,
    render_report,
    trace_from_manifest,
    trace_manifest,
    write_run_artifact,
)
from repro.serving.bench import (
    ROUTER_SPEC,
    ServeBenchReport,
    VariantBenchResult,
    bench_routed,
    bench_variant,
    replay_trace,
    request_records,
    run_serve_bench,
)
from repro.serving.qos import (
    DEFAULT_QOS_CLASSES,
    QUALITY_LADDER,
    GoodputSummary,
    QoSClass,
    RankRouter,
    RouterConfig,
    RouterDecision,
    ScriptedRouter,
    calibrate_unit,
    goodput_summary,
    ladder_index,
    qos_catalog,
    qos_mix,
)
from repro.serving.engine import EngineConfig, InferenceEngine, StepReport
from repro.serving.metrics import EngineMetrics, QoSClassMetrics, SampleStats
from repro.serving.paged import PagedKVStore, PagedLayerCache, PagedSequenceCache
from repro.serving.pool import KVBlockPool, PooledLayerCache, PooledSequenceCache
from repro.serving.request import (
    ACTIVE_STATES,
    TERMINAL_STATES,
    GenerationRequest,
    GenerationResult,
    RequestState,
)
from repro.serving.trace import (
    TRACE_FAMILIES,
    TraceRequest,
    assign_qos,
    bursty_trace,
    diurnal_trace,
    heavy_tail_trace,
    make_trace,
    poisson_trace,
    shared_prefix_trace,
    trace_stats,
)
from repro.serving.variants import (
    ModelVariant,
    VariantRegistry,
    parse_variant_spec,
)

__all__ = [
    "ACTIVE_STATES",
    "DEFAULT_QOS_CLASSES",
    "QUALITY_LADDER",
    "ROUTER_SPEC",
    "TERMINAL_STATES",
    "TRACE_FAMILIES",
    "EngineConfig",
    "EngineMetrics",
    "GenerationRequest",
    "GenerationResult",
    "GoodputSummary",
    "InferenceEngine",
    "KVBlockPool",
    "ModelVariant",
    "PagedKVStore",
    "PagedLayerCache",
    "PagedSequenceCache",
    "PooledLayerCache",
    "PooledSequenceCache",
    "QoSClass",
    "QoSClassMetrics",
    "RankRouter",
    "RequestState",
    "RouterConfig",
    "RouterDecision",
    "SampleStats",
    "ScriptedRouter",
    "ServeBenchReport",
    "StepReport",
    "TraceRequest",
    "VariantBenchResult",
    "VariantRegistry",
    "append_trajectory",
    "assign_qos",
    "bench_routed",
    "bench_variant",
    "bursty_trace",
    "calibrate_unit",
    "diurnal_trace",
    "goodput_summary",
    "heavy_tail_trace",
    "ladder_index",
    "load_run",
    "make_trace",
    "parse_variant_spec",
    "poisson_trace",
    "qos_catalog",
    "qos_mix",
    "render_report",
    "replay_trace",
    "request_records",
    "run_serve_bench",
    "shared_prefix_trace",
    "trace_from_manifest",
    "trace_manifest",
    "trace_stats",
    "write_run_artifact",
]
