"""In-process serving subsystem: continuous batching over pooled KV blocks.

The paper characterizes decomposition's latency/energy/memory effects in a
*serving* setting (Figures 10-12).  This package provides the measurement
substrate: an iteration-level scheduler (:class:`InferenceEngine`) that
mixes prefill chunks and decode steps in one ragged batch per step, a
preallocated block-based KV-cache pool shared across requests
(:class:`KVBlockPool`), a lazy registry of decomposed model variants
(:class:`VariantRegistry`), and a trace-replay benchmark
(:func:`run_serve_bench`) that pairs measured throughput with the analytic
roofline projection from :mod:`repro.hwmodel`.
"""

from repro.serving.artifacts import (
    load_run,
    trace_from_manifest,
    trace_manifest,
    write_run_artifact,
)
from repro.serving.bench import (
    ServeBenchReport,
    VariantBenchResult,
    bench_variant,
    replay_trace,
    request_records,
    run_serve_bench,
)
from repro.serving.engine import EngineConfig, InferenceEngine, StepReport
from repro.serving.metrics import EngineMetrics, SampleStats
from repro.serving.paged import PagedKVStore, PagedLayerCache, PagedSequenceCache
from repro.serving.pool import KVBlockPool, PooledLayerCache, PooledSequenceCache
from repro.serving.request import (
    ACTIVE_STATES,
    TERMINAL_STATES,
    GenerationRequest,
    GenerationResult,
    RequestState,
)
from repro.serving.trace import (
    TRACE_FAMILIES,
    TraceRequest,
    bursty_trace,
    diurnal_trace,
    heavy_tail_trace,
    make_trace,
    poisson_trace,
    shared_prefix_trace,
    trace_stats,
)
from repro.serving.variants import (
    ModelVariant,
    VariantRegistry,
    parse_variant_spec,
)

__all__ = [
    "ACTIVE_STATES",
    "TERMINAL_STATES",
    "TRACE_FAMILIES",
    "EngineConfig",
    "EngineMetrics",
    "GenerationRequest",
    "GenerationResult",
    "InferenceEngine",
    "KVBlockPool",
    "ModelVariant",
    "PagedKVStore",
    "PagedLayerCache",
    "PagedSequenceCache",
    "PooledLayerCache",
    "PooledSequenceCache",
    "RequestState",
    "SampleStats",
    "ServeBenchReport",
    "StepReport",
    "TraceRequest",
    "VariantBenchResult",
    "VariantRegistry",
    "bench_variant",
    "bursty_trace",
    "diurnal_trace",
    "heavy_tail_trace",
    "load_run",
    "make_trace",
    "parse_variant_spec",
    "poisson_trace",
    "replay_trace",
    "request_records",
    "run_serve_bench",
    "shared_prefix_trace",
    "trace_from_manifest",
    "trace_manifest",
    "trace_stats",
    "write_run_artifact",
]
