"""In-process continuous-batching inference engine.

Iteration-level scheduling in the style of Orca/vLLM: every call to
:meth:`InferenceEngine.step` assembles one ragged batch mixing *prefill
chunks* of newly admitted requests with *single-token decode steps* of all
running requests, bounded by a per-step token budget, and runs it through
the model's ragged cached forward in a single pass.  KV state lives in a
shared preallocated :class:`~repro.serving.pool.KVBlockPool`; when it runs
dry the youngest running request is preempted (blocks released, tokens
kept) and later re-prefilled, so results are unchanged.

The engine is clock-agnostic: callers pass ``now`` into :meth:`submit` /
:meth:`step`, and the step's *measured* model time advances whatever clock
the caller maintains (the benchmark replays a Poisson trace on a virtual
clock driven by real compute durations).  Deadlines, TTFT, and queue waits
are all expressed on that clock.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import PoolExhaustedError, ServingError
from repro.runtime.decode import DecodeState
from repro.serving.metrics import EngineMetrics
from repro.serving.pool import KVBlockPool
from repro.serving.request import (
    ACTIVE_STATES,
    GenerationRequest,
    GenerationResult,
    RequestState,
)


@dataclass(frozen=True)
class EngineConfig:
    """Engine sizing knobs."""

    max_batch: int = 16         # max concurrently running requests
    token_budget: int = 64      # max tokens processed per step (prefill + decode)
    n_blocks: int = 256         # KV pool size, in blocks
    block_tokens: int = 16      # token slots per block
    max_queue: int = 4096       # admission queue bound

    def __post_init__(self) -> None:
        if self.max_batch <= 0 or self.token_budget <= 0:
            raise ServingError("max_batch and token_budget must be positive")
        if self.token_budget < self.max_batch:
            raise ServingError(
                "token_budget must be >= max_batch so every running request "
                "can decode one token per step"
            )
        if self.max_queue <= 0:
            raise ServingError("max_queue must be positive")


@dataclass(frozen=True)
class StepReport:
    """What one engine iteration did."""

    now: float
    duration_s: float
    decode_rows: int
    prefill_rows: int
    prefill_tokens: int
    finished: Tuple[int, ...] = ()

    @property
    def n_rows(self) -> int:
        return self.decode_rows + self.prefill_rows

    @property
    def idle(self) -> bool:
        return self.n_rows == 0


class InferenceEngine:
    """Continuous-batching greedy-decoding engine over one model."""

    def __init__(
        self,
        model,
        config: Optional[EngineConfig] = None,
        timer: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.model = model
        self.model.eval()
        self.config = config or EngineConfig()
        self.timer = timer
        # Tensor-parallel model facades supply their own pool holding one
        # KV slice per rank; a plain model gets the shared single pool.
        pool_factory = getattr(model, "make_kv_pool", None)
        if pool_factory is not None:
            self.pool = pool_factory(
                n_blocks=self.config.n_blocks,
                block_tokens=self.config.block_tokens,
            )
        else:
            self.pool = KVBlockPool(
                model.config,
                n_blocks=self.config.n_blocks,
                block_tokens=self.config.block_tokens,
            )
        self.metrics = EngineMetrics()
        self._queue: Deque[GenerationRequest] = deque()
        self._running: List[GenerationRequest] = []
        self._requests: Dict[int, GenerationRequest] = {}
        self._next_id = 0

    # -- submission --------------------------------------------------------
    def submit(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        stop_token: Optional[int] = None,
        deadline: Optional[float] = None,
        now: float = 0.0,
    ) -> GenerationRequest:
        """Enqueue a request; may reject it immediately (graceful refusal).

        Rejection reasons: the prompt + generation budget cannot fit the
        model's context window, could never fit the KV pool, or the queue
        is full.  Rejected requests carry ``finish_reason`` and never raise.
        """
        request = GenerationRequest(
            request_id=self._next_id,
            prompt=prompt,
            max_new_tokens=max_new_tokens,
            stop_token=stop_token,
            deadline=deadline,
            arrival_time=now,
        )
        self._next_id += 1
        self._requests[request.request_id] = request
        total = request.prompt.size + request.max_new_tokens
        if total > self.model.config.max_seq_len:
            self._reject(request, now, "context-overflow")
        elif not self.pool.fits(total):
            self._reject(request, now, "exceeds-pool")
        elif len(self._queue) >= self.config.max_queue:
            self._reject(request, now, "queue-full")
        else:
            self._queue.append(request)
        return request

    def cancel(self, request_id: int, now: float = 0.0) -> bool:
        """Cancel a queued or running request; returns False if terminal."""
        request = self._requests[request_id]
        if request.done:
            return False
        self._terminate(request, now, RequestState.CANCELLED, "cancelled")
        return True

    # -- state -------------------------------------------------------------
    @property
    def has_work(self) -> bool:
        return bool(self._queue) or bool(self._running)

    @property
    def n_running(self) -> int:
        return len(self._running)

    @property
    def n_queued(self) -> int:
        return len(self._queue)

    def request(self, request_id: int) -> GenerationRequest:
        return self._requests[request_id]

    def results(self) -> List[GenerationResult]:
        """Results of every terminal request, in submission order."""
        return [
            request.result()
            for request_id, request in sorted(self._requests.items())
            if request.done
        ]

    # -- the engine loop ---------------------------------------------------
    def step(self, now: float = 0.0) -> StepReport:
        """Run one continuous-batching iteration at virtual time ``now``."""
        self._expire_deadlines(now)
        rows = self._schedule(now)
        if not rows:
            return StepReport(
                now=now, duration_s=0.0, decode_rows=0, prefill_rows=0,
                prefill_tokens=0,
            )
        started = self.timer()
        lengths = np.asarray([chunk.size for _, chunk in rows], dtype=np.int64)
        batch = np.zeros((len(rows), int(lengths.max())), dtype=np.int64)
        for index, (_, chunk) in enumerate(rows):
            batch[index, : chunk.size] = chunk
        caches = [request.cache for request, _ in rows]
        logits = self.model.forward_ragged(batch, caches, lengths)
        duration = max(self.timer() - started, 1e-9)
        completion = now + duration

        decode_rows = sum(1 for request, _ in rows if request.state is RequestState.DECODE)
        prefill_rows = len(rows) - decode_rows
        prefill_tokens = int(
            sum(
                chunk.size
                for request, chunk in rows
                if request.state is not RequestState.DECODE
            )
        )
        finished: List[int] = []
        for index, (request, chunk) in enumerate(rows):
            covered = request.cache.seq_len  # advanced by the forward pass
            if covered < request.prefix.size:
                continue  # mid-prefill: more prompt chunks to come
            token = DecodeState.select(logits.data[index, int(lengths[index]) - 1])
            self._append_token(request, token, completion)
            if request.done:
                finished.append(request.request_id)
        self._running = [r for r in self._running if r.state in ACTIVE_STATES]
        self.metrics.record_step(duration, decode_rows, prefill_rows, prefill_tokens)
        return StepReport(
            now=now,
            duration_s=duration,
            decode_rows=decode_rows,
            prefill_rows=prefill_rows,
            prefill_tokens=prefill_tokens,
            finished=tuple(finished),
        )

    def run_until_idle(self, now: float = 0.0, max_steps: int = 100000) -> float:
        """Step until all submitted work is terminal; returns the final time."""
        steps = 0
        while self.has_work:
            report = self.step(now)
            now += report.duration_s
            steps += 1
            if steps > max_steps:
                raise ServingError(f"engine failed to drain within {max_steps} steps")
        return now

    # -- scheduling --------------------------------------------------------
    def _schedule(self, now: float) -> List[Tuple[GenerationRequest, np.ndarray]]:
        """Pick this step's rows: running requests first, then admissions."""
        rows: List[Tuple[GenerationRequest, np.ndarray]] = []
        scheduled = set()  # ids already placed in rows: never preempt these
        budget = self.config.token_budget
        preempted: List[GenerationRequest] = []
        for request in list(self._running):
            if request.state not in ACTIVE_STATES:
                continue  # preempted earlier in this very scheduling pass
            if budget <= 0:
                break
            prefix = request.prefix
            remaining = prefix[request.cache.seq_len :]
            take = min(remaining.size, budget)
            if take == 0:
                raise ServingError(
                    f"request {request.request_id} scheduled with empty chunk"
                )
            if not self._reserve_with_preemption(request, take, scheduled, preempted):
                continue  # request itself was preempted
            rows.append((request, remaining[:take]))
            scheduled.add(request.request_id)
            budget -= take
        self._requeue(preempted)

        while budget > 0 and self._queue and self._active_count() < self.config.max_batch:
            request = self._queue[0]
            take = min(request.prefix.size, budget)
            cache = self.pool.allocate_sequence()
            try:
                cache.reserve(take)
            except PoolExhaustedError:
                cache.free()
                break  # pool pressure: leave queued, try next step
            self._queue.popleft()
            request.cache = cache
            request.state = RequestState.PREFILL
            if request.first_scheduled_time is None:
                request.first_scheduled_time = now
            self._running.append(request)
            rows.append((request, request.prefix[:take]))
            budget -= take
        return rows

    def _active_count(self) -> int:
        return sum(1 for r in self._running if r.state in ACTIVE_STATES)

    def _reserve_with_preemption(
        self,
        request: GenerationRequest,
        tokens: int,
        scheduled: set,
        preempted: List[GenerationRequest],
    ) -> bool:
        """Reserve cache slots, preempting younger requests on pool pressure.

        Victims are drawn youngest-first from running requests not yet
        scheduled into this step (rows already built must keep their
        reserved blocks).  Returns False when ``request`` itself had to be
        preempted because no other victim remained.
        """
        while True:
            try:
                request.cache.reserve(tokens)
                return True
            except PoolExhaustedError:
                victim = self._youngest_running(exclude=request, scheduled=scheduled)
                if victim is None:
                    self._preempt(request, preempted)
                    return False
                self._preempt(victim, preempted)

    def _youngest_running(self, exclude: GenerationRequest, scheduled: set):
        for candidate in reversed(self._running):
            if (
                candidate is exclude
                or candidate.request_id in scheduled
                or candidate.state not in ACTIVE_STATES
            ):
                continue
            return candidate
        return None

    def _preempt(
        self, request: GenerationRequest, preempted: List[GenerationRequest]
    ) -> None:
        request.cache.free()
        request.cache = None
        request.state = RequestState.QUEUED
        request.preemptions += 1
        self.metrics.preemptions += 1
        preempted.append(request)

    def _requeue(self, preempted: List[GenerationRequest]) -> None:
        if not preempted:
            return
        self._running = [r for r in self._running if r.state in ACTIVE_STATES]
        # Preempted requests go back to the queue head in arrival order so
        # they are re-admitted before newer traffic.
        ordered = sorted(
            preempted, key=lambda r: (r.arrival_time, r.request_id), reverse=True
        )
        for request in ordered:
            self._queue.appendleft(request)

    # -- token/terminal bookkeeping ---------------------------------------
    def _append_token(
        self, request: GenerationRequest, token: int, completion: float
    ) -> None:
        # Termination policy lives in the runtime's DecodeState (shared with
        # the greedy-generation loop); the engine only maps the finish
        # reason onto the request lifecycle.
        reason = request.decode.append(token)
        if request.first_token_time is None:
            request.first_token_time = completion
        request.state = RequestState.DECODE
        if reason is not None:
            self._terminate(request, completion, RequestState.FINISHED, reason)

    def _expire_deadlines(self, now: float) -> None:
        for request in list(self._queue) + list(self._running):
            if request.done or request.deadline is None:
                continue
            if now > request.deadline:
                self._terminate(request, now, RequestState.CANCELLED, "deadline")

    def _reject(self, request: GenerationRequest, now: float, reason: str) -> None:
        self._terminate(request, now, RequestState.REJECTED, reason)

    def _terminate(
        self,
        request: GenerationRequest,
        now: float,
        state: RequestState,
        reason: str,
    ) -> None:
        if request.cache is not None:
            request.cache.free()
            request.cache = None
        was_queued = request.state is RequestState.QUEUED
        request.state = state
        request.finish_reason = reason
        request.finish_time = now
        if was_queued and request in self._queue:
            try:
                self._queue.remove(request)
            except ValueError:
                pass
        self._running = [r for r in self._running if r.state in ACTIVE_STATES]
        self.metrics.record_terminal(request)
