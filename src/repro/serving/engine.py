"""In-process continuous-batching inference engine.

Iteration-level scheduling in the style of Orca/vLLM: every call to
:meth:`InferenceEngine.step` assembles one ragged batch mixing *prefill
chunks* of newly admitted requests with *single-token decode steps* of all
running requests, bounded by a per-step token budget, and runs it through
the model's ragged cached forward in a single pass.  KV state lives in a
shared preallocated :class:`~repro.serving.pool.KVBlockPool`; when it runs
dry the youngest running request is preempted (blocks released, tokens
kept) and later re-prefilled, so results are unchanged.

The engine is clock-agnostic: callers pass ``now`` into :meth:`submit` /
:meth:`step`, and the step's *measured* model time advances whatever clock
the caller maintains (the benchmark replays a Poisson trace on a virtual
clock driven by real compute durations).  Deadlines, TTFT, and queue waits
are all expressed on that clock.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import PoolExhaustedError, ServingError
from repro.runtime.decode import DecodeState
from repro.serving.metrics import EngineMetrics
from repro.serving.paged import PagedKVStore
from repro.serving.pool import KVBlockPool
from repro.serving.request import (
    ACTIVE_STATES,
    GenerationRequest,
    GenerationResult,
    RequestState,
)


@dataclass(frozen=True)
class EngineConfig:
    """Engine sizing knobs."""

    max_batch: int = 16         # max concurrently running requests
    token_budget: int = 64      # max tokens processed per step (prefill + decode)
    n_blocks: int = 256         # KV pool size, in blocks
    block_tokens: int = 16      # token slots per block
    max_queue: int = 4096       # admission queue bound
    spec_k: int = 4             # draft tokens per speculative cycle (the cap)
    spec_blocks: Optional[int] = None  # drafter KV pool size (None: n_blocks)
    # Acceptance-aware draft lengths: each request tracks an EMA of its own
    # acceptance rate and drafts K in [1, spec_k] proportional to it, so a
    # request the drafter predicts well speculates deep while one it keeps
    # missing on stops wasting drafter steps (committed tokens are
    # unchanged either way — adaptation only moves the draft/verify split).
    spec_adaptive: bool = False
    spec_ema_alpha: float = 0.5  # acceptance-EMA weight (fresh cycle share)
    # Cross-request prefix sharing: KV state lives in one global paged
    # store with a radix index over token ids, so requests with a common
    # prefix skip its prefill and share pages copy-on-write.  Off falls
    # back to the per-request block pool (the identity baseline).
    prefix_sharing: bool = True

    def __post_init__(self) -> None:
        if self.max_batch <= 0 or self.token_budget <= 0:
            raise ServingError("max_batch and token_budget must be positive")
        if self.token_budget < self.max_batch:
            raise ServingError(
                "token_budget must be >= max_batch so every running request "
                "can decode one token per step"
            )
        if self.max_queue <= 0:
            raise ServingError("max_queue must be positive")
        if self.spec_k < 1:
            raise ServingError("spec_k must be >= 1")
        if self.spec_blocks is not None and self.spec_blocks <= 0:
            raise ServingError("spec_blocks must be positive when set")
        if not 0.0 < self.spec_ema_alpha <= 1.0:
            raise ServingError("spec_ema_alpha must be in (0, 1]")


@dataclass(frozen=True)
class StepReport:
    """What one engine iteration did."""

    now: float
    duration_s: float
    decode_rows: int
    prefill_rows: int
    prefill_tokens: int
    finished: Tuple[int, ...] = ()
    committed: int = 0       # tokens emitted this step (all rows)
    spec_drafted: int = 0    # drafter proposals verified this step
    spec_accepted: int = 0   # proposals accepted this step
    swaps: int = 0           # mid-flight variant hot-swaps this step

    @property
    def n_rows(self) -> int:
        return self.decode_rows + self.prefill_rows

    @property
    def idle(self) -> bool:
        return self.n_rows == 0


class InferenceEngine:
    """Continuous-batching greedy-decoding engine over one model.

    With a ``router`` and a ``variants`` map the engine becomes
    *multi-variant*: each step the router picks, per request, the cheapest
    decomposed variant satisfying the request's quality floor at current
    load, and the step's ragged forward is grouped by variant.  KV caches
    hold variant-agnostic token state, so a running request's variant can
    change between steps with no recomputation (factor-structured weight
    hot-swap); only *sealing* new shared pages is frozen after a mid-decode
    swap, because a sealed page advertises "computed by the admission
    variant" to future prefix matches.
    """

    def __init__(
        self,
        model,
        config: Optional[EngineConfig] = None,
        timer: Callable[[], float] = time.perf_counter,
        drafter=None,
        router=None,
        variants: Optional[Dict[str, object]] = None,
    ) -> None:
        """``drafter`` — an optional cheaper model (canonically a decomposed
        variant of ``model``) enabling per-request speculative decoding via
        ``submit(..., speculative=True)``.  It gets its own KV pool
        (``config.spec_blocks`` blocks) so draft state never competes with
        verifier admission control.

        ``router`` — a :class:`~repro.serving.qos.RankRouter` (or scripted
        double) enabling adaptive variant routing; requires ``variants``
        mapping every ladder spec to a servable model.  ``model`` may be
        None in that case (the ladder's best variant anchors the pool)."""
        if router is not None:
            if not variants:
                raise ServingError("a routed engine needs a variants map")
            missing = [spec for spec in router.ladder if spec not in variants]
            if missing:
                raise ServingError(
                    f"variants map missing ladder specs: {missing}"
                )
            if model is None:
                model = variants[router.ladder[0]]
        elif variants:
            raise ServingError("variants without a router have no effect")
        self.router = router
        self.variants: Dict[str, object] = dict(variants or {})
        for variant_model in self.variants.values():
            variant_model.eval()
        self.model = model
        self.model.eval()
        self.config = config or EngineConfig()
        self.timer = timer
        # Tensor-parallel model facades supply their own pool holding one
        # KV slice per rank; a plain model gets the shared single pool.
        # With prefix sharing the pool is a paged store whose radix index
        # lets admission reuse already-computed prefixes.
        self.pool = self._make_pool(
            model, self.config.n_blocks, paged=self.config.prefix_sharing
        )
        self.drafter = drafter
        self.draft_pool = None
        if drafter is not None:
            drafter.eval()
            # The drafter's KV is private per request and rebuilt from the
            # prefix after preemption — never shared, so it stays a plain
            # per-request pool.
            self.draft_pool = self._make_pool(
                drafter, self.config.spec_blocks or self.config.n_blocks, paged=False
            )
        self.metrics = EngineMetrics()
        self._queue: Deque[GenerationRequest] = deque()
        self._running: List[GenerationRequest] = []
        self._requests: Dict[int, GenerationRequest] = {}
        self._next_id = 0

    def _make_pool(self, model, n_blocks: int, paged: bool = False):
        pool_factory = getattr(model, "make_kv_pool", None)
        if pool_factory is not None:
            return pool_factory(
                n_blocks=n_blocks, block_tokens=self.config.block_tokens, paged=paged
            )
        if paged:
            return PagedKVStore(
                model.config, n_blocks=n_blocks, block_tokens=self.config.block_tokens
            )
        return KVBlockPool(
            model.config, n_blocks=n_blocks, block_tokens=self.config.block_tokens
        )

    def _model_for(self, spec: Optional[str]):
        return self.model if spec is None else self.variants[spec]

    # -- submission --------------------------------------------------------
    def submit(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        stop_token: Optional[int] = None,
        deadline: Optional[float] = None,
        now: float = 0.0,
        speculative: bool = False,
        qos=None,
    ) -> GenerationRequest:
        """Enqueue a request; may reject it immediately (graceful refusal).

        Rejection reasons: the prompt + generation budget cannot fit the
        model's context window, could never fit the KV pool, or the queue
        is full.  Rejected requests carry ``finish_reason`` and never raise.

        ``speculative=True`` decodes this request through the engine's
        drafter/verifier loop — same tokens, fewer verifier-bound steps.
        Requesting it on an engine built without a drafter is a
        configuration error and raises.

        ``qos`` — an optional :class:`~repro.serving.qos.QoSClass` tagging
        the request with a TTFT SLO (measured, soft) and a quality floor
        (enforced: the router never serves it below that variant).  A hard
        ``deadline_s`` on the class becomes this request's deadline unless
        an explicit one is given.  Floors require a routed engine.
        """
        if speculative and self.drafter is None:
            raise ServingError(
                "speculative submission requires an engine drafter; "
                "construct InferenceEngine(model, drafter=...)"
            )
        if qos is not None:
            if qos.ttft_slo_s is None and qos.ttft_slo_units is not None:
                raise ServingError(
                    f"QoS class {qos.name!r} SLO is unresolved; call "
                    ".resolve(unit_s) or qos_catalog(..., unit_s=...) first"
                )
            if self.router is not None:
                # Fail fast on floors the ladder cannot satisfy.
                self.router.variant_for(qos.quality_floor)
            if deadline is None and qos.deadline_s is not None:
                deadline = now + qos.deadline_s
        request = GenerationRequest(
            request_id=self._next_id,
            prompt=prompt,
            max_new_tokens=max_new_tokens,
            stop_token=stop_token,
            deadline=deadline,
            arrival_time=now,
            speculative=speculative,
            qos_name=qos.name if qos is not None else None,
            quality_floor=qos.quality_floor if qos is not None else None,
            ttft_slo_s=qos.ttft_slo_s if qos is not None else None,
        )
        self._next_id += 1
        self._requests[request.request_id] = request
        total = request.prompt.size + request.max_new_tokens
        if total > self.model.config.max_seq_len:
            self._reject(request, now, "context-overflow")
        elif not self.pool.fits(total):
            self._reject(request, now, "exceeds-pool")
        elif len(self._queue) >= self.config.max_queue:
            self._reject(request, now, "queue-full")
        else:
            self._queue.append(request)
        return request

    def cancel(self, request_id: int, now: float = 0.0) -> bool:
        """Cancel a queued or running request; returns False if terminal."""
        request = self._requests[request_id]
        if request.done:
            return False
        self._terminate(request, now, RequestState.CANCELLED, "cancelled")
        return True

    # -- state -------------------------------------------------------------
    @property
    def has_work(self) -> bool:
        return bool(self._queue) or bool(self._running)

    @property
    def n_running(self) -> int:
        return len(self._running)

    @property
    def n_queued(self) -> int:
        return len(self._queue)

    def request(self, request_id: int) -> GenerationRequest:
        return self._requests[request_id]

    def results(self) -> List[GenerationResult]:
        """Results of every terminal request, in submission order."""
        return [
            request.result()
            for request_id, request in sorted(self._requests.items())
            if request.done
        ]

    # -- the engine loop ---------------------------------------------------
    def step(self, now: float = 0.0) -> StepReport:
        """Run one continuous-batching iteration at virtual time ``now``."""
        self._expire_deadlines(now)
        if self.router is not None:
            # Load is observed before admissions so the router reacts to
            # the backlog the step is about to face.
            self.router.observe(now, len(self._queue), self._active_count())
        rows = self._schedule(now)
        if not rows:
            return StepReport(
                now=now, duration_s=0.0, decode_rows=0, prefill_rows=0,
                prefill_tokens=0,
            )
        swaps = self._apply_routing(rows) if self.router is not None else 0
        started = self.timer()
        # Draft phase (speculative rows only): drafter forwards happen here
        # so their cost lands inside the step's measured duration.
        feeds, draft_counts = self._draft_extend(rows)
        # Paged caches index sealed pages by token ids; tell each cache
        # what the forward is about to append (chunk + any draft tokens).
        for (request, _), feed in zip(rows, feeds):
            note = getattr(request.cache, "note_tokens", None)
            if note is not None:
                note(feed)
        lengths = np.asarray([feed.size for feed in feeds], dtype=np.int64)
        row_logits = self._forward_rows(rows, feeds, lengths)
        duration = max(self.timer() - started, 1e-9)
        if self.router is not None:
            self.router.note_step(duration)
        completion = now + duration

        decode_rows = sum(1 for request, _ in rows if request.state is RequestState.DECODE)
        prefill_rows = len(rows) - decode_rows
        prefill_tokens = int(
            sum(
                chunk.size
                for request, chunk in rows
                if request.state is not RequestState.DECODE
            )
        )
        finished: List[int] = []
        committed = 0
        decode_committed = 0  # tokens from rows already decoding (metrics)
        spec_drafted = 0
        spec_accepted = 0
        for index, (request, chunk) in enumerate(rows):
            drafted = draft_counts[index]
            # The forward advanced the cache over the chunk *and* any draft
            # positions; prefix coverage is measured without the drafts.
            covered = request.cache.seq_len - drafted
            if covered < request.prefix.size:
                continue  # mid-prefill: more prompt chunks to come
            was_decode = request.state is RequestState.DECODE
            base = int(lengths[index]) - drafted - 1
            if drafted == 0:
                token = DecodeState.select(row_logits[index][base])
                self._append_token(request, token, completion)
                emitted = 1
            else:
                accepted, emitted = self._accept_drafts(
                    request, row_logits[index], base, completion
                )
                spec_drafted += drafted
                spec_accepted += accepted
                self.metrics.spec_steps += 1
                self.metrics.spec_drafted += drafted
                self.metrics.spec_accepted += accepted
                if self.config.spec_adaptive:
                    self._update_spec_k(request, accepted, drafted)
            committed += emitted
            if was_decode:
                decode_committed += emitted
            if request.done:
                finished.append(request.request_id)
        self._running = [r for r in self._running if r.state in ACTIVE_STATES]
        self.metrics.record_step(
            duration,
            decode_rows,
            prefill_rows,
            prefill_tokens,
            decode_tokens=decode_committed,
        )
        return StepReport(
            now=now,
            duration_s=duration,
            decode_rows=decode_rows,
            prefill_rows=prefill_rows,
            prefill_tokens=prefill_tokens,
            finished=tuple(finished),
            committed=committed,
            spec_drafted=spec_drafted,
            spec_accepted=spec_accepted,
            swaps=swaps,
        )

    def run_until_idle(self, now: float = 0.0, max_steps: int = 100000) -> float:
        """Step until all submitted work is terminal; returns the final time."""
        steps = 0
        while self.has_work:
            report = self.step(now)
            now += report.duration_s
            steps += 1
            if steps > max_steps:
                raise ServingError(f"engine failed to drain within {max_steps} steps")
        return now

    # -- adaptive routing --------------------------------------------------
    def _apply_routing(self, rows: List[Tuple[GenerationRequest, np.ndarray]]) -> int:
        """Re-map every scheduled row to the router's current choice.

        A change on a live cache is a *hot-swap*: the KV state carries over
        untouched (token state is variant-agnostic), but the cache stops
        sealing new shared pages — sealed pages advertise "computed by the
        admission-namespace variant" to future prefix matches, which would
        no longer hold.  Returns the number of swaps applied this step.
        """
        swaps = 0
        for request, _ in rows:
            spec = self.router.variant_for(request.quality_floor)
            if request.assign_variant(spec):
                swaps += 1
                self.metrics.variant_swaps += 1
                freeze = getattr(request.cache, "freeze_sealing", None)
                if freeze is not None:
                    freeze()
        return swaps

    def _forward_rows(
        self,
        rows: List[Tuple[GenerationRequest, np.ndarray]],
        feeds: List[np.ndarray],
        lengths: np.ndarray,
    ) -> List[np.ndarray]:
        """Run the step's rows through their models; per-row logits back.

        Rows sharing a variant batch into one ragged forward (a router-less
        engine is the degenerate single group), and results scatter back
        into row order so the commit loop stays group-agnostic.
        """
        groups: Dict[Optional[str], List[int]] = {}
        for index, (request, _) in enumerate(rows):
            groups.setdefault(request.variant, []).append(index)
        row_logits: List[np.ndarray] = [None] * len(rows)  # type: ignore[list-item]
        for spec, indices in groups.items():
            model = self._model_for(spec)
            group_lengths = lengths[indices]
            batch = np.zeros((len(indices), int(group_lengths.max())), dtype=np.int64)
            for position, index in enumerate(indices):
                batch[position, : feeds[index].size] = feeds[index]
            caches = [rows[index][0].cache for index in indices]
            logits = model.forward_ragged(batch, caches, group_lengths)
            for position, index in enumerate(indices):
                row_logits[index] = logits.data[position]
        return row_logits

    # -- scheduling --------------------------------------------------------
    def _schedule(self, now: float) -> List[Tuple[GenerationRequest, np.ndarray]]:
        """Pick this step's rows: running requests first, then admissions."""
        rows: List[Tuple[GenerationRequest, np.ndarray]] = []
        scheduled = set()  # ids already placed in rows: never preempt these
        budget = self.config.token_budget
        preempted: List[GenerationRequest] = []
        for request in list(self._running):
            if request.state not in ACTIVE_STATES:
                continue  # preempted earlier in this very scheduling pass
            if budget <= 0:
                break
            prefix = request.prefix
            remaining = prefix[request.cache.seq_len :]
            take = min(remaining.size, budget)
            if take == 0:
                raise ServingError(
                    f"request {request.request_id} scheduled with empty chunk"
                )
            if not self._reserve_with_preemption(request, take, scheduled, preempted):
                continue  # request itself was preempted
            rows.append((request, remaining[:take]))
            scheduled.add(request.request_id)
            budget -= take
        self._requeue(preempted)

        while budget > 0 and self._queue and self._active_count() < self.config.max_batch:
            request = self._queue[0]
            prefix = request.prefix
            # Admission reserves *new* pages only: a paged store seeds the
            # cache with the longest indexed prefix (page-aligned, always
            # leaving >= 1 token to feed), so prefill covers just the
            # uncovered suffix.  Re-admission after preemption re-links the
            # same way — recompute-style preemption becomes mostly free.
            if self.router is not None:
                # Admission assignment: the variant that will compute this
                # cache's KV, and therefore the prefix-sharing namespace it
                # may match/seal pages in (cross-variant page reuse would
                # silently violate quality floors).
                if request.assign_variant(
                    self.router.variant_for(request.quality_floor)
                ):
                    # Re-admission after preemption under a different level:
                    # counts as a swap, but the fresh cache is computed
                    # entirely by the new variant, so sealing stays enabled.
                    self.metrics.variant_swaps += 1
            acquire = getattr(self.pool, "acquire_sequence", None)
            if acquire is not None:
                if self.router is not None:
                    cache = acquire(prefix, namespace=request.variant)
                else:
                    cache = acquire(prefix)
            else:
                cache = self.pool.allocate_sequence()
            shared = cache.seq_len
            take = min(prefix.size - shared, budget)
            try:
                cache.reserve(take)
            except PoolExhaustedError:
                cache.free()
                break  # pool pressure: leave queued, try next step
            self._queue.popleft()
            if acquire is not None:
                self.metrics.prefix_lookups += 1
                if shared:
                    self.metrics.prefix_hits += 1
                    self.metrics.prefill_tokens_saved += shared
            request.cache = cache
            request.state = RequestState.PREFILL
            if request.first_scheduled_time is None:
                request.first_scheduled_time = now
            self._running.append(request)
            rows.append((request, prefix[shared : shared + take]))
            budget -= take
        return rows

    def _active_count(self) -> int:
        return sum(1 for r in self._running if r.state in ACTIVE_STATES)

    def _reserve_with_preemption(
        self,
        request: GenerationRequest,
        tokens: int,
        scheduled: set,
        preempted: List[GenerationRequest],
    ) -> bool:
        """Reserve cache slots, preempting younger requests on pool pressure.

        Victims are drawn youngest-first from running requests not yet
        scheduled into this step (rows already built must keep their
        reserved blocks).  Returns False when ``request`` itself had to be
        preempted because no other victim remained.
        """
        while True:
            try:
                request.cache.reserve(tokens)
                return True
            except PoolExhaustedError:
                victim = self._youngest_running(exclude=request, scheduled=scheduled)
                if victim is None:
                    self._preempt(request, preempted)
                    return False
                self._preempt(victim, preempted)

    def _youngest_running(self, exclude: GenerationRequest, scheduled: set):
        for candidate in reversed(self._running):
            if (
                candidate is exclude
                or candidate.request_id in scheduled
                or candidate.state not in ACTIVE_STATES
            ):
                continue
            return candidate
        return None

    def _preempt(
        self, request: GenerationRequest, preempted: List[GenerationRequest]
    ) -> None:
        request.cache.free()
        request.cache = None
        self._drop_draft_state(request)
        request.state = RequestState.QUEUED
        request.preemptions += 1
        self.metrics.preemptions += 1
        preempted.append(request)

    def _drop_draft_state(self, request: GenerationRequest) -> None:
        """Release a request's drafter-side state (preemption/termination).

        The drafter cache is rebuilt from the prefix on the next
        speculative cycle, so dropping it never changes outputs.
        """
        if request.draft_cache is not None:
            request.draft_cache.free()
            request.draft_cache = None
        request.pending_drafts = []

    def _requeue(self, preempted: List[GenerationRequest]) -> None:
        if not preempted:
            return
        self._running = [r for r in self._running if r.state in ACTIVE_STATES]
        # Preempted requests go back to the queue head in arrival order so
        # they are re-admitted before newer traffic.
        ordered = sorted(
            preempted, key=lambda r: (r.arrival_time, r.request_id), reverse=True
        )
        for request in ordered:
            self._queue.appendleft(request)

    # -- speculative decoding ---------------------------------------------
    def _draft_extend(
        self, rows: List[Tuple[GenerationRequest, np.ndarray]]
    ) -> Tuple[List[np.ndarray], List[int]]:
        """Extend speculative rows' feeds with drafter proposals.

        Only rows whose chunk completes the prefix this step can speculate
        (mid-prefill rows have no next-token position to draft from), and
        drafts spend the step's leftover token budget — speculation never
        displaces scheduled prefill/decode work.  Returns the per-row feed
        arrays and draft counts; non-speculative rows pass through.
        """
        feeds: List[np.ndarray] = [chunk for _, chunk in rows]
        counts = [0] * len(rows)
        if self.drafter is None:
            return feeds, counts
        leftover = self.config.token_budget - int(sum(chunk.size for _, chunk in rows))
        for index, (request, chunk) in enumerate(rows):
            if leftover <= 0:
                break
            if not request.speculative:
                continue
            if request.cache.seq_len + chunk.size < request.prefix.size:
                continue  # still mid-prefill after this step
            k = min(
                self._spec_k_for(request),
                leftover,
                # Leave room for the verifier's correction token.
                request.max_new_tokens - request.decode.n_generated - 1,
            )
            if k <= 0:
                continue
            drafts = self._draft_tokens(request, chunk, k)
            if not drafts:
                continue  # pool pressure: plain decode this step
            request.pending_drafts = drafts
            feeds[index] = np.concatenate(
                [chunk, np.asarray(drafts, dtype=np.int64)]
            )
            counts[index] = len(drafts)
            leftover -= len(drafts)
        return feeds, counts

    def _spec_k_for(self, request: GenerationRequest) -> int:
        """This request's draft length for the next speculative cycle.

        Fixed-K engines always use ``config.spec_k``; adaptive engines use
        the request's EMA-derived length (full K until the first verify
        cycle has measured anything).
        """
        if not self.config.spec_adaptive or request.spec_k_current is None:
            return self.config.spec_k
        return request.spec_k_current

    def _update_spec_k(
        self, request: GenerationRequest, accepted: int, drafted: int
    ) -> None:
        """Fold one verify cycle's acceptance into the request's EMA and
        re-derive its draft length: K ≈ EMA * K_max, clamped to [1, K_max]
        so a cold streak still probes one draft per cycle (the EMA can
        recover) and a hot streak saturates at the engine cap."""
        rate = accepted / drafted
        alpha = self.config.spec_ema_alpha
        if request.spec_acceptance_ema is None:
            request.spec_acceptance_ema = rate
        else:
            request.spec_acceptance_ema += alpha * (rate - request.spec_acceptance_ema)
        request.spec_k_current = int(
            min(
                self.config.spec_k,
                max(1, round(request.spec_acceptance_ema * self.config.spec_k)),
            )
        )

    def _draft_tokens(
        self, request: GenerationRequest, chunk: np.ndarray, k: int
    ) -> List[int]:
        """Run the drafter ``k`` greedy steps ahead for one request.

        Reserves verifier capacity for the draft positions (they are
        appended optimistically during the verify forward) and drafter
        capacity for the uncovered prefix suffix plus ``k - 1`` proposals.
        Either reservation failing falls back to plain decode for this step
        — reservations are atomic, so no state needs unwinding.
        """
        try:
            request.cache.reserve(chunk.size + k)
        except PoolExhaustedError:
            self.metrics.spec_fallbacks += 1
            return []
        try:
            if request.draft_cache is None:
                request.draft_cache = self.draft_pool.allocate_sequence()
            suffix = request.prefix[request.draft_cache.seq_len :]
            request.draft_cache.reserve(suffix.size + k - 1)
        except PoolExhaustedError:
            self.metrics.spec_fallbacks += 1
            return []
        drafts: List[int] = []
        feed = suffix.reshape(1, -1)
        for _ in range(k):
            logits = self.drafter.forward_cached(feed, request.draft_cache)
            token = DecodeState.select(logits.data[0, -1])
            drafts.append(token)
            feed = np.array([[token]], dtype=np.int64)
        return drafts

    def _accept_drafts(
        self,
        request: GenerationRequest,
        row_logits: np.ndarray,
        base: int,
        completion: float,
    ) -> Tuple[int, int]:
        """Accept the longest matching draft prefix; roll both caches back.

        ``base`` is the logits index of the prefix-final token, so
        ``row_logits[base + i]`` is the verifier's greedy choice given the
        prefix plus the first ``i`` drafts.  Returns (accepted, emitted).
        """
        drafts = request.pending_drafts
        request.pending_drafts = []
        prefix_len = request.prefix.size
        targets = np.argmax(row_logits[base : base + len(drafts) + 1], axis=-1)
        accepted = 0
        while accepted < len(drafts) and drafts[accepted] == int(targets[accepted]):
            accepted += 1
        # Rejected draft KV must not survive: the verifier keeps exactly the
        # committed prefix (minus the trailing token fed next step), the
        # drafter at most that.  Pooled caches return surplus blocks here.
        request.cache.truncate(prefix_len + accepted)
        request.draft_cache.truncate(
            min(request.draft_cache.seq_len, prefix_len + accepted)
        )
        emitted = 0
        for token in drafts[:accepted]:
            self._append_token(request, token, completion)
            emitted += 1
            if request.done:
                return accepted, emitted
        self._append_token(request, int(targets[accepted]), completion)
        emitted += 1
        return accepted, emitted

    # -- token/terminal bookkeeping ---------------------------------------
    def _append_token(
        self, request: GenerationRequest, token: int, completion: float
    ) -> None:
        # Termination policy lives in the runtime's DecodeState (shared with
        # the greedy-generation loop); the engine only maps the finish
        # reason onto the request lifecycle.
        reason = request.decode.append(token)
        if request.first_token_time is None:
            request.first_token_time = completion
        request.state = RequestState.DECODE
        if reason is not None:
            self._terminate(request, completion, RequestState.FINISHED, reason)

    def _expire_deadlines(self, now: float) -> None:
        for request in list(self._queue) + list(self._running):
            if request.done or request.deadline is None:
                continue
            if now > request.deadline:
                self._terminate(request, now, RequestState.CANCELLED, "deadline")

    def _reject(self, request: GenerationRequest, now: float, reason: str) -> None:
        self._terminate(request, now, RequestState.REJECTED, reason)

    def _terminate(
        self,
        request: GenerationRequest,
        now: float,
        state: RequestState,
        reason: str,
    ) -> None:
        if request.cache is not None:
            request.cache.free()
            request.cache = None
        self._drop_draft_state(request)
        was_queued = request.state is RequestState.QUEUED
        request.state = state
        request.finish_reason = reason
        request.finish_time = now
        if was_queued and request in self._queue:
            try:
                self._queue.remove(request)
            except ValueError:
                pass
        self._running = [r for r in self._running if r.state in ACTIVE_STATES]
        self.metrics.record_terminal(request)
