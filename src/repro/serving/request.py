"""Request lifecycle for the continuous-batching engine.

A request moves through::

    QUEUED -> PREFILL -> DECODE -> FINISHED
       \\         \\          \\---> CANCELLED   (deadline exceeded / cancel())
        \\         \\--------------^
         \\-> REJECTED                         (admission control)

Preemption (pool pressure) moves a PREFILL/DECODE request back to QUEUED
with its KV blocks released; the tokens it already generated are kept and
re-prefilled on re-admission, so outputs are unaffected (recompute-style
preemption, as in vLLM).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ServingError
from repro.runtime.decode import DecodeState


class RequestState(enum.Enum):
    QUEUED = "queued"
    PREFILL = "prefill"
    DECODE = "decode"
    FINISHED = "finished"
    CANCELLED = "cancelled"
    REJECTED = "rejected"


TERMINAL_STATES = (RequestState.FINISHED, RequestState.CANCELLED, RequestState.REJECTED)
ACTIVE_STATES = (RequestState.PREFILL, RequestState.DECODE)


@dataclass
class GenerationRequest:
    """One in-flight generation request and its bookkeeping."""

    request_id: int
    prompt: np.ndarray
    max_new_tokens: int
    stop_token: Optional[int] = None
    deadline: Optional[float] = None
    arrival_time: float = 0.0
    speculative: bool = False

    state: RequestState = RequestState.QUEUED
    generated: List[int] = field(default_factory=list)
    cache: Optional[object] = None  # PooledSequenceCache while active
    # Speculative-mode state: the drafter's own KV cache for this request
    # and the draft tokens proposed for the in-flight verify step.  Both are
    # dropped on preemption/termination alongside the main cache.
    draft_cache: Optional[object] = None
    pending_drafts: List[int] = field(default_factory=list)
    # Acceptance-aware adaptive draft length (``spec_adaptive`` engines):
    # an EMA of this request's per-cycle acceptance rate and the draft
    # length it currently maps to.  None until the first verify cycle —
    # the first cycle always probes at the engine's full K.
    spec_acceptance_ema: Optional[float] = None
    spec_k_current: Optional[int] = None
    finish_reason: str = ""
    preemptions: int = 0

    # QoS / adaptive-routing state.  ``variant`` is the spec currently
    # serving this request (None on a router-less engine); every assignment
    # change is journalled into ``variant_history`` as
    # ``(n_generated_at_assignment, spec)`` so tests and goodput accounting
    # can reconstruct the exact per-token variant schedule.
    qos_name: Optional[str] = None
    quality_floor: Optional[str] = None
    ttft_slo_s: Optional[float] = None
    variant: Optional[str] = None
    variant_history: List[Tuple[int, str]] = field(default_factory=list)
    swaps: int = 0

    first_scheduled_time: Optional[float] = None
    first_token_time: Optional[float] = None
    finish_time: Optional[float] = None

    def __post_init__(self) -> None:
        self.prompt = np.asarray(self.prompt, dtype=np.int64).reshape(-1)
        if self.prompt.size == 0:
            raise ServingError("prompt must contain at least one token")
        if self.max_new_tokens <= 0:
            raise ServingError("max_new_tokens must be positive")
        # The runtime's shared token bookkeeping (greedy selection, stop
        # token, budget), wrapping this request's own ``generated`` list so
        # both sides see every append.
        self.decode = DecodeState(
            self.max_new_tokens, self.stop_token, tokens=self.generated
        )

    # -- token bookkeeping -------------------------------------------------
    @property
    def prefix(self) -> np.ndarray:
        """Prompt plus generated-so-far: everything the cache must cover
        (minus the trailing token, which is fed to produce the next one)."""
        if not self.generated:
            return self.prompt
        return np.concatenate([self.prompt, np.asarray(self.generated, dtype=np.int64)])

    @property
    def cached_tokens(self) -> int:
        return 0 if self.cache is None else self.cache.seq_len

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def n_generated(self) -> int:
        return len(self.generated)

    @property
    def tokens(self) -> np.ndarray:
        """Full output, ``greedy_generate``-style: prompt then generation."""
        return self.prefix

    # -- timing ------------------------------------------------------------
    @property
    def queue_wait_s(self) -> Optional[float]:
        if self.first_scheduled_time is None:
            return None
        return self.first_scheduled_time - self.arrival_time

    @property
    def ttft_s(self) -> Optional[float]:
        """Time to first token, from arrival."""
        if self.first_token_time is None:
            return None
        return self.first_token_time - self.arrival_time

    @property
    def e2e_s(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    @property
    def slo_met(self) -> Optional[bool]:
        """Did the first token land within the class SLO?  None without one."""
        if self.ttft_slo_s is None:
            return None
        if self.ttft_s is None:
            return False
        return self.ttft_s <= self.ttft_slo_s

    @property
    def served_variants(self) -> List[str]:
        """Distinct variant specs that ever served this request, in order."""
        seen: List[str] = []
        for _, spec in self.variant_history:
            if not seen or seen[-1] != spec:
                seen.append(spec)
        return seen

    def assign_variant(self, spec: str) -> bool:
        """Record a router assignment; returns True when it was a *swap*
        (the request was already being served by a different variant)."""
        swapped = self.variant is not None and self.variant != spec
        if self.variant != spec:
            self.variant_history.append((self.n_generated, spec))
            self.variant = spec
        if swapped:
            self.swaps += 1
        return swapped

    def result(self) -> "GenerationResult":
        if not self.done:
            raise ServingError(
                f"request {self.request_id} still {self.state.value}; no result yet"
            )
        return GenerationResult(
            request_id=self.request_id,
            state=self.state,
            tokens=self.tokens,
            n_generated=self.n_generated,
            finish_reason=self.finish_reason,
            preemptions=self.preemptions,
            arrival_time=self.arrival_time,
            queue_wait_s=self.queue_wait_s,
            ttft_s=self.ttft_s,
            e2e_s=self.e2e_s,
            qos=self.qos_name,
            ttft_slo_s=self.ttft_slo_s,
            slo_met=self.slo_met,
            variants=tuple(self.served_variants),
            swaps=self.swaps,
        )


@dataclass(frozen=True)
class GenerationResult:
    """Immutable outcome handed back once a request reaches a terminal state."""

    request_id: int
    state: RequestState
    tokens: np.ndarray
    n_generated: int
    finish_reason: str
    preemptions: int
    arrival_time: float
    queue_wait_s: Optional[float]
    ttft_s: Optional[float]
    e2e_s: Optional[float]
    qos: Optional[str] = None
    ttft_slo_s: Optional[float] = None
    slo_met: Optional[bool] = None
    variants: Tuple[str, ...] = ()
    swaps: int = 0

    @property
    def ok(self) -> bool:
        return self.state is RequestState.FINISHED
