"""Serving metrics: latency distributions and throughput accounting.

Mirrors the quantities the paper measures while serving (Figures 10-12
read latency/energy/memory during generation): time-to-first-token, queue
wait, end-to-end latency (p50/p95), and decode throughput.  Decode
throughput is computed over *pure decode* steps only (steps that carried no
prefill rows), so chunked prefill work cannot inflate or dilute it; the
blended tokens/s over all steps is reported separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


class SampleStats:
    """Streaming collection of latency samples with percentile queries."""

    def __init__(self) -> None:
        self._samples: List[float] = []

    def add(self, value: float) -> None:
        self._samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile; 0.0 when no samples were recorded."""
        if not self._samples:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile {q} outside [0, 100]")
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def maximum(self) -> float:
        return max(self._samples) if self._samples else 0.0

    # -- (de)serialization -------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-serializable form: summary quantiles plus the raw samples
        (kept so a restored instance answers every percentile query)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
            "samples": list(self._samples),
        }

    @classmethod
    def from_snapshot(cls, payload: dict) -> "SampleStats":
        stats = cls()
        for value in payload.get("samples", []):
            stats.add(value)
        return stats


@dataclass
class QoSClassMetrics:
    """Per-QoS-class terminal breakdown (one instance per class name).

    ``deadline_missed`` splits out the cancellations caused by the hard
    per-request deadline; ``slo_met``/``slo_missed`` score finished
    requests against the class's soft TTFT SLO (requests without one are
    counted in neither).
    """

    finished: int = 0
    cancelled: int = 0
    rejected: int = 0
    deadline_missed: int = 0
    slo_met: int = 0
    slo_missed: int = 0
    ttft_s: SampleStats = field(default_factory=SampleStats)

    _COUNTER_FIELDS = (
        "finished", "cancelled", "rejected",
        "deadline_missed", "slo_met", "slo_missed",
    )

    def snapshot(self) -> dict:
        payload = {name: getattr(self, name) for name in self._COUNTER_FIELDS}
        payload["ttft_s"] = self.ttft_s.snapshot()
        return payload

    @classmethod
    def from_snapshot(cls, payload: dict) -> "QoSClassMetrics":
        metrics = cls()
        for name in cls._COUNTER_FIELDS:
            setattr(metrics, name, payload.get(name, getattr(metrics, name)))
        metrics.ttft_s = SampleStats.from_snapshot(payload.get("ttft_s", {}))
        return metrics


@dataclass
class EngineMetrics:
    """Aggregate counters for one engine's lifetime."""

    ttft_s: SampleStats = field(default_factory=SampleStats)
    queue_wait_s: SampleStats = field(default_factory=SampleStats)
    e2e_s: SampleStats = field(default_factory=SampleStats)

    steps: int = 0
    decode_steps: int = 0          # steps with decode rows only
    prefill_steps: int = 0         # steps with prefill rows only
    mixed_steps: int = 0           # steps carrying both
    total_step_s: float = 0.0
    decode_step_s: float = 0.0     # time spent in pure decode steps
    decode_tokens: int = 0         # all decode tokens
    pure_decode_tokens: int = 0    # decode tokens produced in pure decode steps
    prefill_tokens: int = 0
    peak_batch: int = 0

    finished: int = 0
    cancelled: int = 0
    rejected: int = 0
    preemptions: int = 0

    # Speculative decoding: drafted/accepted counted over verify cycles.
    spec_steps: int = 0        # verify cycles (one batched verifier pass per row)
    spec_drafted: int = 0      # drafter proposals scored by the verifier
    spec_accepted: int = 0     # proposals matching the verifier's greedy choice
    spec_fallbacks: int = 0    # cycles skipped on pool pressure (plain decode)

    # Cross-request prefix sharing (paged KV store admissions only).
    prefix_lookups: int = 0         # admissions that consulted the radix index
    prefix_hits: int = 0            # admissions seeded with >= 1 shared page
    prefill_tokens_saved: int = 0   # prompt tokens served from shared pages

    # Adaptive rank routing: mid-flight variant hot-swaps plus per-class
    # terminal/SLO breakdowns keyed by QoS class name.
    variant_swaps: int = 0
    qos_classes: Dict[str, QoSClassMetrics] = field(default_factory=dict)

    def record_step(
        self,
        duration_s: float,
        decode_rows: int,
        prefill_rows: int,
        prefill_tokens: int,
        decode_tokens: Optional[int] = None,
    ) -> None:
        """``decode_tokens`` overrides the tokens-emitted count for steps
        that commit more than one token per decode row (speculative
        acceptance); it defaults to one token per decode row."""
        emitted = decode_rows if decode_tokens is None else int(decode_tokens)
        self.steps += 1
        self.total_step_s += duration_s
        self.decode_tokens += emitted
        self.prefill_tokens += prefill_tokens
        self.peak_batch = max(self.peak_batch, decode_rows + prefill_rows)
        if decode_rows and prefill_rows:
            self.mixed_steps += 1
        elif decode_rows:
            self.decode_steps += 1
            self.decode_step_s += duration_s
            self.pure_decode_tokens += emitted
        elif prefill_rows:
            self.prefill_steps += 1

    def record_terminal(self, request) -> None:
        from repro.serving.request import RequestState

        if request.state is RequestState.FINISHED:
            self.finished += 1
            if request.ttft_s is not None:
                self.ttft_s.add(request.ttft_s)
            if request.queue_wait_s is not None:
                self.queue_wait_s.add(request.queue_wait_s)
            if request.e2e_s is not None:
                self.e2e_s.add(request.e2e_s)
        elif request.state is RequestState.CANCELLED:
            self.cancelled += 1
        elif request.state is RequestState.REJECTED:
            self.rejected += 1
        qos_name = getattr(request, "qos_name", None)
        if qos_name is None:
            return
        per_class = self.qos_classes.setdefault(qos_name, QoSClassMetrics())
        if request.state is RequestState.FINISHED:
            per_class.finished += 1
            if request.ttft_s is not None:
                per_class.ttft_s.add(request.ttft_s)
            slo_met = getattr(request, "slo_met", None)
            if slo_met is True:
                per_class.slo_met += 1
            elif slo_met is False:
                per_class.slo_missed += 1
        elif request.state is RequestState.CANCELLED:
            per_class.cancelled += 1
            if request.finish_reason == "deadline":
                per_class.deadline_missed += 1
        elif request.state is RequestState.REJECTED:
            per_class.rejected += 1

    # -- throughput --------------------------------------------------------
    @property
    def decode_tokens_per_s(self) -> float:
        """Tokens/s over pure decode steps (the paper's decode regime)."""
        if self.decode_step_s == 0.0:
            return 0.0
        return self.pure_decode_tokens / self.decode_step_s

    @property
    def overall_tokens_per_s(self) -> float:
        """Generated + prefilled tokens over total engine compute time."""
        if self.total_step_s == 0.0:
            return 0.0
        return (self.decode_tokens + self.prefill_tokens) / self.total_step_s

    @property
    def mean_decode_batch(self) -> float:
        """Average decode tokens per pure decode step."""
        if self.decode_steps == 0:
            return 0.0
        return self.pure_decode_tokens / self.decode_steps

    @property
    def spec_acceptance_rate(self) -> float:
        """Accepted over drafted proposals; 0.0 before any speculation."""
        if self.spec_drafted == 0:
            return 0.0
        return self.spec_accepted / self.spec_drafted

    @property
    def prefix_hit_rate(self) -> float:
        """Admissions seeded from the index over all paged admissions."""
        if self.prefix_lookups == 0:
            return 0.0
        return self.prefix_hits / self.prefix_lookups

    # -- (de)serialization -------------------------------------------------
    _COUNTER_FIELDS = (
        "steps", "decode_steps", "prefill_steps", "mixed_steps",
        "total_step_s", "decode_step_s", "decode_tokens",
        "pure_decode_tokens", "prefill_tokens", "peak_batch",
        "finished", "cancelled", "rejected", "preemptions",
        "spec_steps", "spec_drafted", "spec_accepted", "spec_fallbacks",
        "prefix_lookups", "prefix_hits", "prefill_tokens_saved",
        "variant_swaps",
    )

    def snapshot(self) -> dict:
        """JSON-serializable dump of every counter and latency distribution
        (plus derived throughputs, for human readers of the report)."""
        payload = {name: getattr(self, name) for name in self._COUNTER_FIELDS}
        payload["ttft_s"] = self.ttft_s.snapshot()
        payload["queue_wait_s"] = self.queue_wait_s.snapshot()
        payload["e2e_s"] = self.e2e_s.snapshot()
        payload["decode_tokens_per_s"] = self.decode_tokens_per_s
        payload["overall_tokens_per_s"] = self.overall_tokens_per_s
        payload["mean_decode_batch"] = self.mean_decode_batch
        payload["spec_acceptance_rate"] = self.spec_acceptance_rate
        payload["prefix_hit_rate"] = self.prefix_hit_rate
        if self.qos_classes:
            payload["qos_classes"] = {
                name: metrics.snapshot()
                for name, metrics in sorted(self.qos_classes.items())
            }
        return payload

    @classmethod
    def from_snapshot(cls, payload: dict) -> "EngineMetrics":
        # Missing counters keep their defaults so snapshots written before a
        # counter existed (e.g. pre-speculation BENCH JSON) still load.
        metrics = cls()
        for name in cls._COUNTER_FIELDS:
            setattr(metrics, name, payload.get(name, getattr(metrics, name)))
        metrics.ttft_s = SampleStats.from_snapshot(payload["ttft_s"])
        metrics.queue_wait_s = SampleStats.from_snapshot(payload["queue_wait_s"])
        metrics.e2e_s = SampleStats.from_snapshot(payload["e2e_s"])
        # Snapshots written before QoS routing carry no per-class section.
        metrics.qos_classes = {
            name: QoSClassMetrics.from_snapshot(sub)
            for name, sub in payload.get("qos_classes", {}).items()
        }
        return metrics

    def summary(self) -> str:
        text = (
            f"finished={self.finished} cancelled={self.cancelled} "
            f"rejected={self.rejected} preemptions={self.preemptions} | "
            f"steps={self.steps} decode_batch={self.mean_decode_batch:.1f} | "
            f"ttft p50={1e3 * self.ttft_s.p50:.1f}ms p95={1e3 * self.ttft_s.p95:.1f}ms | "
            f"decode {self.decode_tokens_per_s:.0f} tok/s "
            f"overall {self.overall_tokens_per_s:.0f} tok/s"
        )
        if self.spec_steps:
            text += (
                f" | spec accept={self.spec_acceptance_rate:.2f} "
                f"({self.spec_accepted}/{self.spec_drafted}, "
                f"fallbacks={self.spec_fallbacks})"
            )
        if self.prefix_lookups:
            text += (
                f" | prefix hit={self.prefix_hit_rate:.2f} "
                f"({self.prefix_hits}/{self.prefix_lookups}, "
                f"saved {self.prefill_tokens_saved} prefill tokens)"
            )
        if self.qos_classes:
            parts = [
                f"{name}:{metrics.slo_met}/{metrics.finished} slo"
                for name, metrics in sorted(self.qos_classes.items())
            ]
            text += f" | swaps={self.variant_swaps} qos[{' '.join(parts)}]"
        return text
