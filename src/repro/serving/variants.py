"""Model-variant registry: named decomposition recipes over one base model.

A *variant spec* is a short string naming how the base model's weights are
(or are not) decomposed before serving:

- ``"dense"`` — the base model unchanged (identity configuration);
- ``"pr<NN>"`` — the paper's Table 4 recipe for an ``NN``-percent
  parameter-reduction target, scaled to the base model's depth
  (rank 1, all tensors — Section 3.4's best scheme);
- ``"rank<K>"`` — uniform rank ``K`` across *all* layers and tensors;
- ``"<base>-int<B>"`` — any of the above with every per-layer projection
  additionally stored as real int8-grid quantized weights at ``B`` bits
  (e.g. ``"dense-int8"``, ``"rank8-int8"``, ``"rank1-int8"`` — the
  compound rank × bits operating points the QoS ladder walks).

The registry materializes variants lazily: each spec gets its own freshly
built model sharing the base weights (copied via ``state_dict``) with
:func:`~repro.decomposition.apply.decompose_model` applied, so several
variants can be benchmarked side by side without mutating the base model.

With ``share_base=True`` the registry materializes *hot-swappable*
variants instead: every undecomposed parameter aliases the base model's
array (zero copy), and only the factor-structured U·Γ·V replacements are
private (:class:`~repro.nn.factorized.FactorizedLinear` re-lays factors
out C-contiguously, which makes them fresh arrays by construction).
Holding the whole quality ladder resident then costs one dense model plus
the factor deltas — the LoTR-style layout that lets the serving engine
switch a live request's decode variant between steps without checkpoint
reloads.  Each :class:`ModelVariant` records its ``private_bytes`` (what a
hot-swap actually touches) next to the full dense footprint.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.compression.quantization import (
    RealQuantizationReport,
    quantize_model_real,
)
from repro.decomposition.apply import DecompositionReport, decompose_model
from repro.decomposition.config import DecompositionConfig
from repro.decomposition.recipes import PAPER_TABLE4, scale_recipe
from repro.errors import ServingError
from repro.models import build_model
from repro.models.config import ModelConfig

_PR_PATTERN = re.compile(r"^pr(\d+)$")
_RANK_PATTERN = re.compile(r"^rank(\d+)$")
_QUANT_PATTERN = re.compile(r"^(.+)-int(\d+)$")


def parse_variant_spec(spec: str, config: ModelConfig) -> DecompositionConfig:
    """Translate a variant spec string into a :class:`DecompositionConfig`."""
    spec = spec.strip().lower()
    match = _QUANT_PATTERN.match(spec)
    if match:
        base = parse_variant_spec(match.group(1), config)
        bits = int(match.group(2))
        try:
            return replace(base, bits=bits)
        except Exception as exc:  # ConfigError on unsupported widths
            raise ServingError(f"bad quantized variant spec {spec!r}: {exc}") from exc
    if spec == "dense":
        return DecompositionConfig.identity()
    match = _PR_PATTERN.match(spec)
    if match:
        percent = int(match.group(1))
        if percent not in PAPER_TABLE4:
            raise ServingError(
                f"no Table 4 recipe for {percent}%; "
                f"available: {sorted(PAPER_TABLE4)}"
            )
        layers = scale_recipe(PAPER_TABLE4[percent], config.n_layers)
        return DecompositionConfig.all_tensors(config, layers, rank=1)
    match = _RANK_PATTERN.match(spec)
    if match:
        rank = int(match.group(1))
        return DecompositionConfig.all_tensors(
            config, range(config.n_layers), rank=rank
        )
    raise ServingError(
        f"unknown variant spec {spec!r}; expected 'dense', 'pr<NN>', "
        "'rank<K>', or '<base>-int<B>'"
    )


@dataclass
class ModelVariant:
    """A materialized (possibly decomposed) copy of the base model."""

    spec: str
    model: object
    decomposition: DecompositionConfig
    report: Optional[DecompositionReport]  # None for the dense variant
    shares_base: bool = False
    private_bytes: int = 0   # parameter bytes not aliased from the base
    total_bytes: int = 0     # full parameter footprint of this variant
    quant: Optional[RealQuantizationReport] = None  # set for -int<B> specs

    @property
    def parameter_reduction(self) -> float:
        return 0.0 if self.report is None else self.report.parameter_reduction

    @property
    def bits(self) -> Optional[int]:
        return self.decomposition.bits

    def describe(self) -> str:
        suffix = ""
        if self.quant is not None:
            suffix = (
                f" [int{self.quant.bits}: "
                f"{self.quant.memory_reduction_x:.2f}x weight shrink]"
            )
        if self.report is None:
            return (
                f"{self.spec}: dense baseline "
                f"({self.model.num_parameters():,} params){suffix}"
            )
        return f"{self.spec}: {self.report.summary()}{suffix}"


class VariantRegistry:
    """Lazily materializes decomposed variants of one base model.

    ``share_base=True`` switches to the hot-swap layout: undecomposed
    parameters alias the base arrays instead of copying them, so the
    marginal memory of each extra ladder variant is just its factor
    deltas (``ModelVariant.private_bytes``).  Aliasing is read-only by
    contract — serving never mutates weights — and decomposition replaces
    target modules wholesale, so the base model is never written through.
    """

    def __init__(self, base_model, share_base: bool = False) -> None:
        self.base_model = base_model
        self.share_base = share_base
        self.config: ModelConfig = base_model.config
        self._variants: Dict[str, ModelVariant] = {}

    def specs(self) -> List[str]:
        """Specs materialized so far, in materialization order."""
        return list(self._variants)

    def get(self, spec: str) -> ModelVariant:
        key = spec.strip().lower()
        if key not in self._variants:
            self._variants[key] = self._materialize(key)
        return self._variants[key]

    def ladder(self, specs) -> Dict[str, object]:
        """Materialize a whole quality ladder: spec -> servable model."""
        return {spec: self.get(spec).model for spec in specs}

    def _materialize(self, spec: str) -> ModelVariant:
        decomposition = parse_variant_spec(spec, self.config)
        model = build_model(self.config)
        if self.share_base:
            base_params = dict(self.base_model.named_parameters())
            for name, param in model.named_parameters():
                param.data = base_params[name].data
        else:
            model.load_state_dict(self.base_model.state_dict())
        model.eval()
        report = None
        if not decomposition.is_identity:
            report = decompose_model(model, decomposition)
        quant = None
        if decomposition.bits is not None:
            quant = quantize_model_real(model, decomposition.bits)
        model.eval()
        base_ids = {id(p.data) for _, p in self.base_model.named_parameters()}
        private = total = 0
        for _, param in model.named_parameters():
            total += param.data.nbytes
            if id(param.data) not in base_ids:
                private += param.data.nbytes
        if quant is not None:
            # The int8 grids + scales are plain arrays (not Parameters):
            # count their measured bytes in by hand.  They are private by
            # construction — quantization never aliases base storage.
            grid_bytes = int(quant.weight_bytes_after)
            private += grid_bytes
            total += grid_bytes
        return ModelVariant(
            spec=spec,
            model=model,
            decomposition=decomposition,
            report=report,
            shares_base=self.share_base,
            private_bytes=private if self.share_base else total,
            total_bytes=total,
            quant=quant,
        )
