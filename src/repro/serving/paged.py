"""Global paged KV store with cross-request prefix sharing.

The per-request :class:`~repro.serving.pool.KVBlockPool` hands every
sequence its own private blocks, so N requests carrying the same system
prompt each prefill it and each hold a full copy of its KV state.  At
multi-tenant scale that is the dominant waste: the paper's serving-side
memory argument (Section 2.2, Figure 12) already makes KV state the
bottleneck, and most production traffic shares prompt prefixes.

This module is the serving-side answer (vLLM/SGLang-style):

- :class:`PagedKVStore` owns one fixed arena of *pages* (fixed-size token
  slots across every layer, same geometry as the block pool) behind a
  single allocator with **per-page reference counts**.
- A **radix index** keyed on token ids maps full pages of already-computed
  prefixes to their page ids.  ``acquire_sequence(tokens)`` walks it and
  returns a sequence cache whose block table starts with the matched
  pages — the shared prefix is *never prefilled again*; only the suffix
  past the match runs through the model.
- Pages are **copy-on-write**: a page is sealed (inserted into the index)
  once every layer has written all of its slots, and a sealed page is
  immutable.  Rolling a sequence back *into* a sealed page (speculative
  draft rejection) forks a private copy when the page is shared and
  unseals it when it is not; appending into a sealed or shared page raises
  — mutation of shared state is a hard error, not a silent corruption.
- Released pages whose refcount hits zero stay in the index as
  *reclaimable* until the allocator needs them (LRU eviction of leaf
  pages), so a tenant prefix stays warm across request lifetimes — a
  finished request's prompt pages serve the next arrival for free.

Exactness: KV entries are a deterministic function of the token prefix
and absolute positions (RoPE included), so serving from shared pages is
bit-identical to re-prefilling — the engine's token-for-token identity
contract against the unshared pool holds on every trace.

``PagedSequenceCache`` satisfies the same ``seq_len`` / ``append`` /
``reserve`` / ``truncate`` / ``free`` contract as
:class:`~repro.serving.pool.PooledSequenceCache`, so the engine, the
ragged runtime caches in :mod:`repro.nn.kv_cache`, and the attention
kernels are oblivious to the sharing.  The one addition is
``note_tokens``: the scheduler tells the cache which token ids the next
forward will append, which is what keys the radix index.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import PoolExhaustedError, ServingError, ShapeError
from repro.models.config import ModelConfig


class _RadixNode:
    """One sealed page in the prefix tree.

    ``tokens`` is the full-page token tuple that labels the edge from the
    parent; the root is a sentinel with no page.  Children are keyed by
    their token tuple, so lookup is one dict probe per page.
    """

    __slots__ = ("tokens", "page", "parent", "children", "touch")

    def __init__(
        self,
        tokens: Tuple[int, ...],
        page: int,
        parent: Optional["_RadixNode"],
    ) -> None:
        self.tokens = tokens
        self.page = page
        self.parent = parent
        self.children: Dict[Tuple[int, ...], "_RadixNode"] = {}
        self.touch = 0


class PagedKVStore:
    """A refcounted page arena plus a radix index over sealed prefixes.

    Exposes the same accounting surface as
    :class:`~repro.serving.pool.KVBlockPool` (``n_blocks`` /
    ``block_tokens`` / ``available_blocks`` / ``used_blocks`` / ``fits``)
    so the engine's admission control works unchanged.  ``used_blocks``
    counts pages referenced by live sequences; sealed pages at refcount
    zero are *reclaimable* and counted available — they are cache, not
    occupancy.
    """

    def __init__(
        self,
        config: ModelConfig,
        n_blocks: int = 256,
        block_tokens: int = 16,
        dtype=np.float32,
        kv_heads: Optional[int] = None,
        n_layers: Optional[int] = None,
    ) -> None:
        if n_blocks <= 0 or block_tokens <= 0:
            raise ServingError("n_blocks and block_tokens must be positive")
        if kv_heads is not None and not 0 < kv_heads <= config.kv_heads:
            raise ServingError(
                f"kv_heads override {kv_heads} outside (0, {config.kv_heads}]"
            )
        if n_layers is not None and not 0 < n_layers <= config.n_layers:
            raise ServingError(
                f"n_layers override {n_layers} outside (0, {config.n_layers}]"
            )
        self.config = config
        self.n_blocks = int(n_blocks)
        self.block_tokens = int(block_tokens)
        self.kv_heads = int(kv_heads) if kv_heads is not None else config.kv_heads
        self.n_layers = int(n_layers) if n_layers is not None else config.n_layers
        self.head_dim = config.head_dim
        self.dtype = np.dtype(dtype)
        shape = (
            self.n_layers,
            self.n_blocks,
            self.kv_heads,
            self.block_tokens,
            self.head_dim,
        )
        self.keys = np.zeros(shape, dtype=self.dtype)
        self.values = np.zeros(shape, dtype=self.dtype)
        self._free: List[int] = list(range(self.n_blocks - 1, -1, -1))
        self._ref: List[int] = [0] * self.n_blocks
        self._root = _RadixNode((), -1, None)
        # Variant-namespaced radix roots: sealed KV is a function of the
        # *computing model*, not just the token ids, so an adaptively
        # routed engine indexes each variant's pages under its own root —
        # a dense-floor request must never be served rank-1-computed pages.
        self._namespace_roots: Dict[str, _RadixNode] = {}
        self._nodes: Dict[int, _RadixNode] = {}  # sealed page id -> node
        self._tick = 0
        # -- sharing telemetry (per store lifetime) ------------------------
        self.prefix_lookups = 0   # acquire_sequence calls with a token key
        self.prefix_hits = 0      # lookups that matched >= 1 page
        self.shared_tokens = 0    # prefill tokens served from the index
        self.cow_forks = 0        # sealed pages forked on rollback
        self.evictions = 0        # reclaimable pages evicted for allocation
        self.sealed_total = 0     # pages ever inserted into the index

    # -- accounting --------------------------------------------------------
    @property
    def reclaimable_blocks(self) -> int:
        """Sealed pages no live sequence references (evictable cache)."""
        return sum(1 for page in self._nodes if self._ref[page] == 0)

    @property
    def available_blocks(self) -> int:
        return len(self._free) + self.reclaimable_blocks

    @property
    def used_blocks(self) -> int:
        """Pages pinned by live sequences (refcount > 0)."""
        return self.n_blocks - self.available_blocks

    @property
    def cached_blocks(self) -> int:
        """Pages present in the radix index (shared or reclaimable)."""
        return len(self._nodes)

    @property
    def utilization(self) -> float:
        return self.used_blocks / self.n_blocks

    @property
    def bytes_allocated(self) -> int:
        return self.keys.nbytes + self.values.nbytes

    def blocks_for_tokens(self, tokens: int) -> int:
        if tokens <= 0:
            return 0
        return -(-tokens // self.block_tokens)

    def fits(self, tokens: int) -> bool:
        return self.blocks_for_tokens(tokens) <= self.n_blocks

    def ref(self, page: int) -> int:
        return self._ref[page]

    def is_sealed(self, page: int) -> bool:
        return page in self._nodes

    # -- allocator ---------------------------------------------------------
    def allocate(self, n: int) -> List[int]:
        """Take ``n`` fresh pages (refcount 1 each), evicting reclaimable
        index pages LRU when the free list runs dry.

        Raises :class:`PoolExhaustedError` without side effects when even
        eviction cannot supply ``n`` pages — the admission-throttle signal.
        """
        if n < 0:
            raise ServingError("cannot allocate a negative page count")
        if n > len(self._free) + self.reclaimable_blocks:
            raise PoolExhaustedError(
                f"need {n} pages, {len(self._free)} free + "
                f"{self.reclaimable_blocks} reclaimable of {self.n_blocks}"
            )
        while len(self._free) < n:
            if not self._evict_one():
                raise PoolExhaustedError(
                    f"need {n} pages, eviction stalled at {len(self._free)} free"
                )
        taken = self._free[-n:] if n else []
        del self._free[len(self._free) - n :]
        for page in taken:
            if self._ref[page] != 0:
                raise ServingError(f"free-list page {page} has refcount {self._ref[page]}")
            self._ref[page] = 1
        return taken

    def _evict_one(self) -> bool:
        """Drop the least-recently-touched unreferenced *leaf* page."""
        victim: Optional[_RadixNode] = None
        for page, node in self._nodes.items():
            if self._ref[page] != 0 or node.children:
                continue
            if victim is None or node.touch < victim.touch:
                victim = node
        if victim is None:
            return False
        self._remove_node(victim)
        self._free.append(victim.page)
        self.evictions += 1
        return True

    def _remove_node(self, node: _RadixNode) -> None:
        del node.parent.children[node.tokens]
        del self._nodes[node.page]

    def release_ref(self, page: int) -> None:
        """Drop one reference; unsealed pages return to the free list at
        zero, sealed pages stay reclaimable in the index."""
        if not 0 <= page < self.n_blocks:
            raise ServingError(f"page id {page} outside store")
        if self._ref[page] <= 0:
            raise ServingError(f"double release detected on page {page}")
        self._ref[page] -= 1
        if self._ref[page] == 0 and page not in self._nodes:
            self._free.append(page)

    # -- radix index -------------------------------------------------------
    def _touch(self, node: _RadixNode) -> None:
        self._tick += 1
        node.touch = self._tick

    def root_for(self, namespace: Optional[str]) -> _RadixNode:
        """The radix root for a sharing namespace (None: the default)."""
        if namespace is None:
            return self._root
        root = self._namespace_roots.get(namespace)
        if root is None:
            root = _RadixNode((), -1, None)
            self._namespace_roots[namespace] = root
        return root

    def match_pages(
        self, tokens, root: Optional[_RadixNode] = None
    ) -> Tuple[List[int], _RadixNode]:
        """Longest full-page chain in the index matching ``tokens``.

        The match is capped at ``len(tokens) - 1`` positions: the engine
        always feeds at least the final token through the model to produce
        next-token logits, so a fully-covered prefix would leave it with
        an empty prefill chunk.
        """
        ids = [int(t) for t in np.asarray(tokens).reshape(-1)]
        max_pages = max(0, (len(ids) - 1) // self.block_tokens)
        node = self._root if root is None else root
        pages: List[int] = []
        for index in range(max_pages):
            key = tuple(ids[index * self.block_tokens : (index + 1) * self.block_tokens])
            child = node.children.get(key)
            if child is None:
                break
            node = child
            self._touch(node)
            pages.append(node.page)
        return pages, node

    def seal_page(
        self, parent: _RadixNode, key: Tuple[int, ...], page: int
    ) -> _RadixNode:
        """Insert a fully-written page under ``parent``; returns its node.

        If an identical page already hangs there (two equal prefixes
        prefilled concurrently), the existing node wins and the caller is
        expected to swap its block table onto it (dedup) — KV content for
        equal token prefixes is bit-identical by construction.
        """
        if len(key) != self.block_tokens:
            raise ServingError(
                f"seal key must cover a full page ({self.block_tokens} tokens), "
                f"got {len(key)}"
            )
        existing = parent.children.get(key)
        if existing is not None:
            self._touch(existing)
            return existing
        node = _RadixNode(key, page, parent)
        parent.children[key] = node
        self._nodes[page] = node
        self._touch(node)
        self.sealed_total += 1
        return node

    def unseal_page(self, page: int) -> None:
        """Remove a page (and its now-orphaned subtree) from the index.

        Used when a rollback truncates into a sealed page that only its
        owner references: the page's tail will be rewritten, so its index
        entry — and every descendant chain through it — no longer names
        valid content.  Descendants are necessarily unreferenced (any
        holder of a descendant also holds this page), so they go straight
        to the free list.
        """
        node = self._nodes.get(page)
        if node is None:
            raise ServingError(f"page {page} is not sealed")
        stack = list(node.children.values())
        while stack:
            child = stack.pop()
            stack.extend(child.children.values())
            if self._ref[child.page] != 0:
                raise ServingError(
                    f"unseal of page {page} found referenced descendant {child.page}"
                )
            self._remove_node(child)
            self._free.append(child.page)
        self._remove_node(node)

    # -- sequences ---------------------------------------------------------
    def acquire_sequence(
        self, tokens=None, namespace: Optional[str] = None
    ) -> "PagedSequenceCache":
        """A sequence cache pre-seeded with the longest indexed prefix of
        ``tokens`` (no tokens: a fresh empty cache).

        ``namespace`` confines matching *and* future sealing to one radix
        root — the routed engine passes the computing variant's spec so
        prefixes are only ever shared between requests served by the same
        weights.
        """
        root = self.root_for(namespace)
        if tokens is None or np.asarray(tokens).size == 0:
            return PagedSequenceCache(self, [], [], root, root=root)
        ids = [int(t) for t in np.asarray(tokens).reshape(-1)]
        pages, node = self.match_pages(ids, root=root)
        self.prefix_lookups += 1
        if pages:
            self.prefix_hits += 1
            self.shared_tokens += len(pages) * self.block_tokens
        for page in pages:
            self._ref[page] += 1
        shared = len(pages) * self.block_tokens
        return PagedSequenceCache(self, pages, ids[:shared], node, root=root)

    def allocate_sequence(self) -> "PagedSequenceCache":
        """Pool-compatible alias: a fresh cache with no prefix lookup."""
        return self.acquire_sequence(None)

    # -- page data ---------------------------------------------------------
    def copy_page(self, src: int, dst: int, slots: int) -> None:
        """Copy the first ``slots`` token slots of ``src`` into ``dst``
        across every layer (the COW fork)."""
        self.keys[:, dst, :, :slots] = self.keys[:, src, :, :slots]
        self.values[:, dst, :, :slots] = self.values[:, src, :, :slots]


class PagedLayerCache:
    """One layer's slots of one sequence, backed by shared store pages.

    Same ``seq_len`` / ``append -> (keys, values)`` / ``truncate`` contract
    as :class:`~repro.serving.pool.PooledLayerCache`; the only behavioural
    difference is the write guard — appending into a sealed or shared page
    is a COW violation and raises instead of corrupting a neighbour.
    """

    def __init__(self, sequence: "PagedSequenceCache", layer: int, length: int) -> None:
        self._sequence = sequence
        self._layer = layer
        self._len = length

    @property
    def seq_len(self) -> int:
        return self._len

    def truncate(self, length: int) -> None:
        """Roll this layer back; page bookkeeping lives on the sequence."""
        length = int(length)
        if length < 0:
            raise ShapeError(f"cannot truncate to negative length {length}")
        if length > self._len:
            raise ShapeError(
                f"cannot truncate to {length}: cache holds {self._len} positions"
            )
        self._len = length

    def append(self, keys: np.ndarray, values: np.ndarray) -> tuple:
        sequence = self._sequence
        store = sequence.store
        keys = np.asarray(keys)
        values = np.asarray(values)
        if keys.ndim != 4 or values.shape != keys.shape:
            raise ShapeError(
                f"cache entries must be matching (B, H, T, Dh); got "
                f"{keys.shape} / {values.shape}"
            )
        batch, heads, new_tokens, head_dim = keys.shape
        if batch != 1 or heads != store.kv_heads or head_dim != store.head_dim:
            raise ShapeError(
                f"paged cache expects (1, {store.kv_heads}, T, {store.head_dim}); "
                f"got {keys.shape}"
            )
        if sequence.closed:
            raise ServingError("cannot append to a freed sequence cache")
        if self._len + new_tokens > sequence.capacity:
            raise PoolExhaustedError(
                f"append of {new_tokens} exceeds reserved capacity "
                f"{sequence.capacity} (len {self._len}); call reserve() first"
            )
        page_size = store.block_tokens
        written = 0
        while written < new_tokens:
            position = self._len + written
            page = sequence.block_table[position // page_size]
            self._check_writable(page)
            slot = position % page_size
            take = min(page_size - slot, new_tokens - written)
            store.keys[self._layer, page, :, slot : slot + take] = keys[
                0, :, written : written + take
            ]
            store.values[self._layer, page, :, slot : slot + take] = values[
                0, :, written : written + take
            ]
            written += take
        self._len += new_tokens
        sequence._maybe_seal()
        return self._gather()

    def _check_writable(self, page: int) -> None:
        store = self._sequence.store
        if store.is_sealed(page):
            raise ServingError(
                f"COW violation: write into sealed page {page} "
                "(rollback must fork before the next append)"
            )
        if store.ref(page) != 1:
            raise ServingError(
                f"COW violation: write into page {page} with refcount "
                f"{store.ref(page)}"
            )

    def _gather(self) -> tuple:
        """Contiguous (1, H, seq_len, Dh) copies of the paged history."""
        sequence = self._sequence
        store = sequence.store
        total = self._len
        out_keys = np.empty((1, store.kv_heads, total, store.head_dim), dtype=store.dtype)
        out_values = np.empty_like(out_keys)
        page_size = store.block_tokens
        for index in range(store.blocks_for_tokens(total)):
            page = sequence.block_table[index]
            start = index * page_size
            take = min(page_size, total - start)
            out_keys[0, :, start : start + take] = store.keys[self._layer, page, :, :take]
            out_values[0, :, start : start + take] = store.values[
                self._layer, page, :, :take
            ]
        return out_keys, out_values


class PagedSequenceCache:
    """Per-request view over shared store pages, with COW bookkeeping.

    Structurally compatible with
    :class:`~repro.serving.pool.PooledSequenceCache` (``.layers`` /
    ``seq_len`` / ``reserve`` / ``truncate`` / ``free``).  The sealed
    region of the block table — the first ``_sealed_pages`` entries — is
    immutable and potentially shared; everything past it is private.
    """

    def __init__(
        self,
        store: PagedKVStore,
        block_table: List[int],
        tokens: List[int],
        parent_node: _RadixNode,
        root: Optional[_RadixNode] = None,
    ) -> None:
        self.store = store
        self.block_table = list(block_table)
        self.closed = False
        shared = len(self.block_table) * store.block_tokens
        self._tokens: List[int] = list(tokens)
        self._parent_node = parent_node
        self._root = root if root is not None else store._root
        self._sealed_pages = len(self.block_table)
        self._seal_frozen = False
        self.layers: List[PagedLayerCache] = [
            PagedLayerCache(self, layer, shared)
            for layer in range(store.n_layers)
        ]

    # -- pool-compatible surface -------------------------------------------
    @property
    def seq_len(self) -> int:
        return self.layers[0].seq_len

    @property
    def capacity(self) -> int:
        return len(self.block_table) * self.store.block_tokens

    def __getitem__(self, index: int) -> PagedLayerCache:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)

    def reserve(self, new_tokens: int) -> None:
        if self.closed:
            raise ServingError("cannot reserve on a freed sequence cache")
        if new_tokens < 0:
            raise ServingError("new_tokens must be non-negative")
        needed = self.store.blocks_for_tokens(self.seq_len + new_tokens)
        missing = needed - len(self.block_table)
        if missing > 0:
            self.block_table.extend(self.store.allocate(missing))

    def note_tokens(self, tokens) -> None:
        """Record the token ids the next forward will append.

        The engine calls this with each row's feed (prefill chunk, decode
        token, or chunk + draft proposals) before the forward pass; the
        recorded ids are what key sealed pages into the radix index.
        """
        if self.closed:
            raise ServingError("cannot note tokens on a freed sequence cache")
        ids = [int(t) for t in np.asarray(tokens).reshape(-1)]
        if len(self._tokens) != self.seq_len:
            raise ServingError(
                f"token note out of step: {len(self._tokens)} recorded ids "
                f"for {self.seq_len} cached positions"
            )
        self._tokens.extend(ids)

    def truncate(self, length: int) -> None:
        """Roll back to ``length`` positions, honouring copy-on-write.

        Pages past the kept region drop one reference (sealed ones stay
        reclaimable in the index).  When the cut lands *inside* a sealed
        page, the page is forked to a private copy if anyone else holds it
        and unsealed otherwise — a rolled-back shared page is never
        mutated in place.
        """
        if self.closed:
            raise ServingError("cannot truncate a freed sequence cache")
        length = int(length)
        for layer in self.layers:
            layer.truncate(length)
        del self._tokens[length:]
        store = self.store
        keep = store.blocks_for_tokens(length)
        if keep < len(self.block_table):
            for page in self.block_table[keep:]:
                store.release_ref(page)
            del self.block_table[keep:]
        full_pages = length // store.block_tokens
        partial = length % store.block_tokens
        if partial and full_pages < self._sealed_pages:
            # The cut is inside a sealed page: its tail will be rewritten.
            page = self.block_table[full_pages]
            if store.ref(page) > 1:
                fork = store.allocate(1)[0]
                store.copy_page(page, fork, partial)
                self.block_table[full_pages] = fork
                store.release_ref(page)
                store.cow_forks += 1
            else:
                store.unseal_page(page)
        self._sealed_pages = min(self._sealed_pages, full_pages)
        self._parent_node = (
            store._nodes[self.block_table[self._sealed_pages - 1]]
            if self._sealed_pages > 0
            else self._root
        )

    def free(self) -> None:
        """Drop every page reference; the cache becomes unusable.  Sealed
        pages stay warm in the index for the next matching request."""
        if self.closed:
            return
        for page in self.block_table:
            self.store.release_ref(page)
        self.block_table = []
        self._tokens = []
        self.closed = True

    # -- sealing -----------------------------------------------------------
    def freeze_sealing(self) -> None:
        """Permanently stop this cache from sealing new pages.

        The routed engine calls this on a mid-flight variant hot-swap: a
        sealed page advertises "KV computed by this namespace's variant"
        to future prefix matches, and positions appended after the swap
        were computed by a *different* variant.  Pages sealed before the
        freeze are pure admission-variant content (sealing is strictly
        front-to-back) and stay shared.
        """
        self._seal_frozen = True

    def _maybe_seal(self) -> None:
        """Seal every page all layers have fully written and whose token
        ids are known, chaining each into the radix index.

        If an identical page already hangs at the same spot (two equal
        prefixes prefilled in the same window), the block table is swapped
        onto the existing page and the duplicate freed — N concurrent
        identical prefills converge to one physical copy.
        """
        if self._seal_frozen:
            return
        store = self.store
        page_size = store.block_tokens
        min_len = min(layer._len for layer in self.layers)
        want = min(min_len // page_size, len(self._tokens) // page_size)
        while self._sealed_pages < want:
            index = self._sealed_pages
            page = self.block_table[index]
            key = tuple(self._tokens[index * page_size : (index + 1) * page_size])
            node = store.seal_page(self._parent_node, key, page)
            if node.page != page:
                # Dedup: an identical sealed page already exists; share it.
                store._ref[node.page] += 1
                self.block_table[index] = node.page
                store.release_ref(page)
            self._parent_node = node
            self._sealed_pages += 1


__all__ = ["PagedKVStore", "PagedLayerCache", "PagedSequenceCache"]
