"""Preallocated block-based KV-cache pool shared across requests.

The paper's serving-side memory argument (Section 2.2, Figure 12) is that
decode-phase state — the KV cache — dominates GPU memory at realistic batch
sizes.  Production engines therefore never allocate per-request contiguous
caches; they carve a fixed arena into fixed-size *blocks* of token slots
and hand blocks to requests on demand (vLLM's PagedAttention).  This module
is the NumPy analogue:

- :class:`KVBlockPool` owns one preallocated array per side (K/V) holding
  ``n_blocks`` blocks of ``block_tokens`` token slots for *every* layer, so
  a block id is valid across layers and one allocation covers the whole
  model.
- :class:`PooledSequenceCache` is a per-request view: an ordered block
  table plus per-layer write cursors.  Its layers satisfy the same
  ``seq_len`` / ``append -> (keys, values)`` contract as
  :class:`~repro.nn.kv_cache.LayerKVCache`, so attention code is oblivious
  to the pooling.

Capacity is *reserved* ahead of a forward pass (``reserve``) so admission
control and preemption decisions happen in the scheduler, not mid-layer.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import PoolExhaustedError, ServingError, ShapeError
from repro.models.config import ModelConfig


class KVBlockPool:
    """A fixed arena of KV-cache blocks shared by all in-flight requests."""

    def __init__(
        self,
        config: ModelConfig,
        n_blocks: int = 256,
        block_tokens: int = 16,
        dtype=np.float32,
        kv_heads: Optional[int] = None,
        n_layers: Optional[int] = None,
    ) -> None:
        """``kv_heads`` overrides the model's KV head count — a
        tensor-parallel rank pools only its covering KV-head slice; a
        pipeline stage passes ``n_layers`` so its pool holds only the
        stage's own decoder layers."""
        if n_blocks <= 0 or block_tokens <= 0:
            raise ServingError("n_blocks and block_tokens must be positive")
        if kv_heads is not None and not 0 < kv_heads <= config.kv_heads:
            raise ServingError(
                f"kv_heads override {kv_heads} outside (0, {config.kv_heads}]"
            )
        if n_layers is not None and not 0 < n_layers <= config.n_layers:
            raise ServingError(
                f"n_layers override {n_layers} outside (0, {config.n_layers}]"
            )
        self.config = config
        self.n_blocks = int(n_blocks)
        self.block_tokens = int(block_tokens)
        self.kv_heads = int(kv_heads) if kv_heads is not None else config.kv_heads
        self.n_layers = int(n_layers) if n_layers is not None else config.n_layers
        self.head_dim = config.head_dim
        self.dtype = np.dtype(dtype)
        shape = (
            self.n_layers,
            self.n_blocks,
            self.kv_heads,
            self.block_tokens,
            self.head_dim,
        )
        self.keys = np.zeros(shape, dtype=self.dtype)
        self.values = np.zeros(shape, dtype=self.dtype)
        # LIFO free list: recently released blocks are reused first (warm).
        self._free: List[int] = list(range(self.n_blocks - 1, -1, -1))

    # -- accounting --------------------------------------------------------
    @property
    def available_blocks(self) -> int:
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        return self.n_blocks - len(self._free)

    @property
    def utilization(self) -> float:
        return self.used_blocks / self.n_blocks

    def blocks_for_tokens(self, tokens: int) -> int:
        """Blocks needed to hold ``tokens`` cache slots."""
        if tokens <= 0:
            return 0
        return -(-tokens // self.block_tokens)

    def fits(self, tokens: int) -> bool:
        """Whether a sequence of ``tokens`` positions could *ever* be held."""
        return self.blocks_for_tokens(tokens) <= self.n_blocks

    @property
    def bytes_allocated(self) -> int:
        return self.keys.nbytes + self.values.nbytes

    # -- block management --------------------------------------------------
    def allocate(self, n: int) -> List[int]:
        if n < 0:
            raise ServingError("cannot allocate a negative block count")
        if n > len(self._free):
            raise PoolExhaustedError(
                f"need {n} blocks, {len(self._free)}/{self.n_blocks} free"
            )
        taken = self._free[-n:] if n else []
        del self._free[len(self._free) - n :]
        return taken

    def release(self, blocks: List[int]) -> None:
        for block in blocks:
            if not 0 <= block < self.n_blocks:
                raise ServingError(f"block id {block} outside pool")
        self._free.extend(blocks)
        if len(self._free) > self.n_blocks:
            raise ServingError("double release detected: free list overflow")

    def allocate_sequence(self) -> "PooledSequenceCache":
        """A fresh zero-length per-request cache drawing from this pool."""
        return PooledSequenceCache(self)


class PooledLayerCache:
    """One layer's cache slots of one sequence, backed by pool blocks.

    Satisfies the :class:`~repro.nn.kv_cache.LayerKVCache` contract used by
    :class:`~repro.nn.attention.MultiHeadAttention`.
    """

    def __init__(self, sequence: "PooledSequenceCache", layer: int) -> None:
        self._sequence = sequence
        self._layer = layer
        self._len = 0

    @property
    def seq_len(self) -> int:
        return self._len

    def truncate(self, length: int) -> None:
        """Roll this layer back to ``length`` positions (draft rollback).

        Per-layer lengths only; block bookkeeping lives on the sequence —
        callers go through :meth:`PooledSequenceCache.truncate`, which also
        returns surplus blocks to the pool.
        """
        length = int(length)
        if length < 0:
            raise ShapeError(f"cannot truncate to negative length {length}")
        if length > self._len:
            raise ShapeError(
                f"cannot truncate to {length}: cache holds {self._len} positions"
            )
        self._len = length

    def append(self, keys: np.ndarray, values: np.ndarray) -> tuple:
        """Append new positions; returns the full (keys, values) so far."""
        sequence = self._sequence
        pool = sequence.pool
        keys = np.asarray(keys)
        values = np.asarray(values)
        if keys.ndim != 4 or values.shape != keys.shape:
            raise ShapeError(
                f"cache entries must be matching (B, H, T, Dh); got "
                f"{keys.shape} / {values.shape}"
            )
        batch, heads, new_tokens, head_dim = keys.shape
        if batch != 1 or heads != pool.kv_heads or head_dim != pool.head_dim:
            raise ShapeError(
                f"pooled cache expects (1, {pool.kv_heads}, T, {pool.head_dim}); "
                f"got {keys.shape}"
            )
        if sequence.closed:
            raise ServingError("cannot append to a freed sequence cache")
        if self._len + new_tokens > sequence.capacity:
            raise PoolExhaustedError(
                f"append of {new_tokens} exceeds reserved capacity "
                f"{sequence.capacity} (len {self._len}); call reserve() first"
            )
        block_size = pool.block_tokens
        written = 0
        while written < new_tokens:
            position = self._len + written
            block = sequence.block_table[position // block_size]
            slot = position % block_size
            take = min(block_size - slot, new_tokens - written)
            pool.keys[self._layer, block, :, slot : slot + take] = keys[
                0, :, written : written + take
            ]
            pool.values[self._layer, block, :, slot : slot + take] = values[
                0, :, written : written + take
            ]
            written += take
        self._len += new_tokens
        return self._gather()

    def _gather(self) -> tuple:
        """Contiguous (1, H, seq_len, Dh) copies of the blocked history."""
        sequence = self._sequence
        pool = sequence.pool
        total = self._len
        out_keys = np.empty(
            (1, pool.kv_heads, total, pool.head_dim), dtype=pool.dtype
        )
        out_values = np.empty_like(out_keys)
        block_size = pool.block_tokens
        for index in range(pool.blocks_for_tokens(total)):
            block = sequence.block_table[index]
            start = index * block_size
            take = min(block_size, total - start)
            out_keys[0, :, start : start + take] = pool.keys[
                self._layer, block, :, :take
            ]
            out_values[0, :, start : start + take] = pool.values[
                self._layer, block, :, :take
            ]
        return out_keys, out_values


class PooledSequenceCache:
    """Per-request cache: a block table plus one layer cache per layer.

    Structurally compatible with :class:`~repro.nn.kv_cache.ModelKVCache`
    (``.layers``, ``.seq_len``), so it can be passed to the model's cached
    forward paths directly.
    """

    def __init__(self, pool: KVBlockPool) -> None:
        self.pool = pool
        self.block_table: List[int] = []
        self.closed = False
        self.layers: List[PooledLayerCache] = [
            PooledLayerCache(self, layer) for layer in range(pool.n_layers)
        ]

    @property
    def seq_len(self) -> int:
        return self.layers[0].seq_len

    @property
    def capacity(self) -> int:
        """Token slots currently reserved for this sequence."""
        return len(self.block_table) * self.pool.block_tokens

    def __getitem__(self, index: int) -> PooledLayerCache:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)

    def note_tokens(self, tokens) -> None:
        """Scheduler token-note protocol: a no-op here.

        The paged store (:mod:`repro.serving.paged`) keys its radix index
        on the noted ids; a private block pool has nothing to index.
        """

    def reserve(self, new_tokens: int) -> None:
        """Ensure capacity for ``new_tokens`` more positions.

        Raises :class:`PoolExhaustedError` (allocating nothing) when the
        pool cannot supply the missing blocks — the scheduler's signal to
        stop admitting or to preempt.
        """
        if self.closed:
            raise ServingError("cannot reserve on a freed sequence cache")
        if new_tokens < 0:
            raise ServingError("new_tokens must be non-negative")
        needed = self.pool.blocks_for_tokens(self.seq_len + new_tokens)
        missing = needed - len(self.block_table)
        if missing > 0:
            self.block_table.extend(self.pool.allocate(missing))

    def truncate(self, length: int) -> None:
        """Roll every layer back to ``length`` positions and return the
        blocks beyond the surviving prefix to the pool.

        This is the speculative-decoding rollback: draft positions appended
        optimistically past the accepted prefix are discarded, and the pool
        accounting stays tight — a rejected draft never strands a block.
        """
        if self.closed:
            raise ServingError("cannot truncate a freed sequence cache")
        for layer in self.layers:
            layer.truncate(length)
        keep = self.pool.blocks_for_tokens(length)
        if keep < len(self.block_table):
            self.pool.release(self.block_table[keep:])
            del self.block_table[keep:]

    def free(self) -> None:
        """Return every block to the pool; the cache becomes unusable."""
        if self.closed:
            return
        self.pool.release(self.block_table)
        self.block_table = []
        self.closed = True
