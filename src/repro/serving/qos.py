"""SLO-aware adaptive rank routing: QoS classes and the load-aware router.

The paper characterizes a *static* accuracy-efficiency trade-off across
decomposition ranks; the serving stack holds the resulting variants side by
side (:mod:`repro.serving.variants`).  This module makes that trade-off
curve an **operating** curve the engine walks at runtime:

- A :class:`QoSClass` names what a request is entitled to: a latency SLO on
  time-to-first-token plus a *quality floor* — the cheapest decomposed
  variant the request may ever be served by (``"dense"`` means never
  degrade).
- A :class:`RankRouter` watches engine load (queue depth, projected TTFT
  from an EMA of step durations) and maintains one global *pressure level*
  that indexes a quality ladder ordered best-to-cheapest (canonically
  ``dense > rank8 > rank1``).  Each request is served by
  ``ladder[min(level, floor_index)]`` — the cheapest variant the current
  load calls for that still satisfies the request's floor.  Hysteresis
  (separate degrade/upgrade water marks plus a minimum dwell between level
  changes) keeps the router from thrashing across a burst boundary.
- **Goodput** is the metric the subsystem is judged by: the number of
  requests that finished, met their TTFT SLO, *and* were only ever served
  at or above their quality floor.  A fixed cheap variant forfeits every
  request whose floor it violates; a fixed dense variant forfeits SLOs
  under load.  The router exists to beat both.

SLOs can be written in absolute (virtual-clock) seconds or in *units* of
the unloaded dense TTFT measured by :func:`calibrate_unit`, which keeps
one QoS catalog meaningful across machines of different speeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ServingError

#: Default quality ladder, best quality first.  Index 0 is full quality;
#: every later entry trades accuracy for cheaper decode (the paper's
#: trade-off curve, ordered).
QUALITY_LADDER: Tuple[str, ...] = ("dense", "rank8", "rank1")


def ladder_index(ladder: Sequence[str], spec: Optional[str]) -> int:
    """Position of ``spec`` on the ladder; unknown specs rank *below* the
    cheapest rung (they satisfy no floor)."""
    if spec is None:
        return len(ladder)
    try:
        return list(ladder).index(spec)
    except ValueError:
        return len(ladder)


@dataclass(frozen=True)
class QoSClass:
    """One service class: latency SLO plus a minimum-quality tier.

    ``ttft_slo_units`` expresses the SLO as a multiple of the unloaded
    dense TTFT (see :func:`calibrate_unit`); ``ttft_slo_s`` overrides it
    with absolute virtual-clock seconds.  ``deadline_s`` optionally adds a
    *hard* per-request deadline (arrival-relative) enforced by the engine's
    existing cancellation path; the SLO itself is soft — measured, not
    enforced.  ``share`` weights trace sampling in
    :func:`repro.serving.trace.make_trace`'s ``qos_mix``.
    """

    name: str
    quality_floor: str
    ttft_slo_units: Optional[float] = None
    ttft_slo_s: Optional[float] = None
    deadline_s: Optional[float] = None
    share: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ServingError("QoS class needs a name")
        if self.share <= 0:
            raise ServingError(f"QoS class {self.name!r} share must be positive")
        for label, value in (
            ("ttft_slo_units", self.ttft_slo_units),
            ("ttft_slo_s", self.ttft_slo_s),
            ("deadline_s", self.deadline_s),
        ):
            if value is not None and value <= 0:
                raise ServingError(f"QoS class {self.name!r} {label} must be positive")

    def resolve(self, unit_s: Optional[float]) -> "QoSClass":
        """A copy with the SLO pinned to absolute seconds.

        Absolute ``ttft_slo_s`` wins; otherwise units are scaled by
        ``unit_s`` (the calibrated unloaded dense TTFT).
        """
        if self.ttft_slo_s is not None or self.ttft_slo_units is None:
            return self
        if unit_s is None or unit_s <= 0:
            raise ServingError(
                f"QoS class {self.name!r} has a unit-denominated SLO but no "
                "calibration unit; run calibrate_unit() first"
            )
        return replace(self, ttft_slo_s=self.ttft_slo_units * unit_s)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "quality_floor": self.quality_floor,
            "ttft_slo_units": self.ttft_slo_units,
            "ttft_slo_s": self.ttft_slo_s,
            "deadline_s": self.deadline_s,
            "share": self.share,
        }


#: The default three-tier catalog.  Shares sum to 1; floors span the whole
#: ladder so every fixed-variant baseline forfeits *some* class (dense by
#: SLO under load, rank8/rank1 by quality floor), which is exactly the
#: regime where adaptive routing pays.
DEFAULT_QOS_CLASSES: Tuple[QoSClass, ...] = (
    QoSClass("gold", quality_floor="dense", ttft_slo_units=15.0, share=0.25),
    QoSClass("interactive", quality_floor="rank8", ttft_slo_units=12.0, share=0.35),
    QoSClass("batch", quality_floor="rank1", ttft_slo_units=40.0, share=0.4),
)


def qos_catalog(
    classes: Sequence[QoSClass] = DEFAULT_QOS_CLASSES,
    unit_s: Optional[float] = None,
) -> Dict[str, QoSClass]:
    """Name-keyed catalog with every unit-denominated SLO resolved."""
    catalog: Dict[str, QoSClass] = {}
    for cls in classes:
        if cls.name in catalog:
            raise ServingError(f"duplicate QoS class {cls.name!r}")
        catalog[cls.name] = cls.resolve(unit_s) if unit_s is not None else cls
    return catalog


def qos_mix(classes: Sequence[QoSClass] = DEFAULT_QOS_CLASSES) -> Dict[str, float]:
    """The trace-sampling mix implied by the classes' shares."""
    return {cls.name: cls.share for cls in classes}


# -- the router -------------------------------------------------------------
#: Load signals a :class:`RankRouter` can walk its ladder by.
WATERMARK_MODES: Tuple[str, ...] = ("backlog", "projected")


@dataclass(frozen=True)
class RouterConfig:
    """Hysteresis knobs for :class:`RankRouter`.

    Two watermark modes pick the load signal the ladder reacts to:

    - ``"backlog"`` (default): the request backlog (queued plus running)
      against the integer water marks ``degrade_at`` / ``upgrade_at``.
    - ``"projected"``: the projected TTFT of a request arriving *now* —
      backlog serial step times through the step-duration EMA — against
      the absolute-seconds water marks ``degrade_ttft_s`` /
      ``upgrade_ttft_s``.  The same backlog reads as more pressure on a
      slow machine (or a dense-heavy ladder) and less on a fast one, so
      the projected mode tracks the latency SLOs directly instead of a
      queue-depth proxy for them.

    In either mode the gap between the two water marks plus a minimum
    dwell of ``dwell_steps`` engine steps between consecutive level
    changes is what prevents thrash at a burst boundary.
    """

    degrade_at: int = 5
    upgrade_at: int = 1
    dwell_steps: int = 3
    ema_alpha: float = 0.2  # step-duration EMA weight (TTFT projection)
    watermark: str = "backlog"
    degrade_ttft_s: float = 0.5
    upgrade_ttft_s: float = 0.1

    def __post_init__(self) -> None:
        if self.watermark not in WATERMARK_MODES:
            raise ServingError(
                f"unknown watermark mode {self.watermark!r}; "
                f"choose from {WATERMARK_MODES}"
            )
        if self.degrade_at <= self.upgrade_at:
            raise ServingError(
                "degrade_at must exceed upgrade_at (the hysteresis band)"
            )
        if self.upgrade_at < 0 or self.dwell_steps < 1:
            raise ServingError("upgrade_at must be >= 0 and dwell_steps >= 1")
        if not 0.0 < self.ema_alpha <= 1.0:
            raise ServingError("ema_alpha must be in (0, 1]")
        if self.degrade_ttft_s <= self.upgrade_ttft_s:
            raise ServingError(
                "degrade_ttft_s must exceed upgrade_ttft_s (the hysteresis band)"
            )
        if self.upgrade_ttft_s < 0:
            raise ServingError("upgrade_ttft_s must be >= 0")


@dataclass(frozen=True)
class RouterDecision:
    """One level change, as logged into the run artifacts."""

    step: int
    now: float
    action: str          # "degrade" | "upgrade"
    from_spec: str
    to_spec: str
    queue_depth: int
    running: int
    projected_ttft_s: float

    def to_dict(self) -> dict:
        return {
            "step": self.step,
            "now": self.now,
            "action": self.action,
            "from": self.from_spec,
            "to": self.to_spec,
            "queue_depth": self.queue_depth,
            "running": self.running,
            "projected_ttft_s": self.projected_ttft_s,
        }


class RankRouter:
    """Load-aware pressure level over a quality ladder, with hysteresis.

    The engine calls :meth:`observe` once per step (before scheduling) and
    :meth:`note_step` after each step's measured duration; requests are
    mapped through :meth:`variant_for` at admission and again every step,
    so a running request's decode variant can change between steps (the
    factor-structured hot-swap — KV state is variant-agnostic, so no
    recomputation happens on a swap).
    """

    def __init__(
        self,
        ladder: Sequence[str] = QUALITY_LADDER,
        config: Optional[RouterConfig] = None,
    ) -> None:
        ladder = tuple(ladder)
        if len(ladder) < 2:
            raise ServingError("router ladder needs at least two variants")
        if len(set(ladder)) != len(ladder):
            raise ServingError(f"router ladder has duplicates: {ladder}")
        self.ladder = ladder
        self.config = config or RouterConfig()
        self.level = 0
        self.decisions: List[RouterDecision] = []
        self._steps = 0
        self._last_change = -self.config.dwell_steps  # first change is free
        self._ema_step_s = 0.0

    # -- mapping -----------------------------------------------------------
    def variant_for(self, floor: Optional[str] = None) -> str:
        """Cheapest ladder variant satisfying ``floor`` at current load.

        ``floor=None`` (no QoS class) accepts any quality.  A floor not on
        the ladder is a configuration error.
        """
        if floor is None:
            return self.ladder[self.level]
        index = ladder_index(self.ladder, floor)
        if index >= len(self.ladder):
            raise ServingError(
                f"quality floor {floor!r} is not on the ladder {self.ladder}"
            )
        return self.ladder[min(self.level, index)]

    # -- load tracking -----------------------------------------------------
    def projected_ttft_s(self, backlog: int) -> float:
        """Pessimistic queue-drain estimate: backlog serial step times."""
        return backlog * self._ema_step_s

    def observe(
        self, now: float, queue_depth: int, running: int
    ) -> Optional[RouterDecision]:
        """Update the pressure level from current load; returns the level
        change made this step, if any (at most one per dwell window)."""
        self._steps += 1
        backlog = queue_depth + running
        if self._steps - self._last_change < self.config.dwell_steps:
            return None
        if self.config.watermark == "projected":
            # Latency-domain water marks: the projected TTFT of a request
            # arriving now (backlog serial EMA step times) against absolute
            # thresholds.  Before any step has been measured the EMA is 0
            # and the projection reads as no pressure.
            signal: float = self.projected_ttft_s(backlog)
            degrade_mark: float = self.config.degrade_ttft_s
            upgrade_mark: float = self.config.upgrade_ttft_s
        else:
            signal = backlog
            degrade_mark = self.config.degrade_at
            upgrade_mark = self.config.upgrade_at
        action = None
        if signal >= degrade_mark and self.level < len(self.ladder) - 1:
            action, target = "degrade", self.level + 1
        elif signal <= upgrade_mark and self.level > 0:
            action, target = "upgrade", self.level - 1
        if action is None:
            return None
        decision = RouterDecision(
            step=self._steps,
            now=now,
            action=action,
            from_spec=self.ladder[self.level],
            to_spec=self.ladder[target],
            queue_depth=queue_depth,
            running=running,
            projected_ttft_s=self.projected_ttft_s(backlog),
        )
        self.level = target
        self._last_change = self._steps
        self.decisions.append(decision)
        return decision

    def note_step(self, duration_s: float) -> None:
        alpha = self.config.ema_alpha
        if self._ema_step_s == 0.0:
            self._ema_step_s = duration_s
        else:
            self._ema_step_s += alpha * (duration_s - self._ema_step_s)

    # -- telemetry ---------------------------------------------------------
    @property
    def downgrades(self) -> int:
        return sum(1 for d in self.decisions if d.action == "degrade")

    @property
    def upgrades(self) -> int:
        return sum(1 for d in self.decisions if d.action == "upgrade")

    def snapshot(self) -> dict:
        return {
            "ladder": list(self.ladder),
            "config": {
                "degrade_at": self.config.degrade_at,
                "upgrade_at": self.config.upgrade_at,
                "dwell_steps": self.config.dwell_steps,
                "ema_alpha": self.config.ema_alpha,
                "watermark": self.config.watermark,
                "degrade_ttft_s": self.config.degrade_ttft_s,
                "upgrade_ttft_s": self.config.upgrade_ttft_s,
            },
            "level": self.level,
            "downgrades": self.downgrades,
            "upgrades": self.upgrades,
            "decisions": [d.to_dict() for d in self.decisions],
        }


class ScriptedRouter:
    """A router double that replays a fixed level schedule.

    ``levels[i]`` is the pressure level after the ``i``-th
    :meth:`observe` call (clamped to the last entry once exhausted).  Load
    inputs are ignored, which makes swap points — and therefore the whole
    per-step variant schedule — deterministic regardless of measured step
    durations; this is what the hot-swap exactness tests replay against.
    """

    def __init__(self, ladder: Sequence[str], levels: Sequence[int]) -> None:
        self.ladder = tuple(ladder)
        if not levels:
            raise ServingError("scripted router needs at least one level")
        for level in levels:
            if not 0 <= level < len(self.ladder):
                raise ServingError(f"scripted level {level} outside ladder")
        self._levels = list(levels)
        self.level = self._levels[0]
        self.decisions: List[RouterDecision] = []
        self._steps = 0

    def variant_for(self, floor: Optional[str] = None) -> str:
        if floor is None:
            return self.ladder[self.level]
        index = ladder_index(self.ladder, floor)
        if index >= len(self.ladder):
            raise ServingError(
                f"quality floor {floor!r} is not on the ladder {self.ladder}"
            )
        return self.ladder[min(self.level, index)]

    def observe(self, now, queue_depth, running) -> Optional[RouterDecision]:
        previous = self.level
        index = min(self._steps, len(self._levels) - 1)
        self.level = self._levels[index]
        self._steps += 1
        if self.level == previous:
            return None
        decision = RouterDecision(
            step=self._steps,
            now=now,
            action="degrade" if self.level > previous else "upgrade",
            from_spec=self.ladder[previous],
            to_spec=self.ladder[self.level],
            queue_depth=queue_depth,
            running=running,
            projected_ttft_s=0.0,
        )
        self.decisions.append(decision)
        return decision

    def note_step(self, duration_s: float) -> None:
        pass

    @property
    def downgrades(self) -> int:
        return sum(1 for d in self.decisions if d.action == "degrade")

    @property
    def upgrades(self) -> int:
        return sum(1 for d in self.decisions if d.action == "upgrade")

    def snapshot(self) -> dict:
        return {
            "ladder": list(self.ladder),
            "config": {"scripted_levels": self._levels},
            "level": self.level,
            "downgrades": self.downgrades,
            "upgrades": self.upgrades,
            "decisions": [d.to_dict() for d in self.decisions],
        }


# -- goodput ----------------------------------------------------------------
@dataclass
class GoodputSummary:
    """Requests meeting their SLO at or above their quality floor."""

    eligible: int = 0
    good: int = 0
    slo_violations: int = 0
    quality_violations: int = 0
    not_finished: int = 0
    per_class: Dict[str, dict] = field(default_factory=dict)

    @property
    def rate(self) -> float:
        return self.good / self.eligible if self.eligible else 0.0

    def to_dict(self) -> dict:
        return {
            "eligible": self.eligible,
            "good": self.good,
            "rate": self.rate,
            "slo_violations": self.slo_violations,
            "quality_violations": self.quality_violations,
            "not_finished": self.not_finished,
            "per_class": self.per_class,
        }


def goodput_summary(
    records: Sequence[dict],
    catalog: Dict[str, QoSClass],
    ladder: Sequence[str] = QUALITY_LADDER,
    default_spec: Optional[str] = None,
) -> GoodputSummary:
    """Score per-request replay records (see ``request_records``) against a
    QoS catalog.

    A record is *good* when it finished, its TTFT met the class SLO, and
    every variant that ever served it sits at or above the class's quality
    floor.  Records whose engine ran without a router carry no per-request
    variant history; ``default_spec`` (the fixed variant replayed) stands
    in for it.  Requests without a QoS tag count as eligible and are held
    only to finishing (no SLO, no floor).
    """
    summary = GoodputSummary()
    for record in records:
        qos_name = record.get("qos")
        cls = catalog.get(qos_name) if qos_name else None
        if qos_name and cls is None:
            raise ServingError(f"record tagged with unknown QoS class {qos_name!r}")
        served = record.get("variants") or ([default_spec] if default_spec else [])
        per = summary.per_class.setdefault(
            qos_name or "untagged",
            {"eligible": 0, "good": 0, "slo_violations": 0, "quality_violations": 0},
        )
        summary.eligible += 1
        per["eligible"] += 1
        if record.get("state") != "finished":
            summary.not_finished += 1
            continue
        ok = True
        if cls is not None and cls.ttft_slo_s is not None:
            ttft = record.get("ttft_s")
            if ttft is None or ttft > cls.ttft_slo_s:
                summary.slo_violations += 1
                per["slo_violations"] += 1
                ok = False
        if cls is not None:
            floor = ladder_index(ladder, cls.quality_floor)
            worst = max((ladder_index(ladder, spec) for spec in served), default=0)
            if worst > floor:
                summary.quality_violations += 1
                per["quality_violations"] += 1
                ok = False
        if ok:
            summary.good += 1
            per["good"] += 1
    return summary


# -- calibration ------------------------------------------------------------
def calibrate_unit(model, trace, engine_config=None, repeats: int = 3) -> float:
    """Unloaded dense TTFT: the first trace request served alone.

    One request on a fresh engine has no queueing component, so its TTFT is
    pure model time — the natural unit for machine-independent SLOs.  The
    probe is repeated and the median taken: the very first pass through a
    model pays one-time warmup costs (allocator, caches) that would
    otherwise inflate every SLO derived from the unit.
    """
    from repro.serving.engine import InferenceEngine

    if not trace:
        raise ServingError("cannot calibrate against an empty trace")
    if repeats < 1:
        raise ServingError("calibration needs at least one probe")
    probe = trace[0]
    samples = []
    for _ in range(repeats):
        engine = InferenceEngine(model, config=engine_config)
        request = engine.submit(probe.prompt, probe.max_new_tokens, now=0.0)
        engine.run_until_idle()
        if request.ttft_s is None:
            raise ServingError(
                f"calibration request ended {request.state.value} "
                f"({request.finish_reason}); cannot derive an SLO unit"
            )
        samples.append(request.ttft_s)
    samples.sort()
    return samples[len(samples) // 2]


__all__ = [
    "DEFAULT_QOS_CLASSES",
    "QUALITY_LADDER",
    "WATERMARK_MODES",
    "GoodputSummary",
    "QoSClass",
    "RankRouter",
    "RouterConfig",
    "RouterDecision",
    "ScriptedRouter",
    "calibrate_unit",
    "goodput_summary",
    "ladder_index",
    "qos_catalog",
    "qos_mix",
]
