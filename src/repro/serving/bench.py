"""Trace replay and the serve-bench harness.

``replay_trace`` drives an :class:`~repro.serving.engine.InferenceEngine`
through a synthetic arrival trace on a *virtual clock*: requests are
submitted when the clock passes their arrival time, every engine step's
wall-clock model time advances the clock, and when the engine goes idle the
clock jumps to the next arrival.  Nothing sleeps, so the benchmark runs at
full speed while latency metrics (TTFT, queue wait, e2e) remain meaningful
load-dependent quantities.

``run_serve_bench`` replays the *same* trace against several model variants
(dense and decomposed) and pairs each measured result with the analytic
:func:`~repro.hwmodel.generation.generation_profile` projection, mirroring
how the paper contrasts measured serving latency with the roofline model's
prediction (Sections 2.2 and 4.3).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ServingError
from repro.hwmodel.device import GPUSpec, get_gpu
from repro.hwmodel.generation import GenerationProfile, generation_profile
from repro.serving.engine import EngineConfig, InferenceEngine
from repro.serving.qos import (
    DEFAULT_QOS_CLASSES,
    QUALITY_LADDER,
    QoSClass,
    RankRouter,
    RouterConfig,
    calibrate_unit,
    goodput_summary,
    qos_catalog,
)
from repro.serving.request import GenerationRequest
from repro.serving.trace import TraceRequest
from repro.serving.variants import ModelVariant, VariantRegistry

#: Result-row spec name for the adaptively routed replay.
ROUTER_SPEC = "slo-router"


def replay_trace(
    engine: InferenceEngine,
    trace: Sequence[TraceRequest],
    max_steps: int = 1000000,
    speculative: bool = False,
    catalog: Optional[Dict[str, QoSClass]] = None,
) -> List[GenerationRequest]:
    """Replay ``trace`` through ``engine`` on a virtual clock.

    Returns the engine's request objects in trace order, all terminal.
    With ``speculative`` every request decodes through the engine's
    drafter/verifier loop (the engine must have been built with a drafter).
    ``catalog`` maps trace QoS tags to resolved
    :class:`~repro.serving.qos.QoSClass` objects; without one, tags are
    ignored (the fixed-variant baselines and QoS runs replay the identical
    submission sequence either way).
    """
    pending = sorted(trace, key=lambda r: r.arrival_time)
    submitted: List[GenerationRequest] = []
    now = 0.0
    cursor = 0
    steps = 0
    while cursor < len(pending) or engine.has_work:
        while cursor < len(pending) and pending[cursor].arrival_time <= now:
            arrival = pending[cursor]
            qos = None
            if catalog is not None and arrival.qos is not None:
                try:
                    qos = catalog[arrival.qos]
                except KeyError:
                    raise ServingError(
                        f"trace request tagged with unknown QoS class "
                        f"{arrival.qos!r}; catalog has {sorted(catalog)}"
                    ) from None
            submitted.append(
                engine.submit(
                    arrival.prompt,
                    arrival.max_new_tokens,
                    now=arrival.arrival_time,
                    speculative=speculative,
                    qos=qos,
                )
            )
            cursor += 1
        if not engine.has_work:
            if cursor >= len(pending):
                break
            now = pending[cursor].arrival_time  # idle: jump to next arrival
            continue
        report = engine.step(now)
        now += report.duration_s
        steps += 1
        if steps > max_steps:
            raise ServingError(f"trace replay exceeded {max_steps} steps")
    return submitted


def request_records(requests: Sequence[GenerationRequest]) -> List[dict]:
    """JSON-ready per-request samples (one ``metrics.jsonl`` line each)."""
    records = []
    for request in requests:
        records.append(
            {
                "request_id": request.request_id,
                "state": request.state.value,
                "arrival_time_s": request.arrival_time,
                "prompt_tokens": int(request.prompt.size),
                "n_generated": request.n_generated,
                "generated": [int(t) for t in request.generated],
                "preemptions": request.preemptions,
                "queue_wait_s": request.queue_wait_s,
                "ttft_s": request.ttft_s,
                "e2e_s": request.e2e_s,
                "finish_reason": request.finish_reason,
                "qos": request.qos_name,
                "ttft_slo_s": request.ttft_slo_s,
                "slo_met": request.slo_met,
                "variants": request.served_variants,
                "swaps": request.swaps,
            }
        )
    return records


@dataclass(frozen=True)
class VariantBenchResult:
    """Measured + projected serving behaviour of one model variant."""

    spec: str
    parameter_reduction: float
    n_requests: int
    finished: int
    rejected: int
    preemptions: int
    ttft_p50_s: float
    ttft_p95_s: float
    ttft_p99_s: float
    queue_wait_p50_s: float
    e2e_p95_s: float
    decode_tokens_per_s: float
    overall_tokens_per_s: float
    mean_decode_batch: float
    projection: GenerationProfile
    tp: int = 1
    pp: int = 1
    comm: Optional[dict] = None          # measured vs analytic collective traffic
    metrics_snapshot: dict = field(default_factory=dict)
    profile: Optional[str] = None        # rendered op-level profile (``--profile``)
    drafter: Optional[str] = None        # drafter spec when serving speculatively
    spec_acceptance_rate: float = 0.0
    spec_drafted: int = 0
    spec_accepted: int = 0
    spec_fallbacks: int = 0
    # Cross-request prefix sharing (paged store; zero when disabled).
    prefix_lookups: int = 0
    prefix_hits: int = 0
    prefix_hit_rate: float = 0.0
    prefill_tokens_saved: int = 0
    # Per-request samples of the replay (metrics.jsonl lines).
    requests: List[dict] = field(default_factory=list)
    # ``--verify-identity``: None = not checked, else tokens matched the
    # per-request-pool (unshared) engine on every request.
    tokens_match_unshared: Optional[bool] = None
    # QoS scoring (None when the trace carries no QoS catalog): the
    # goodput summary dict from repro.serving.qos.goodput_summary.
    goodput: Optional[dict] = None
    # Router provenance, ROUTER_SPEC rows only: ladder, config, decision
    # log, downgrade/upgrade counts, hot-swap count.
    router: Optional[dict] = None

    @property
    def projected_tokens_per_s(self) -> float:
        return self.projection.tokens_per_second

    def summary_line(self) -> str:
        line = (
            f"{self.spec:>8}  pr={100 * self.parameter_reduction:5.1f}%  "
            f"ok={self.finished}/{self.n_requests}  "
            f"ttft p50={1e3 * self.ttft_p50_s:7.1f}ms p95={1e3 * self.ttft_p95_s:7.1f}ms  "
            f"decode={self.decode_tokens_per_s:8.1f} tok/s  "
            f"projected={self.projected_tokens_per_s:10.0f} tok/s"
        )
        if self.drafter is not None:
            line += (
                f"  spec[{self.drafter}] accept={self.spec_acceptance_rate:5.1%}"
                f" ({self.spec_accepted}/{self.spec_drafted},"
                f" fallbacks={self.spec_fallbacks})"
            )
        if self.prefix_lookups:
            line += (
                f"  prefix hit={self.prefix_hit_rate:5.1%}"
                f" saved={self.prefill_tokens_saved} tok"
            )
        if self.goodput is not None:
            line += (
                f"  goodput={self.goodput['good']}/{self.goodput['eligible']}"
                f" ({self.goodput['rate']:5.1%})"
            )
        if self.router is not None:
            line += (
                f"  router[down={self.router['downgrades']}"
                f" up={self.router['upgrades']} swaps={self.router['swaps']}]"
            )
        if self.tokens_match_unshared is not None:
            line += "  [identity ok]" if self.tokens_match_unshared else "  [DIVERGED]"
        return line

    def comm_line(self) -> Optional[str]:
        """Measured traffic next to the analytic projection, per channel."""
        if self.comm is None:
            return None
        grid = f"tp={self.tp}"
        if self.pp > 1:
            grid += f" pp={self.pp}"
        lines = []
        for name, cell in self.comm["channels"].items():
            measured = cell["measured"]
            analytic = cell["analytic"]
            if analytic["calls"] == 0 and measured["calls"] == 0:
                continue  # e.g. p2p on a 1-stage pipe
            verdict = "exact" if cell["bytes_match"] else "MISMATCH"
            lines.append(
                f"{self.spec:>8}  {grid}  {name} measured: "
                f"{measured['payload_bytes']:,} B payload / "
                f"{measured['wire_bytes']:,} B wire / {measured['calls']} calls  "
                f"analytic: {analytic['payload_bytes']:,} B / "
                f"{analytic['wire_bytes']:,} B / {analytic['calls']} calls  "
                f"[{verdict}]"
            )
        return "\n".join(lines) if lines else None

    def to_dict(self) -> dict:
        payload = {
            "spec": self.spec,
            "parameter_reduction": self.parameter_reduction,
            "n_requests": self.n_requests,
            "finished": self.finished,
            "rejected": self.rejected,
            "preemptions": self.preemptions,
            "ttft_p50_s": self.ttft_p50_s,
            "ttft_p95_s": self.ttft_p95_s,
            "ttft_p99_s": self.ttft_p99_s,
            "queue_wait_p50_s": self.queue_wait_p50_s,
            "e2e_p95_s": self.e2e_p95_s,
            "decode_tokens_per_s": self.decode_tokens_per_s,
            "overall_tokens_per_s": self.overall_tokens_per_s,
            "mean_decode_batch": self.mean_decode_batch,
            "tp": self.tp,
            "pp": self.pp,
            "projection": asdict(self.projection),
            "projected_tokens_per_s": self.projected_tokens_per_s,
            "comm": self.comm,
            "metrics": self.metrics_snapshot,
            "profile": self.profile,
            "drafter": self.drafter,
            "spec_acceptance_rate": self.spec_acceptance_rate,
            "spec_drafted": self.spec_drafted,
            "spec_accepted": self.spec_accepted,
            "spec_fallbacks": self.spec_fallbacks,
            "prefix_lookups": self.prefix_lookups,
            "prefix_hits": self.prefix_hits,
            "prefix_hit_rate": self.prefix_hit_rate,
            "prefill_tokens_saved": self.prefill_tokens_saved,
            "requests": self.requests,
            "tokens_match_unshared": self.tokens_match_unshared,
            "goodput": self.goodput,
            "router": self.router,
        }
        return payload


@dataclass(frozen=True)
class ServeBenchReport:
    """Side-by-side serve-bench results for every requested variant."""

    model: str
    gpu: str
    n_requests: int
    results: List[VariantBenchResult]
    tp: int = 1
    pp: int = 1
    seed: Optional[int] = None
    # Trace provenance: family name, generator params, shape summary
    # (what a run manifest needs to replay the trace bit-identically).
    trace_info: Optional[dict] = None
    # QoS provenance when the run scored goodput: resolved class catalog,
    # the calibrated SLO unit, and the router ladder/config used.
    qos_info: Optional[dict] = None

    def result_for(self, spec: str) -> VariantBenchResult:
        for result in self.results:
            if result.spec == spec:
                return result
        raise ServingError(f"no result for variant {spec!r}")

    def goodput_vs_fixed(self) -> Optional[dict]:
        """Routed goodput next to every fixed-variant baseline's.

        None unless the run carried a router row and scored goodput.
        """
        routed = next(
            (r for r in self.results if r.spec == ROUTER_SPEC and r.goodput), None
        )
        if routed is None:
            return None
        fixed = {
            r.spec: r.goodput["rate"]
            for r in self.results
            if r.spec != ROUTER_SPEC and r.goodput is not None
        }
        if not fixed:
            return None
        return {
            "routed": routed.goodput["rate"],
            "fixed": fixed,
            "best_fixed": max(fixed.values()),
            "worst_fixed": min(fixed.values()),
            "beats_best_fixed": routed.goodput["rate"] > max(fixed.values()),
        }

    def speedup_over_dense(self, spec: str) -> float:
        """Measured decode-throughput ratio of ``spec`` over ``dense``."""
        dense = self.result_for("dense")
        other = self.result_for(spec)
        if dense.decode_tokens_per_s == 0.0:
            return 0.0
        return other.decode_tokens_per_s / dense.decode_tokens_per_s

    def table(self) -> str:
        tp_note = f", tp={self.tp}" if self.tp > 1 else ""
        if self.pp > 1:
            tp_note += f", pp={self.pp}"
        family = (self.trace_info or {}).get("family")
        trace_note = f", {family} trace" if family else ""
        header = (
            f"serve-bench: {self.model} on {self.gpu} projection, "
            f"{self.n_requests} requests{trace_note}{tp_note}"
        )
        lines = [header, "-" * len(header)]
        lines.extend(result.summary_line() for result in self.results)
        comm_lines = [line for line in
                      (result.comm_line() for result in self.results) if line]
        if comm_lines:
            lines.append("")
            lines.extend(comm_lines)
        comparison = self.goodput_vs_fixed()
        if comparison is not None:
            verdict = "beats" if comparison["beats_best_fixed"] else "TRAILS"
            lines.append("")
            lines.append(
                f"goodput: routed {comparison['routed']:.1%} {verdict} best "
                f"fixed {comparison['best_fixed']:.1%} "
                f"(worst fixed {comparison['worst_fixed']:.1%})"
            )
        for result in self.results:
            if result.profile:
                lines.append("")
                lines.append(f"op profile — {result.spec} (fast path):")
                lines.append(result.profile)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "gpu": self.gpu,
            "n_requests": self.n_requests,
            "tp": self.tp,
            "pp": self.pp,
            "seed": self.seed,
            "trace_info": self.trace_info,
            "qos_info": self.qos_info,
            "goodput_vs_fixed": self.goodput_vs_fixed(),
            "results": [result.to_dict() for result in self.results],
        }


def _replay_once(
    variant: ModelVariant,
    trace: Sequence[TraceRequest],
    engine_config: Optional[EngineConfig],
    gpu: GPUSpec,
    tp: int,
    profile: bool,
    drafter: Optional[ModelVariant],
    catalog: Optional[Dict[str, QoSClass]] = None,
    pp: int = 1,
):
    """One full trace replay; returns (metrics, requests, comm, profile)."""
    serving_model = variant.model
    sharded = None
    if tp > 1 or pp > 1:
        from repro.parallel import ShardedLlama

        sharded = ShardedLlama(variant.model, tp, pp=pp)
        serving_model = sharded
    try:
        profiler = None
        if profile:
            from repro.runtime import fastpath

            profiled_context = (
                sharded.executors[0].context
                if sharded is not None
                else variant.model.runtime.context
            )
            profiler = fastpath.enable_profiling(profiled_context)
        engine = InferenceEngine(
            serving_model,
            config=engine_config,
            drafter=None if drafter is None else drafter.model,
        )
        requests = replay_trace(
            engine, trace, speculative=drafter is not None, catalog=catalog
        )
        metrics = engine.metrics
        profile_table = None
        if profiler is not None:
            from repro.runtime import fastpath

            profile_table = profiler.table()
            fastpath.disable_profiling(profiled_context)
        comm = None
        if sharded is not None:
            stats = sharded.comm_stats()
            measured = stats.snapshot()
            projections = sharded.comm_projections()
            channels = {}
            for name, projection in projections.items():
                channel = stats.channel(name)
                channels[name] = {
                    "measured": {
                        key: channel[key]
                        for key in ("calls", "payload_bytes", "wire_bytes")
                    },
                    "analytic": projection.to_dict(),
                    "bytes_match": (
                        channel["payload_bytes"] == projection.payload_bytes
                        and channel["wire_bytes"] == projection.wire_bytes
                        and channel["calls"] == projection.calls
                    ),
                }
            analytic = projections["all_gather"]
            comm = {
                "world_size": tp * pp,
                "tp": tp,
                "pp": pp,
                "measured": measured,
                "analytic": analytic.to_dict(),
                "channels": channels,
                "bytes_match": all(
                    cell["bytes_match"] for cell in channels.values()
                ),
                "projected_latency_s": sum(
                    projection.latency_s(gpu)
                    for projection in projections.values()
                ),
                "measured_elapsed_s": measured["elapsed_s"],
            }
    finally:
        if sharded is not None:
            sharded.close()
    return metrics, requests, comm, profile_table


def _goodput_dict(
    records: List[dict],
    catalog: Dict[str, QoSClass],
    ladder: Sequence[str],
    metrics,
    default_spec: Optional[str] = None,
) -> dict:
    """Goodput summary enriched with per-class latency/SLO context."""
    summary = goodput_summary(
        records, catalog, ladder, default_spec=default_spec
    ).to_dict()
    for name, per in summary["per_class"].items():
        cls_metrics = metrics.qos_classes.get(name)
        if cls_metrics is not None:
            per["ttft_p50_s"] = cls_metrics.ttft_s.p50
            per["ttft_p95_s"] = cls_metrics.ttft_s.p95
            per["deadline_missed"] = cls_metrics.deadline_missed
        cls = catalog.get(name)
        per["ttft_slo_s"] = cls.ttft_slo_s if cls is not None else None
        per["quality_floor"] = cls.quality_floor if cls is not None else None
    return summary


def bench_variant(
    variant: ModelVariant,
    trace: Sequence[TraceRequest],
    engine_config: Optional[EngineConfig] = None,
    gpu: Optional[GPUSpec] = None,
    tp: int = 1,
    pp: int = 1,
    profile: bool = False,
    drafter: Optional[ModelVariant] = None,
    verify_identity: bool = False,
    catalog: Optional[Dict[str, QoSClass]] = None,
    ladder: Sequence[str] = QUALITY_LADDER,
) -> VariantBenchResult:
    """Replay ``trace`` against one variant and attach the hwmodel projection.

    With ``tp > 1`` or ``pp > 1`` the variant runs under the mesh executor
    (:class:`~repro.parallel.local.ShardedLlama` on a (pp, tp) grid, which
    produces identical logits by construction) and the result carries the
    measured collective traffic next to the analytic projection, per
    channel (``all_gather`` within each stage's TP group, ``p2p`` across
    stage boundaries) — every channel must agree byte for byte.
    With ``profile``, the inference fast path records a per-op wall-time /
    allocation profile of the whole replay (rank 0's when ``tp > 1``).
    With ``drafter``, the variant *verifies* that drafter's speculative
    proposals: every request decodes through the engine's speculative mode
    (``engine_config.spec_k`` drafts per cycle) and the result carries the
    measured acceptance rate; committed tokens still equal plain decoding.
    With ``verify_identity``, the same trace is replayed a second time on
    the per-request-pool engine (``prefix_sharing=False``) and every
    request's tokens are compared — the paged store's token-for-token
    exactness contract, checked end to end.
    With ``catalog``, trace QoS tags become per-request SLOs and the
    result carries a goodput summary — this fixed variant stands in as
    every request's served quality, so floors above it are scored as
    quality violations (the baseline the router is judged against).
    """
    gpu = gpu or get_gpu("a100-80gb")
    metrics, requests, comm, profile_table = _replay_once(
        variant, trace, engine_config, gpu, tp, profile, drafter, catalog, pp=pp
    )
    tokens_match: Optional[bool] = None
    if verify_identity:
        baseline_config = replace(
            engine_config if engine_config is not None else EngineConfig(),
            prefix_sharing=False,
        )
        _, baseline, _, _ = _replay_once(
            variant, trace, baseline_config, gpu, tp, False, drafter, catalog, pp=pp
        )
        tokens_match = len(requests) == len(baseline) and all(
            ours.state is theirs.state and np.array_equal(ours.tokens, theirs.tokens)
            for ours, theirs in zip(requests, baseline)
        )

    mean_prompt = max(1, round(sum(t.prompt.size for t in trace) / len(trace)))
    mean_new = max(1, round(sum(t.max_new_tokens for t in trace) / len(trace)))
    batch = max(1, round(metrics.mean_decode_batch))
    projection = generation_profile(
        variant.model.config,
        gpu,
        batch=batch,
        prompt_len=mean_prompt,
        new_tokens=mean_new,
        decomposition=variant.decomposition,
        n_gpus=tp,
        pp=pp,
    )
    records = request_records(requests)
    goodput = (
        _goodput_dict(records, catalog, ladder, metrics, default_spec=variant.spec)
        if catalog is not None
        else None
    )
    return VariantBenchResult(
        spec=variant.spec,
        parameter_reduction=variant.parameter_reduction,
        n_requests=len(trace),
        finished=metrics.finished,
        rejected=metrics.rejected,
        preemptions=metrics.preemptions,
        ttft_p50_s=metrics.ttft_s.p50,
        ttft_p95_s=metrics.ttft_s.p95,
        ttft_p99_s=metrics.ttft_s.p99,
        queue_wait_p50_s=metrics.queue_wait_s.p50,
        e2e_p95_s=metrics.e2e_s.p95,
        decode_tokens_per_s=metrics.decode_tokens_per_s,
        overall_tokens_per_s=metrics.overall_tokens_per_s,
        mean_decode_batch=metrics.mean_decode_batch,
        projection=projection,
        tp=tp,
        pp=pp,
        comm=comm,
        metrics_snapshot=metrics.snapshot(),
        profile=profile_table,
        drafter=None if drafter is None else drafter.spec,
        spec_acceptance_rate=metrics.spec_acceptance_rate,
        spec_drafted=metrics.spec_drafted,
        spec_accepted=metrics.spec_accepted,
        spec_fallbacks=metrics.spec_fallbacks,
        prefix_lookups=metrics.prefix_lookups,
        prefix_hits=metrics.prefix_hits,
        prefix_hit_rate=metrics.prefix_hit_rate,
        prefill_tokens_saved=metrics.prefill_tokens_saved,
        requests=records,
        tokens_match_unshared=tokens_match,
        goodput=goodput,
    )


def bench_routed(
    registry: VariantRegistry,
    ladder: Sequence[str],
    trace: Sequence[TraceRequest],
    catalog: Dict[str, QoSClass],
    engine_config: Optional[EngineConfig] = None,
    gpu: Optional[GPUSpec] = None,
    tp: int = 1,
    pp: int = 1,
    router_config: Optional[RouterConfig] = None,
    drafter: Optional[ModelVariant] = None,
) -> VariantBenchResult:
    """Replay ``trace`` on the adaptively routed engine (one result row).

    The whole quality ladder is resident (``registry`` should be
    ``share_base=True`` so extra rungs cost only their factor deltas), the
    router walks it with load, and the result scores goodput from each
    request's *actual* served-variant history plus the router's decision
    log.  Collective-traffic accounting is per model facade and a routed
    step mixes facades, so the comm measured-vs-analytic comparison is not
    reported for routed rows.
    """
    gpu = gpu or get_gpu("a100-80gb")
    ladder = tuple(ladder)
    router = RankRouter(ladder, router_config)
    variants = {spec: registry.get(spec) for spec in ladder}
    serving: Dict[str, object] = {}
    facades: List[object] = []
    try:
        if tp > 1 or pp > 1:
            from repro.parallel import ShardedLlama

            for spec in ladder:
                facade = ShardedLlama(variants[spec].model, tp, pp=pp)
                facades.append(facade)
                serving[spec] = facade
        else:
            serving = {spec: variants[spec].model for spec in ladder}
        engine = InferenceEngine(
            None,
            config=engine_config,
            drafter=None if drafter is None else drafter.model,
            router=router,
            variants=serving,
        )
        requests = replay_trace(
            engine, trace, speculative=drafter is not None, catalog=catalog
        )
        metrics = engine.metrics
    finally:
        for facade in facades:
            facade.close()
    records = request_records(requests)
    dense = variants[ladder[0]]
    mean_prompt = max(1, round(sum(t.prompt.size for t in trace) / len(trace)))
    mean_new = max(1, round(sum(t.max_new_tokens for t in trace) / len(trace)))
    projection = generation_profile(
        dense.model.config,
        gpu,
        batch=max(1, round(metrics.mean_decode_batch)),
        prompt_len=mean_prompt,
        new_tokens=mean_new,
        decomposition=dense.decomposition,
        n_gpus=tp,
        pp=pp,
    )
    return VariantBenchResult(
        spec=ROUTER_SPEC,
        parameter_reduction=0.0,
        n_requests=len(trace),
        finished=metrics.finished,
        rejected=metrics.rejected,
        preemptions=metrics.preemptions,
        ttft_p50_s=metrics.ttft_s.p50,
        ttft_p95_s=metrics.ttft_s.p95,
        ttft_p99_s=metrics.ttft_s.p99,
        queue_wait_p50_s=metrics.queue_wait_s.p50,
        e2e_p95_s=metrics.e2e_s.p95,
        decode_tokens_per_s=metrics.decode_tokens_per_s,
        overall_tokens_per_s=metrics.overall_tokens_per_s,
        mean_decode_batch=metrics.mean_decode_batch,
        projection=projection,
        tp=tp,
        pp=pp,
        metrics_snapshot=metrics.snapshot(),
        drafter=None if drafter is None else drafter.spec,
        spec_acceptance_rate=metrics.spec_acceptance_rate,
        spec_drafted=metrics.spec_drafted,
        spec_accepted=metrics.spec_accepted,
        spec_fallbacks=metrics.spec_fallbacks,
        prefix_lookups=metrics.prefix_lookups,
        prefix_hits=metrics.prefix_hits,
        prefix_hit_rate=metrics.prefix_hit_rate,
        prefill_tokens_saved=metrics.prefill_tokens_saved,
        requests=records,
        goodput=_goodput_dict(records, catalog, ladder, metrics),
        router=dict(router.snapshot(), swaps=metrics.variant_swaps),
    )


def run_serve_bench(
    base_model,
    variant_specs: Sequence[str],
    trace: Sequence[TraceRequest],
    engine_config: Optional[EngineConfig] = None,
    gpu_name: str = "a100-80gb",
    tp: int = 1,
    pp: int = 1,
    seed: Optional[int] = None,
    profile: bool = False,
    drafter_spec: Optional[str] = None,
    verify_identity: bool = False,
    trace_info: Optional[dict] = None,
    router: Optional[str] = None,
    qos_classes: Optional[Sequence[QoSClass]] = None,
    router_config: Optional[RouterConfig] = None,
) -> ServeBenchReport:
    """Replay one trace against every variant of ``base_model``.

    ``drafter_spec`` (e.g. ``"rank8"``) serves every variant speculatively:
    the variant verifies drafts from that (shared-registry) drafter model,
    and each result row reports the measured acceptance rate.
    ``verify_identity`` re-replays each variant on the unshared engine and
    records per-request token identity; ``trace_info`` carries the trace's
    family/params/shape provenance into the report (and run manifest).

    ``router="slo"`` appends an adaptively routed replay of the identical
    trace: ``variant_specs`` becomes the quality ladder (order best first),
    the QoS catalog (``qos_classes``, default the three-tier gold /
    interactive / batch split) is resolved against the unloaded TTFT of
    ``variant_specs[0]`` measured on this machine, every fixed row gains a
    goodput score as the baseline, and the routed row carries the router's
    decision log.  ``qos_classes`` without a router just scores the fixed
    replays.
    """
    if not variant_specs:
        raise ServingError("at least one variant spec is required")
    if tp < 1:
        raise ServingError(f"tensor-parallel degree must be >= 1, got {tp}")
    if pp < 1:
        raise ServingError(f"pipeline depth must be >= 1, got {pp}")
    if router is not None and router != "slo":
        raise ServingError(f"unknown router {router!r}; only 'slo' exists")
    if router is not None and profile:
        raise ServingError("op profiling is per-variant; not supported with --router")
    gpu = get_gpu(gpu_name)
    # Hot-swap layout when the whole ladder must be resident at once.
    registry = VariantRegistry(base_model, share_base=router is not None)
    drafter = None if drafter_spec is None else registry.get(drafter_spec)
    specs = [spec.strip().lower() for spec in variant_specs]
    catalog = None
    qos_info = None
    ladder: Sequence[str] = QUALITY_LADDER
    if router is not None or qos_classes is not None:
        classes = (
            tuple(qos_classes) if qos_classes is not None else DEFAULT_QOS_CLASSES
        )
        # SLO unit: the first spec (canonically dense) served alone,
        # measured on this machine so unit-denominated SLOs are portable.
        unit = calibrate_unit(registry.get(specs[0]).model, trace, engine_config)
        catalog = qos_catalog(classes, unit_s=unit)
        ladder = tuple(specs)
        if router is not None:
            for cls in catalog.values():
                if cls.quality_floor not in ladder:
                    raise ServingError(
                        f"QoS class {cls.name!r} floor {cls.quality_floor!r} "
                        f"is not among the ladder variants {ladder}"
                    )
        qos_info = {
            "unit_ttft_s": unit,
            "classes": [cls.to_dict() for cls in catalog.values()],
            "ladder": list(ladder),
            "router": router,
        }
    results = [
        bench_variant(
            registry.get(spec),
            trace,
            engine_config=engine_config,
            gpu=gpu,
            tp=tp,
            pp=pp,
            profile=profile,
            drafter=drafter,
            verify_identity=verify_identity,
            catalog=catalog,
            ladder=ladder,
        )
        for spec in specs
    ]
    if router is not None:
        results.append(
            bench_routed(
                registry,
                ladder,
                trace,
                catalog,
                engine_config=engine_config,
                gpu=gpu,
                tp=tp,
                pp=pp,
                router_config=router_config,
                drafter=drafter,
            )
        )
    return ServeBenchReport(
        model=base_model.config.name,
        gpu=gpu_name,
        n_requests=len(trace),
        results=results,
        tp=tp,
        pp=pp,
        seed=seed,
        trace_info=trace_info,
        qos_info=qos_info,
    )
