"""Unstructured magnitude pruning baseline (the paper's "sparsity" lever).

Zeroes the smallest-magnitude fraction of each targeted weight matrix.
Memory accounting assumes CSR storage of the surviving weights (FP16 value
plus a 2-byte column index per nonzero, plus row pointers), which is why
moderate sparsity saves *no* memory — a real effect the decomposition
comparison should surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.errors import DecompositionError
from repro.nn import Linear


def magnitude_mask(weight: np.ndarray, sparsity: float) -> np.ndarray:
    """Boolean mask, True at weights to *keep* (the largest magnitudes)."""
    if not 0.0 <= sparsity < 1.0:
        raise DecompositionError(f"sparsity must be in [0, 1), got {sparsity}")
    weight = np.asarray(weight)
    n_prune = int(round(sparsity * weight.size))
    if n_prune == 0:
        return np.ones(weight.shape, dtype=bool)
    flat = np.abs(weight).ravel()
    threshold = np.partition(flat, n_prune - 1)[n_prune - 1]
    keep = np.abs(weight) > threshold
    # Break ties at the threshold deterministically to hit the exact count.
    ties = np.argwhere(np.isclose(np.abs(weight), threshold))
    deficit = weight.size - n_prune - int(keep.sum())
    for row, col in ties[:max(deficit, 0)]:
        keep[row, col] = True
    return keep


def csr_bytes(shape: Tuple[int, int], density: float) -> float:
    """CSR storage for an (H, W) matrix at the given nonzero density."""
    height, width = shape
    nnz = density * height * width
    return nnz * (2.0 + 2.0) + (height + 1) * 4.0  # fp16 value + int16 col + int32 ptr


@dataclass
class PrunedTensorReport:
    layer: int
    role: str
    shape: Tuple[int, int]
    sparsity: float

    @property
    def density(self) -> float:
        return 1.0 - self.sparsity

    @property
    def dense_bytes(self) -> float:
        return self.shape[0] * self.shape[1] * 2.0

    @property
    def sparse_bytes(self) -> float:
        return csr_bytes(self.shape, self.density)


@dataclass
class PruningReport:
    """Aggregate outcome of :func:`prune_model_weights`."""

    sparsity: float
    tensors: List[PrunedTensorReport] = field(default_factory=list)
    _originals: Dict[Tuple[int, str], np.ndarray] = field(default_factory=dict, repr=False)

    @property
    def memory_reduction(self) -> float:
        """Fractional byte saving assuming CSR storage (may be negative)."""
        before = sum(t.dense_bytes for t in self.tensors)
        after = sum(t.sparse_bytes for t in self.tensors)
        if before == 0:
            return 0.0
        return 1.0 - after / before

    @property
    def actual_density(self) -> float:
        if not self.tensors:
            return 1.0
        return float(np.mean([t.density for t in self.tensors]))


def prune_model_weights(
    model, layers: Iterable[int], roles: Iterable[str], sparsity: float
) -> PruningReport:
    """Magnitude-prune the targeted weights in place; restorable."""
    layers = sorted(set(int(l) for l in layers))
    roles = list(dict.fromkeys(roles))
    report = PruningReport(sparsity=sparsity)
    for layer in layers:
        for role in roles:
            owner, attr = model.tensor_slot(layer, role)
            module = getattr(owner, attr)
            if not isinstance(module, Linear):
                raise DecompositionError(
                    f"({layer}, {role}) holds {type(module).__name__}; prune "
                    "dense Linear layers only"
                )
            original = module.weight.data.copy()
            keep = magnitude_mask(original, sparsity)
            module.weight.data = np.where(keep, original, 0.0).astype(np.float32)
            achieved = 1.0 - keep.mean()
            report._originals[(layer, role)] = original
            report.tensors.append(
                PrunedTensorReport(
                    layer=layer, role=role, shape=original.shape, sparsity=float(achieved)
                )
            )
    return report


def restore_pruned(model, report: PruningReport) -> None:
    """Undo :func:`prune_model_weights` bit-exactly."""
    for (layer, role), original in report._originals.items():
        owner, attr = model.tensor_slot(layer, role)
        getattr(owner, attr).weight.data = original.copy()
