"""Post-training weight quantization baseline.

The paper motivates low-rank decomposition alongside quantization and
sparsity as the memory-footprint levers for LLMs (Section 1); this module
provides the quantization baseline so the two can be compared at matched
memory budgets.

Quantization is *simulated* the standard way: weights are rounded to a
symmetric per-output-channel integer grid and immediately dequantized, so
the forward pass runs in float32 but suffers the exact quantization error,
while memory accounting reflects integer storage (``bits`` per weight plus
one float scale per output channel).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.errors import DecompositionError
from repro.nn import Linear

SUPPORTED_BITS = (2, 3, 4, 8)


def quantize_weight(
    weight: np.ndarray, bits: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric per-output-channel quantization.

    Returns (quantized integer grid as int32, per-column float scales).
    ``weight`` is (in_features, out_features); each output column gets its
    own scale, the convention GPTQ-style weight quantizers use.
    """
    if bits not in SUPPORTED_BITS:
        raise DecompositionError(f"bits must be one of {SUPPORTED_BITS}, got {bits}")
    weight = np.asarray(weight, dtype=np.float32)
    if weight.ndim != 2:
        raise DecompositionError(f"expected a matrix, got {weight.shape}")
    qmax = 2 ** (bits - 1) - 1
    max_abs = np.abs(weight).max(axis=0)
    scales = np.where(max_abs > 0, max_abs / qmax, 1.0).astype(np.float32)
    grid = np.clip(np.round(weight / scales[None, :]), -qmax - 1, qmax)
    return grid.astype(np.int32), scales


def dequantize_weight(grid: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Invert :func:`quantize_weight` up to rounding error."""
    return (np.asarray(grid, dtype=np.float32) * np.asarray(scales)[None, :]).astype(
        np.float32
    )


def quantized_weight_bytes(shape: Tuple[int, int], bits: int) -> float:
    """Storage of a quantized (H, W) matrix: packed ints + fp16 scales."""
    height, width = shape
    return height * width * bits / 8.0 + width * 2.0


@dataclass
class QuantizedTensorReport:
    layer: int
    role: str
    shape: Tuple[int, int]
    bits: int
    quantization_error: float  # relative Frobenius error

    @property
    def dense_bytes(self) -> float:
        return self.shape[0] * self.shape[1] * 2.0  # FP16 baseline

    @property
    def quantized_bytes(self) -> float:
        return quantized_weight_bytes(self.shape, self.bits)


@dataclass
class QuantizationReport:
    """Aggregate outcome of :func:`quantize_model_weights`."""

    bits: int
    tensors: List[QuantizedTensorReport] = field(default_factory=list)
    _originals: Dict[Tuple[int, str], np.ndarray] = field(default_factory=dict, repr=False)

    @property
    def weight_bytes_before(self) -> float:
        return sum(t.dense_bytes for t in self.tensors)

    @property
    def weight_bytes_after(self) -> float:
        return sum(t.quantized_bytes for t in self.tensors)

    @property
    def memory_reduction(self) -> float:
        """Fractional byte saving over the quantized tensors (0..1)."""
        before = self.weight_bytes_before
        if before == 0:
            return 0.0
        return 1.0 - self.weight_bytes_after / before

    @property
    def mean_error(self) -> float:
        if not self.tensors:
            return 0.0
        return float(np.mean([t.quantization_error for t in self.tensors]))


def quantize_model_weights(
    model, layers: Iterable[int], roles: Iterable[str], bits: int
) -> QuantizationReport:
    """Quantize the targeted weight matrices in place (simulated).

    The live weights are replaced by their dequantized grid values; the
    report retains the originals for :func:`restore_quantized`.
    """
    from repro.decomposition.metrics import relative_error

    layers = sorted(set(int(l) for l in layers))
    roles = list(dict.fromkeys(roles))
    report = QuantizationReport(bits=bits)
    for layer in layers:
        for role in roles:
            owner, attr = model.tensor_slot(layer, role)
            module = getattr(owner, attr)
            if not isinstance(module, Linear):
                raise DecompositionError(
                    f"({layer}, {role}) holds {type(module).__name__}; quantize "
                    "dense Linear layers only"
                )
            original = module.weight.data.copy()
            grid, scales = quantize_weight(original, bits)
            module.weight.data = dequantize_weight(grid, scales)
            report._originals[(layer, role)] = original
            report.tensors.append(
                QuantizedTensorReport(
                    layer=layer,
                    role=role,
                    shape=original.shape,
                    bits=bits,
                    quantization_error=relative_error(original, module.weight.data),
                )
            )
    return report


def restore_quantized(model, report: QuantizationReport) -> None:
    """Undo :func:`quantize_model_weights` bit-exactly."""
    for (layer, role), original in report._originals.items():
        owner, attr = model.tensor_slot(layer, role)
        getattr(owner, attr).weight.data = original.copy()
