"""Post-training weight quantization: simulated baseline + real storage.

The paper motivates low-rank decomposition alongside quantization and
sparsity as the memory-footprint levers for LLMs (Section 1); this module
provides the quantization baseline so the two can be compared at matched
memory budgets.

Two modes share one grid/scale representation (the math lives in
:mod:`repro.nn.quantized` so the module layer can use it without importing
this package):

* :func:`quantize_model_weights` — *simulated*: weights are rounded to a
  symmetric per-output-channel integer grid and immediately dequantized,
  so the forward pass runs in float32 but suffers the exact quantization
  error, while memory accounting reflects integer storage (``bits`` per
  weight plus one fp32 scale per output channel).  Works on dense
  ``Linear`` and decomposed ``FactorizedLinear`` targets (each factor is
  quantized independently — the compound-compression case).
* :func:`quantize_model_real` — *real*: the targeted modules are swapped
  for :class:`~repro.nn.QuantizedLinear` /
  :class:`~repro.nn.QuantizedFactorizedLinear` twins that keep only the
  int8 grids + fp32 scales, so serving memory actually shrinks and the
  fast path runs its quantized kernels.  Both modes produce bit-identical
  forward passes: the real modules' Tensor path dequantizes the same
  grids the simulated mode bakes into the weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.errors import DecompositionError
from repro.nn import FactorizedLinear, Linear
from repro.nn.quantized import (
    SUPPORTED_BITS,
    QuantizedFactorizedLinear,
    QuantizedLinear,
    dequantize_weight,
    quantize_module,
    quantize_weight,
    quantized_weight_bytes,
)

__all__ = [
    "SUPPORTED_BITS",
    "quantize_weight",
    "dequantize_weight",
    "quantized_weight_bytes",
    "QuantizationReport",
    "QuantizedTensorReport",
    "quantize_model_weights",
    "restore_quantized",
    "RealQuantizedTensor",
    "RealQuantizationReport",
    "quantize_model_real",
    "restore_real_quantized",
]

_FACTOR_ATTRS = ("u1", "core", "u2")


@dataclass
class QuantizedTensorReport:
    layer: int
    role: str
    shape: Tuple[int, int]
    bits: int
    quantization_error: float  # relative Frobenius error

    @property
    def dense_bytes(self) -> float:
        return self.shape[0] * self.shape[1] * 2.0  # FP16 baseline

    @property
    def quantized_bytes(self) -> float:
        return quantized_weight_bytes(self.shape, self.bits)


@dataclass
class QuantizationReport:
    """Aggregate outcome of :func:`quantize_model_weights`."""

    bits: int
    tensors: List[QuantizedTensorReport] = field(default_factory=list)
    _originals: Dict[Tuple[int, str], Union[np.ndarray, Dict[str, np.ndarray]]] = field(
        default_factory=dict, repr=False
    )

    @property
    def weight_bytes_before(self) -> float:
        return sum(t.dense_bytes for t in self.tensors)

    @property
    def weight_bytes_after(self) -> float:
        return sum(t.quantized_bytes for t in self.tensors)

    @property
    def memory_reduction(self) -> float:
        """Fractional byte saving over the quantized tensors (0..1)."""
        before = self.weight_bytes_before
        if before == 0:
            return 0.0
        return 1.0 - self.weight_bytes_after / before

    @property
    def mean_error(self) -> float:
        if not self.tensors:
            return 0.0
        return float(np.mean([t.quantization_error for t in self.tensors]))


def _simulate_on_array(weight: np.ndarray, bits: int) -> np.ndarray:
    grid, scales = quantize_weight(weight, bits)
    return dequantize_weight(grid, scales)


def quantize_model_weights(
    model, layers: Iterable[int], roles: Iterable[str], bits: int
) -> QuantizationReport:
    """Quantize the targeted weight matrices in place (simulated).

    The live weights are replaced by their dequantized grid values; the
    report retains the originals for :func:`restore_quantized`.  Dense
    ``Linear`` targets quantize their weight matrix; ``FactorizedLinear``
    targets quantize each factor of the U·Γ·V chain independently, each
    with its own per-output-column scales.
    """
    from repro.decomposition.metrics import relative_error

    layers = sorted(set(int(l) for l in layers))
    roles = list(dict.fromkeys(roles))
    report = QuantizationReport(bits=bits)
    for layer in layers:
        for role in roles:
            owner, attr = model.tensor_slot(layer, role)
            module = getattr(owner, attr)
            if isinstance(module, FactorizedLinear):
                originals: Dict[str, np.ndarray] = {}
                for factor in _FACTOR_ATTRS:
                    param = getattr(module, factor)
                    original = param.data.copy()
                    param.data = _simulate_on_array(original, bits)
                    originals[factor] = original
                    report.tensors.append(
                        QuantizedTensorReport(
                            layer=layer,
                            role=f"{role}.{factor}",
                            shape=original.shape,
                            bits=bits,
                            quantization_error=relative_error(original, param.data),
                        )
                    )
                report._originals[(layer, role)] = originals
            elif isinstance(module, Linear):
                original = module.weight.data.copy()
                module.weight.data = _simulate_on_array(original, bits)
                report._originals[(layer, role)] = original
                report.tensors.append(
                    QuantizedTensorReport(
                        layer=layer,
                        role=role,
                        shape=original.shape,
                        bits=bits,
                        quantization_error=relative_error(
                            original, module.weight.data
                        ),
                    )
                )
            else:
                raise DecompositionError(
                    f"({layer}, {role}) holds {type(module).__name__}; quantize "
                    "Linear or FactorizedLinear layers only"
                )
    return report


def restore_quantized(model, report: QuantizationReport) -> None:
    """Undo :func:`quantize_model_weights` bit-exactly."""
    for (layer, role), original in report._originals.items():
        owner, attr = model.tensor_slot(layer, role)
        module = getattr(owner, attr)
        if isinstance(original, dict):
            for factor, data in original.items():
                getattr(module, factor).data = data.copy()
        else:
            module.weight.data = original.copy()


# -- real (storage-level) quantization ------------------------------------


@dataclass
class RealQuantizedTensor:
    """Measured byte accounting for one module swapped to quantized storage."""

    layer: int
    role: str
    bits: int
    fp32_bytes: float  # nbytes of the fp32 arrays the grid replaced
    quantized_bytes: float  # nbytes of the int8 grids + fp32 scales kept


@dataclass
class RealQuantizationReport:
    """Aggregate outcome of :func:`quantize_model_real`.

    Byte figures are *measured* (``ndarray.nbytes``), not modeled: the
    fp32 arrays the swap discarded vs. the grids + scales it now holds.
    """

    bits: int
    tensors: List[RealQuantizedTensor] = field(default_factory=list)
    _originals: Dict[Tuple[int, str], object] = field(default_factory=dict, repr=False)

    @property
    def weight_bytes_before(self) -> float:
        return sum(t.fp32_bytes for t in self.tensors)

    @property
    def weight_bytes_after(self) -> float:
        return sum(t.quantized_bytes for t in self.tensors)

    @property
    def memory_reduction_x(self) -> float:
        """Multiplicative shrink (e.g. ~3.8x for int8 over fp32)."""
        after = self.weight_bytes_after
        if after == 0:
            return 1.0
        return self.weight_bytes_before / after


def _module_fp32_bytes(module) -> float:
    if isinstance(module, FactorizedLinear):
        return float(sum(getattr(module, f).data.nbytes for f in _FACTOR_ATTRS))
    return float(module.weight.data.nbytes)


def quantize_model_real(
    model,
    bits: int,
    layers: Optional[Iterable[int]] = None,
    roles: Optional[Iterable[str]] = None,
) -> RealQuantizationReport:
    """Swap targeted projections for quantized-storage twins, in place.

    Defaults to every per-layer projection role in the model (the LM head
    and embedding stay fp32 — they dominate accuracy, not weight bytes,
    at the model scales this repo serves).  Dense and factorized targets
    both work; the report keeps the original modules so
    :func:`restore_real_quantized` can swap them back.
    """
    if bits not in SUPPORTED_BITS:
        raise DecompositionError(f"bits must be one of {SUPPORTED_BITS}, got {bits}")
    config = model.config
    layers = (
        sorted(set(int(l) for l in layers))
        if layers is not None
        else list(range(config.n_layers))
    )
    roles = (
        list(dict.fromkeys(roles)) if roles is not None else list(config.tensor_roles)
    )
    report = RealQuantizationReport(bits=bits)
    for layer in layers:
        for role in roles:
            owner, attr = model.tensor_slot(layer, role)
            module = getattr(owner, attr)
            if isinstance(module, (QuantizedLinear, QuantizedFactorizedLinear)):
                raise DecompositionError(
                    f"({layer}, {role}) is already quantized"
                )
            fp32_bytes = _module_fp32_bytes(module)
            quantized = quantize_module(module, bits)
            setattr(owner, attr, quantized)
            report._originals[(layer, role)] = module
            report.tensors.append(
                RealQuantizedTensor(
                    layer=layer,
                    role=role,
                    bits=bits,
                    fp32_bytes=fp32_bytes,
                    quantized_bytes=quantized.weight_bytes(),
                )
            )
    model.eval()
    return report


def restore_real_quantized(model, report: RealQuantizationReport) -> None:
    """Undo :func:`quantize_model_real` by swapping the originals back."""
    for (layer, role), module in report._originals.items():
        owner, attr = model.tensor_slot(layer, role)
        setattr(owner, attr, module)
    model.eval()
