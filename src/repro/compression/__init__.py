"""Comparison baselines: quantization and sparsity (paper Section 1's
"model compression methods ... such as quantization and parameter pruning").

Each method mirrors the decomposition API shape: apply in place against
(layer, role) targets, get a report with memory accounting, restore
bit-exactly.
"""

from repro.compression.pruning import (
    PrunedTensorReport,
    PruningReport,
    csr_bytes,
    magnitude_mask,
    prune_model_weights,
    restore_pruned,
)
from repro.compression.quantization import (
    SUPPORTED_BITS,
    QuantizationReport,
    QuantizedTensorReport,
    RealQuantizationReport,
    RealQuantizedTensor,
    dequantize_weight,
    quantize_model_real,
    quantize_model_weights,
    quantize_weight,
    quantized_weight_bytes,
    restore_quantized,
    restore_real_quantized,
)

__all__ = [
    "SUPPORTED_BITS",
    "quantize_weight",
    "dequantize_weight",
    "quantized_weight_bytes",
    "QuantizationReport",
    "QuantizedTensorReport",
    "quantize_model_weights",
    "restore_quantized",
    "RealQuantizationReport",
    "RealQuantizedTensor",
    "quantize_model_real",
    "restore_real_quantized",
    "magnitude_mask",
    "csr_bytes",
    "PruningReport",
    "PrunedTensorReport",
    "prune_model_weights",
    "restore_pruned",
]
