"""Command-line interface: ``repro <command>``.

Commands
--------
- ``repro experiments`` — list available experiment ids.
- ``repro run <id> [--limit N]`` — regenerate one paper table/figure.
- ``repro all [--limit N]`` — regenerate every artifact in order.
- ``repro train [--model tiny-llama|tiny-bert]`` — (re)train and cache the
  tiny model checkpoints.
- ``repro eval [--limit N]`` — evaluate the cached tiny Llama on the suite.
- ``repro serve-bench [--variants dense,pr33,...] [--trace FAMILY]
  [--tp N] [--pp P] [--json PATH]`` — replay a synthetic trace through
  the continuous-batching engine for each model variant and report
  TTFT/throughput percentiles (plus prefix-sharing hit rate / prefill
  tokens saved) next to the analytic hardware-model projection.
  ``--trace`` picks the arrival/length family (poisson, diurnal, bursty,
  heavy-tail, or the shared-prefix tenant mix ``prefix``); ``--tp N``
  runs each variant tensor-parallel over N ranks (identical logits by
  construction) and prints measured vs analytic collective traffic;
  ``--pp P`` stacks pipeline parallelism on top — layers split into P
  stages on a P x N device grid, with measured vs analytic P2P traffic
  reported per channel;
  ``--no-prefix-sharing`` serves from per-request pools instead of the
  paged KV store; ``--verify-identity`` re-replays on the unshared
  engine and fails on any token mismatch; ``--run-dir``/``--run-name``
  persist the run as manifest.json / metrics.jsonl / summary.json /
  report.md (bit-identically replayable); ``--json`` dumps the full
  report; ``--profile`` attaches the fast path's op-level profiler.
  ``--router slo`` turns the variant list into a quality ladder (best
  first), tags trace requests with QoS classes (``--qos-mix`` reweights
  the default gold/interactive/batch split), and appends an adaptively
  routed replay whose goodput is compared against every fixed variant;
  ``--degrade-at``/``--upgrade-at``/``--dwell`` set the router's
  hysteresis (``--watermark projected`` switches the signal to projected
  TTFT seconds via ``--degrade-ttft``/``--upgrade-ttft``).  Whenever a run persists evidence (``--json`` or a run
  dir) one summary line is appended to ``benchmarks/trajectory.jsonl``
  (``--trajectory`` overrides the path, ``--no-trajectory`` disables).
- ``repro bench-decode [--variants dense,rank1,...] [--tp 1,2]
  [--bits B] [--json PATH]`` — measure prefill/decode tokens-per-second
  of the Tensor-graph driver vs. the no-grad fast path per variant and
  tensor-parallel degree, verifying bit-identical logits along the way.
  ``--bits 8`` measures each variant's int8-quantized twin alongside it
  and reports the quantized-vs-fp32 decode ratio plus the weight-memory
  reduction of the int grids against the dense fp32 projections.
- ``repro quant-sweep [--specs dense,rank8,rank1] [--bits 8,4]
  [--run-name NAME]`` — walk the rank × bits joint design space on the
  pretrained tiny Llama: per point, six-benchmark accuracy through the
  real quantized weights, fast-path decode tokens/s (bit-identity
  checked), and the hardware model's memory/energy projection; persists
  a replayable run artifact (``--replay DIR`` verifies one bit for bit).
  With ``--speculative`` it instead benchmarks speculative decoding:
  low-rank drafters (``--drafters``) propose ``--spec-k`` tokens per cycle
  on a spectrum-shaped model, the dense model verifies, and every cell
  checks token identity with dense greedy decoding while reporting the
  measured acceptance rate and effective tokens/s.  ``serve-bench
  --speculative DRAFTER[:K]`` serves a whole Poisson trace that way.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.version import __version__


def _cmd_experiments(_: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENTS

    for name in sorted(EXPERIMENTS):
        print(name)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import run_experiment

    print(f"== {args.experiment} ==")
    print(run_experiment(args.experiment, limit=args.limit))
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENTS, run_experiment

    seen = set()
    for name in EXPERIMENTS:
        driver_id = id(EXPERIMENTS[name])
        if driver_id in seen:
            continue
        seen.add(driver_id)
        print(f"== {name} ==")
        print(run_experiment(name, limit=args.limit))
        print()
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    if args.model in ("tiny-llama", "all"):
        from repro.experiments import pretrained_tiny_llama

        model, _ = pretrained_tiny_llama(verbose=True)
        print(f"tiny-llama ready: {model.num_parameters():,} parameters")
    if args.model in ("tiny-bert", "all"):
        from repro.experiments import pretrained_tiny_bert

        model, _ = pretrained_tiny_bert(verbose=True)
        print(f"tiny-bert ready: {model.num_parameters():,} parameters")
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    from repro.eval import build_suite, evaluate_suite
    from repro.experiments import get_world, pretrained_tiny_llama

    model, tokenizer = pretrained_tiny_llama()
    suite = build_suite(get_world())
    result = evaluate_suite(model, tokenizer, suite, limit=args.limit)
    print(result.table())
    return 0


def _parse_range(text: str, flag: str):
    try:
        low, _, high = text.partition(":")
        return (int(low), int(high if high else low))
    except ValueError:
        raise SystemExit(f"{flag} expects LOW:HIGH (e.g. 8:32), got {text!r}")


def _trace_params(args: argparse.Namespace) -> dict:
    """Family-specific generator params from CLI flags (manifest-ready)."""
    new_tokens = list(_parse_range(args.new_tokens, "--new-tokens"))
    prompt_len = list(_parse_range(args.prompt_len, "--prompt-len"))
    if args.trace == "poisson":
        return {"prompt_len": prompt_len, "new_tokens": new_tokens}
    if args.trace == "diurnal":
        return {
            "prompt_len": prompt_len,
            "new_tokens": new_tokens,
            "peak_ratio": args.peak_ratio,
            "period_s": args.period,
        }
    if args.trace == "bursty":
        return {
            "prompt_len": prompt_len,
            "new_tokens": new_tokens,
            "burst_factor": args.burst_factor,
        }
    if args.trace == "heavy-tail":
        return {
            "prompt_len": prompt_len,
            "new_tokens": new_tokens,
            "sigma": args.sigma,
        }
    if args.trace == "prefix":
        return {
            "n_tenants": args.tenants,
            "prefix_tokens": args.prefix_tokens,
            "suffix_len": list(_parse_range(args.suffix_len, "--suffix-len")),
            "new_tokens": new_tokens,
            "zipf_alpha": args.zipf_alpha,
        }
    raise SystemExit(f"unknown trace family {args.trace!r}")


def _parse_qos_mix(text: str, defaults) -> list:
    import dataclasses

    by_name = {cls.name: cls for cls in defaults}
    classes = []
    for item in text.split(","):
        name, sep, share_text = item.strip().partition("=")
        if name not in by_name:
            raise SystemExit(
                f"--qos-mix: unknown QoS class {name!r}; known: {sorted(by_name)}"
            )
        try:
            share = float(share_text) if sep else None
        except ValueError:
            share = None
        if share is None or share <= 0:
            raise SystemExit(
                f"--qos-mix expects NAME=SHARE with SHARE > 0, got {item!r}"
            )
        classes.append(dataclasses.replace(by_name[name], share=share))
    return classes


def _maybe_append_trajectory(args: argparse.Namespace, entry: dict) -> None:
    """Append one ledger line when the run persisted evidence."""
    if args.no_trajectory:
        return
    from repro.serving import append_trajectory

    path = append_trajectory(entry, path=args.trajectory)
    print(f"appended trajectory line to {path}")


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import dataclasses

    import numpy as np

    from repro.models import build_model, get_config
    from repro.serving import (
        DEFAULT_QOS_CLASSES,
        EngineConfig,
        RouterConfig,
        run_serve_bench,
        trace_from_manifest,
        trace_manifest,
        trace_stats,
        write_run_artifact,
    )

    config = get_config(args.model)
    model = build_model(config, rng=np.random.default_rng(args.seed))
    model.eval()
    variants_text = args.variants
    if variants_text is None:
        variants_text = "dense,rank8,rank1" if args.router else "dense,pr33"
    qos_classes = None
    if args.qos_mix:
        qos_classes = _parse_qos_mix(args.qos_mix, DEFAULT_QOS_CLASSES)
    router_config = None
    if args.router:
        try:
            router_config = RouterConfig(
                degrade_at=args.degrade_at,
                upgrade_at=args.upgrade_at,
                dwell_steps=args.dwell,
                watermark=args.watermark,
                degrade_ttft_s=args.degrade_ttft,
                upgrade_ttft_s=args.upgrade_ttft,
            )
        except Exception as error:
            raise SystemExit(str(error))
    trace_params = _trace_params(args)
    if args.router or args.qos_mix:
        # QoS tags ride inside the trace (and therefore the manifest), so
        # recorded routed runs replay with identical class assignments.
        mix_classes = qos_classes or list(DEFAULT_QOS_CLASSES)
        trace_params["qos_mix"] = {cls.name: cls.share for cls in mix_classes}
    # Build the trace *through* its manifest description so the recorded
    # run replays bit-identically (one seeded Generator end to end).
    trace_spec = trace_manifest(
        args.trace,
        args.requests,
        args.rate,
        config.vocab_size,
        args.seed,
        **trace_params,
    )
    trace = trace_from_manifest({"trace": trace_spec})
    trace_info = {"family": args.trace, "stats": trace_stats(trace)}
    drafter_spec = None
    spec_k = 4
    spec_adaptive = False
    if args.speculative:
        drafter_spec, _, k_text = args.speculative.partition(":")
        if k_text == "auto":
            # Acceptance-aware draft length: K adapts per request inside
            # [1, spec_k] from an EMA of observed acceptance rates.
            spec_adaptive = True
        elif k_text:
            try:
                spec_k = int(k_text)
            except ValueError:
                raise SystemExit(
                    f"--speculative expects DRAFTER[:K|:auto], got {args.speculative!r}"
                )
    engine_config = EngineConfig(
        max_batch=args.max_batch,
        token_budget=args.token_budget,
        n_blocks=args.blocks,
        block_tokens=args.block_tokens,
        spec_k=spec_k,
        spec_adaptive=spec_adaptive,
        prefix_sharing=not args.no_prefix_sharing,
    )
    variants = [spec.strip() for spec in variants_text.split(",") if spec.strip()]
    report = run_serve_bench(
        model,
        variants,
        trace,
        engine_config=engine_config,
        gpu_name=args.gpu,
        tp=args.tp,
        pp=args.pp,
        seed=args.seed,
        profile=args.profile,
        drafter_spec=drafter_spec,
        verify_identity=args.verify_identity,
        trace_info=trace_info,
        router=args.router,
        qos_classes=qos_classes,
        router_config=router_config,
    )
    print(report.table())
    print()
    for result in report.results:
        if result.spec != "dense" and "dense" in variants:
            print(
                f"{result.spec}: measured decode speedup over dense "
                f"{report.speedup_over_dense(result.spec):.2f}x "
                f"(hwmodel projects {result.projected_tokens_per_s:,.0f} tok/s "
                f"at batch {result.projection.batch})"
            )
    if args.json:
        import json
        from pathlib import Path

        path = Path(args.json)
        path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"wrote {path}")
    if args.run_dir or args.run_name:
        from pathlib import Path

        run_dir = (
            Path(args.run_dir)
            if args.run_dir
            else Path("benchmarks") / "runs" / args.run_name
        )
        manifest = {
            "name": run_dir.name,
            "model": args.model,
            "variants": variants,
            "gpu": args.gpu,
            "tp": args.tp,
            "pp": args.pp,
            "seed": args.seed,
            "speculative": args.speculative,
            "verify_identity": args.verify_identity,
            "router": args.router,
            "router_config": (
                dataclasses.asdict(router_config) if router_config else None
            ),
            "engine": dataclasses.asdict(engine_config),
            "trace": trace_spec,
        }
        write_run_artifact(run_dir, manifest, report)
        print(f"wrote run artifact {run_dir}/")
    if args.verify_identity and not all(
        result.tokens_match_unshared for result in report.results
    ):
        print("ERROR: paged-engine output diverged from the unshared engine")
        return 1
    if args.json or args.run_dir or args.run_name:
        entry = {
            "bench": "serve-bench",
            "model": args.model,
            "trace": args.trace,
            "tp": args.tp,
            "pp": args.pp,
            "requests": args.requests,
            "variants": variants,
            "decode_tokens_per_s": {
                result.spec: round(result.decode_tokens_per_s, 2)
                for result in report.results
            },
        }
        goodput_rates = {
            result.spec: round(result.goodput["rate"], 4)
            for result in report.results
            if result.goodput
        }
        if goodput_rates:
            entry["goodput_rates"] = goodput_rates
        comparison = report.goodput_vs_fixed()
        if comparison:
            entry["goodput_vs_fixed"] = comparison
        _maybe_append_trajectory(args, entry)
    return 0


def _cmd_bench_decode(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.models import build_model, get_config
    from repro.runtime.benchmark import run_decode_bench, run_spec_bench

    config = get_config(args.model)
    model = build_model(config, rng=np.random.default_rng(args.seed))
    model.eval()
    tp_degrees = [int(t) for t in args.tp.split(",") if t.strip()]
    if args.speculative:
        drafters = [d.strip() for d in args.drafters.split(",") if d.strip()]
        k_values = [int(k) for k in args.spec_k.split(",") if k.strip()]
        report = run_spec_bench(
            model,
            drafter_specs=drafters,
            k_values=k_values,
            tp_degrees=tp_degrees,
            prompt_tokens=args.prompt_tokens,
            new_tokens=args.new_tokens,
            seed=args.seed,
            decay=args.spec_decay,
        )
        print(report.table())
        if args.json:
            import json
            from pathlib import Path

            path = Path(args.json)
            path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
            print(f"wrote {path}")
        if not report.all_tokens_match:
            print("ERROR: speculative output diverged from dense greedy decoding")
            return 1
        if args.json:
            _maybe_append_trajectory(
                args,
                {
                    "bench": "bench-decode-spec",
                    "model": args.model,
                    "cells": len(report.cells),
                    "max_acceptance_rate": round(report.max_acceptance_rate, 4),
                    "best_speedup_tp1": round(report.best_speedup_tp1, 3),
                },
            )
        return 0
    variants = [spec.strip() for spec in args.variants.split(",") if spec.strip()]
    report = run_decode_bench(
        model,
        variant_specs=variants,
        tp_degrees=tp_degrees,
        prompt_tokens=args.prompt_tokens,
        new_tokens=args.new_tokens,
        seed=args.seed,
        profile=args.profile,
        bits=args.bits,
    )
    print(report.table())
    ratios = report.quant_decode_ratios()
    if ratios:
        print()
        for spec, ratio in ratios.items():
            print(f"{spec}: {ratio:.2f}x fp32 fast-path decode at tp=1")
        print(
            f"min quantized weight-memory reduction "
            f"{report.min_quant_memory_reduction:.2f}x (vs dense fp32 projections)"
        )
    if args.json:
        import json
        from pathlib import Path

        path = Path(args.json)
        path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"wrote {path}")
    if not report.all_bit_identical:
        print("ERROR: fast-path logits diverged from the Tensor-graph driver")
        return 1
    if args.json:
        entry = {
            "bench": "bench-decode",
            "model": args.model,
            "cells": len(report.cells),
            "decode_tokens_per_s": {
                f"{cell.spec}/tp{cell.tp}": round(
                    cell.fast.decode_tokens_per_s, 1
                )
                for cell in report.cells
            },
            "min_decode_speedup": round(report.min_decode_speedup, 3),
        }
        if report.min_quant_decode_ratio is not None:
            entry["min_quant_decode_ratio"] = round(
                report.min_quant_decode_ratio, 3
            )
        if report.min_quant_memory_reduction is not None:
            entry["min_quant_memory_reduction"] = round(
                report.min_quant_memory_reduction, 2
            )
        _maybe_append_trajectory(args, entry)
    return 0


def _cmd_quant_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.quant_sweep import (
        replay_quant_sweep,
        run_quant_sweep,
        sweep_manifest,
        write_quant_sweep_artifact,
    )

    if args.replay:
        report, matches = replay_quant_sweep(args.replay)
        for spec, match in matches.items():
            verdict = "bit-identical" if match else "FINGERPRINT MISMATCH"
            print(f"{spec}: {verdict}")
        if not all(matches.values()):
            print(f"ERROR: replay of {args.replay} diverged from the recorded run")
            return 1
        print(f"replayed {args.replay}: all {len(matches)} points bit-identical")
        return 0
    base_specs = [spec.strip() for spec in args.specs.split(",") if spec.strip()]
    bit_widths = [None] + [
        int(bits) for bits in args.bits.split(",") if bits.strip()
    ]
    report = run_quant_sweep(
        base_specs=base_specs,
        bit_widths=bit_widths,
        limit=args.limit,
        prompt_tokens=args.prompt_tokens,
        new_tokens=args.new_tokens,
        seed=args.seed,
    )
    print(report.table())
    if args.json:
        import json
        from pathlib import Path

        path = Path(args.json)
        path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"wrote {path}")
    run_dir = None
    if args.run_dir or args.run_name:
        from pathlib import Path

        run_dir = (
            Path(args.run_dir)
            if args.run_dir
            else Path("benchmarks") / "runs" / args.run_name
        )
        write_quant_sweep_artifact(
            run_dir, sweep_manifest(report, base_specs, bit_widths), report
        )
        print(f"wrote run artifact {run_dir}/")
    if not report.all_bit_identical:
        print("ERROR: fast-path logits diverged from the Tensor-graph driver")
        return 1
    if args.json or run_dir is not None:
        _maybe_append_trajectory(args, report.trajectory_entry())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.report import generate_report

    output = Path(args.output)
    generate_report(limit=args.limit, path=output)
    print(f"wrote {output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Characterizing the Accuracy-Efficiency Trade-off "
            "of Low-rank Decomposition in Language Models' (IISWC 2024)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list experiment ids").set_defaults(
        func=_cmd_experiments
    )

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment")
    run.add_argument("--limit", type=int, default=None, help="items per benchmark")
    run.set_defaults(func=_cmd_run)

    everything = sub.add_parser("all", help="run every experiment")
    everything.add_argument("--limit", type=int, default=None)
    everything.set_defaults(func=_cmd_all)

    train = sub.add_parser("train", help="train and cache the tiny models")
    train.add_argument(
        "--model", choices=("tiny-llama", "tiny-bert", "all"), default="tiny-llama"
    )
    train.set_defaults(func=_cmd_train)

    evaluate = sub.add_parser("eval", help="evaluate the cached tiny Llama")
    evaluate.add_argument("--limit", type=int, default=None)
    evaluate.set_defaults(func=_cmd_eval)

    serve = sub.add_parser(
        "serve-bench",
        help="replay a Poisson trace through the serving engine per variant",
    )
    serve.add_argument("--model", default="serve-llama")
    serve.add_argument(
        "--variants",
        default=None,
        help=(
            "comma-separated specs: dense, pr<NN> (Table 4), rank<K> "
            "(default dense,pr33; with --router the quality ladder "
            "dense,rank8,rank1, best quality first)"
        ),
    )
    serve.add_argument(
        "--router",
        choices=("slo",),
        default=None,
        help=(
            "add an adaptively routed replay: requests carry QoS classes "
            "and the router walks the variant ladder under load "
            "(goodput is compared against every fixed variant)"
        ),
    )
    serve.add_argument(
        "--qos-mix",
        default=None,
        metavar="NAME=SHARE,...",
        help=(
            "reweight the default QoS classes (gold, interactive, batch), "
            "e.g. gold=0.5,batch=0.5 — omitted classes are dropped"
        ),
    )
    serve.add_argument(
        "--degrade-at", type=int, default=5,
        help="router: degrade one ladder level when backlog reaches N",
    )
    serve.add_argument(
        "--upgrade-at", type=int, default=1,
        help="router: upgrade one ladder level when backlog falls to N",
    )
    serve.add_argument(
        "--dwell", type=int, default=3,
        help="router: minimum engine steps between level changes",
    )
    serve.add_argument(
        "--watermark",
        choices=("backlog", "projected"),
        default="backlog",
        help=(
            "router watermark signal: integer backlog marks (--degrade-at/"
            "--upgrade-at) or projected TTFT seconds (--degrade-ttft/"
            "--upgrade-ttft)"
        ),
    )
    serve.add_argument(
        "--degrade-ttft", type=float, default=0.5,
        help="projected watermark: degrade when projected TTFT exceeds S seconds",
    )
    serve.add_argument(
        "--upgrade-ttft", type=float, default=0.1,
        help="projected watermark: upgrade when projected TTFT falls below S seconds",
    )
    serve.add_argument("--requests", type=int, default=32)
    serve.add_argument("--rate", type=float, default=50.0, help="arrivals per second")
    serve.add_argument("--prompt-len", default="8:32", help="prompt length LOW:HIGH")
    serve.add_argument("--new-tokens", default="4:16", help="generation budget LOW:HIGH")
    serve.add_argument(
        "--trace",
        default="poisson",
        choices=("poisson", "diurnal", "bursty", "heavy-tail", "prefix"),
        help="trace family shaping arrivals/lengths (see EXPERIMENTS.md)",
    )
    serve.add_argument(
        "--tenants", type=int, default=4,
        help="prefix trace: number of tenants with distinct shared prefixes",
    )
    serve.add_argument(
        "--prefix-tokens", type=int, default=32,
        help="prefix trace: shared prefix length per tenant "
             "(align to --block-tokens for full sharing)",
    )
    serve.add_argument(
        "--suffix-len", default="4:12",
        help="prefix trace: private suffix length LOW:HIGH",
    )
    serve.add_argument(
        "--zipf-alpha", type=float, default=1.0,
        help="prefix trace: tenant popularity skew (0 = uniform)",
    )
    serve.add_argument(
        "--burst-factor", type=float, default=8.0,
        help="bursty trace: rate multiplier inside bursts",
    )
    serve.add_argument(
        "--peak-ratio", type=float, default=4.0,
        help="diurnal trace: peak-to-trough arrival-rate ratio",
    )
    serve.add_argument(
        "--period", type=float, default=10.0,
        help="diurnal trace: seconds per compressed day",
    )
    serve.add_argument(
        "--sigma", type=float, default=0.8,
        help="heavy-tail trace: log-normal length spread",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--gpu", default="a100-80gb", help="GPU spec for the projection")
    serve.add_argument("--max-batch", type=int, default=8)
    serve.add_argument("--token-budget", type=int, default=64)
    serve.add_argument("--blocks", type=int, default=256)
    serve.add_argument("--block-tokens", type=int, default=16)
    serve.add_argument(
        "--tp",
        type=int,
        default=1,
        help="tensor-parallel degree: run each variant sharded over N ranks",
    )
    serve.add_argument(
        "--pp",
        type=int,
        default=1,
        help=(
            "pipeline-parallel depth: partition each variant's layers over "
            "P stages (composes with --tp into a P x N device grid)"
        ),
    )
    serve.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="dump the full metrics/projection report as JSON",
    )
    serve.add_argument(
        "--profile",
        action="store_true",
        help="record and print the fast path's per-op wall-time profile",
    )
    serve.add_argument(
        "--no-prefix-sharing",
        action="store_true",
        help="serve from per-request block pools instead of the paged "
             "prefix-sharing KV store",
    )
    serve.add_argument(
        "--verify-identity",
        action="store_true",
        help="re-replay each variant on the unshared engine and fail "
             "unless every request's tokens match exactly",
    )
    serve.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="persist manifest.json/metrics.jsonl/summary.json to DIR",
    )
    serve.add_argument(
        "--run-name",
        default=None,
        metavar="NAME",
        help="persist the run artifact to benchmarks/runs/NAME/",
    )
    serve.add_argument(
        "--speculative",
        default=None,
        metavar="DRAFTER[:K|:auto]",
        help=(
            "serve every request speculatively: the variant verifies K "
            "(default 4) drafts per cycle from this drafter spec, e.g. "
            "rank8 or rank1:8; ':auto' adapts K per request from the "
            "observed acceptance rate"
        ),
    )
    serve.add_argument(
        "--trajectory",
        default=None,
        metavar="PATH",
        help="performance-ledger path (default benchmarks/trajectory.jsonl)",
    )
    serve.add_argument(
        "--no-trajectory",
        action="store_true",
        help="do not append a summary line to the performance ledger",
    )
    serve.set_defaults(func=_cmd_serve_bench)

    bench_decode = sub.add_parser(
        "bench-decode",
        help="measure Tensor-path vs fast-path prefill/decode throughput",
    )
    bench_decode.add_argument("--model", default="serve-llama")
    bench_decode.add_argument(
        "--variants",
        default="dense,rank1,rank8",
        help="comma-separated specs: dense, rank<K>, pr<NN>, <base>-int<B>",
    )
    bench_decode.add_argument(
        "--bits",
        type=int,
        default=None,
        metavar="B",
        help=(
            "also measure each variant's int-B quantized twin "
            "(e.g. 8 adds dense-int8 next to dense) and report the "
            "quantized-vs-fp32 decode ratio and weight-memory reduction"
        ),
    )
    bench_decode.add_argument(
        "--tp", default="1,2", help="comma-separated tensor-parallel degrees"
    )
    bench_decode.add_argument("--prompt-tokens", type=int, default=32)
    bench_decode.add_argument("--new-tokens", type=int, default=48)
    bench_decode.add_argument("--seed", type=int, default=0)
    bench_decode.add_argument(
        "--json", default=None, metavar="PATH", help="dump the report as JSON"
    )
    bench_decode.add_argument(
        "--profile",
        action="store_true",
        help="record and print the fast path's per-op wall-time profile",
    )
    bench_decode.add_argument(
        "--speculative",
        action="store_true",
        help=(
            "benchmark speculative decoding instead: low-rank drafters "
            "propose tokens, the dense model verifies (token-identical by "
            "contract); reports acceptance rate and effective tok/s vs the "
            "dense fast path"
        ),
    )
    bench_decode.add_argument(
        "--drafters",
        default="rank8,rank1",
        help="comma-separated drafter specs for --speculative",
    )
    bench_decode.add_argument(
        "--spec-k",
        default="4",
        help="comma-separated draft lengths K for --speculative",
    )
    bench_decode.add_argument(
        "--spec-decay",
        type=float,
        default=0.5,
        help=(
            "singular-spectrum decay imposed on the benchmark model's "
            "weights (trained-weight regime; 0 disables shaping)"
        ),
    )
    bench_decode.add_argument(
        "--trajectory",
        default=None,
        metavar="PATH",
        help="performance-ledger path (default benchmarks/trajectory.jsonl)",
    )
    bench_decode.add_argument(
        "--no-trajectory",
        action="store_true",
        help="do not append a summary line to the performance ledger",
    )
    bench_decode.set_defaults(func=_cmd_bench_decode)

    quant_sweep = sub.add_parser(
        "quant-sweep",
        help=(
            "measure the rank × bits joint design space on the pretrained "
            "tiny Llama: accuracy, fast-path decode tok/s, and hwmodel "
            "memory/energy per (variant, precision) point"
        ),
    )
    quant_sweep.add_argument(
        "--specs",
        default="dense,rank8,rank1",
        help="comma-separated base variant specs to cross with precisions",
    )
    quant_sweep.add_argument(
        "--bits",
        default="8,4",
        help="comma-separated quantized widths (fp32 is always included)",
    )
    quant_sweep.add_argument(
        "--limit", type=int, default=24, help="items per accuracy benchmark"
    )
    quant_sweep.add_argument("--prompt-tokens", type=int, default=16)
    quant_sweep.add_argument("--new-tokens", type=int, default=24)
    quant_sweep.add_argument("--seed", type=int, default=0)
    quant_sweep.add_argument(
        "--json", default=None, metavar="PATH", help="dump the report as JSON"
    )
    quant_sweep.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="persist manifest.json/metrics.jsonl/summary.json to DIR",
    )
    quant_sweep.add_argument(
        "--run-name",
        default=None,
        metavar="NAME",
        help="persist the run artifact to benchmarks/runs/NAME/",
    )
    quant_sweep.add_argument(
        "--replay",
        default=None,
        metavar="DIR",
        help=(
            "instead of sweeping, rebuild the sweep recorded in DIR from "
            "its manifest and verify every point's logits fingerprint"
        ),
    )
    quant_sweep.add_argument(
        "--trajectory",
        default=None,
        metavar="PATH",
        help="performance-ledger path (default benchmarks/trajectory.jsonl)",
    )
    quant_sweep.add_argument(
        "--no-trajectory",
        action="store_true",
        help="do not append a summary line to the performance ledger",
    )
    quant_sweep.set_defaults(func=_cmd_quant_sweep)

    report = sub.add_parser(
        "report", help="regenerate every artifact into a markdown report"
    )
    report.add_argument("--limit", type=int, default=60)
    report.add_argument("--output", default="RESULTS.md")
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
