"""Command-line interface: ``repro <command>``.

Commands
--------
- ``repro experiments`` — list available experiment ids.
- ``repro run <id> [--limit N]`` — regenerate one paper table/figure.
- ``repro all [--limit N]`` — regenerate every artifact in order.
- ``repro train [--model tiny-llama|tiny-bert]`` — (re)train and cache the
  tiny model checkpoints.
- ``repro eval [--limit N]`` — evaluate the cached tiny Llama on the suite.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.version import __version__


def _cmd_experiments(_: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENTS

    for name in sorted(EXPERIMENTS):
        print(name)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import run_experiment

    print(f"== {args.experiment} ==")
    print(run_experiment(args.experiment, limit=args.limit))
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENTS, run_experiment

    seen = set()
    for name in EXPERIMENTS:
        driver_id = id(EXPERIMENTS[name])
        if driver_id in seen:
            continue
        seen.add(driver_id)
        print(f"== {name} ==")
        print(run_experiment(name, limit=args.limit))
        print()
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    if args.model in ("tiny-llama", "all"):
        from repro.experiments import pretrained_tiny_llama

        model, _ = pretrained_tiny_llama(verbose=True)
        print(f"tiny-llama ready: {model.num_parameters():,} parameters")
    if args.model in ("tiny-bert", "all"):
        from repro.experiments import pretrained_tiny_bert

        model, _ = pretrained_tiny_bert(verbose=True)
        print(f"tiny-bert ready: {model.num_parameters():,} parameters")
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    from repro.eval import build_suite, evaluate_suite
    from repro.experiments import get_world, pretrained_tiny_llama

    model, tokenizer = pretrained_tiny_llama()
    suite = build_suite(get_world())
    result = evaluate_suite(model, tokenizer, suite, limit=args.limit)
    print(result.table())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.report import generate_report

    output = Path(args.output)
    generate_report(limit=args.limit, path=output)
    print(f"wrote {output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Characterizing the Accuracy-Efficiency Trade-off "
            "of Low-rank Decomposition in Language Models' (IISWC 2024)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list experiment ids").set_defaults(
        func=_cmd_experiments
    )

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment")
    run.add_argument("--limit", type=int, default=None, help="items per benchmark")
    run.set_defaults(func=_cmd_run)

    everything = sub.add_parser("all", help="run every experiment")
    everything.add_argument("--limit", type=int, default=None)
    everything.set_defaults(func=_cmd_all)

    train = sub.add_parser("train", help="train and cache the tiny models")
    train.add_argument(
        "--model", choices=("tiny-llama", "tiny-bert", "all"), default="tiny-llama"
    )
    train.set_defaults(func=_cmd_train)

    evaluate = sub.add_parser("eval", help="evaluate the cached tiny Llama")
    evaluate.add_argument("--limit", type=int, default=None)
    evaluate.set_defaults(func=_cmd_eval)

    report = sub.add_parser(
        "report", help="regenerate every artifact into a markdown report"
    )
    report.add_argument("--limit", type=int, default=60)
    report.add_argument("--output", default="RESULTS.md")
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
