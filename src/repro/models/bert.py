"""A BERT-style bidirectional encoder with a masked-LM head.

Architecture (matching Figure 4): token + learned positional embeddings with
LayerNorm, N post-norm encoder blocks (attention -> add&norm -> GELU MLP ->
add&norm), and a masked-language-model head.  Decomposable roles follow the
paper: ``w_q, w_k, w_v, w_so, w_int, w_out``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.models.config import BERT_TENSOR_ROLES, ModelConfig
from repro.runtime.program import build_model_program
from repro.nn import (
    Embedding,
    GeluMLP,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    MultiHeadAttention,
    PositionalEmbedding,
)
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class BertBlock(Module):
    """One encoder layer with post-layer-norm residual connections."""

    def __init__(self, config: ModelConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.attn = MultiHeadAttention(
            config.dim, config.n_heads, causal=False, rope=None, bias=True, rng=rng
        )
        self.attn_norm = LayerNorm(config.dim)
        self.mlp = GeluMLP(config.dim, config.mlp_hidden, rng=rng)
        self.mlp_norm = LayerNorm(config.dim)

    def forward(self, x: Tensor, pad_mask: Optional[np.ndarray] = None) -> Tensor:
        x = self.attn_norm(x + self.attn(x, pad_mask=pad_mask))
        x = self.mlp_norm(x + self.mlp(x))
        return x

    def tensor_slot(self, role: str):
        if role in ("w_q", "w_k", "w_v", "w_so"):
            return self.attn, role
        if role in ("w_int", "w_out"):
            return self.mlp, role
        raise ConfigError(f"unknown BERT tensor role {role!r}")


class BertModel(Module):
    """Bidirectional encoder trained with masked-language modelling."""

    tensor_roles = BERT_TENSOR_ROLES

    def __init__(self, config: ModelConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if config.family != "bert":
            raise ConfigError(f"BertModel requires a bert config, got {config.family!r}")
        self.config = config
        self.embed = Embedding(config.vocab_size, config.dim, rng=rng)
        self.pos_embed = PositionalEmbedding(config.max_seq_len, config.dim, rng=rng)
        self.embed_norm = LayerNorm(config.dim)
        self.blocks = ModuleList(BertBlock(config, rng=rng) for _ in range(config.n_layers))
        self.mlm_head = Linear(config.dim, config.vocab_size, bias=True, rng=rng)

    @property
    def n_layers(self) -> int:
        return self.config.n_layers

    @property
    def program(self):
        """The :class:`~repro.runtime.program.ModelProgram` this model runs.

        The encoder shares the attention kernels with the decoder through
        :class:`~repro.nn.attention.MultiHeadAttention`; the program is the
        shape-level description the hardware model walks.
        """
        return build_model_program(self.config)

    def forward(self, tokens: np.ndarray, pad_mask: Optional[np.ndarray] = None) -> Tensor:
        """Map (B, T) token ids to (B, T, vocab) MLM logits."""
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ShapeError(f"expected (B, T) token ids, got shape {tokens.shape}")
        _, seq_len = tokens.shape
        x = self.embed(tokens) + self.pos_embed(seq_len)
        x = self.embed_norm(x)
        for block in self.blocks:
            x = block(x, pad_mask=pad_mask)
        return self.mlm_head(x)

    def mlm_loss(self, tokens: np.ndarray, targets: np.ndarray) -> Tensor:
        """Masked-LM cross-entropy.

        ``tokens`` is the corrupted batch (with [MASK] ids), ``targets`` the
        original ids with -1 at positions that are not scored.
        """
        logits = self.forward(tokens)
        batch, seq_len, vocab = logits.shape
        flat_logits = logits.reshape(batch * seq_len, vocab)
        flat_targets = np.asarray(targets).reshape(-1)
        return F.cross_entropy(flat_logits, flat_targets, ignore_index=-1)

    def mlm_accuracy(self, tokens: np.ndarray, targets: np.ndarray) -> float:
        """Fraction of masked positions predicted exactly right."""
        logits = self.forward(tokens).data
        predictions = logits.argmax(axis=-1)
        targets = np.asarray(targets)
        scored = targets >= 0
        if not scored.any():
            raise ConfigError("mlm_accuracy needs at least one masked position")
        return float((predictions[scored] == targets[scored]).mean())

    def tensor_slot(self, layer: int, role: str):
        """Locate a decomposable tensor: returns (owner module, attribute)."""
        if not 0 <= layer < self.n_layers:
            raise ConfigError(f"layer {layer} out of range [0, {self.n_layers})")
        return self.blocks[layer].tensor_slot(role)
