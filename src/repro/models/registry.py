"""Named model configurations.

Two groups:

- **Paper-scale** configs (``llama2-7b``, ``llama2-70b``, ``bert-base``,
  ``bert-large``) with exact published hyper-parameters.  They are used
  analytically — design-space sizes (Table 2), MAC counts (Table 1),
  compression arithmetic (Table 4), and the hardware roofline model — and
  are never instantiated as live weights.
- **Tiny** configs (``tiny-llama``, ``tiny-bert``) with the same topology
  and tensor roles, small enough to train from scratch in NumPy.  All
  accuracy experiments run on these.
- ``serve-llama``: a mid-size GQA config for the serving benchmark — wide
  enough (dim 384) that rank-1 factorized matmuls beat dense GEMMs in
  NumPy, so measured decode speedups point the same way as the paper's
  A100 results, yet small enough to replay traces in seconds.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ConfigError
from repro.models.config import ModelConfig

# Placeholder vocabulary for tiny configs; replaced by ``with_vocab`` once a
# tokenizer has been built over the synthetic corpus.
TINY_PLACEHOLDER_VOCAB = 512

_REGISTRY: Dict[str, ModelConfig] = {}


def _register(config: ModelConfig) -> ModelConfig:
    if config.name in _REGISTRY:
        raise ConfigError(f"duplicate model name {config.name!r}")
    _REGISTRY[config.name] = config
    return config


LLAMA2_7B = _register(
    ModelConfig(
        name="llama2-7b",
        family="llama",
        vocab_size=32000,
        dim=4096,
        n_layers=32,
        n_heads=32,
        mlp_hidden=11008,
        max_seq_len=4096,
    )
)

LLAMA2_13B = _register(
    ModelConfig(
        name="llama2-13b",
        family="llama",
        vocab_size=32000,
        dim=5120,
        n_layers=40,
        n_heads=40,
        mlp_hidden=13824,
        max_seq_len=4096,
    )
)

LLAMA2_70B = _register(
    ModelConfig(
        name="llama2-70b",
        family="llama",
        vocab_size=32000,
        dim=8192,
        n_layers=80,
        n_heads=64,
        n_kv_heads=8,
        mlp_hidden=28672,
        max_seq_len=4096,
    )
)

BERT_BASE = _register(
    ModelConfig(
        name="bert-base",
        family="bert",
        vocab_size=30522,
        dim=768,
        n_layers=12,
        n_heads=12,
        mlp_hidden=3072,
        max_seq_len=512,
    )
)

BERT_LARGE = _register(
    ModelConfig(
        name="bert-large",
        family="bert",
        vocab_size=30522,
        dim=1024,
        n_layers=24,
        n_heads=16,
        mlp_hidden=4096,
        max_seq_len=512,
    )
)

TINY_LLAMA = _register(
    ModelConfig(
        name="tiny-llama",
        family="llama",
        vocab_size=TINY_PLACEHOLDER_VOCAB,
        dim=64,
        n_layers=12,
        n_heads=4,
        mlp_hidden=176,
        max_seq_len=192,
    )
)

SERVE_LLAMA = _register(
    ModelConfig(
        name="serve-llama",
        family="llama",
        vocab_size=TINY_PLACEHOLDER_VOCAB,
        dim=384,
        n_layers=6,
        n_heads=6,
        n_kv_heads=3,
        mlp_hidden=1024,
        max_seq_len=256,
    )
)

TINY_BERT = _register(
    ModelConfig(
        name="tiny-bert",
        family="bert",
        vocab_size=TINY_PLACEHOLDER_VOCAB,
        dim=64,
        n_layers=6,
        n_heads=4,
        mlp_hidden=128,
        max_seq_len=64,
    )
)

PAPER_SCALE_MODELS: Tuple[str, ...] = (
    "bert-base",
    "bert-large",
    "llama2-7b",
    "llama2-70b",
)

TINY_MODELS: Tuple[str, ...] = ("tiny-llama", "tiny-bert")


def get_config(name: str) -> ModelConfig:
    """Look up a registered configuration by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown model {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_models() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))
