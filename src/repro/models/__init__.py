"""Model zoo: Llama- and BERT-style architectures plus the config registry."""

from typing import Union

import numpy as np

from repro.errors import ConfigError
from repro.models.bert import BertBlock, BertModel
from repro.models.config import (
    BERT_TENSOR_ROLES,
    LLAMA_TENSOR_ROLES,
    ModelConfig,
)
from repro.models.llama import LlamaBlock, LlamaModel
from repro.models.registry import (
    BERT_BASE,
    BERT_LARGE,
    LLAMA2_7B,
    LLAMA2_13B,
    LLAMA2_70B,
    PAPER_SCALE_MODELS,
    SERVE_LLAMA,
    TINY_BERT,
    TINY_LLAMA,
    TINY_MODELS,
    available_models,
    get_config,
)

TransformerModel = Union[LlamaModel, BertModel]


def build_model(
    config: ModelConfig, rng: "np.random.Generator" = None
) -> TransformerModel:
    """Instantiate live weights for a configuration."""
    if config.family == "llama":
        return LlamaModel(config, rng=rng)
    if config.family == "bert":
        return BertModel(config, rng=rng)
    raise ConfigError(f"unknown family {config.family!r}")


__all__ = [
    "ModelConfig",
    "LlamaModel",
    "LlamaBlock",
    "BertModel",
    "BertBlock",
    "TransformerModel",
    "build_model",
    "get_config",
    "available_models",
    "LLAMA_TENSOR_ROLES",
    "BERT_TENSOR_ROLES",
    "PAPER_SCALE_MODELS",
    "TINY_MODELS",
    "LLAMA2_7B",
    "LLAMA2_13B",
    "LLAMA2_70B",
    "BERT_BASE",
    "BERT_LARGE",
    "TINY_LLAMA",
    "TINY_BERT",
    "SERVE_LLAMA",
]
