"""Model configuration dataclasses and per-family tensor-role inventories.

The paper's Figure 4 identifies the decomposable weight tensors of each
architecture family.  The role names used throughout this library follow the
paper's notation:

- Llama family (7 tensors/layer): ``w_q, w_k, w_v, w_so`` in self-attention
  and ``w_g, w_u, w_d`` in the SwiGLU MLP.
- BERT family (6 tensors/layer): ``w_q, w_k, w_v, w_so`` in self-attention
  and ``w_int, w_out`` in the feed-forward block.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.errors import ConfigError

LLAMA_TENSOR_ROLES: Tuple[str, ...] = ("w_q", "w_k", "w_v", "w_so", "w_g", "w_u", "w_d")
BERT_TENSOR_ROLES: Tuple[str, ...] = ("w_q", "w_k", "w_v", "w_so", "w_int", "w_out")

ATTENTION_ROLES: Tuple[str, ...] = ("w_q", "w_k", "w_v", "w_so")
LLAMA_MLP_ROLES: Tuple[str, ...] = ("w_g", "w_u", "w_d")
BERT_MLP_ROLES: Tuple[str, ...] = ("w_int", "w_out")


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyper-parameters for one model.

    Paper-scale configurations (Llama-2-7B etc.) are used analytically, for
    shape arithmetic only; tiny configurations are instantiated and trained.
    """

    name: str
    family: str  # "llama" or "bert"
    vocab_size: int
    dim: int
    n_layers: int
    n_heads: int
    mlp_hidden: int
    max_seq_len: int
    n_kv_heads: int = 0  # 0 means same as n_heads (no GQA)
    rope_theta: float = 10000.0
    tie_lm_head: bool = False

    def __post_init__(self) -> None:
        if self.family not in ("llama", "bert"):
            raise ConfigError(f"unknown model family {self.family!r}")
        if self.dim % self.n_heads != 0:
            raise ConfigError(f"dim {self.dim} not divisible by n_heads {self.n_heads}")
        if self.vocab_size <= 0 or self.n_layers <= 0:
            raise ConfigError("vocab_size and n_layers must be positive")

    @property
    def head_dim(self) -> int:
        return self.dim // self.n_heads

    @property
    def kv_heads(self) -> int:
        return self.n_kv_heads or self.n_heads

    @property
    def kv_dim(self) -> int:
        return self.kv_heads * self.head_dim

    @property
    def tensor_roles(self) -> Tuple[str, ...]:
        """Decomposable tensor roles in Figure 4 order."""
        return LLAMA_TENSOR_ROLES if self.family == "llama" else BERT_TENSOR_ROLES

    @property
    def n_tensors(self) -> int:
        """N_Tensors(m) in the paper's design-space formulas."""
        return len(self.tensor_roles)

    def tensor_shape(self, role: str) -> Tuple[int, int]:
        """The (H, W) shape of the weight matrix filling ``role``.

        This is the orientation the decomposition operates on: activations
        flow as ``x @ W`` with W of shape (in_features, out_features).
        """
        if role not in self.tensor_roles:
            raise ConfigError(f"role {role!r} not in family {self.family!r}")
        if role in ("w_q",):
            return (self.dim, self.dim)
        if role in ("w_k", "w_v"):
            return (self.dim, self.kv_dim)
        if role == "w_so":
            return (self.dim, self.dim)
        if role in ("w_g", "w_u", "w_int"):
            return (self.dim, self.mlp_hidden)
        if role in ("w_d", "w_out"):
            return (self.mlp_hidden, self.dim)
        raise ConfigError(f"unhandled role {role!r}")

    def with_vocab(self, vocab_size: int) -> "ModelConfig":
        """Copy of this config bound to a concrete tokenizer vocabulary."""
        return replace(self, vocab_size=vocab_size)

    def tensor_shapes(self) -> Dict[str, Tuple[int, int]]:
        return {role: self.tensor_shape(role) for role in self.tensor_roles}
