"""A Llama-2-style decoder-only language model.

Architecture (matching Figure 4 of the paper): token embedding, N decoder
blocks of pre-RMSNorm self-attention with RoPE followed by pre-RMSNorm
SwiGLU MLP, final RMSNorm, and an (untied by default) LM head.  Every
decomposable weight tensor carries one of the paper's role names
(``w_q, w_k, w_v, w_so, w_g, w_u, w_d``).

All forward flavors (stateless, KV-cached, ragged continuous-batching) and
the greedy generation loop are executed by the shared runtime layer
(:mod:`repro.runtime`): the model owns weights and wires them into a
:class:`~repro.runtime.context.CanonicalBlocksContext`, and the runtime
driver runs the layer program over it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigError
from repro.models.config import LLAMA_TENSOR_ROLES, ModelConfig
from repro.nn import (
    Embedding,
    Linear,
    Module,
    ModuleList,
    MultiHeadAttention,
    RMSNorm,
    RotaryEmbedding,
    SwiGluMLP,
)
from repro.nn.kv_cache import ModelKVCache
from repro.nn.linear import block_edges, blocked_project
from repro.runtime.context import CanonicalBlocksContext
from repro.runtime.decode import DecodeSession
from repro.runtime.driver import ModelRuntime
from repro.runtime.program import build_model_program
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class LlamaBlock(Module):
    """One decoder layer: x += attn(norm(x)); x += mlp(norm(x))."""

    def __init__(
        self,
        config: ModelConfig,
        rope: RotaryEmbedding,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.attn_norm = RMSNorm(config.dim)
        self.attn = MultiHeadAttention(
            config.dim,
            config.n_heads,
            causal=True,
            rope=rope,
            bias=False,
            rng=rng,
            n_kv_heads=config.kv_heads,
        )
        self.mlp_norm = RMSNorm(config.dim)
        self.mlp = SwiGluMLP(
            config.dim, config.mlp_hidden, rng=rng, n_blocks=config.n_heads
        )

    def forward(
        self, x: Tensor, pad_mask: Optional[np.ndarray] = None, cache=None
    ) -> Tensor:
        x = x + self.attn(self.attn_norm(x), pad_mask=pad_mask, cache=cache)
        x = x + self.mlp(self.mlp_norm(x))
        return x

    def tensor_slot(self, role: str):
        """Return (owner module, attribute name) for a decomposable role."""
        if role in ("w_q", "w_k", "w_v", "w_so"):
            return self.attn, role
        if role in ("w_g", "w_u", "w_d"):
            return self.mlp, role
        raise ConfigError(f"unknown Llama tensor role {role!r}")


class LlamaModel(Module):
    """Decoder-only causal language model."""

    tensor_roles = LLAMA_TENSOR_ROLES

    def __init__(self, config: ModelConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if config.family != "llama":
            raise ConfigError(f"LlamaModel requires a llama config, got {config.family!r}")
        self.config = config
        self.embed = Embedding(config.vocab_size, config.dim, rng=rng)
        rope = RotaryEmbedding(config.head_dim, config.max_seq_len, theta=config.rope_theta)
        self.rope = rope
        self.blocks = ModuleList(
            LlamaBlock(config, rope, rng=rng) for _ in range(config.n_layers)
        )
        self.final_norm = RMSNorm(config.dim)
        self.lm_head = None if config.tie_lm_head else Linear(
            config.dim, config.vocab_size, bias=False, rng=rng
        )
        # The LM head projects in n_heads column blocks over the vocabulary
        # — the fixed reduction layout the tensor-parallel executor
        # reproduces when vocab blocks are sharded across ranks.
        self._vocab_edges = block_edges(config.vocab_size, config.n_heads)
        # The shared runtime: the layer program describes this model's ops;
        # the canonical context executes them through the block modules (so
        # decomposition swaps and autograd keep working unchanged).
        self.runtime = ModelRuntime(
            build_model_program(config),
            CanonicalBlocksContext(
                self.blocks,
                embed=self.embed,
                logits_fn=self.logits_from_hidden,
                rope=rope,
                final_norm=self.final_norm,
                lm_head=self.lm_head,
                vocab_edges=self._vocab_edges,
            ),
        )

    @property
    def n_layers(self) -> int:
        return self.config.n_layers

    @property
    def program(self):
        """The :class:`~repro.runtime.program.ModelProgram` this model runs."""
        return self.runtime.program

    def forward(self, tokens: np.ndarray, pad_mask: Optional[np.ndarray] = None) -> Tensor:
        """Map (B, T) token ids to (B, T, vocab) logits."""
        return self.runtime.forward(tokens, pad_mask=pad_mask)

    def logits_from_hidden(self, x: Tensor) -> Tensor:
        """Final norm + (blocked) LM-head projection of (B, T, D) hidden
        states, shared by the plain and cached forward paths."""
        x = self.final_norm(x)
        if self.lm_head is not None:
            return self.lm_head.forward_blocked(x, self._vocab_edges)
        batch, seq_len, _ = x.shape
        flat = x.reshape(batch * seq_len, self.config.dim)
        logits = blocked_project(flat, self.embed.weight.T, self._vocab_edges)
        return logits.reshape(batch, seq_len, self.config.vocab_size)

    def loss(self, tokens: np.ndarray, loss_mask: Optional[np.ndarray] = None) -> Tensor:
        """Next-token cross-entropy over a (B, T) batch.

        ``loss_mask`` optionally marks positions (B, T-1 target positions)
        that contribute to the loss; by default all shifted positions do.
        """
        tokens = np.asarray(tokens)
        logits = self.forward(tokens[:, :-1])
        targets = tokens[:, 1:]
        batch, seq_len, vocab = logits.shape
        flat_logits = logits.reshape(batch * seq_len, vocab)
        flat_targets = targets.reshape(-1).copy()
        if loss_mask is not None:
            loss_mask = np.asarray(loss_mask, dtype=bool).reshape(-1)
            flat_targets = np.where(loss_mask, flat_targets, -1)
            return F.cross_entropy(flat_logits, flat_targets, ignore_index=-1)
        return F.cross_entropy(flat_logits, flat_targets)

    def tensor_slot(self, layer: int, role: str):
        """Locate a decomposable tensor: returns (owner module, attribute)."""
        if not 0 <= layer < self.n_layers:
            raise ConfigError(f"layer {layer} out of range [0, {self.n_layers})")
        return self.blocks[layer].tensor_slot(role)

    # -- cached decoding surface (what DecodeSession drives) ---------------
    def make_cache(self) -> ModelKVCache:
        """A fresh whole-model KV cache for incremental decoding."""
        return ModelKVCache(self.n_layers)

    def forward_cached(self, tokens: np.ndarray, cache) -> Tensor:
        """Forward over new ``tokens`` only, extending ``cache`` in place."""
        return self.runtime.forward_cached(np.asarray(tokens), cache)

    # Kept under its historical name for callers of the pre-runtime API.
    def _forward_with_cache(self, tokens: np.ndarray, cache) -> Tensor:
        return self.forward_cached(tokens, cache)

    def greedy_generate(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        stop_token: Optional[int] = None,
        use_cache: bool = True,
        speculative=None,
    ) -> np.ndarray:
        """Greedy decoding used by the GSM8K-style generative benchmark.

        With ``use_cache`` (default) the prompt is prefilled once and each
        new token runs a single-position forward pass against the KV cache;
        without it, the full window is recomputed per token (kept as the
        reference implementation — both paths produce identical tokens).
        ``speculative`` (a drafter model or
        :class:`~repro.runtime.speculative.SpeculativeConfig`) switches to
        the drafter/verifier loop; the output tokens are unchanged.
        """
        return DecodeSession(self).generate(
            prompt,
            max_new_tokens,
            stop_token=stop_token,
            use_cache=use_cache,
            speculative=speculative,
        )

    def forward_ragged(
        self,
        tokens: np.ndarray,
        caches,
        new_lengths,
    ) -> Tensor:
        """Cached forward over a ragged batch of independent sequences.

        ``tokens`` is a right-padded (B, T_max) batch where row ``b``
        contributes ``new_lengths[b]`` valid new positions appended to
        ``caches[b]`` (a :class:`~repro.nn.kv_cache.ModelKVCache`-compatible
        per-sequence cache, e.g. a block-pool backed one).  Rows may sit at
        different depths; each attends its own history only.  Returns
        (B, T_max, vocab) logits — row ``b`` is valid up to position
        ``new_lengths[b] - 1``; padded positions hold garbage.

        This is the forward pass the continuous-batching engine in
        :mod:`repro.serving` drives: prefill chunks and single-token decode
        steps of different requests share one batched pass.
        """
        return self.runtime.forward_ragged(tokens, caches, new_lengths)
