"""A Llama-2-style decoder-only language model.

Architecture (matching Figure 4 of the paper): token embedding, N decoder
blocks of pre-RMSNorm self-attention with RoPE followed by pre-RMSNorm
SwiGLU MLP, final RMSNorm, and an (untied by default) LM head.  Every
decomposable weight tensor carries one of the paper's role names
(``w_q, w_k, w_v, w_so, w_g, w_u, w_d``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigError
from repro.models.config import LLAMA_TENSOR_ROLES, ModelConfig
from repro.nn import (
    Embedding,
    Linear,
    Module,
    ModuleList,
    MultiHeadAttention,
    RMSNorm,
    RotaryEmbedding,
    SwiGluMLP,
)
from repro.nn.linear import block_edges, blocked_project
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class LlamaBlock(Module):
    """One decoder layer: x += attn(norm(x)); x += mlp(norm(x))."""

    def __init__(
        self,
        config: ModelConfig,
        rope: RotaryEmbedding,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.attn_norm = RMSNorm(config.dim)
        self.attn = MultiHeadAttention(
            config.dim,
            config.n_heads,
            causal=True,
            rope=rope,
            bias=False,
            rng=rng,
            n_kv_heads=config.kv_heads,
        )
        self.mlp_norm = RMSNorm(config.dim)
        self.mlp = SwiGluMLP(
            config.dim, config.mlp_hidden, rng=rng, n_blocks=config.n_heads
        )

    def forward(
        self, x: Tensor, pad_mask: Optional[np.ndarray] = None, cache=None
    ) -> Tensor:
        x = x + self.attn(self.attn_norm(x), pad_mask=pad_mask, cache=cache)
        x = x + self.mlp(self.mlp_norm(x))
        return x

    def tensor_slot(self, role: str):
        """Return (owner module, attribute name) for a decomposable role."""
        if role in ("w_q", "w_k", "w_v", "w_so"):
            return self.attn, role
        if role in ("w_g", "w_u", "w_d"):
            return self.mlp, role
        raise ConfigError(f"unknown Llama tensor role {role!r}")


class LlamaModel(Module):
    """Decoder-only causal language model."""

    tensor_roles = LLAMA_TENSOR_ROLES

    def __init__(self, config: ModelConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if config.family != "llama":
            raise ConfigError(f"LlamaModel requires a llama config, got {config.family!r}")
        self.config = config
        self.embed = Embedding(config.vocab_size, config.dim, rng=rng)
        rope = RotaryEmbedding(config.head_dim, config.max_seq_len, theta=config.rope_theta)
        self.rope = rope
        self.blocks = ModuleList(
            LlamaBlock(config, rope, rng=rng) for _ in range(config.n_layers)
        )
        self.final_norm = RMSNorm(config.dim)
        self.lm_head = None if config.tie_lm_head else Linear(
            config.dim, config.vocab_size, bias=False, rng=rng
        )
        # The LM head projects in n_heads column blocks over the vocabulary
        # — the fixed reduction layout the tensor-parallel executor
        # reproduces when vocab blocks are sharded across ranks.
        self._vocab_edges = block_edges(config.vocab_size, config.n_heads)

    @property
    def n_layers(self) -> int:
        return self.config.n_layers

    def forward(self, tokens: np.ndarray, pad_mask: Optional[np.ndarray] = None) -> Tensor:
        """Map (B, T) token ids to (B, T, vocab) logits."""
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ConfigError(f"expected (B, T) token ids, got shape {tokens.shape}")
        x = self.embed(tokens)
        for block in self.blocks:
            x = block(x, pad_mask=pad_mask)
        return self.logits_from_hidden(x)

    def logits_from_hidden(self, x: Tensor) -> Tensor:
        """Final norm + (blocked) LM-head projection of (B, T, D) hidden
        states, shared by the plain and cached forward paths."""
        x = self.final_norm(x)
        if self.lm_head is not None:
            return self.lm_head.forward_blocked(x, self._vocab_edges)
        batch, seq_len, _ = x.shape
        flat = x.reshape(batch * seq_len, self.config.dim)
        logits = blocked_project(flat, self.embed.weight.T, self._vocab_edges)
        return logits.reshape(batch, seq_len, self.config.vocab_size)

    def loss(self, tokens: np.ndarray, loss_mask: Optional[np.ndarray] = None) -> Tensor:
        """Next-token cross-entropy over a (B, T) batch.

        ``loss_mask`` optionally marks positions (B, T-1 target positions)
        that contribute to the loss; by default all shifted positions do.
        """
        tokens = np.asarray(tokens)
        logits = self.forward(tokens[:, :-1])
        targets = tokens[:, 1:]
        batch, seq_len, vocab = logits.shape
        flat_logits = logits.reshape(batch * seq_len, vocab)
        flat_targets = targets.reshape(-1).copy()
        if loss_mask is not None:
            loss_mask = np.asarray(loss_mask, dtype=bool).reshape(-1)
            flat_targets = np.where(loss_mask, flat_targets, -1)
            return F.cross_entropy(flat_logits, flat_targets, ignore_index=-1)
        return F.cross_entropy(flat_logits, flat_targets)

    def tensor_slot(self, layer: int, role: str):
        """Locate a decomposable tensor: returns (owner module, attribute)."""
        if not 0 <= layer < self.n_layers:
            raise ConfigError(f"layer {layer} out of range [0, {self.n_layers})")
        return self.blocks[layer].tensor_slot(role)

    def greedy_generate(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        stop_token: Optional[int] = None,
        use_cache: bool = True,
    ) -> np.ndarray:
        """Greedy decoding used by the GSM8K-style generative benchmark.

        With ``use_cache`` (default) the prompt is prefetched once and each
        new token runs a single-position forward pass against the KV cache;
        without it, the full window is recomputed per token (kept as the
        reference implementation — both paths produce identical tokens).
        """
        if not use_cache:
            return self._greedy_generate_recompute(prompt, max_new_tokens, stop_token)
        from repro.nn.kv_cache import ModelKVCache

        tokens = np.asarray(prompt).reshape(1, -1)
        window = tokens[:, -self.config.max_seq_len :]
        cache = ModelKVCache(self.n_layers)
        logits = self._forward_with_cache(window, cache)
        next_token = int(np.argmax(logits.data[0, -1]))
        tokens = np.concatenate([tokens, [[next_token]]], axis=1)
        for _ in range(max_new_tokens - 1):
            if stop_token is not None and next_token == stop_token:
                break
            if cache.seq_len >= self.config.max_seq_len:
                # Context full: fall back to windowed recomputation.
                remaining = max_new_tokens - (tokens.shape[1] - len(np.asarray(prompt)))
                return self._greedy_generate_recompute(
                    tokens[0], remaining, stop_token
                )
            logits = self._forward_with_cache(tokens[:, -1:], cache)
            next_token = int(np.argmax(logits.data[0, -1]))
            tokens = np.concatenate([tokens, [[next_token]]], axis=1)
        return tokens[0]

    def forward_ragged(
        self,
        tokens: np.ndarray,
        caches,
        new_lengths,
    ) -> Tensor:
        """Cached forward over a ragged batch of independent sequences.

        ``tokens`` is a right-padded (B, T_max) batch where row ``b``
        contributes ``new_lengths[b]`` valid new positions appended to
        ``caches[b]`` (a :class:`~repro.nn.kv_cache.ModelKVCache`-compatible
        per-sequence cache, e.g. a block-pool backed one).  Rows may sit at
        different depths; each attends its own history only.  Returns
        (B, T_max, vocab) logits — row ``b`` is valid up to position
        ``new_lengths[b] - 1``; padded positions hold garbage.

        This is the forward pass the continuous-batching engine in
        :mod:`repro.serving` drives: prefill chunks and single-token decode
        steps of different requests share one batched pass.
        """
        from repro.nn.kv_cache import RaggedModelCaches

        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ConfigError(f"expected (B, T) token ids, got shape {tokens.shape}")
        if tokens.shape[0] != len(caches):
            raise ConfigError(
                f"need one cache per row: {tokens.shape[0]} rows, {len(caches)} caches"
            )
        ragged = RaggedModelCaches(list(caches), new_lengths)
        return self._forward_with_cache(tokens, ragged)

    def _forward_with_cache(self, tokens: np.ndarray, cache) -> Tensor:
        """Forward over new ``tokens`` only, extending ``cache`` in place."""
        x = self.embed(np.asarray(tokens))
        for block, layer_cache in zip(self.blocks, cache.layers):
            x = block(x, cache=layer_cache)
        return self.logits_from_hidden(x)

    def _greedy_generate_recompute(
        self, prompt: np.ndarray, max_new_tokens: int, stop_token: Optional[int]
    ) -> np.ndarray:
        tokens = np.asarray(prompt).reshape(1, -1)
        for _ in range(max_new_tokens):
            window = tokens[:, -self.config.max_seq_len :]
            logits = self.forward(window)
            next_token = int(np.argmax(logits.data[0, -1]))
            tokens = np.concatenate([tokens, [[next_token]]], axis=1)
            if stop_token is not None and next_token == stop_token:
                break
        return tokens[0]
