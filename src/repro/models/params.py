"""Analytic parameter accounting for model configurations.

These functions compute exact parameter counts from a :class:`ModelConfig`
without instantiating weights, so they work for paper-scale models
(Llama-2-7B/70B, BERT-Base/Large) as well as the tiny trained ones.  They
back Table 1 (model sizes), Table 4 (parameter-reduction rates), and the
hardware model's memory footprints.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.decomposition.metrics import factorized_parameters
from repro.errors import ConfigError
from repro.models.config import ModelConfig

BYTES_PER_PARAM_FP16 = 2
BYTES_PER_PARAM_FP32 = 4


def decomposable_parameters_per_layer(config: ModelConfig) -> Dict[str, int]:
    """Parameters of each decomposable weight tensor in one layer."""
    return {
        role: shape[0] * shape[1] for role, shape in config.tensor_shapes().items()
    }


def layer_parameters(config: ModelConfig) -> int:
    """All parameters in one transformer layer (weights, biases, norms)."""
    weights = sum(decomposable_parameters_per_layer(config).values())
    if config.family == "llama":
        norms = 2 * config.dim  # two RMSNorm scales
        biases = 0
    else:
        norms = 2 * 2 * config.dim  # two LayerNorms, scale + shift each
        # BERT projections all carry biases: q, k, v, so (dim each), plus
        # intermediate (mlp_hidden) and output (dim).
        biases = 4 * config.dim + config.mlp_hidden + config.dim
    return weights + norms + biases


def embedding_parameters(config: ModelConfig) -> int:
    """Token (and positional, for BERT) embedding parameters."""
    token = config.vocab_size * config.dim
    if config.family == "bert":
        return token + config.max_seq_len * config.dim
    return token


def head_parameters(config: ModelConfig) -> int:
    """LM-head parameters (untied heads only)."""
    if config.family == "llama" and not config.tie_lm_head:
        return config.vocab_size * config.dim
    if config.family == "bert":
        return config.vocab_size * config.dim + config.vocab_size  # dense + bias
    return 0


def total_parameters(config: ModelConfig) -> int:
    """Exact parameter count of the full model."""
    final_norm = config.dim if config.family == "llama" else 2 * config.dim
    return (
        embedding_parameters(config)
        + config.n_layers * layer_parameters(config)
        + final_norm
        + head_parameters(config)
    )


def model_size_bytes(config: ModelConfig, bytes_per_param: int = BYTES_PER_PARAM_FP16) -> int:
    """Model size in bytes at the given precision (FP16 by default)."""
    return total_parameters(config) * bytes_per_param


def decomposed_parameters(
    config: ModelConfig,
    layers: Iterable[int],
    roles: Iterable[str],
    rank: int,
) -> int:
    """Total parameters after decomposing ``roles`` in ``layers`` at ``rank``.

    Non-decomposed parameters are untouched; each decomposed (H, W) tensor is
    replaced by ``H*PR + PR^2 + PR*W`` parameters.
    """
    layers = sorted(set(layers))
    roles = list(dict.fromkeys(roles))
    for layer in layers:
        if not 0 <= layer < config.n_layers:
            raise ConfigError(f"layer {layer} out of range for {config.name}")
    for role in roles:
        if role not in config.tensor_roles:
            raise ConfigError(f"role {role!r} unknown for {config.name}")
    total = total_parameters(config)
    for _ in layers:
        for role in roles:
            height, width = config.tensor_shape(role)
            total -= height * width
            total += factorized_parameters(height, width, rank)
    return total


def parameter_reduction(
    config: ModelConfig,
    layers: Iterable[int],
    roles: Iterable[str],
    rank: int,
) -> float:
    """Fractional reduction in total model parameters (0..1)."""
    before = total_parameters(config)
    after = decomposed_parameters(config, layers, roles, rank)
    return (before - after) / before


def compute_to_model_size_ratio(
    macs: int, config: ModelConfig, bytes_per_param: int = BYTES_PER_PARAM_FP16
) -> float:
    """The paper's Table 1 metric: MACs per byte of model weights."""
    return macs / model_size_bytes(config, bytes_per_param)
