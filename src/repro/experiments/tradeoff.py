"""The Section 4 case study: Figures 9-12 (and Table 4).

Accuracy (Figure 9) is measured on the trained tiny Llama with the Table 4
recipes scaled to its depth.  Latency (Figure 10), energy (Figure 11), and
memory (Figure 12) are produced by the analytic hardware model on the exact
paper-scale Llama-2-7B with the exact Table 4 layer sets, plus wall-clock
NumPy measurements of the tiny model for a grounded sanity check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.decomposition import (
    DecompositionConfig,
    PAPER_TABLE4,
    decomposed,
    scaled_table4,
    table4_layers,
)
from repro.eval import BENCHMARK_NAMES, build_suite, evaluate_suite
from repro.experiments.pretrained import get_world, pretrained_tiny_llama
from repro.hwmodel import ServingConfig, compare_to_baseline
from repro.models import LLAMA2_7B


@dataclass
class AccuracyTradeoffPoint:
    """One x-position of Figure 9."""

    target_reduction_pct: int
    layers: tuple
    actual_reduction: float
    accuracy: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(list(self.accuracy.values())))


def run_accuracy_tradeoff(
    reduction_targets: Sequence[int] = tuple(sorted(PAPER_TABLE4)),
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    limit: Optional[int] = 60,
    include_baseline: bool = True,
) -> List[AccuracyTradeoffPoint]:
    """Figure 9: accuracy at each Table 4 parameter-reduction level."""
    model, tokenizer = pretrained_tiny_llama()
    suite = build_suite(get_world(), names=benchmarks)
    recipes = scaled_table4(model.config.n_layers)
    points: List[AccuracyTradeoffPoint] = []
    if include_baseline:
        baseline = evaluate_suite(model, tokenizer, suite, limit=limit)
        points.append(
            AccuracyTradeoffPoint(
                target_reduction_pct=0,
                layers=(),
                actual_reduction=0.0,
                accuracy=baseline.as_dict(),
            )
        )
    for target in reduction_targets:
        layers = recipes[target]
        config = DecompositionConfig.all_tensors(model.config, layers, rank=1)
        with decomposed(model, config) as report:
            result = evaluate_suite(model, tokenizer, suite, limit=limit)
        points.append(
            AccuracyTradeoffPoint(
                target_reduction_pct=target,
                layers=tuple(layers),
                actual_reduction=report.parameter_reduction,
                accuracy=result.as_dict(),
            )
        )
    return points


@dataclass
class EfficiencyTradeoffPoint:
    """One x-position of Figures 10, 11, and 12 (paper-scale model)."""

    target_reduction_pct: int
    actual_reduction: float
    speedup: float
    latency_saving: float
    energy_saving: float
    memory_saving: float
    latency_s: float
    energy_j: float
    memory_per_gpu_gb: float


def run_efficiency_tradeoff(
    reduction_targets: Sequence[int] = tuple(sorted(PAPER_TABLE4)),
    serving: ServingConfig = ServingConfig(),
) -> List[EfficiencyTradeoffPoint]:
    """Figures 10-12: analytic latency/energy/memory on Llama-2-7B, 4xA100."""
    from repro.models.params import parameter_reduction

    points: List[EfficiencyTradeoffPoint] = []
    for target in reduction_targets:
        layers = table4_layers(target)
        config = DecompositionConfig.all_tensors(LLAMA2_7B, layers, rank=1)
        comparison = compare_to_baseline(LLAMA2_7B, config, serving)
        treated = comparison["decomposed"]
        points.append(
            EfficiencyTradeoffPoint(
                target_reduction_pct=target,
                actual_reduction=parameter_reduction(
                    LLAMA2_7B, layers, LLAMA2_7B.tensor_roles, 1
                ),
                speedup=comparison["speedup"],
                latency_saving=comparison["latency_saving"],
                energy_saving=comparison["energy_saving"],
                memory_saving=comparison["memory_saving"],
                latency_s=treated.latency_s,
                energy_j=treated.energy_j,
                memory_per_gpu_gb=treated.memory_per_gpu_gb,
            )
        )
    return points


def measured_speedup(
    reduction_target: int = 33,
    batch: int = 8,
    seq_len: int = 64,
    repeats: int = 5,
    dim: int = 512,
    n_layers: int = 4,
) -> Dict[str, float]:
    """Wall-clock forward-pass speedup under NumPy on this machine.

    Grounds the analytic Figure 10 in a real measurement.  Uses a
    randomly initialized *wide* model (default dim 512) rather than the
    trained dim-64 model: at dim 64 per-op Python overhead swamps GEMM
    time and decomposition shows no wall-clock benefit — the same
    launch-overhead effect that caps the paper's measured savings at
    ~0.5 % per 1 % parameters.
    """
    from dataclasses import replace

    from repro.models import build_model, get_config

    config = replace(
        get_config("tiny-llama").with_vocab(256),
        dim=dim,
        n_layers=n_layers,
        n_heads=8,
        mlp_hidden=int(2.75 * dim),
        max_seq_len=max(seq_len, 64),
    )
    model = build_model(config, rng=np.random.default_rng(0))
    model.eval()
    tokens = np.random.default_rng(1).integers(1, config.vocab_size, size=(batch, seq_len))

    def best_time() -> float:
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            model(tokens)
            times.append(time.perf_counter() - start)
        return min(times)

    model(tokens)  # warm-up
    dense_s = best_time()
    layers = scaled_table4(config.n_layers)[reduction_target]
    decomposition = DecompositionConfig.all_tensors(config, layers, rank=1)
    with decomposed(model, decomposition) as report:
        model(tokens)  # warm-up
        decomposed_s = best_time()
    return {
        "parameter_reduction": report.parameter_reduction,
        "dense_s": dense_s,
        "decomposed_s": decomposed_s,
        "speedup": dense_s / decomposed_s,
    }


def per_point_slopes(points: List[EfficiencyTradeoffPoint]) -> Dict[str, float]:
    """Savings per 1% parameter reduction (the paper's ~0.5/0.5/0.4 rule)."""
    reductions = np.array([p.actual_reduction for p in points])
    slopes = {}
    for name in ("latency_saving", "energy_saving", "memory_saving"):
        values = np.array([getattr(p, name) for p in points])
        slopes[name] = float(np.polyfit(reductions, values, 1)[0])
    return slopes


def format_accuracy_tradeoff(points: List[AccuracyTradeoffPoint]) -> str:
    from repro.experiments.ascii_chart import scatter_series

    benchmarks = list(points[0].accuracy)
    header = f"{'target':>7}{'actual':>8}{'mean':>8}" + "".join(
        f"{name[:11]:>13}" for name in benchmarks
    )
    lines = [header]
    for point in points:
        cells = "".join(f"{100 * point.accuracy[b]:>12.1f}%" for b in benchmarks)
        lines.append(
            f"{point.target_reduction_pct:>6}%{100 * point.actual_reduction:>7.1f}%"
            f"{100 * point.mean_accuracy:>7.1f}%" + cells
        )
    unique_x = {}
    for point in points:
        unique_x.setdefault(round(100 * point.actual_reduction, 1), point)
    plotted = sorted(unique_x.values(), key=lambda p: p.actual_reduction)
    lines.append("")
    lines.append(
        scatter_series(
            [100 * p.actual_reduction for p in plotted],
            {"mean accuracy (%)": [100 * p.mean_accuracy for p in plotted]},
            x_label="parameter reduction (%)",
            y_range=(0.0, 100.0),
        )
    )
    return "\n".join(lines)


def format_efficiency_tradeoff(points: List[EfficiencyTradeoffPoint]) -> str:
    lines = [
        f"{'target':>7}{'actual':>8}{'speedup':>9}{'latency':>9}{'energy':>9}"
        f"{'memory':>9}{'lat(s)':>9}{'E(kJ)':>8}{'mem/GPU':>9}"
    ]
    for point in points:
        lines.append(
            f"{point.target_reduction_pct:>6}%{100 * point.actual_reduction:>7.1f}%"
            f"{point.speedup:>8.2f}x{100 * point.latency_saving:>8.1f}%"
            f"{100 * point.energy_saving:>8.1f}%{100 * point.memory_saving:>8.1f}%"
            f"{point.latency_s:>9.2f}{point.energy_j / 1000:>8.1f}"
            f"{point.memory_per_gpu_gb:>8.1f}G"
        )
    slopes = per_point_slopes(points)
    lines.append(
        "savings per 1% parameter reduction: "
        + ", ".join(f"{k.split('_')[0]}={v:.2f}%" for k, v in slopes.items())
    )
    from repro.experiments.ascii_chart import scatter_series

    lines.append("")
    lines.append(
        scatter_series(
            [100 * p.actual_reduction for p in points],
            {
                "latency saving (%)": [100 * p.latency_saving for p in points],
                "memory saving (%)": [100 * p.memory_saving for p in points],
            },
            x_label="parameter reduction (%)",
        )
    )
    return "\n".join(lines)
