"""Shared, disk-cached trained models for the experiment drivers.

The paper profiles *pretrained* checkpoints pulled from HuggingFace; this
module is the offline equivalent.  The first call trains the tiny model on
the synthetic corpus (~2 minutes for tiny-llama) and caches the checkpoint
under ``<repo>/.cache``; later calls — across processes — load it in
milliseconds.  Cache keys include a data version so corpus changes
invalidate stale checkpoints.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path
from typing import Tuple

import numpy as np

from repro.data import World, build_corpus, corpus_vocabulary
from repro.errors import CheckpointError
from repro.eval import WordTokenizer
from repro.models import BertModel, LlamaModel, build_model, get_config
from repro.training import (
    TrainConfig,
    load_checkpoint,
    save_checkpoint,
    train_causal_lm,
    train_masked_lm,
)

# Bump when the world/corpus/templates change in a way that invalidates
# trained checkpoints.
DATA_VERSION = 4

WORLD_SEED = 0
INIT_SEED = 42

LLAMA_TRAIN = TrainConfig(steps=700, batch_size=64, lr=3e-3, warmup_steps=50, seed=7)
BERT_TRAIN = TrainConfig(steps=500, batch_size=64, lr=3e-3, warmup_steps=50, seed=8)


def cache_dir() -> Path:
    """Checkpoint cache directory (override with ``REPRO_CACHE``)."""
    env = os.environ.get("REPRO_CACHE")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".cache"


@lru_cache(maxsize=None)
def get_world() -> World:
    return World.build(seed=WORLD_SEED)


@lru_cache(maxsize=None)
def get_corpus() -> tuple:
    return tuple(build_corpus(get_world()))


@lru_cache(maxsize=None)
def get_tokenizer() -> WordTokenizer:
    return WordTokenizer(corpus_vocabulary(get_world()))


def _checkpoint_path(name: str) -> Path:
    return cache_dir() / f"{name}-v{DATA_VERSION}.npz"


def _load_cached(path: Path, tokenizer: WordTokenizer):
    """Load a cached checkpoint, or None when absent/stale/corrupt.

    A corrupt file (e.g. truncated by a killed process before saves became
    atomic) is deleted so the caller falls through to retraining.
    """
    if not path.exists():
        return None
    try:
        model, saved_tokenizer = load_checkpoint(path)
    except CheckpointError:
        try:
            path.unlink()
        except OSError:
            pass
        return None
    if saved_tokenizer is None or saved_tokenizer.state() != tokenizer.state():
        return None
    model.eval()
    return model


@lru_cache(maxsize=None)
def pretrained_tiny_llama(verbose: bool = False) -> Tuple[LlamaModel, WordTokenizer]:
    """The trained tiny Llama used by every accuracy experiment."""
    path = _checkpoint_path("tiny-llama")
    tokenizer = get_tokenizer()
    model = _load_cached(path, tokenizer)
    if model is not None:
        return model, tokenizer
    config = get_config("tiny-llama").with_vocab(tokenizer.vocab_size)
    model = build_model(config, rng=np.random.default_rng(INIT_SEED))
    train_causal_lm(model, tokenizer, list(get_corpus()), LLAMA_TRAIN, verbose=verbose)
    save_checkpoint(path, model, tokenizer)
    return model, tokenizer


@lru_cache(maxsize=None)
def pretrained_tiny_bert(verbose: bool = False) -> Tuple[BertModel, WordTokenizer]:
    """The trained tiny BERT used by the encoder-side sensitivity study."""
    path = _checkpoint_path("tiny-bert")
    tokenizer = get_tokenizer()
    model = _load_cached(path, tokenizer)
    if model is not None:
        return model, tokenizer
    config = get_config("tiny-bert").with_vocab(tokenizer.vocab_size)
    model = build_model(config, rng=np.random.default_rng(INIT_SEED))
    train_masked_lm(model, tokenizer, list(get_corpus()), BERT_TRAIN, verbose=verbose)
    save_checkpoint(path, model, tokenizer)
    return model, tokenizer


def fresh_tiny_llama() -> Tuple[LlamaModel, WordTokenizer]:
    """A *copy* of the pretrained model safe for destructive surgery.

    The cached instance is shared across callers; experiments that
    decompose in place without the ``decomposed`` context manager should
    operate on a fresh copy.
    """
    shared, tokenizer = pretrained_tiny_llama()
    config = shared.config
    model = build_model(config)
    model.load_state_dict(shared.state_dict())
    model.eval()
    return model, tokenizer
