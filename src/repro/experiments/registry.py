"""One entry per paper artifact: the experiment registry behind the CLI.

Each experiment is a zero-argument callable returning a printable report;
``run_experiment`` executes one by id.  Accuracy experiments accept a
``limit`` keyword to trade fidelity for runtime.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import ConfigError


def _table1() -> str:
    from repro.analysis import format_table1, table1_rows

    return format_table1(table1_rows())


def _table2() -> str:
    from repro.analysis import format_table2, table2_rows

    return format_table2(table2_rows())


def _table3() -> str:
    from repro.eval import PAPER_TABLE3, build_suite
    from repro.experiments.pretrained import get_world

    suite = build_suite(get_world())
    lines = [f"{'benchmark':<15}{'task':<55}{'paper n':>9}{'ours n':>8}"]
    for name, (task_kind, paper_n) in PAPER_TABLE3.items():
        lines.append(f"{name:<15}{task_kind:<55}{paper_n:>9}{len(suite[name]):>8}")
    return "\n".join(lines)


def _table4() -> str:
    from repro.decomposition import PAPER_TABLE4, table4_layers
    from repro.models import LLAMA2_7B
    from repro.models.params import parameter_reduction

    lines = [f"{'target':>7}{'actual':>9}  decomposed layers (1-based)"]
    for target in sorted(PAPER_TABLE4):
        layers = table4_layers(target)
        actual = parameter_reduction(LLAMA2_7B, layers, LLAMA2_7B.tensor_roles, 1)
        shown = ",".join(str(l + 1) for l in layers)
        lines.append(f"{target:>6}%{100 * actual:>8.1f}%  {shown}")
    return "\n".join(lines)


def _fig3(limit: Optional[int] = 60) -> str:
    from repro.experiments.rank_sweep import format_rank_sweep, run_rank_sweep

    return format_rank_sweep(run_rank_sweep(limit=limit))


def _fig5(limit: Optional[int] = 40) -> str:
    from repro.experiments.tensor_choice import (
        format_tensor_choice,
        run_single_tensor_sensitivity,
    )

    one = run_single_tensor_sensitivity(scope="one_layer", limit=limit)
    everywhere = run_single_tensor_sensitivity(scope="all_layers", limit=limit)
    return format_tensor_choice(one + everywhere)


def _fig6(limit: Optional[int] = 40) -> str:
    from repro.experiments.tensor_choice import (
        format_tensor_choice,
        run_tensor_vs_layer_tradeoff,
    )

    return format_tensor_choice(run_tensor_vs_layer_tradeoff(limit=limit))


def _fig7(limit: Optional[int] = 40) -> str:
    from repro.experiments.layer_choice import (
        format_layer_sensitivity,
        run_layer_sensitivity,
    )

    return format_layer_sensitivity(run_layer_sensitivity(limit=limit))


def _fig8(limit: Optional[int] = 40) -> str:
    from repro.experiments.layer_choice import format_layer_distance, run_layer_distance

    return format_layer_distance(run_layer_distance(limit=limit))


def _fig9(limit: Optional[int] = 60) -> str:
    from repro.experiments.tradeoff import format_accuracy_tradeoff, run_accuracy_tradeoff

    return format_accuracy_tradeoff(run_accuracy_tradeoff(limit=limit))


def _fig10_12() -> str:
    from repro.experiments.tradeoff import (
        format_efficiency_tradeoff,
        run_efficiency_tradeoff,
    )

    return format_efficiency_tradeoff(run_efficiency_tradeoff())


def _ext_finetune(limit: Optional[int] = 40) -> str:
    from repro.experiments.finetune import (
        format_finetune_recovery,
        run_finetune_recovery,
    )

    return format_finetune_recovery(run_finetune_recovery(limit=limit))


def _ext_bert() -> str:
    from repro.experiments.bert_sensitivity import (
        format_bert_sensitivity,
        run_bert_tensor_sensitivity,
    )

    return format_bert_sensitivity(run_bert_tensor_sensitivity())


EXPERIMENTS: Dict[str, Callable[..., str]] = {
    "table1": _table1,
    "table2": _table2,
    "table3": _table3,
    "table4": _table4,
    "fig3": _fig3,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10_12,
    "fig11": _fig10_12,
    "fig12": _fig10_12,
    # Extensions beyond the paper's evaluation (see EXPERIMENTS.md).
    "ext-finetune": _ext_finetune,
    "ext-bert": _ext_bert,
}

ACCURACY_EXPERIMENTS = ("fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "ext-finetune")


def run_experiment(experiment_id: str, limit: Optional[int] = None) -> str:
    """Run one experiment by id and return its printable report."""
    try:
        driver = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    if limit is not None and experiment_id in ACCURACY_EXPERIMENTS:
        return driver(limit=limit)
    return driver()
