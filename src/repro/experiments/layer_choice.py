"""Figures 7 and 8: which layers to decompose.

- Figure 7 decomposes a single layer at a time (all tensors, rank 1) and
  plots aggregate accuracy against the layer's position: the first and last
  layers are markedly more sensitive than the middle.
- Figure 8 fixes the number of decomposed layers and varies their spacing:
  spreading layers apart degrades accuracy less than decomposing adjacent
  layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.decomposition import DecompositionConfig, decomposed, strided_layers
from repro.errors import ConfigError
from repro.eval import CHARACTERIZATION_BENCHMARKS, build_suite, evaluate_suite
from repro.experiments.pretrained import get_world, pretrained_tiny_llama


@dataclass
class LayerSensitivityPoint:
    """Aggregate accuracy when a single layer is decomposed."""

    layer: int
    actual_reduction: float
    accuracy: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(list(self.accuracy.values())))


def run_layer_sensitivity(
    benchmarks: Sequence[str] = CHARACTERIZATION_BENCHMARKS,
    limit: Optional[int] = 40,
    layers: Optional[Sequence[int]] = None,
) -> List[LayerSensitivityPoint]:
    """Figure 7: one decomposed layer at a time across the stack."""
    model, tokenizer = pretrained_tiny_llama()
    suite = build_suite(get_world(), names=benchmarks)
    if layers is None:
        layers = range(model.config.n_layers)
    points: List[LayerSensitivityPoint] = []
    for layer in layers:
        config = DecompositionConfig.all_tensors(model.config, (layer,), rank=1)
        with decomposed(model, config) as report:
            result = evaluate_suite(model, tokenizer, suite, limit=limit)
        points.append(
            LayerSensitivityPoint(
                layer=layer,
                actual_reduction=report.parameter_reduction,
                accuracy=result.as_dict(),
            )
        )
    return points


def edge_vs_middle_gap(points: List[LayerSensitivityPoint]) -> float:
    """Mean middle-layer accuracy minus mean edge-layer accuracy.

    Positive values confirm the paper's insight that edges (first/last
    layers) are more sensitive than the middle.
    """
    if len(points) < 4:
        raise ConfigError("need at least 4 layers to compare edges vs middle")
    by_layer = sorted(points, key=lambda p: p.layer)
    edges = [by_layer[0], by_layer[1], by_layer[-1]]
    middle = by_layer[2:-1]
    edge_ids = {p.layer for p in edges}
    middle = [p for p in middle if p.layer not in edge_ids]
    return float(
        np.mean([p.mean_accuracy for p in middle])
        - np.mean([p.mean_accuracy for p in edges])
    )


@dataclass
class LayerDistancePoint:
    """Accuracy for one layer-spacing choice at a fixed layer count."""

    stride: int
    layers: Tuple[int, ...]
    actual_reduction: float
    accuracy: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(list(self.accuracy.values())))


def run_layer_distance(
    n_decomposed: int = 4,
    strides: Sequence[int] = (1, 2, 3),
    start: int = 1,
    benchmarks: Sequence[str] = CHARACTERIZATION_BENCHMARKS,
    limit: Optional[int] = 40,
) -> List[LayerDistancePoint]:
    """Figure 8: same layer count, increasing distance between layers.

    ``stride=1`` is the consecutive placement; larger strides spread the
    same number of decomposed layers further apart (the paper compares
    consecutive layers against every-sixth-layer placement on 32 layers).
    """
    model, tokenizer = pretrained_tiny_llama()
    suite = build_suite(get_world(), names=benchmarks)
    n_layers = model.config.n_layers
    points: List[LayerDistancePoint] = []
    for stride in strides:
        layers = strided_layers(n_layers, stride, offset=start)[:n_decomposed]
        if len(layers) < n_decomposed:
            raise ConfigError(
                f"stride {stride} from {start} cannot place {n_decomposed} "
                f"layers in {n_layers}"
            )
        config = DecompositionConfig.all_tensors(model.config, layers, rank=1)
        with decomposed(model, config) as report:
            result = evaluate_suite(model, tokenizer, suite, limit=limit)
        points.append(
            LayerDistancePoint(
                stride=stride,
                layers=layers,
                actual_reduction=report.parameter_reduction,
                accuracy=result.as_dict(),
            )
        )
    return points


def format_layer_sensitivity(points: List[LayerSensitivityPoint]) -> str:
    from repro.experiments.ascii_chart import bar_chart

    ordered = sorted(points, key=lambda p: p.layer)
    lines = [f"{'layer':>6}{'reduction':>11}{'aggregate accuracy':>20}"]
    for point in ordered:
        lines.append(
            f"{point.layer:>6}{100 * point.actual_reduction:>10.1f}%"
            f"{100 * point.mean_accuracy:>19.1f}%"
        )
    lines.append(f"middle-vs-edge accuracy gap: {100 * edge_vs_middle_gap(points):+.1f}%")
    lines.append("")
    lines.append(
        bar_chart(
            [f"layer {p.layer:>2}" for p in ordered],
            [100 * p.mean_accuracy for p in ordered],
            max_value=100.0,
        )
    )
    return "\n".join(lines)


def format_layer_distance(points: List[LayerDistancePoint]) -> str:
    benchmarks = list(points[0].accuracy)
    header = f"{'stride':>7}{'layers':<22}{'mean':>8}" + "".join(
        f"{name[:11]:>13}" for name in benchmarks
    )
    lines = [header]
    for point in points:
        layer_list = ",".join(str(l) for l in point.layers)
        cells = "".join(f"{100 * point.accuracy[b]:>12.1f}%" for b in benchmarks)
        lines.append(
            f"{point.stride:>7}{layer_list:<22}{100 * point.mean_accuracy:>7.1f}%" + cells
        )
    return "\n".join(lines)
