"""Figures 5 and 6: which weight tensors to decompose.

- Figure 5 decomposes each of Llama's seven tensor roles individually (in
  one layer, and in all layers) at rank 1 and finds all roles roughly
  equally sensitive within their module group.
- Figure 6 compares, at a matched parameter-reduction target, decomposing
  *one* tensor role in many layers against decomposing *all* tensors in
  few layers — the paper's headline insight that the latter is far better.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.decomposition import DecompositionConfig, decomposed, spread_layers
from repro.errors import ConfigError
from repro.eval import CHARACTERIZATION_BENCHMARKS, build_suite, evaluate_suite
from repro.experiments.pretrained import get_world, pretrained_tiny_llama
from repro.models.params import parameter_reduction


@dataclass
class TensorChoicePoint:
    """Accuracy of decomposing one tensor-role selection."""

    label: str
    roles: Tuple[str, ...]
    layers: Tuple[int, ...]
    actual_reduction: float
    accuracy: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(list(self.accuracy.values())))


def run_single_tensor_sensitivity(
    scope: str = "all_layers",
    benchmarks: Sequence[str] = CHARACTERIZATION_BENCHMARKS,
    limit: Optional[int] = 40,
    single_layer: Optional[int] = None,
) -> List[TensorChoicePoint]:
    """Figure 5: decompose each role individually at rank 1.

    ``scope`` is ``"all_layers"`` (the role in every decoder layer) or
    ``"one_layer"`` (the role in one middle layer, default the center).
    """
    if scope not in ("all_layers", "one_layer"):
        raise ConfigError(f"unknown scope {scope!r}")
    model, tokenizer = pretrained_tiny_llama()
    suite = build_suite(get_world(), names=benchmarks)
    n_layers = model.config.n_layers
    if scope == "all_layers":
        layers = tuple(range(n_layers))
    else:
        layers = (n_layers // 2 if single_layer is None else single_layer,)
    points: List[TensorChoicePoint] = []
    for role in model.config.tensor_roles:
        config = DecompositionConfig.uniform(layers, (role,), rank=1)
        with decomposed(model, config) as report:
            result = evaluate_suite(model, tokenizer, suite, limit=limit)
        points.append(
            TensorChoicePoint(
                label=f"{role}/{scope}",
                roles=(role,),
                layers=layers,
                actual_reduction=report.parameter_reduction,
                accuracy=result.as_dict(),
            )
        )
    return points


def matched_layer_count(model_config, role_reduction: float, rank: int = 1) -> int:
    """Number of all-tensor layers matching a one-role-everywhere reduction.

    Finds the smallest layer count whose all-tensor decomposition reduces
    at least ``role_reduction`` of the parameters (Figure 6's matching).
    """
    for count in range(1, model_config.n_layers + 1):
        layers = spread_layers(model_config.n_layers, count, avoid_edges=1)
        reduction = parameter_reduction(
            model_config, layers, model_config.tensor_roles, rank
        )
        if reduction >= role_reduction:
            return count
    return model_config.n_layers


def run_tensor_vs_layer_tradeoff(
    benchmarks: Sequence[str] = CHARACTERIZATION_BENCHMARKS,
    limit: Optional[int] = 40,
) -> List[TensorChoicePoint]:
    """Figure 6: one-role-in-all-layers bars vs the all-tensors-few-layers bar.

    For each tensor role, decompose it in every layer (rank 1); then build
    the matched-reduction configuration that decomposes all roles in as few
    spread-out layers as needed.  The paper's finding is that the latter
    loses far less accuracy at the same parameter reduction.
    """
    model, tokenizer = pretrained_tiny_llama()
    suite = build_suite(get_world(), names=benchmarks)
    mconfig = model.config
    all_layers = tuple(range(mconfig.n_layers))
    points: List[TensorChoicePoint] = []
    reductions: List[float] = []
    for role in mconfig.tensor_roles:
        config = DecompositionConfig.uniform(all_layers, (role,), rank=1)
        with decomposed(model, config) as report:
            result = evaluate_suite(model, tokenizer, suite, limit=limit)
        reductions.append(report.parameter_reduction)
        points.append(
            TensorChoicePoint(
                label=f"{role} x all layers",
                roles=(role,),
                layers=all_layers,
                actual_reduction=report.parameter_reduction,
                accuracy=result.as_dict(),
            )
        )
    # The matched "all tensors, few layers" configuration (the black bar).
    target = float(np.mean(reductions))
    count = matched_layer_count(mconfig, target)
    few_layers = spread_layers(mconfig.n_layers, count, avoid_edges=1)
    config = DecompositionConfig.all_tensors(mconfig, few_layers, rank=1)
    with decomposed(model, config) as report:
        result = evaluate_suite(model, tokenizer, suite, limit=limit)
    points.append(
        TensorChoicePoint(
            label=f"all tensors x {count} layers",
            roles=mconfig.tensor_roles,
            layers=few_layers,
            actual_reduction=report.parameter_reduction,
            accuracy=result.as_dict(),
        )
    )
    return points


def format_tensor_choice(points: List[TensorChoicePoint]) -> str:
    benchmarks = list(points[0].accuracy)
    header = f"{'configuration':<26}{'reduction':>10}{'mean':>8}" + "".join(
        f"{name[:11]:>13}" for name in benchmarks
    )
    lines = [header]
    for point in points:
        cells = "".join(f"{100 * point.accuracy[b]:>12.1f}%" for b in benchmarks)
        lines.append(
            f"{point.label:<26}{100 * point.actual_reduction:>9.1f}%"
            f"{100 * point.mean_accuracy:>7.1f}%" + cells
        )
    return "\n".join(lines)
