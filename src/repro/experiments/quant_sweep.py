"""The rank × bits joint design-space sweep (compound compression).

Crosses the serving variants {dense, rank8, rank1} with weight precisions
{fp32, int8, int4} on the pretrained tiny Llama and measures, per point:

- **accuracy** on the paper's six characterization benchmarks (real model
  forwards through the quantized int8-grid weights, not simulation);
- **decode throughput** of the no-grad fast path at tp=1, with the fast
  path's bit-identity against the Tensor-graph driver checked in the same
  breath (the cell is flagged if logits diverge by even one bit);
- **projected memory and energy** from the analytic hardware model, whose
  weight-byte accounting understands quantized grids + fp32 scales.

Each point also records a SHA-256 fingerprint of its greedy-decode logits,
which is what makes a persisted sweep *replayable*: rebuilding the sweep
from its manifest must reproduce every fingerprint bit for bit.

The persisted artifact follows the serve-bench run-directory layout
(``manifest.json`` / ``metrics.jsonl`` / ``summary.json`` / ``report.md``)
so existing tooling can grep and diff it the same way.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError

#: The joint space the sweep walks by default: every decomposition variant
#: crossed with every weight precision (None = fp32).
DEFAULT_SWEEP_SPECS = ("dense", "rank8", "rank1")
DEFAULT_SWEEP_BITS: Tuple[Optional[int], ...] = (None, 8, 4)


def sweep_specs(
    base_specs: Sequence[str] = DEFAULT_SWEEP_SPECS,
    bit_widths: Sequence[Optional[int]] = DEFAULT_SWEEP_BITS,
) -> List[str]:
    """Expand base variants × bit widths into registry specs."""
    if not base_specs:
        raise ConfigError("at least one base variant spec is required")
    specs = []
    for base in base_specs:
        for bits in dict.fromkeys(bit_widths):
            specs.append(base if bits is None else f"{base}-int{bits}")
    return specs


@dataclass
class QuantSweepPoint:
    """One (variant, bits) operating point of the joint design space."""

    spec: str
    bits: Optional[int]
    parameter_reduction: float
    accuracy: Dict[str, float] = field(default_factory=dict)
    decode_tokens_per_s: float = 0.0
    tensor_decode_tokens_per_s: float = 0.0
    bit_identical: bool = False
    weight_bytes: int = 0              # measured bytes of the variant
    memory_reduction_x: Optional[float] = None    # vs same-structure fp32
    compound_reduction_x: Optional[float] = None  # vs dense fp32 projections
    projected_memory_gb: float = 0.0   # hwmodel per-GPU footprint
    projected_energy_j: float = 0.0    # hwmodel energy per forward pass
    logits_fingerprint: str = ""       # sha256 of greedy-decode logits

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(list(self.accuracy.values())))

    def to_dict(self) -> dict:
        return {
            "spec": self.spec,
            "bits": self.bits,
            "parameter_reduction": self.parameter_reduction,
            "accuracy": dict(self.accuracy),
            "mean_accuracy": self.mean_accuracy,
            "decode_tokens_per_s": self.decode_tokens_per_s,
            "tensor_decode_tokens_per_s": self.tensor_decode_tokens_per_s,
            "bit_identical": self.bit_identical,
            "weight_bytes": self.weight_bytes,
            "memory_reduction_x": self.memory_reduction_x,
            "compound_reduction_x": self.compound_reduction_x,
            "projected_memory_gb": self.projected_memory_gb,
            "projected_energy_j": self.projected_energy_j,
            "logits_fingerprint": self.logits_fingerprint,
        }


@dataclass
class QuantSweepReport:
    """The full sweep: configuration + every measured point."""

    model: str
    seed: int
    limit: Optional[int]
    prompt_tokens: int
    new_tokens: int
    benchmarks: Tuple[str, ...]
    points: List[QuantSweepPoint] = field(default_factory=list)

    @property
    def all_bit_identical(self) -> bool:
        return all(point.bit_identical for point in self.points)

    def point(self, spec: str) -> QuantSweepPoint:
        for candidate in self.points:
            if candidate.spec == spec:
                return candidate
        raise ConfigError(f"sweep has no point {spec!r}")

    def table(self) -> str:
        header = (
            f"quant-sweep: {self.model} (rank × bits joint space, "
            f"limit={self.limit}, fast-path decode at tp=1)"
        )
        lines = [header, "-" * len(header)]
        lines.append(
            f"{'spec':>12} {'bits':>5} {'mean acc':>9} {'decode tok/s':>13} "
            f"{'weights':>10} {'mem x':>6} {'hw GB':>7} {'hw J':>9}  verdict"
        )
        for point in self.points:
            bits = "fp32" if point.bits is None else f"int{point.bits}"
            compound = (
                "  -  "
                if point.compound_reduction_x is None
                else f"{point.compound_reduction_x:5.2f}"
            )
            verdict = "exact" if point.bit_identical else "LOGITS MISMATCH"
            lines.append(
                f"{point.spec:>12} {bits:>5} {100 * point.mean_accuracy:>8.1f}% "
                f"{point.decode_tokens_per_s:>13.1f} "
                f"{point.weight_bytes:>10,} {compound:>6} "
                f"{point.projected_memory_gb:>7.3f} "
                f"{point.projected_energy_j:>9.1f}  [{verdict}]"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "bench": "quant-sweep",
            "model": self.model,
            "seed": self.seed,
            "limit": self.limit,
            "prompt_tokens": self.prompt_tokens,
            "new_tokens": self.new_tokens,
            "benchmarks": list(self.benchmarks),
            "all_bit_identical": self.all_bit_identical,
            "points": [point.to_dict() for point in self.points],
        }

    def trajectory_entry(self) -> dict:
        """The headline cells the performance ledger keeps."""
        return {
            "bench": "quant-sweep",
            "model": self.model,
            "points": len(self.points),
            "all_bit_identical": self.all_bit_identical,
            "cells": {
                point.spec: {
                    "mean_accuracy": round(point.mean_accuracy, 4),
                    "decode_tokens_per_s": round(point.decode_tokens_per_s, 1),
                    "weight_bytes": point.weight_bytes,
                    **(
                        {"compound_reduction_x": round(point.compound_reduction_x, 2)}
                        if point.compound_reduction_x is not None
                        else {}
                    ),
                }
                for point in self.points
            },
        }


def _greedy_fingerprint(runner, prompt: np.ndarray, new_tokens: int) -> str:
    """SHA-256 over the prefill + every greedy decode step's final logits.

    Hashing the raw logits bytes (not argmaxes) makes the fingerprint a
    *bit-level* witness: any single-ULP drift anywhere in the quantized
    fast path changes it.
    """
    digest = hashlib.sha256()
    cache = runner.make_cache()
    logits = runner.forward_cached(prompt, cache)
    digest.update(np.ascontiguousarray(logits.data).tobytes())
    token = int(np.argmax(logits.data[0, -1]))
    step = np.empty((1, 1), dtype=np.int64)
    for _ in range(new_tokens - 1):
        step[0, 0] = token
        logits = runner.forward_cached(step, cache)
        digest.update(np.ascontiguousarray(logits.data).tobytes())
        token = int(np.argmax(logits.data[0, -1]))
    return digest.hexdigest()


def run_quant_sweep(
    base_specs: Sequence[str] = DEFAULT_SWEEP_SPECS,
    bit_widths: Sequence[Optional[int]] = DEFAULT_SWEEP_BITS,
    limit: Optional[int] = 24,
    prompt_tokens: int = 16,
    new_tokens: int = 24,
    seed: int = 0,
    benchmarks: Optional[Sequence[str]] = None,
) -> QuantSweepReport:
    """Measure every (variant, bits) point of the joint design space."""
    from repro.eval import CHARACTERIZATION_BENCHMARKS, build_suite, evaluate_suite
    from repro.experiments.pretrained import get_world, pretrained_tiny_llama
    from repro.hwmodel.profiler import ServingConfig, profile
    from repro.runtime.benchmark import _bench_cell, _dense_projection_fp32_bytes
    from repro.serving.variants import VariantRegistry

    names = tuple(benchmarks) if benchmarks else CHARACTERIZATION_BENCHMARKS
    model, tokenizer = pretrained_tiny_llama()
    suite = build_suite(get_world(), names=names)
    registry = VariantRegistry(model)
    rng = np.random.default_rng(seed)
    prompt = rng.integers(
        0, model.config.vocab_size, size=(1, prompt_tokens), dtype=np.int64
    )
    # One modest analytic serving point, valid for the tiny model's 192-token
    # context; only the *ratios* across sweep points matter.
    serving = ServingConfig(n_gpus=1, seq_len=64, per_gpu_batch=256)
    dense_fp32 = _dense_projection_fp32_bytes(model.config)
    points: List[QuantSweepPoint] = []
    for spec in sweep_specs(base_specs, bit_widths):
        variant = registry.get(spec)
        result = evaluate_suite(variant.model, tokenizer, suite, limit=limit)
        cell = _bench_cell(variant, 1, prompt, new_tokens, profile=False)
        decomposition = (
            None
            if variant.decomposition.is_identity and variant.bits is None
            else variant.decomposition
        )
        projection = profile(model.config, serving, decomposition=decomposition)
        memory_reduction = compound_reduction = None
        if variant.quant is not None:
            memory_reduction = variant.quant.memory_reduction_x
            compound_reduction = dense_fp32 / variant.quant.weight_bytes_after
        points.append(
            QuantSweepPoint(
                spec=spec,
                bits=variant.bits,
                parameter_reduction=variant.parameter_reduction,
                accuracy=result.as_dict(),
                decode_tokens_per_s=cell.fast.decode_tokens_per_s,
                tensor_decode_tokens_per_s=cell.tensor.decode_tokens_per_s,
                bit_identical=cell.bit_identical,
                weight_bytes=variant.total_bytes,
                memory_reduction_x=memory_reduction,
                compound_reduction_x=compound_reduction,
                projected_memory_gb=projection.memory_per_gpu_gb,
                projected_energy_j=projection.energy_j,
                logits_fingerprint=_greedy_fingerprint(
                    variant.model, prompt, new_tokens
                ),
            )
        )
    return QuantSweepReport(
        model=model.config.name,
        seed=seed,
        limit=limit,
        prompt_tokens=prompt_tokens,
        new_tokens=new_tokens,
        benchmarks=names,
        points=points,
    )


# -- persistence --------------------------------------------------------------

def sweep_manifest(report: QuantSweepReport, base_specs, bit_widths) -> dict:
    """Everything :func:`replay_quant_sweep` needs to rebuild the sweep."""
    return {
        "bench": "quant-sweep",
        "model": report.model,
        "base_specs": list(base_specs),
        "bit_widths": list(bit_widths),
        "limit": report.limit,
        "prompt_tokens": report.prompt_tokens,
        "new_tokens": report.new_tokens,
        "seed": report.seed,
        "benchmarks": list(report.benchmarks),
    }


def render_sweep_report(manifest: dict, summary: dict) -> str:
    """Markdown rendering of a persisted sweep (regenerable offline)."""
    lines = [f"# quant-sweep run: {summary.get('model', '?')}", ""]
    lines.append(
        f"- **space:** {', '.join(manifest.get('base_specs', []))} × "
        f"{', '.join('fp32' if b is None else f'int{b}' for b in manifest.get('bit_widths', []))}"
        f" · **limit:** {manifest.get('limit')} · **seed:** {manifest.get('seed')}"
    )
    verdict = "exact" if summary.get("all_bit_identical") else "LOGITS MISMATCH"
    lines.append(f"- **fast-path identity:** {verdict} across all points")
    lines.append("")
    lines.append(
        "| spec | bits | mean acc | decode tok/s | weight bytes "
        "| mem reduction | hw mem (GB) | hw energy (J) |"
    )
    lines.append("|---|---|---|---|---|---|---|---|")
    for point in summary.get("points", []):
        bits = "fp32" if point["bits"] is None else f"int{point['bits']}"
        compound = (
            "-"
            if point.get("compound_reduction_x") is None
            else f"{point['compound_reduction_x']:.2f}x"
        )
        lines.append(
            f"| {point['spec']} | {bits} "
            f"| {100 * point['mean_accuracy']:.1f}% "
            f"| {point['decode_tokens_per_s']:.1f} "
            f"| {point['weight_bytes']:,} | {compound} "
            f"| {point['projected_memory_gb']:.3f} "
            f"| {point['projected_energy_j']:.1f} |"
        )
    lines.append("")
    return "\n".join(lines)


def write_quant_sweep_artifact(run_dir, manifest: dict, report: QuantSweepReport) -> Path:
    """Persist a sweep as ``manifest.json/metrics.jsonl/summary.json/report.md``."""
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    summary = report.to_dict()
    lines = [json.dumps(point) for point in summary.pop("points")]
    summary["points"] = len(lines)
    (run_dir / "manifest.json").write_text(json.dumps(manifest, indent=2) + "\n")
    (run_dir / "metrics.jsonl").write_text("\n".join(lines) + ("\n" if lines else ""))
    (run_dir / "summary.json").write_text(json.dumps(summary, indent=2) + "\n")
    full = report.to_dict()
    (run_dir / "report.md").write_text(render_sweep_report(manifest, full))
    return run_dir


def load_quant_sweep(run_dir) -> Tuple[dict, dict, List[dict]]:
    """Read a sweep run back: (manifest, summary, per-point records)."""
    run_dir = Path(run_dir)
    for name in ("manifest.json", "summary.json", "metrics.jsonl"):
        if not (run_dir / name).exists():
            raise ConfigError(f"sweep run directory {run_dir} is missing {name}")
    manifest = json.loads((run_dir / "manifest.json").read_text())
    summary = json.loads((run_dir / "summary.json").read_text())
    records = [
        json.loads(line)
        for line in (run_dir / "metrics.jsonl").read_text().splitlines()
        if line.strip()
    ]
    return manifest, summary, records


def replay_quant_sweep(run_dir) -> Tuple[QuantSweepReport, Dict[str, bool]]:
    """Rebuild a persisted sweep from its manifest and verify bit identity.

    Returns the fresh report and, per spec, whether the replayed greedy-
    decode logits fingerprint matches the recorded one — the run artifact's
    replayability contract.  (Timings and hash-free metrics are expected to
    match too but only fingerprints are compared: they are the bit-level
    witness; throughput is machine-dependent.)
    """
    manifest, _, records = load_quant_sweep(run_dir)
    report = run_quant_sweep(
        base_specs=manifest["base_specs"],
        bit_widths=[
            None if bits is None else int(bits) for bits in manifest["bit_widths"]
        ],
        limit=manifest["limit"],
        prompt_tokens=manifest["prompt_tokens"],
        new_tokens=manifest["new_tokens"],
        seed=manifest["seed"],
        benchmarks=manifest.get("benchmarks"),
    )
    recorded = {record["spec"]: record["logits_fingerprint"] for record in records}
    matches = {
        point.spec: recorded.get(point.spec) == point.logits_fingerprint
        for point in report.points
    }
    return report, matches


__all__ = [
    "DEFAULT_SWEEP_BITS",
    "DEFAULT_SWEEP_SPECS",
    "QuantSweepPoint",
    "QuantSweepReport",
    "load_quant_sweep",
    "render_sweep_report",
    "replay_quant_sweep",
    "run_quant_sweep",
    "sweep_manifest",
    "sweep_specs",
    "write_quant_sweep_artifact",
]
