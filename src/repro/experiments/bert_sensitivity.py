"""BERT-side tensor sensitivity (the encoder half of Figures 5/6).

The paper observes that in BERT "the weight tensor of the intermediate
fully-connected layer (W_Int) is the most sensitive under decomposition".
Our encoder is evaluated with masked-LM accuracy on held-out corpus
sentences: each of the six BERT tensor roles is decomposed individually
(rank 1, every layer) and the MLM accuracy drop is recorded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.decomposition import DecompositionConfig, decomposed
from repro.experiments.pretrained import get_corpus, pretrained_tiny_bert
from repro.training import mask_tokens


def _mlm_eval_batch(tokenizer, n_sentences: int, seed: int):
    corpus = get_corpus()
    sentences = list(corpus[:n_sentences])
    ids, pad = tokenizer.encode_batch(sentences, add_eos=True)
    rng = np.random.default_rng(seed)
    corrupted, targets = mask_tokens(ids, ~pad, tokenizer, rng, mask_prob=0.2)
    return corrupted, targets


@dataclass
class BertSensitivityPoint:
    """MLM accuracy after decomposing one tensor role in every layer."""

    role: str
    actual_reduction: float
    mlm_accuracy: float


def run_bert_tensor_sensitivity(
    n_sentences: int = 128, seed: int = 11
) -> Dict[str, object]:
    """Decompose each BERT role individually and measure MLM accuracy."""
    model, tokenizer = pretrained_tiny_bert()
    corrupted, targets = _mlm_eval_batch(tokenizer, n_sentences, seed)
    baseline = model.mlm_accuracy(corrupted, targets)
    layers = tuple(range(model.config.n_layers))
    points: List[BertSensitivityPoint] = []
    for role in model.config.tensor_roles:
        config = DecompositionConfig.uniform(layers, (role,), rank=1)
        with decomposed(model, config) as report:
            accuracy = model.mlm_accuracy(corrupted, targets)
        points.append(
            BertSensitivityPoint(
                role=role,
                actual_reduction=report.parameter_reduction,
                mlm_accuracy=accuracy,
            )
        )
    return {"baseline": baseline, "points": points}


def format_bert_sensitivity(result: Dict[str, object]) -> str:
    lines = [f"baseline MLM accuracy: {100 * result['baseline']:.1f}%"]
    lines.append(f"{'role':<8}{'reduction':>11}{'mlm acc':>10}{'drop':>8}")
    for point in result["points"]:
        drop = 100 * (result["baseline"] - point.mlm_accuracy)
        lines.append(
            f"{point.role:<8}{100 * point.actual_reduction:>10.1f}%"
            f"{100 * point.mlm_accuracy:>9.1f}%{drop:>7.1f}p"
        )
    return "\n".join(lines)
