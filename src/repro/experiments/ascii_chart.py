"""Terminal-rendered charts for the figure experiments.

The paper's artifacts are figures; with no display available, experiment
reports render them as fixed-width ASCII bar charts and scatter series so
a reader can see the same shapes (who wins, where the knees are) straight
from the CLI.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ConfigError

_FULL = "#"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    value_format: str = "{:6.1f}",
    max_value: Optional[float] = None,
) -> str:
    """Horizontal bar chart: one row per (label, value)."""
    labels = list(labels)
    values = [float(v) for v in values]
    if len(labels) != len(values):
        raise ConfigError("labels and values must align")
    if not values:
        raise ConfigError("bar_chart needs at least one value")
    top = max_value if max_value is not None else max(max(values), 1e-12)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = int(round(width * max(value, 0.0) / top))
        bar = _FULL * filled
        lines.append(
            f"{label:<{label_width}} |{bar:<{width}}| " + value_format.format(value)
        )
    return "\n".join(lines)


def scatter_series(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
    x_label: str = "",
    y_range: Optional[Tuple[float, float]] = None,
) -> str:
    """Multi-series scatter plot on a character grid.

    Each series gets a distinct marker (its name's first letter).  Points
    are placed on a ``height`` x ``width`` grid spanning the data range.
    """
    if not series:
        raise ConfigError("scatter_series needs at least one series")
    x_values = [float(x) for x in x_values]
    if not x_values:
        raise ConfigError("scatter_series needs x values")
    all_y = [float(y) for ys in series.values() for y in ys]
    if y_range is None:
        y_min, y_max = min(all_y), max(all_y)
    else:
        y_min, y_max = y_range
    if y_max <= y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x_values), max(x_values)
    if x_max <= x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = {}
    used = set()
    for name in series:
        marker = name[0].upper()
        while marker in used:
            marker = chr(ord(marker) + 1)
        used.add(marker)
        markers[name] = marker

    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ConfigError(f"series {name!r} length mismatch")
        for x, y in zip(x_values, ys):
            col = int(round((x - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((float(y) - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = markers[name]

    lines = [f"{y_max:8.2f} +" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 8 + " |" + "".join(row))
    lines.append(f"{y_min:8.2f} +" + "".join(grid[-1]))
    lines.append(" " * 10 + f"{x_min:<10.2f}{x_label:^{max(width - 20, 0)}}{x_max:>10.2f}")
    legend = "  ".join(f"{marker}={name}" for name, marker in markers.items())
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend rendering with eighth-block characters."""
    blocks = " .:-=+*#%@"
    values = [float(v) for v in values]
    if not values:
        raise ConfigError("sparkline needs values")
    low, high = min(values), max(values)
    if high <= low:
        return blocks[-1] * len(values)
    scaled = [
        blocks[int((v - low) / (high - low) * (len(blocks) - 1))] for v in values
    ]
    return "".join(scaled)
