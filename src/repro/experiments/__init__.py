"""Experiment drivers: one per paper table/figure, plus shared fixtures."""

from repro.experiments.layer_choice import (
    LayerDistancePoint,
    LayerSensitivityPoint,
    edge_vs_middle_gap,
    run_layer_distance,
    run_layer_sensitivity,
)
from repro.experiments.pretrained import (
    fresh_tiny_llama,
    get_corpus,
    get_tokenizer,
    get_world,
    pretrained_tiny_bert,
    pretrained_tiny_llama,
)
from repro.experiments.quant_sweep import (
    QuantSweepPoint,
    QuantSweepReport,
    replay_quant_sweep,
    run_quant_sweep,
    write_quant_sweep_artifact,
)
from repro.experiments.rank_sweep import (
    RankSweepPoint,
    rank_variation,
    run_rank_sweep,
    scale_rank,
)
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.tensor_choice import (
    TensorChoicePoint,
    matched_layer_count,
    run_single_tensor_sensitivity,
    run_tensor_vs_layer_tradeoff,
)
from repro.experiments.tradeoff import (
    AccuracyTradeoffPoint,
    EfficiencyTradeoffPoint,
    measured_speedup,
    per_point_slopes,
    run_accuracy_tradeoff,
    run_efficiency_tradeoff,
)

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "get_world",
    "get_corpus",
    "get_tokenizer",
    "pretrained_tiny_llama",
    "pretrained_tiny_bert",
    "fresh_tiny_llama",
    "QuantSweepPoint",
    "QuantSweepReport",
    "replay_quant_sweep",
    "run_quant_sweep",
    "write_quant_sweep_artifact",
    "RankSweepPoint",
    "run_rank_sweep",
    "rank_variation",
    "scale_rank",
    "TensorChoicePoint",
    "run_single_tensor_sensitivity",
    "run_tensor_vs_layer_tradeoff",
    "matched_layer_count",
    "LayerSensitivityPoint",
    "LayerDistancePoint",
    "run_layer_sensitivity",
    "run_layer_distance",
    "edge_vs_middle_gap",
    "AccuracyTradeoffPoint",
    "EfficiencyTradeoffPoint",
    "run_accuracy_tradeoff",
    "run_efficiency_tradeoff",
    "measured_speedup",
    "per_point_slopes",
]
