"""Post-decomposition fine-tuning recovery (the paper's Section 6 preview).

The paper's early investigation: "we can recover the accuracy of a 15%
compressed model to that of a 9% model within a single epoch of
fine-tuning".  Because :class:`~repro.nn.FactorizedLinear` factors are
ordinary parameters, the standard causal-LM trainer fine-tunes the
decomposed model directly — gradients flow through the U1/core/U2 chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.decomposition import DecompositionConfig, decompose_model, scaled_table4
from repro.eval import CHARACTERIZATION_BENCHMARKS, build_suite, evaluate_suite
from repro.experiments.pretrained import fresh_tiny_llama, get_corpus, get_world
from repro.training import TrainConfig, train_causal_lm


@dataclass
class FinetuneRecoveryResult:
    """Accuracy before/after fine-tuning a decomposed model."""

    reduction_target: int
    actual_reduction: float
    accuracy_decomposed: Dict[str, float]
    accuracy_finetuned: Dict[str, float]
    accuracy_reference: Dict[str, float]  # lighter recipe, no fine-tuning
    reference_target: int
    finetune_steps: int

    @property
    def mean_decomposed(self) -> float:
        return float(np.mean(list(self.accuracy_decomposed.values())))

    @property
    def mean_finetuned(self) -> float:
        return float(np.mean(list(self.accuracy_finetuned.values())))

    @property
    def mean_reference(self) -> float:
        return float(np.mean(list(self.accuracy_reference.values())))

    @property
    def recovered_points(self) -> float:
        """Mean accuracy gained by fine-tuning, in fractional points."""
        return self.mean_finetuned - self.mean_decomposed


def run_finetune_recovery(
    reduction_target: int = 15,
    reference_target: int = 9,
    steps: int = 150,
    limit: Optional[int] = 60,
    benchmarks: Sequence[str] = CHARACTERIZATION_BENCHMARKS,
    lr: float = 1e-3,
) -> FinetuneRecoveryResult:
    """Decompose, evaluate, fine-tune, re-evaluate; compare to the
    lighter-reduction reference the paper says fine-tuning can match."""
    suite = build_suite(get_world(), names=benchmarks)
    corpus = list(get_corpus())

    # Heavily compressed model, before and after fine-tuning.
    model, tokenizer = fresh_tiny_llama()
    recipes = scaled_table4(model.config.n_layers)
    config = DecompositionConfig.all_tensors(
        model.config, recipes[reduction_target], rank=1
    )
    report = decompose_model(model, config)
    before = evaluate_suite(model, tokenizer, suite, limit=limit)
    train_causal_lm(
        model,
        tokenizer,
        corpus,
        TrainConfig(steps=steps, batch_size=64, lr=lr, warmup_steps=max(steps // 10, 1)),
    )
    after = evaluate_suite(model, tokenizer, suite, limit=limit)

    # The lighter reference recipe without any fine-tuning.
    reference_model, _ = fresh_tiny_llama()
    reference_config = DecompositionConfig.all_tensors(
        reference_model.config, recipes[reference_target], rank=1
    )
    decompose_model(reference_model, reference_config)
    reference = evaluate_suite(reference_model, tokenizer, suite, limit=limit)

    return FinetuneRecoveryResult(
        reduction_target=reduction_target,
        actual_reduction=report.parameter_reduction,
        accuracy_decomposed=before.as_dict(),
        accuracy_finetuned=after.as_dict(),
        accuracy_reference=reference.as_dict(),
        reference_target=reference_target,
        finetune_steps=steps,
    )


def format_finetune_recovery(result: FinetuneRecoveryResult) -> str:
    lines = [
        f"{'benchmark':<15}{'decomposed':>12}{'fine-tuned':>12}"
        f"{'ref (' + str(result.reference_target) + '%)':>12}"
    ]
    for name in result.accuracy_decomposed:
        lines.append(
            f"{name:<15}{100 * result.accuracy_decomposed[name]:>11.1f}%"
            f"{100 * result.accuracy_finetuned[name]:>11.1f}%"
            f"{100 * result.accuracy_reference[name]:>11.1f}%"
        )
    lines.append(
        f"mean: {100 * result.mean_decomposed:.1f}% -> "
        f"{100 * result.mean_finetuned:.1f}% after {result.finetune_steps} steps "
        f"(reference {100 * result.mean_reference:.1f}%)"
    )
    return "\n".join(lines)
