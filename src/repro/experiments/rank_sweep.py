"""Figure 3: the impact of pruned-rank choice on accuracy.

The paper decomposes all tensors in several layer sets, sweeping the pruned
rank over {1, 250, 500} (of 4096) and finds accuracy is nearly flat in rank
— parameter reduction, not rank, drives degradation.  The tiny model sweeps
the proportionally scaled ranks {1, 4, 8} (of 64).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.decomposition import DecompositionConfig, decomposed, scaled_table4
from repro.eval import CHARACTERIZATION_BENCHMARKS, build_suite, evaluate_suite
from repro.experiments.pretrained import get_world, pretrained_tiny_llama

# Paper ranks scaled from hidden 4096 to hidden 64: 250/4096 -> 4, 500/4096 -> 8.
PAPER_RANKS = (1, 250, 500)
SCALED_RANKS = (1, 4, 8)


def scale_rank(paper_rank: int, dim: int, paper_dim: int = 4096) -> int:
    """Map a paper pruned rank onto a model of hidden size ``dim``."""
    return max(1, round(paper_rank * dim / paper_dim))


@dataclass
class RankSweepPoint:
    """Accuracy of one (layer set, rank) cell of Figure 3."""

    rank: int
    layer_set: Tuple[int, ...]
    target_reduction_pct: int
    actual_reduction: float
    accuracy: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(list(self.accuracy.values())))


def run_rank_sweep(
    ranks: Sequence[int] = SCALED_RANKS,
    reduction_targets: Sequence[int] = (9, 21, 33),
    benchmarks: Sequence[str] = CHARACTERIZATION_BENCHMARKS,
    limit: Optional[int] = 60,
) -> List[RankSweepPoint]:
    """Evaluate every (rank, layer set) combination of the Figure 3 grid."""
    model, tokenizer = pretrained_tiny_llama()
    suite = build_suite(get_world(), names=benchmarks)
    recipes = scaled_table4(model.config.n_layers)
    points: List[RankSweepPoint] = []
    for target in reduction_targets:
        layers = recipes[target]
        for rank in ranks:
            config = DecompositionConfig.all_tensors(model.config, layers, rank=rank)
            with decomposed(model, config) as report:
                result = evaluate_suite(model, tokenizer, suite, limit=limit)
            points.append(
                RankSweepPoint(
                    rank=rank,
                    layer_set=tuple(layers),
                    target_reduction_pct=target,
                    actual_reduction=report.parameter_reduction,
                    accuracy=result.as_dict(),
                )
            )
    return points


def rank_variation(points: List[RankSweepPoint]) -> Dict[str, float]:
    """Per-benchmark accuracy spread across ranks at fixed layer sets.

    The paper reports an average variation of ~1.5 % across ranks; this is
    the quantity to compare.
    """
    by_layer_set: Dict[Tuple[int, ...], List[RankSweepPoint]] = {}
    for point in points:
        by_layer_set.setdefault(point.layer_set, []).append(point)
    benchmarks = list(points[0].accuracy)
    spread: Dict[str, List[float]] = {name: [] for name in benchmarks}
    for group in by_layer_set.values():
        for name in benchmarks:
            values = [p.accuracy[name] for p in group]
            spread[name].append(max(values) - min(values))
    return {name: float(np.mean(values)) for name, values in spread.items()}


def format_rank_sweep(points: List[RankSweepPoint]) -> str:
    benchmarks = list(points[0].accuracy)
    header = f"{'target':>7}{'rank':>6}{'actual':>8}" + "".join(
        f"{name[:12]:>14}" for name in benchmarks
    )
    lines = [header]
    for point in points:
        cells = "".join(f"{100 * point.accuracy[b]:>13.1f}%" for b in benchmarks)
        lines.append(
            f"{point.target_reduction_pct:>6}%{point.rank:>6}"
            f"{100 * point.actual_reduction:>7.1f}%" + cells
        )
    variation = rank_variation(points)
    lines.append(
        "mean accuracy variation across ranks: "
        + ", ".join(f"{name}={100 * v:.1f}%" for name, v in variation.items())
    )
    return "\n".join(lines)
