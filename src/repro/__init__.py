"""repro — reproduction of "Characterizing the Accuracy-Efficiency Trade-off
of Low-rank Decomposition in Language Models" (IISWC 2024).

The package is organised bottom-up:

- :mod:`repro.tensor` — NumPy autograd engine.
- :mod:`repro.nn` — neural-network modules (attention, norms, MLPs,
  factorized linear layers).
- :mod:`repro.models` — BERT- and Llama-style model implementations plus an
  analytic registry of paper-scale configurations.
- :mod:`repro.decomposition` — the paper's contribution: Tucker decomposition
  via HOI, the decomposition design-space formalization, and utilities to
  apply/undo decomposition on live models.
- :mod:`repro.data` — synthetic knowledge world and corpus generation.
- :mod:`repro.eval` — lm-evaluation-harness-style benchmark suite.
- :mod:`repro.training` — optimizers and trainers for the tiny models.
- :mod:`repro.hwmodel` — analytic GPU roofline latency / energy / memory
  model standing in for the paper's 4xA100 testbed.
- :mod:`repro.analysis` — MAC/parameter counting (Table 1) helpers.
- :mod:`repro.experiments` — one driver per paper table and figure.
"""

from repro.version import __version__

__all__ = ["__version__"]
