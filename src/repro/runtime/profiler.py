"""Op-level profiler for the inference fast path.

Records wall time, call counts, and arena bytes attributed to each named
op executed by :func:`repro.runtime.fastpath.run_model_fast`.  Op names
follow the layer program's :class:`~repro.runtime.program.OpSpec` naming
(``layer{i}.w_q``, ``layer{i}.attn.qk``, ``embed``, ``lm_head``, ...) plus
a few fast-path-only bookkeeping regions (``layer{i}.attn.rope``,
``.cache``, ``.expand``, ``.merge``, ``layer{i}.residual``).

``bytes`` counts *workspace allocations* made while the op ran — after the
first few calls warm the arena this column goes to zero, which is exactly
the signal the profiler exists to expose: a hot loop whose bytes column
keeps growing is allocating per step.

Timing uses ``time.perf_counter`` around each op; the per-op overhead
(~100ns) is only paid when a profiler is attached, so unprofiled serving
runs are unaffected.
"""

from __future__ import annotations

import time
from typing import Dict, List

perf_counter = time.perf_counter


class _OpRecord:
    __slots__ = ("calls", "seconds", "bytes")

    def __init__(self) -> None:
        self.calls = 0
        self.seconds = 0.0
        self.bytes = 0


class OpProfiler:
    """Accumulates per-op wall time / call counts / arena bytes."""

    def __init__(self) -> None:
        self.ops: Dict[str, _OpRecord] = {}

    def add(self, name: str, seconds: float, nbytes: int = 0) -> None:
        record = self.ops.get(name)
        if record is None:
            record = self.ops[name] = _OpRecord()
        record.calls += 1
        record.seconds += seconds
        record.bytes += nbytes

    @property
    def total_seconds(self) -> float:
        return sum(record.seconds for record in self.ops.values())

    def to_dict(self) -> dict:
        return {
            name: {
                "calls": record.calls,
                "seconds": record.seconds,
                "bytes": record.bytes,
            }
            for name, record in sorted(
                self.ops.items(), key=lambda item: -item[1].seconds
            )
        }

    def rollup(self) -> Dict[str, dict]:
        """Per-op totals merged across layers (``layer3.w_q`` -> ``w_q``)."""
        merged: Dict[str, _OpRecord] = {}
        for name, record in self.ops.items():
            key = name.split(".", 1)[1] if name.startswith("layer") else name
            bucket = merged.get(key)
            if bucket is None:
                bucket = merged[key] = _OpRecord()
            bucket.calls += record.calls
            bucket.seconds += record.seconds
            bucket.bytes += record.bytes
        return {
            key: {"calls": rec.calls, "seconds": rec.seconds, "bytes": rec.bytes}
            for key, rec in sorted(merged.items(), key=lambda item: -item[1].seconds)
        }

    def table(self, top: int = 20, merged: bool = True) -> str:
        """Render the hottest ops, one line each, sorted by total time."""
        rows = self.rollup() if merged else self.to_dict()
        total = self.total_seconds or 1.0
        lines: List[str] = [
            f"{'op':<24} {'calls':>8} {'total ms':>10} {'us/call':>9} "
            f"{'%':>6} {'alloc B':>10}"
        ]
        for name, stats in list(rows.items())[:top]:
            per_call = 1e6 * stats["seconds"] / max(stats["calls"], 1)
            lines.append(
                f"{name:<24} {stats['calls']:>8} {1e3 * stats['seconds']:>10.2f} "
                f"{per_call:>9.1f} {100 * stats['seconds'] / total:>5.1f}% "
                f"{stats['bytes']:>10,}"
            )
        return "\n".join(lines)


__all__ = ["OpProfiler"]
