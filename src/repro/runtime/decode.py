"""The one greedy-decoding loop shared by evaluation and serving.

:class:`DecodeState` is the per-sequence token bookkeeping — greedy
selection, stop-token and budget termination — that used to be duplicated
between ``LlamaModel.greedy_generate`` and the serving engine's
``_append_token``.  :class:`DecodeSession` is the full generation loop
(prefill once into a KV cache, decode one position at a time, fall back to
windowed recomputation when the context window fills) that
``LlamaModel.greedy_generate``, the GSM8K-style generative evaluation
harness, and the tensor-parallel facade all drive.

The session runs against any model exposing the cached-decoding surface::

    config.max_seq_len
    forward(tokens)                  # full stateless forward
    forward_cached(tokens, cache)    # extend `cache` with new positions
    make_cache()                     # fresh whole-model KV cache

which :class:`~repro.models.llama.LlamaModel` and
:class:`~repro.parallel.local.ShardedLlama` both provide.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ConfigError, ShapeError

FINISH_STOP_TOKEN = "stop-token"
FINISH_MAX_TOKENS = "max-tokens"


class DecodeState:
    """Greedy token selection + termination bookkeeping for one sequence.

    ``tokens`` may be a caller-owned list (the serving engine passes the
    request's ``generated`` list) so appends are visible to both sides
    without copying.
    """

    __slots__ = ("max_new_tokens", "stop_token", "tokens", "finish_reason")

    def __init__(
        self,
        max_new_tokens: int,
        stop_token: Optional[int] = None,
        tokens: Optional[List[int]] = None,
    ) -> None:
        self.max_new_tokens = int(max_new_tokens)
        self.stop_token = None if stop_token is None else int(stop_token)
        self.tokens = tokens if tokens is not None else []
        self.finish_reason: Optional[str] = None

    @staticmethod
    def select(logits_row: np.ndarray) -> int:
        """Greedy (argmax) token choice from one position's logits."""
        return int(np.argmax(logits_row))

    @property
    def n_generated(self) -> int:
        return len(self.tokens)

    @property
    def done(self) -> bool:
        return self.finish_reason is not None

    def append(self, token: int) -> Optional[str]:
        """Record one generated token; returns the finish reason if this
        token terminates the sequence (stop token wins over the budget)."""
        token = int(token)
        self.tokens.append(token)
        if self.stop_token is not None and token == self.stop_token:
            self.finish_reason = FINISH_STOP_TOKEN
        elif len(self.tokens) >= self.max_new_tokens:
            self.finish_reason = FINISH_MAX_TOKENS
        return self.finish_reason


def _as_prompt_row(prompt: np.ndarray) -> np.ndarray:
    """Validate and shape a prompt to one (1, T) row of token ids."""
    tokens = np.asarray(prompt)
    if tokens.ndim == 1:
        return tokens.reshape(1, -1)
    if tokens.ndim == 2 and tokens.shape[0] == 1:
        return tokens
    raise ShapeError(
        f"prompt must be 1-D or a single (1, T) row, got shape {tokens.shape}"
    )


class _TokenRow:
    """One (1, T) token row backed by geometrically grown capacity.

    The generation loop extends the row by one token per step; growing with
    ``np.concatenate`` would copy the whole history every step (O(T^2) over
    a generation).  Doubling capacity amortizes to O(T), the same strategy
    :class:`~repro.nn.kv_cache.LayerKVCache` uses for KV entries.
    """

    __slots__ = ("_buf", "_len")

    def __init__(self, row: np.ndarray, reserve: int) -> None:
        length = row.shape[1]
        self._buf = np.empty((1, length + max(int(reserve), 1)), dtype=np.int64)
        self._buf[:, :length] = row
        self._len = length

    @property
    def row(self) -> np.ndarray:
        """The live (1, T) view of the tokens so far."""
        return self._buf[:, : self._len]

    def append(self, token: int) -> None:
        if self._len == self._buf.shape[1]:
            grown = np.empty((1, 2 * self._buf.shape[1]), dtype=np.int64)
            grown[:, : self._len] = self._buf
            self._buf = grown
        self._buf[0, self._len] = token
        self._len += 1


class DecodeSession:
    """Greedy generation loop over one cached-decoding model."""

    def __init__(self, model) -> None:
        if not self.supports(model):
            raise ConfigError(
                "DecodeSession needs a model with forward_cached() and "
                f"make_cache(); got {type(model).__name__}"
            )
        self.model = model
        # Populated by generate(speculative=...) with the cycle counters of
        # the most recent speculative run.
        self.spec_stats = None

    @staticmethod
    def supports(model) -> bool:
        """Whether ``model`` exposes the cached-decoding surface."""
        return hasattr(model, "forward_cached") and hasattr(model, "make_cache")

    def generate(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        stop_token: Optional[int] = None,
        use_cache: bool = True,
        speculative=None,
    ) -> np.ndarray:
        """Greedily extend ``prompt`` by up to ``max_new_tokens`` tokens.

        With ``use_cache`` (default) the prompt is prefilled once and each
        new token runs a single-position forward pass against the KV cache;
        without it, the full window is recomputed per token (kept as the
        reference implementation — both paths produce identical tokens).

        ``speculative`` — a
        :class:`~repro.runtime.speculative.SpeculativeConfig` or a bare
        drafter model — routes the generation through the drafter/verifier
        loop instead; the tokens are guaranteed identical, only the forward
        schedule changes.  Counters land on ``self.spec_stats``.
        """
        if speculative is not None:
            if not use_cache:
                raise ConfigError(
                    "speculative decoding requires the cached decode path "
                    "(use_cache=True)"
                )
            from repro.runtime.speculative import SpeculativeConfig, SpeculativeSession

            config = (
                speculative
                if isinstance(speculative, SpeculativeConfig)
                else SpeculativeConfig(speculative)
            )
            session = SpeculativeSession.from_config(self.model, config)
            out = session.generate(prompt, max_new_tokens, stop_token=stop_token)
            self.spec_stats = session.stats
            return out
        tokens = _as_prompt_row(prompt)
        if not use_cache:
            return self._generate_recompute(tokens, max_new_tokens, stop_token)
        window_limit = self.model.config.max_seq_len
        cache = self.model.make_cache()
        state = DecodeState(max_new_tokens, stop_token)
        row = _TokenRow(tokens, reserve=max_new_tokens)
        logits = self.model.forward_cached(tokens[:, -window_limit:], cache)
        next_token = state.select(logits.data[0, -1])
        state.append(next_token)
        row.append(next_token)
        while not state.done:
            if cache.seq_len >= window_limit:
                # Context full: fall back to windowed recomputation for the
                # part of the generation budget not yet spent.
                remaining = max_new_tokens - state.n_generated
                return self._generate_recompute(row.row, remaining, stop_token)
            logits = self.model.forward_cached(row.row[:, -1:], cache)
            next_token = state.select(logits.data[0, -1])
            state.append(next_token)
            row.append(next_token)
        return row.row[0].copy()

    def _generate_recompute(
        self,
        tokens: np.ndarray,
        max_new_tokens: int,
        stop_token: Optional[int],
    ) -> np.ndarray:
        tokens = _as_prompt_row(tokens)
        if max_new_tokens < 1:
            return tokens[0]
        window_limit = self.model.config.max_seq_len
        state = DecodeState(max_new_tokens, stop_token)
        row = _TokenRow(tokens, reserve=max_new_tokens)
        while not state.done:
            window = row.row[:, -window_limit:]
            logits = self.model.forward(window)
            next_token = state.select(logits.data[0, -1])
            state.append(next_token)
            row.append(next_token)
        return row.row[0].copy()
