"""The ``repro bench-decode`` measurement harness.

Measures prefill and decode tokens/sec for the Tensor-graph driver and the
no-grad fast path (:mod:`repro.runtime.fastpath`) over the same model,
across weight variants (dense / decomposed) and tensor-parallel degrees,
and checks the bit-for-bit contract on the way: the generated tokens, the
prefill logits, and the final-step logits of the two paths must be
byte-identical, or the cell is flagged and the report fails.

Timing methodology: each (variant, tp, path) cell first runs one full
untimed generation to warm the BLAS threads and the fast path's workspace
arena (first-touch allocations are real but happen once per shape, not per
step), then times one prefill of ``prompt_tokens`` positions and
``new_tokens - 1`` single-position cached decode steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.runtime import fastpath

DEFAULT_VARIANTS = ("dense", "rank1", "rank8")
DEFAULT_TP = (1, 2)


@dataclass(frozen=True)
class PathTiming:
    """One execution path's measured throughput."""

    prefill_tokens_per_s: float
    decode_tokens_per_s: float

    def to_dict(self) -> dict:
        return {
            "prefill_tokens_per_s": self.prefill_tokens_per_s,
            "decode_tokens_per_s": self.decode_tokens_per_s,
        }


@dataclass(frozen=True)
class DecodeBenchCell:
    """Fast vs. Tensor path for one (variant, tensor-parallel degree)."""

    spec: str
    tp: int
    tensor: PathTiming
    fast: PathTiming
    bit_identical: bool
    profile: Optional[str] = None

    @property
    def prefill_speedup(self) -> float:
        if self.tensor.prefill_tokens_per_s == 0.0:
            return 0.0
        return self.fast.prefill_tokens_per_s / self.tensor.prefill_tokens_per_s

    @property
    def decode_speedup(self) -> float:
        if self.tensor.decode_tokens_per_s == 0.0:
            return 0.0
        return self.fast.decode_tokens_per_s / self.tensor.decode_tokens_per_s

    def summary_line(self) -> str:
        verdict = "exact" if self.bit_identical else "LOGITS MISMATCH"
        return (
            f"{self.spec:>8} tp={self.tp}  "
            f"prefill {self.tensor.prefill_tokens_per_s:8.1f} -> "
            f"{self.fast.prefill_tokens_per_s:8.1f} tok/s "
            f"({self.prefill_speedup:4.2f}x)  "
            f"decode {self.tensor.decode_tokens_per_s:7.1f} -> "
            f"{self.fast.decode_tokens_per_s:7.1f} tok/s "
            f"({self.decode_speedup:4.2f}x)  [{verdict}]"
        )

    def to_dict(self) -> dict:
        return {
            "spec": self.spec,
            "tp": self.tp,
            "tensor": self.tensor.to_dict(),
            "fast": self.fast.to_dict(),
            "prefill_speedup": self.prefill_speedup,
            "decode_speedup": self.decode_speedup,
            "bit_identical": self.bit_identical,
            "profile": self.profile,
        }


@dataclass(frozen=True)
class DecodeBenchReport:
    """All measured cells plus the run's configuration."""

    model: str
    prompt_tokens: int
    new_tokens: int
    seed: int
    cells: List[DecodeBenchCell] = field(default_factory=list)

    @property
    def all_bit_identical(self) -> bool:
        return all(cell.bit_identical for cell in self.cells)

    @property
    def min_decode_speedup(self) -> float:
        return min(cell.decode_speedup for cell in self.cells)

    def table(self) -> str:
        header = (
            f"bench-decode: {self.model}, prompt={self.prompt_tokens}, "
            f"new={self.new_tokens} (Tensor path -> fast path)"
        )
        lines = [header, "-" * len(header)]
        lines.extend(cell.summary_line() for cell in self.cells)
        profiled = [cell for cell in self.cells if cell.profile]
        for cell in profiled:
            lines.append("")
            lines.append(f"op profile — {cell.spec} tp={cell.tp} (fast path):")
            lines.append(cell.profile)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "prompt_tokens": self.prompt_tokens,
            "new_tokens": self.new_tokens,
            "seed": self.seed,
            "all_bit_identical": self.all_bit_identical,
            "min_decode_speedup": self.min_decode_speedup,
            "cells": [cell.to_dict() for cell in self.cells],
        }


def _timed_generation(runner, prompt: np.ndarray, new_tokens: int):
    """One prefill + greedy decode loop; returns timings and outputs."""
    cache = runner.make_cache()
    start = perf_counter()
    logits = runner.forward_cached(prompt, cache)
    prefill_s = perf_counter() - start
    prefill_logits = logits.data.copy()
    tokens = [int(np.argmax(logits.data[0, -1]))]
    step = np.empty((1, 1), dtype=np.int64)
    start = perf_counter()
    for _ in range(new_tokens - 1):
        step[0, 0] = tokens[-1]
        logits = runner.forward_cached(step, cache)
        tokens.append(int(np.argmax(logits.data[0, -1])))
    decode_s = perf_counter() - start
    return prefill_s, decode_s, tokens, prefill_logits, logits.data.copy()


def _bench_path(runner, prompt: np.ndarray, new_tokens: int):
    _timed_generation(runner, prompt, new_tokens)  # warmup: arena + BLAS
    prefill_s, decode_s, tokens, first, last = _timed_generation(
        runner, prompt, new_tokens
    )
    timing = PathTiming(
        prefill_tokens_per_s=prompt.shape[1] / max(prefill_s, 1e-12),
        decode_tokens_per_s=max(new_tokens - 1, 1) / max(decode_s, 1e-12),
    )
    return timing, tokens, first, last


def _bench_cell(
    variant, tp: int, prompt: np.ndarray, new_tokens: int, profile: bool
) -> DecodeBenchCell:
    runner = variant.model
    sharded = None
    if tp > 1:
        from repro.parallel import ShardedLlama

        sharded = ShardedLlama(variant.model, tp)
        runner = sharded
    try:
        with fastpath.disabled():
            tensor_timing, t_tokens, t_first, t_last = _bench_path(
                runner, prompt, new_tokens
            )
        profiler = None
        if profile:
            context = (
                sharded.executors[0].context
                if sharded is not None
                else variant.model.runtime.context
            )
            profiler = fastpath.enable_profiling(context)
        fast_timing, f_tokens, f_first, f_last = _bench_path(
            runner, prompt, new_tokens
        )
        profile_table = None
        if profiler is not None:
            profile_table = profiler.table()
            fastpath.disable_profiling(
                sharded.executors[0].context
                if sharded is not None
                else variant.model.runtime.context
            )
        bit_identical = (
            t_tokens == f_tokens
            and np.array_equal(t_first, f_first)
            and np.array_equal(t_last, f_last)
        )
    finally:
        if sharded is not None:
            sharded.close()
    return DecodeBenchCell(
        spec=variant.spec,
        tp=tp,
        tensor=tensor_timing,
        fast=fast_timing,
        bit_identical=bit_identical,
        profile=profile_table,
    )


def run_decode_bench(
    base_model,
    variant_specs: Sequence[str] = DEFAULT_VARIANTS,
    tp_degrees: Sequence[int] = DEFAULT_TP,
    prompt_tokens: int = 32,
    new_tokens: int = 48,
    seed: int = 0,
    profile: bool = False,
) -> DecodeBenchReport:
    """Benchmark fast-path vs. Tensor-path generation over ``base_model``.

    ``base_model`` must be an eval-mode :class:`~repro.models.llama.LlamaModel`;
    ``variant_specs`` use the serve-bench registry grammar (``dense``,
    ``rank<K>``, ``pr<NN>``).  With ``profile`` the fast run of every cell
    records an op-level profile (rank 0's when ``tp > 1``).
    """
    # Imported lazily: the runtime layer must not depend on serving at
    # import time.
    from repro.serving.variants import VariantRegistry

    if not variant_specs:
        raise ConfigError("at least one variant spec is required")
    if prompt_tokens < 1 or new_tokens < 2:
        raise ConfigError(
            f"need prompt_tokens >= 1 and new_tokens >= 2, got "
            f"{prompt_tokens} and {new_tokens}"
        )
    rng = np.random.default_rng(seed)
    prompt = rng.integers(
        0, base_model.config.vocab_size, size=(1, prompt_tokens), dtype=np.int64
    )
    registry = VariantRegistry(base_model)
    cells = []
    for spec in variant_specs:
        variant = registry.get(spec)
        for tp in tp_degrees:
            cells.append(_bench_cell(variant, tp, prompt, new_tokens, profile))
    return DecodeBenchReport(
        model=base_model.config.name,
        prompt_tokens=prompt_tokens,
        new_tokens=new_tokens,
        seed=seed,
        cells=cells,
    )


__all__ = [
    "DecodeBenchCell",
    "DecodeBenchReport",
    "PathTiming",
    "run_decode_bench",
]
