"""The ``repro bench-decode`` measurement harness.

Measures prefill and decode tokens/sec for the Tensor-graph driver and the
no-grad fast path (:mod:`repro.runtime.fastpath`) over the same model,
across weight variants (dense / decomposed) and tensor-parallel degrees,
and checks the bit-for-bit contract on the way: the generated tokens, the
prefill logits, and the final-step logits of the two paths must be
byte-identical, or the cell is flagged and the report fails.

Timing methodology: each (variant, tp, path) cell first runs one full
untimed generation to warm the BLAS threads and the fast path's workspace
arena (first-touch allocations are real but happen once per shape, not per
step), then times one prefill of ``prompt_tokens`` positions and
``new_tokens - 1`` single-position cached decode steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.runtime import fastpath

DEFAULT_VARIANTS = ("dense", "rank1", "rank8")
DEFAULT_TP = (1, 2)


@dataclass(frozen=True)
class PathTiming:
    """One execution path's measured throughput."""

    prefill_tokens_per_s: float
    decode_tokens_per_s: float

    def to_dict(self) -> dict:
        return {
            "prefill_tokens_per_s": self.prefill_tokens_per_s,
            "decode_tokens_per_s": self.decode_tokens_per_s,
        }


@dataclass(frozen=True)
class DecodeBenchCell:
    """Fast vs. Tensor path for one (variant, tensor-parallel degree).

    Quantized variants (``-int<B>`` specs) additionally carry ``bits`` and
    two weight-memory metrics: ``memory_reduction_x`` compares the int
    grids against the fp32 weights of the *same* structure (dense grid vs
    dense fp32, factor grids vs factor fp32), while
    ``compound_reduction_x`` compares them against the dense fp32
    projections they ultimately replace — the number that captures
    rank × bits compounding.
    """

    spec: str
    tp: int
    tensor: PathTiming
    fast: PathTiming
    bit_identical: bool
    profile: Optional[str] = None
    bits: Optional[int] = None
    memory_reduction_x: Optional[float] = None
    compound_reduction_x: Optional[float] = None

    @property
    def prefill_speedup(self) -> float:
        if self.tensor.prefill_tokens_per_s == 0.0:
            return 0.0
        return self.fast.prefill_tokens_per_s / self.tensor.prefill_tokens_per_s

    @property
    def decode_speedup(self) -> float:
        if self.tensor.decode_tokens_per_s == 0.0:
            return 0.0
        return self.fast.decode_tokens_per_s / self.tensor.decode_tokens_per_s

    def summary_line(self) -> str:
        verdict = "exact" if self.bit_identical else "LOGITS MISMATCH"
        memory = ""
        if self.compound_reduction_x is not None:
            memory = f"  mem {self.compound_reduction_x:4.2f}x"
        return (
            f"{self.spec:>12} tp={self.tp}  "
            f"prefill {self.tensor.prefill_tokens_per_s:8.1f} -> "
            f"{self.fast.prefill_tokens_per_s:8.1f} tok/s "
            f"({self.prefill_speedup:4.2f}x)  "
            f"decode {self.tensor.decode_tokens_per_s:7.1f} -> "
            f"{self.fast.decode_tokens_per_s:7.1f} tok/s "
            f"({self.decode_speedup:4.2f}x){memory}  [{verdict}]"
        )

    def to_dict(self) -> dict:
        return {
            "spec": self.spec,
            "tp": self.tp,
            "tensor": self.tensor.to_dict(),
            "fast": self.fast.to_dict(),
            "prefill_speedup": self.prefill_speedup,
            "decode_speedup": self.decode_speedup,
            "bit_identical": self.bit_identical,
            "profile": self.profile,
            "bits": self.bits,
            "memory_reduction_x": self.memory_reduction_x,
            "compound_reduction_x": self.compound_reduction_x,
        }


@dataclass(frozen=True)
class DecodeBenchReport:
    """All measured cells plus the run's configuration."""

    model: str
    prompt_tokens: int
    new_tokens: int
    seed: int
    cells: List[DecodeBenchCell] = field(default_factory=list)

    @property
    def all_bit_identical(self) -> bool:
        return all(cell.bit_identical for cell in self.cells)

    @property
    def min_decode_speedup(self) -> float:
        return min(cell.decode_speedup for cell in self.cells)

    def quant_decode_ratios(self) -> dict:
        """Quantized vs. fp32 fast-path decode throughput at tp=1.

        For every quantized cell ``<base>-int<B>`` whose fp32 twin
        ``<base>`` was also measured at tp=1, maps the quantized spec to
        ``fast_decode(quantized) / fast_decode(fp32)`` — the acceptance
        criterion gates on this staying >= 0.9.
        """
        fp32 = {
            cell.spec: cell.fast.decode_tokens_per_s
            for cell in self.cells
            if cell.tp == 1 and cell.bits is None
        }
        ratios = {}
        for cell in self.cells:
            if cell.tp != 1 or cell.bits is None:
                continue
            base = cell.spec.rsplit("-int", 1)[0]
            if fp32.get(base):
                ratios[cell.spec] = cell.fast.decode_tokens_per_s / fp32[base]
        return ratios

    @property
    def min_quant_decode_ratio(self) -> Optional[float]:
        ratios = self.quant_decode_ratios()
        return min(ratios.values()) if ratios else None

    @property
    def min_quant_memory_reduction(self) -> Optional[float]:
        """Smallest compound weight-memory reduction over quantized cells."""
        reductions = [
            cell.compound_reduction_x
            for cell in self.cells
            if cell.compound_reduction_x is not None
        ]
        return min(reductions) if reductions else None

    def table(self) -> str:
        header = (
            f"bench-decode: {self.model}, prompt={self.prompt_tokens}, "
            f"new={self.new_tokens} (Tensor path -> fast path)"
        )
        lines = [header, "-" * len(header)]
        lines.extend(cell.summary_line() for cell in self.cells)
        profiled = [cell for cell in self.cells if cell.profile]
        for cell in profiled:
            lines.append("")
            lines.append(f"op profile — {cell.spec} tp={cell.tp} (fast path):")
            lines.append(cell.profile)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "prompt_tokens": self.prompt_tokens,
            "new_tokens": self.new_tokens,
            "seed": self.seed,
            "all_bit_identical": self.all_bit_identical,
            "min_decode_speedup": self.min_decode_speedup,
            "quant_decode_ratios": self.quant_decode_ratios(),
            "min_quant_decode_ratio": self.min_quant_decode_ratio,
            "min_quant_memory_reduction": self.min_quant_memory_reduction,
            "cells": [cell.to_dict() for cell in self.cells],
        }


def _timed_generation(runner, prompt: np.ndarray, new_tokens: int):
    """One prefill + greedy decode loop; returns timings and outputs."""
    cache = runner.make_cache()
    start = perf_counter()
    logits = runner.forward_cached(prompt, cache)
    prefill_s = perf_counter() - start
    prefill_logits = logits.data.copy()
    tokens = [int(np.argmax(logits.data[0, -1]))]
    step = np.empty((1, 1), dtype=np.int64)
    start = perf_counter()
    for _ in range(new_tokens - 1):
        step[0, 0] = tokens[-1]
        logits = runner.forward_cached(step, cache)
        tokens.append(int(np.argmax(logits.data[0, -1])))
    decode_s = perf_counter() - start
    return prefill_s, decode_s, tokens, prefill_logits, logits.data.copy()


_DECODE_TIMING_REPEATS = 3  # best-of-N: one generation is noise-dominated


def _bench_path(runner, prompt: np.ndarray, new_tokens: int):
    _timed_generation(runner, prompt, new_tokens)  # warmup: arena + BLAS
    best_prefill = best_decode = float("inf")
    for _ in range(_DECODE_TIMING_REPEATS):
        prefill_s, decode_s, tokens, first, last = _timed_generation(
            runner, prompt, new_tokens
        )
        best_prefill = min(best_prefill, prefill_s)
        best_decode = min(best_decode, decode_s)
    timing = PathTiming(
        prefill_tokens_per_s=prompt.shape[1] / max(best_prefill, 1e-12),
        decode_tokens_per_s=max(new_tokens - 1, 1) / max(best_decode, 1e-12),
    )
    return timing, tokens, first, last


def _dense_projection_fp32_bytes(config) -> int:
    """fp32 bytes of the dense per-layer projections a variant replaces."""
    per_layer = sum(
        height * width * 4
        for height, width in (
            config.tensor_shape(role) for role in config.tensor_roles
        )
    )
    return per_layer * config.n_layers


def _bench_cell(
    variant, tp: int, prompt: np.ndarray, new_tokens: int, profile: bool
) -> DecodeBenchCell:
    runner = variant.model
    sharded = None
    if tp > 1:
        from repro.parallel import ShardedLlama

        sharded = ShardedLlama(variant.model, tp)
        runner = sharded
    try:
        with fastpath.disabled():
            tensor_timing, t_tokens, t_first, t_last = _bench_path(
                runner, prompt, new_tokens
            )
        profiler = None
        if profile:
            context = (
                sharded.executors[0].context
                if sharded is not None
                else variant.model.runtime.context
            )
            profiler = fastpath.enable_profiling(context)
        fast_timing, f_tokens, f_first, f_last = _bench_path(
            runner, prompt, new_tokens
        )
        profile_table = None
        if profiler is not None:
            profile_table = profiler.table()
            fastpath.disable_profiling(
                sharded.executors[0].context
                if sharded is not None
                else variant.model.runtime.context
            )
        bit_identical = (
            t_tokens == f_tokens
            and np.array_equal(t_first, f_first)
            and np.array_equal(t_last, f_last)
        )
    finally:
        if sharded is not None:
            sharded.close()
    memory_reduction = compound_reduction = None
    if variant.quant is not None:
        memory_reduction = variant.quant.memory_reduction_x
        dense_fp32 = _dense_projection_fp32_bytes(variant.model.config)
        compound_reduction = dense_fp32 / variant.quant.weight_bytes_after
    return DecodeBenchCell(
        spec=variant.spec,
        tp=tp,
        tensor=tensor_timing,
        fast=fast_timing,
        bit_identical=bit_identical,
        profile=profile_table,
        bits=variant.bits,
        memory_reduction_x=memory_reduction,
        compound_reduction_x=compound_reduction,
    )


def run_decode_bench(
    base_model,
    variant_specs: Sequence[str] = DEFAULT_VARIANTS,
    tp_degrees: Sequence[int] = DEFAULT_TP,
    prompt_tokens: int = 32,
    new_tokens: int = 48,
    seed: int = 0,
    profile: bool = False,
    bits: Optional[int] = None,
) -> DecodeBenchReport:
    """Benchmark fast-path vs. Tensor-path generation over ``base_model``.

    ``base_model`` must be an eval-mode :class:`~repro.models.llama.LlamaModel`;
    ``variant_specs`` use the serve-bench registry grammar (``dense``,
    ``rank<K>``, ``pr<NN>``, ``<base>-int<B>``).  With ``profile`` the fast
    run of every cell records an op-level profile (rank 0's when ``tp > 1``).
    ``bits`` appends each spec's quantized twin (``<spec>-int<bits>``) to the
    measured set, so every quantized cell has the fp32 sibling the
    quant-vs-fp32 decode ratio needs.
    """
    # Imported lazily: the runtime layer must not depend on serving at
    # import time.
    from repro.serving.variants import VariantRegistry

    if not variant_specs:
        raise ConfigError("at least one variant spec is required")
    if prompt_tokens < 1 or new_tokens < 2:
        raise ConfigError(
            f"need prompt_tokens >= 1 and new_tokens >= 2, got "
            f"{prompt_tokens} and {new_tokens}"
        )
    if bits is not None:
        expanded = []
        for spec in variant_specs:
            expanded.append(spec)
            if "-int" not in spec:
                expanded.append(f"{spec}-int{bits}")
        variant_specs = expanded
    rng = np.random.default_rng(seed)
    prompt = rng.integers(
        0, base_model.config.vocab_size, size=(1, prompt_tokens), dtype=np.int64
    )
    registry = VariantRegistry(base_model)
    cells = []
    for spec in variant_specs:
        variant = registry.get(spec)
        for tp in tp_degrees:
            cells.append(_bench_cell(variant, tp, prompt, new_tokens, profile))
    return DecodeBenchReport(
        model=base_model.config.name,
        prompt_tokens=prompt_tokens,
        new_tokens=new_tokens,
        seed=seed,
        cells=cells,
    )


DEFAULT_DRAFTERS = ("rank8", "rank1")
DEFAULT_SPEC_K = (4,)
DEFAULT_SPEC_DECAY = 0.5


@dataclass(frozen=True)
class SpecBenchCell:
    """One measured (drafter, K, tensor-parallel degree) speculative cell."""

    drafter: str
    k: int
    tp: int
    tokens_match: bool                # identical to dense greedy output
    acceptance_rate: float
    drafted: int
    accepted: int
    baseline_tokens_per_s: float      # dense fast-path generation at this tp
    effective_tokens_per_s: float     # speculative committed tokens per sec

    @property
    def speedup(self) -> float:
        if self.baseline_tokens_per_s == 0.0:
            return 0.0
        return self.effective_tokens_per_s / self.baseline_tokens_per_s

    def summary_line(self) -> str:
        verdict = "exact" if self.tokens_match else "TOKEN MISMATCH"
        return (
            f"{self.drafter:>8} K={self.k} tp={self.tp}  "
            f"accept {self.acceptance_rate:5.1%} ({self.accepted}/{self.drafted})  "
            f"effective {self.effective_tokens_per_s:7.1f} tok/s vs dense "
            f"{self.baseline_tokens_per_s:7.1f} tok/s "
            f"({self.speedup:4.2f}x)  [{verdict}]"
        )

    def to_dict(self) -> dict:
        return {
            "drafter": self.drafter,
            "k": self.k,
            "tp": self.tp,
            "tokens_match": self.tokens_match,
            "acceptance_rate": self.acceptance_rate,
            "drafted": self.drafted,
            "accepted": self.accepted,
            "baseline_tokens_per_s": self.baseline_tokens_per_s,
            "effective_tokens_per_s": self.effective_tokens_per_s,
            "speedup": self.speedup,
        }


@dataclass(frozen=True)
class SpecBenchReport:
    """Speculative-decoding measurement across drafters, K, and tp."""

    model: str
    prompt_tokens: int
    new_tokens: int
    seed: int
    decay: float
    cells: List[SpecBenchCell] = field(default_factory=list)

    @property
    def all_tokens_match(self) -> bool:
        return all(cell.tokens_match for cell in self.cells)

    @property
    def max_acceptance_rate(self) -> float:
        return max((cell.acceptance_rate for cell in self.cells), default=0.0)

    @property
    def best_speedup_tp1(self) -> float:
        """Best effective speedup over the dense fast path at tp=1 — the
        number the acceptance criterion gates on."""
        tp1 = [cell.speedup for cell in self.cells if cell.tp == 1]
        return max(tp1) if tp1 else 0.0

    def table(self) -> str:
        header = (
            f"bench-decode --speculative: {self.model}, "
            f"prompt={self.prompt_tokens}, new={self.new_tokens}, "
            f"spectrum decay={self.decay} (drafter drafts, dense verifies)"
        )
        lines = [header, "-" * len(header)]
        lines.extend(cell.summary_line() for cell in self.cells)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "prompt_tokens": self.prompt_tokens,
            "new_tokens": self.new_tokens,
            "seed": self.seed,
            "decay": self.decay,
            "all_tokens_match": self.all_tokens_match,
            "max_acceptance_rate": self.max_acceptance_rate,
            "best_speedup_tp1": self.best_speedup_tp1,
            "cells": [cell.to_dict() for cell in self.cells],
        }


_TIMING_REPEATS = 5  # best-of-N: one 48-token generate is noise-dominated


def _timed_cell(verifier, drafter, k: int, prompt: np.ndarray, new_tokens: int):
    """Best-of-N timing of the dense and speculative arms, *interleaved*.

    Returns ``(reference, tokens, baseline_tok_s, effective_tok_s, stats)``.
    The two arms alternate inside one measurement window so that
    machine-speed drift (single-CPU CI runners throttle unpredictably on
    hundreds-of-ms scales) hits both equally and cancels out of the
    speedup ratio; timing them minutes apart makes the ratio noise, not
    measurement.  Each arm keeps its best (minimum-wall) repeat.
    """
    from repro.runtime.decode import DecodeSession
    from repro.runtime.speculative import SpeculativeSession

    dense = DecodeSession(verifier)
    dense.generate(prompt, new_tokens)  # warmup: arena + BLAS
    SpeculativeSession(verifier, drafter, k=k).generate(prompt, new_tokens)
    dense_wall = spec_wall = float("inf")
    for _ in range(_TIMING_REPEATS):
        start = perf_counter()
        reference = dense.generate(prompt, new_tokens)
        dense_wall = min(dense_wall, max(perf_counter() - start, 1e-12))
        session = SpeculativeSession(verifier, drafter, k=k)
        start = perf_counter()
        tokens = session.generate(prompt, new_tokens)
        spec_wall = min(spec_wall, max(perf_counter() - start, 1e-12))
    return (
        reference,
        tokens,
        new_tokens / dense_wall,
        new_tokens / spec_wall,
        session.stats,
    )


def run_spec_bench(
    base_model,
    drafter_specs: Sequence[str] = DEFAULT_DRAFTERS,
    k_values: Sequence[int] = DEFAULT_SPEC_K,
    tp_degrees: Sequence[int] = (1,),
    prompt_tokens: int = 32,
    new_tokens: int = 48,
    seed: int = 0,
    decay: float = DEFAULT_SPEC_DECAY,
) -> SpecBenchReport:
    """Measure speculative decoding against the dense fast-path baseline.

    The benchmark runs on a *spectrum-shaped* clone of ``base_model``:
    every decomposable weight is rebuilt with exponentially decaying
    singular values (``decay`` per index), the regime trained transformer
    weights live in and the one where a low-rank drafter tracks the dense
    model closely enough to pay for itself.  (On raw random weights every
    drafter's acceptance rate is ~0 — measurable, but it characterizes the
    initialization, not the method.)  The dense baseline and all verifier
    forwards run the same shaped clone, so token identity is still checked
    end to end: each cell's speculative output must equal the dense greedy
    output of the same model.
    """
    from repro.decomposition.apply import shape_model_spectrum
    from repro.models import build_model
    from repro.serving.variants import VariantRegistry

    if not drafter_specs:
        raise ConfigError("at least one drafter spec is required")
    if not k_values or any(k < 1 for k in k_values):
        raise ConfigError(f"k values must be >= 1, got {list(k_values)}")
    if prompt_tokens < 1 or new_tokens < 2:
        raise ConfigError(
            f"need prompt_tokens >= 1 and new_tokens >= 2, got "
            f"{prompt_tokens} and {new_tokens}"
        )
    shaped = build_model(base_model.config)
    shaped.load_state_dict(base_model.state_dict())
    shape_model_spectrum(shaped, decay)
    shaped.eval()
    registry = VariantRegistry(shaped)
    rng = np.random.default_rng(seed)
    prompt = rng.integers(
        0, base_model.config.vocab_size, size=(1, prompt_tokens), dtype=np.int64
    )
    cells = []
    for tp in tp_degrees:
        verifier = shaped
        sharded = None
        if tp > 1:
            from repro.parallel import ShardedLlama

            sharded = ShardedLlama(shaped, tp)
            verifier = sharded
        try:
            for spec in drafter_specs:
                drafter = registry.get(spec).model
                for k in k_values:
                    reference, tokens, baseline, effective, stats = _timed_cell(
                        verifier, drafter, k, prompt, new_tokens
                    )
                    cells.append(
                        SpecBenchCell(
                            drafter=spec,
                            k=k,
                            tp=tp,
                            tokens_match=bool(np.array_equal(tokens, reference)),
                            acceptance_rate=stats.acceptance_rate,
                            drafted=stats.drafted,
                            accepted=stats.accepted,
                            baseline_tokens_per_s=baseline,
                            effective_tokens_per_s=effective,
                        )
                    )
        finally:
            if sharded is not None:
                sharded.close()
    return SpecBenchReport(
        model=base_model.config.name,
        prompt_tokens=prompt_tokens,
        new_tokens=new_tokens,
        seed=seed,
        decay=decay,
        cells=cells,
    )


__all__ = [
    "DecodeBenchCell",
    "DecodeBenchReport",
    "PathTiming",
    "SpecBenchCell",
    "SpecBenchReport",
    "run_decode_bench",
    "run_spec_bench",
]
