"""The one layer driver every forward path in the repo runs through.

``run_model`` / ``run_layer`` execute the decoder schedule — pre-norm
attention and SwiGLU MLP with residual adds — against an
:class:`~repro.runtime.context.ExecutionContext`.  The attention kernels
handle all three cache regimes through one dispatch:

- ``cache is None``: full self-attention over the input window;
- :class:`~repro.nn.kv_cache.LayerKVCache`: incremental decoding — the
  input holds only new positions, appended to one shared-history cache;
- :class:`~repro.nn.kv_cache.RaggedLayerCaches`: a right-padded batch of
  *independent* sequences at different depths (continuous batching).

Callers: :class:`~repro.models.llama.LlamaModel` (canonical context),
:class:`~repro.parallel.executor.RankExecutor` (sharded context),
:class:`~repro.nn.attention.MultiHeadAttention` (single-module context,
which is how BERT shares the kernels), and through the first two, the
serving engine and the evaluation harness.  Before this module existed the
same math lived in six hand-rolled copies that repeatedly drifted apart.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import ShapeError
from repro.runtime.context import ExecutionContext
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor

if TYPE_CHECKING:  # pragma: no cover - layering: runtime sits below nn/models
    from repro.nn.kv_cache import RaggedLayerCaches
    from repro.runtime.program import ModelProgram

NEG_INF = -1e9


@lru_cache(maxsize=256)
def _causal_mask_cached(seq_len: int, offset: int) -> np.ndarray:
    total = offset + seq_len
    query_pos = offset + np.arange(seq_len)[:, None]
    key_pos = np.arange(total)[None, :]
    mask = key_pos > query_pos
    # Cached arrays are shared across every layer of every step that hits
    # the same (seq_len, offset); freezing them keeps sharing safe.
    mask.setflags(write=False)
    return mask


def causal_mask(seq_len: int, offset: int = 0) -> np.ndarray:
    """Boolean mask that is True at disallowed (future) positions.

    Shape (seq_len, offset + seq_len): query position i (absolute position
    ``offset + i``) may attend keys at absolute positions <= offset + i.

    Results are LRU-cached by ``(seq_len, offset)`` — a decode loop asks
    for the same handful of masks once per layer per step — and returned
    read-only.  Callers needing a private writable copy must ``.copy()``.
    """
    return _causal_mask_cached(int(seq_len), int(offset))


def _split_heads(x: Tensor, batch: int, seq_len: int, n_heads: int, head_dim: int) -> Tensor:
    return x.reshape(batch, seq_len, n_heads, head_dim).transpose(0, 2, 1, 3)


def _merge_heads(x: Tensor, batch: int, seq_len: int, n_heads: int, head_dim: int) -> Tensor:
    return x.transpose(0, 2, 1, 3).reshape(batch, seq_len, n_heads * head_dim)


def attention(
    ctx: ExecutionContext,
    layer: int,
    x: Tensor,
    pad_mask: Optional[np.ndarray] = None,
    cache=None,
) -> Tensor:
    """One attention sublayer (normed input in, attention output out).

    Dispatches on the cache type: a :class:`RaggedLayerCaches` bundle takes
    the ragged batched path, anything else the dense path.
    """
    # Imported here, not at module level: repro.nn's own attention module
    # builds on these kernels, so the runtime must not import repro.nn
    # during its own import.
    from repro.nn.kv_cache import RaggedLayerCaches

    if x.ndim != 3:
        raise ShapeError(f"attention expects (B, T, D), got {x.shape}")
    if isinstance(cache, RaggedLayerCaches):
        return _attention_ragged(ctx, layer, x, cache)
    return _attention_dense(ctx, layer, x, pad_mask, cache)


def _attention_dense(
    ctx: ExecutionContext,
    layer: int,
    x: Tensor,
    pad_mask: Optional[np.ndarray],
    cache,
) -> Tensor:
    """Self-attention with an optional single shared-history KV cache.

    With a cache, ``x`` contains only the *new* positions: the cache is
    extended in place and gradients do not flow into cached history
    (inference-only path).
    """
    batch, seq_len, _ = x.shape
    offset = 0 if cache is None else cache.seq_len
    q = _split_heads(
        ctx.project(layer, "w_q", x), batch, seq_len, ctx.n_q_heads, ctx.head_dim
    )
    k = _split_heads(
        ctx.project(layer, "w_k", x), batch, seq_len, ctx.n_kv_heads, ctx.head_dim
    )
    v = _split_heads(
        ctx.project(layer, "w_v", x), batch, seq_len, ctx.n_kv_heads, ctx.head_dim
    )
    q = ctx.rope(q, offset)
    k = ctx.rope(k, offset)
    if cache is not None:
        full_k, full_v = cache.append(k.data, v.data)
        k, v = Tensor(full_k), Tensor(full_v)
    k = ctx.expand_kv(k)
    v = ctx.expand_kv(v)
    scale = 1.0 / float(np.sqrt(ctx.head_dim))
    scores = (q @ k.transpose(0, 1, 3, 2)) * scale
    # A single cached decode step attends everything before it — no mask.
    if ctx.causal and (seq_len > 1 or cache is None):
        scores = scores.masked_fill(
            causal_mask(seq_len, offset=offset)[None, None, :, :], NEG_INF
        )
    if pad_mask is not None:
        pad_mask = np.asarray(pad_mask, dtype=bool)
        expected = (batch, offset + seq_len if cache is not None else seq_len)
        if pad_mask.shape != expected:
            raise ShapeError(f"pad_mask shape {pad_mask.shape} != {expected}")
        scores = scores.masked_fill(pad_mask[:, None, None, :], NEG_INF)
    weights = F.softmax(scores, axis=-1)
    context = weights @ v
    merged = ctx.gather(
        _merge_heads(context, batch, seq_len, ctx.n_q_heads, ctx.head_dim)
    )
    return ctx.gather(ctx.project(layer, "w_so", merged))


def _attention_ragged(
    ctx: ExecutionContext, layer: int, x: Tensor, ragged: "RaggedLayerCaches"
) -> Tensor:
    """Batched attention over independent sequences of unequal depth.

    Row ``b`` of ``x`` holds ``ragged.new_lengths[b]`` valid new positions
    (right-padded to the batch maximum) for a sequence whose cache already
    stores ``ragged.offsets[b]`` positions.  Each row's valid prefix is
    appended to its own cache; attention then runs as one padded batched
    softmax with a combined causal + ragged-length mask.  Outputs at padded
    slots are garbage by construction.
    """
    if not ctx.causal:
        raise ShapeError("ragged cached attention requires a causal decoder")
    batch, max_new, _ = x.shape
    if len(ragged) != batch:
        raise ShapeError(
            f"ragged batch mismatch: {batch} rows, {len(ragged)} caches"
        )
    lengths = ragged.new_lengths
    if np.any(lengths < 1) or np.any(lengths > max_new):
        raise ShapeError(f"row lengths {lengths} out of range [1, {max_new}]")
    offsets = ragged.offsets
    q = _split_heads(
        ctx.project(layer, "w_q", x), batch, max_new, ctx.n_q_heads, ctx.head_dim
    )
    k = _split_heads(
        ctx.project(layer, "w_k", x), batch, max_new, ctx.n_kv_heads, ctx.head_dim
    )
    v = _split_heads(
        ctx.project(layer, "w_v", x), batch, max_new, ctx.n_kv_heads, ctx.head_dim
    )
    q = ctx.rope(q, offsets)
    k = ctx.rope(k, offsets)
    totals = offsets + lengths
    # pad_to floors the padded width so a pipeline's row-microbatches
    # reduce over exactly the widths the full-batch pass would; the extra
    # masked columns contribute exact zeros.
    max_total = max(int(totals.max()), getattr(ragged, "pad_to", 0))
    full_k = np.zeros(
        (batch, ctx.n_kv_heads, max_total, ctx.head_dim), dtype=np.float32
    )
    full_v = np.zeros_like(full_k)
    for row, cache in enumerate(ragged.caches):
        valid = int(lengths[row])
        row_keys, row_values = cache.append(
            k.data[row : row + 1, :, :valid], v.data[row : row + 1, :, :valid]
        )
        full_k[row, :, : totals[row]] = row_keys[0]
        full_v[row, :, : totals[row]] = row_values[0]
    keys = ctx.expand_kv(Tensor(full_k))
    values = ctx.expand_kv(Tensor(full_v))
    scale = 1.0 / float(np.sqrt(ctx.head_dim))
    scores = (q @ keys.transpose(0, 1, 3, 2)) * scale  # (B, H, T, max_total)
    key_pos = np.arange(max_total, dtype=np.int64)[None, None, :]
    query_pos = (
        offsets[:, None, None] + np.arange(max_new, dtype=np.int64)[None, :, None]
    )
    invalid = (key_pos > query_pos) | (key_pos >= totals[:, None, None])
    scores = scores.masked_fill(invalid[:, None, :, :], NEG_INF)
    weights = F.softmax(scores, axis=-1)
    context = weights @ values
    merged = ctx.gather(
        _merge_heads(context, batch, max_new, ctx.n_q_heads, ctx.head_dim)
    )
    return ctx.gather(ctx.project(layer, "w_so", merged))


def swiglu_mlp(ctx: ExecutionContext, layer: int, x: Tensor) -> Tensor:
    """The gated feed-forward sublayer ``W_D(silu(W_G x) * W_U x)``."""
    gate = ctx.project(layer, "w_g", x)
    up = ctx.project(layer, "w_u", x)
    hidden = ctx.gather(F.silu(gate) * up)
    return ctx.gather(ctx.project(layer, "w_d", hidden))


def run_layer(
    ctx: ExecutionContext,
    layer: int,
    x: Tensor,
    pad_mask: Optional[np.ndarray] = None,
    cache=None,
) -> Tensor:
    """One pre-norm decoder layer: x += attn(norm(x)); x += mlp(norm(x))."""
    x = x + attention(ctx, layer, ctx.norm(layer, "attn", x), pad_mask, cache)
    x = x + swiglu_mlp(ctx, layer, ctx.norm(layer, "mlp", x))
    return x


def run_model(
    ctx: ExecutionContext,
    tokens: np.ndarray,
    pad_mask: Optional[np.ndarray] = None,
    caches=None,
    hidden: Optional[np.ndarray] = None,
    skip_head: bool = False,
) -> Tensor:
    """(B, T) token ids through every layer to (B, T, vocab) logits.

    ``caches`` is None for a full stateless forward, or any object with a
    per-layer ``.layers`` sequence — a
    :class:`~repro.nn.kv_cache.ModelKVCache` for single-sequence
    incremental decoding, a
    :class:`~repro.nn.kv_cache.RaggedModelCaches` for the
    continuous-batching ragged path.

    Pipeline stages reuse this entry: a context whose ``has_embedding`` is
    False takes the previous stage's replicated (B, T, D) ``hidden`` block
    instead of embedding tokens, and one whose ``has_head`` is False
    returns the hidden state after its layer run instead of logits.
    ``skip_head`` makes a head-holding last stage do the same for one
    call — a chunked pipeline defers the epilogue to a single full-batch
    :func:`run_head` so the head GEMM sees the canonical row count.
    """
    # Imported here, not at module level, so the fast path stays an
    # implementation detail of this dispatch (and to keep import order
    # within the package trivial).
    from repro.runtime import fastpath

    tokens = np.asarray(tokens)
    if tokens.ndim != 2:
        raise ShapeError(f"expected (B, T) token ids, got shape {tokens.shape}")
    has_embedding = getattr(ctx, "has_embedding", True)
    has_head = getattr(ctx, "has_head", True)
    if not has_embedding and hidden is None:
        raise ShapeError("a non-first pipeline stage needs the hidden input")
    state = fastpath.active_state(ctx)
    if state is not None:
        return Tensor(
            fastpath.run_model_fast(
                state, tokens, pad_mask=pad_mask, caches=caches, hidden=hidden,
                skip_head=skip_head,
            )
        )
    if hidden is not None:
        x = hidden if isinstance(hidden, Tensor) else Tensor(hidden)
    else:
        x = ctx.embed(tokens)
    for layer in range(ctx.n_layers):
        cache = None if caches is None else caches.layers[layer]
        x = run_layer(ctx, layer, x, pad_mask=pad_mask, cache=cache)
    if not has_head or skip_head:
        return x
    return ctx.logits(x)


def run_head(ctx: ExecutionContext, hidden) -> Tensor:
    """Epilogue only: final norm + LM head over replicated hidden states.

    The pipelined counterpart to ``skip_head`` — after a last stage has
    run its layers over row-microbatches, the concatenated hidden batch
    goes through the head exactly once, with the full row count.
    """
    from repro.runtime import fastpath

    state = fastpath.active_state(ctx)
    if state is not None:
        return Tensor(fastpath.logits_fast(state, hidden))
    x = hidden if isinstance(hidden, Tensor) else Tensor(hidden)
    return ctx.logits(x)


class ModelRuntime:
    """A layer program bound to an execution context.

    The program says *what* one forward pass computes (named ops, shapes,
    block grids, tensor roles); the context says *how* (dense or factorized
    weights, canonical or sharded, which cache flavor).  The runtime is the
    single forward driver every backend shares.
    """

    def __init__(self, program: "ModelProgram", context: ExecutionContext) -> None:
        if program.n_layers != context.n_layers:
            raise ShapeError(
                f"program has {program.n_layers} layers, context {context.n_layers}"
            )
        self.program = program
        self.context = context

    def enable_profiling(self):
        """Attach (or return) the op-level profiler for fast-path forwards.

        Returns the :class:`~repro.runtime.profiler.OpProfiler` accumulating
        per-op wall time / call counts / arena bytes.  Profiling only
        records ops executed on the no-grad fast path; Tensor-graph
        forwards are unaffected.
        """
        from repro.runtime import fastpath

        return fastpath.enable_profiling(self.context)

    def disable_profiling(self) -> None:
        from repro.runtime import fastpath

        fastpath.disable_profiling(self.context)

    @property
    def profiler(self):
        """The attached profiler, or None."""
        return self.context.__dict__.get("_fast_profiler")

    @property
    def workspace(self):
        """The fast path's buffer arena, once a fast forward has run."""
        from repro.runtime import fastpath

        return fastpath.workspace_of(self.context)

    def forward(
        self, tokens: np.ndarray, pad_mask: Optional[np.ndarray] = None
    ) -> Tensor:
        """Full stateless forward pass."""
        return run_model(self.context, tokens, pad_mask=pad_mask)

    def forward_cached(self, tokens: np.ndarray, caches) -> Tensor:
        """Forward over new ``tokens`` only, extending ``caches`` in place."""
        return run_model(self.context, tokens, caches=caches)

    def forward_ragged(self, tokens: np.ndarray, caches, new_lengths) -> Tensor:
        """Cached forward over a ragged batch of independent sequences.

        ``caches`` holds one :class:`~repro.nn.kv_cache.ModelKVCache`-
        compatible per-sequence cache per batch row.
        """
        from repro.nn.kv_cache import RaggedModelCaches

        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ShapeError(f"expected (B, T) token ids, got shape {tokens.shape}")
        if tokens.shape[0] != len(caches):
            raise ShapeError(
                f"need one cache per row: {tokens.shape[0]} rows, {len(caches)} caches"
            )
        ragged = RaggedModelCaches(list(caches), new_lengths)
        return run_model(self.context, tokens, caches=ragged)
