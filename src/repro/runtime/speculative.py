"""Speculative decoding: a cheap decomposed drafter, an exact dense verifier.

The paper's central trade-off — aggressively decomposed variants (rank-1 /
rank-8) are far cheaper per token but less accurate — is precisely the
profile speculative decoding wants in a *drafter*.  The drafter proposes
``K`` tokens one cheap cached forward at a time; the dense verifier then
scores all ``K`` proposals (plus the position after them) in **one**
batched cached forward, and the longest prefix of proposals matching the
verifier's own greedy choices is accepted, with the verifier supplying the
first correction token.  Accuracy loss from decomposition becomes a pure
throughput knob: a bad drafter only lowers the acceptance rate, never the
output.

Hard contract (enforced by ``tests/runtime/test_speculative.py``): the
generated tokens are **token-for-token identical** to dense greedy decoding
for every drafter, every ``K``, every cache regime, and every world size.
The invariants that make this hold:

- verifier cache always covers exactly ``len(row) - 1`` positions at the
  top of each cycle (the last row token is re-fed as the first verify
  position), so verifier logits are bit-identical to the dense
  :class:`~repro.runtime.decode.DecodeSession` single-step logits;
- drafter cache covers a (possibly shorter) prefix of the row and is fed
  ``row[drafter_cache.seq_len:]`` — rollbacks never desynchronize it;
- after accepting ``j`` drafts both caches are truncated back to the
  committed prefix, so rejected draft KV entries never influence later
  steps (and pooled caches return surplus blocks to the pool);
- the cycle drafts at most ``window_limit - len(row)`` tokens, so the
  context-window overflow point — and the fallback to windowed
  recomputation — lands on exactly the same token as the dense loop.

Both models run through the shared layer-program driver; the drafter's
single-position forwards take the no-grad fast path automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.runtime.decode import (
    DecodeSession,
    DecodeState,
    _as_prompt_row,
    _TokenRow,
)


@dataclass
class SpecStats:
    """Counters for one speculative session (cumulative across generates).

    ``acceptance_rate`` is accepted-drafts over proposed-drafts — the
    single number that decides whether a drafter pays for itself.  The
    verifier's bonus/correction tokens are counted in ``committed`` but
    never in ``drafted``/``accepted``, so an all-rejected run reports
    exactly 0.0 and an all-accepted run exactly 1.0.
    """

    drafted: int = 0        # tokens proposed by the drafter
    accepted: int = 0       # proposals matching the verifier's greedy choice
    committed: int = 0      # tokens emitted (prefill token + accepted + corrections)
    verify_steps: int = 0   # batched verifier forwards (one per cycle)
    draft_forwards: int = 0  # drafter forwards (one per proposed token)

    @property
    def acceptance_rate(self) -> float:
        if self.drafted == 0:
            return 0.0
        return self.accepted / self.drafted

    def reset(self) -> None:
        self.drafted = 0
        self.accepted = 0
        self.committed = 0
        self.verify_steps = 0
        self.draft_forwards = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "drafted": self.drafted,
            "accepted": self.accepted,
            "committed": self.committed,
            "verify_steps": self.verify_steps,
            "draft_forwards": self.draft_forwards,
            "acceptance_rate": self.acceptance_rate,
        }


@dataclass
class SpeculativeConfig:
    """How to speculate: which drafter model, how many tokens per cycle."""

    drafter: object
    k: int = 4

    def __post_init__(self) -> None:
        self.k = int(self.k)
        if self.k < 1:
            raise ConfigError(f"speculative k must be >= 1, got {self.k}")
        if not DecodeSession.supports(self.drafter):
            raise ConfigError(
                "speculative drafter needs forward_cached() and make_cache(); "
                f"got {type(self.drafter).__name__}"
            )


class SpeculativeSession:
    """Drafter/verifier greedy generation, token-identical to the dense loop.

    ``model`` is the verifier (the dense model whose outputs define
    correctness); ``drafter`` is any cheaper model exposing the same
    cached-decoding surface — canonically a decomposed variant from
    :class:`~repro.serving.variants.VariantRegistry`.  Either side may be a
    :class:`~repro.parallel.local.ShardedLlama`; the caches it hands out
    support the same ``truncate`` rollback.
    """

    def __init__(self, model, drafter, k: int = 4) -> None:
        if not DecodeSession.supports(model):
            raise ConfigError(
                "SpeculativeSession verifier needs forward_cached() and "
                f"make_cache(); got {type(model).__name__}"
            )
        config = SpeculativeConfig(drafter, k)  # validates drafter and k
        self.model = model
        self.drafter = config.drafter
        self.k = config.k
        self.stats = SpecStats()
        self._dense = DecodeSession(model)

    @classmethod
    def from_config(cls, model, config: SpeculativeConfig) -> "SpeculativeSession":
        return cls(model, config.drafter, config.k)

    def generate(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        stop_token: Optional[int] = None,
    ) -> np.ndarray:
        """Greedily extend ``prompt``; same signature and same tokens as
        ``DecodeSession.generate(..., use_cache=True)``."""
        tokens = _as_prompt_row(prompt)
        window_limit = self.model.config.max_seq_len
        draft_limit = min(window_limit, self.drafter.config.max_seq_len)
        vcache = self.model.make_cache()
        dcache = self.drafter.make_cache()
        state = DecodeState(max_new_tokens, stop_token)
        row = _TokenRow(tokens, reserve=max_new_tokens)

        # Prefill + first token: exactly the dense session's opening move.
        logits = self.model.forward_cached(tokens[:, -window_limit:], vcache)
        first = state.select(logits.data[0, -1])
        state.append(first)
        row.append(first)
        self.stats.committed += 1

        while not state.done:
            if vcache.seq_len >= window_limit:
                # Context full: same fallback point, same fallback path as
                # the dense loop — windowed recomputation for the rest.
                remaining = max_new_tokens - state.n_generated
                return self._dense._generate_recompute(row.row, remaining, stop_token)
            length = row.row.shape[1]
            # Draft no further than the window edge and leave room for the
            # verifier's correction token inside the generation budget.
            k_eff = min(
                self.k,
                draft_limit - length,
                max_new_tokens - state.n_generated - 1,
            )
            drafts = self._draft(row, dcache, max(k_eff, 0))
            self._verify_and_commit(row, state, vcache, dcache, drafts, length)
        return row.row[0].copy()

    # -- one speculative cycle --------------------------------------------
    def _draft(self, row: _TokenRow, dcache, k: int) -> List[int]:
        """Propose ``k`` greedy tokens from the drafter, extending its cache.

        The drafter cache holds a prefix of the row (rollbacks may have
        left it short), so the first forward feeds the uncovered suffix —
        at least the row's final token.
        """
        if k == 0:
            return []
        drafts: List[int] = []
        feed = row.row[:, dcache.seq_len :]
        for _ in range(k):
            logits = self.drafter.forward_cached(feed, dcache)
            self.stats.draft_forwards += 1
            token = DecodeState.select(logits.data[0, -1])
            drafts.append(token)
            feed = np.array([[token]], dtype=np.int64)
        self.stats.drafted += k
        return drafts

    def _verify_and_commit(
        self,
        row: _TokenRow,
        state: DecodeState,
        vcache,
        dcache,
        drafts: List[int],
        length: int,
    ) -> int:
        """One batched verifier forward; commit the accepted prefix plus the
        verifier's own next token.  Returns the number of accepted drafts.

        ``length`` is the row length at cycle start; the verifier cache
        holds ``length - 1`` positions, so feeding ``[row[-1]] + drafts``
        scores every draft *and* the position after the last one in a
        single forward.  With ``drafts == []`` this degenerates into a
        plain dense decode step.
        """
        verify = np.empty((1, len(drafts) + 1), dtype=np.int64)
        verify[0, 0] = row.row[0, -1]
        if drafts:
            verify[0, 1:] = drafts
        logits = self.model.forward_cached(verify, vcache)
        self.stats.verify_steps += 1
        targets = np.argmax(logits.data[0], axis=-1)

        accepted = 0
        while accepted < len(drafts) and drafts[accepted] == int(targets[accepted]):
            accepted += 1
        # Roll both caches back to the committed prefix: the verifier keeps
        # KV for row[:length + accepted]; the drafter keeps at most that.
        vcache.truncate(length + accepted)
        dcache.truncate(min(dcache.seq_len, length + accepted))
        self.stats.accepted += accepted

        done = None
        for token in drafts[:accepted]:
            self.stats.committed += 1
            row.append(token)
            done = state.append(token)
            if done:
                break
        if done is None:
            correction = int(targets[accepted])
            self.stats.committed += 1
            row.append(correction)
            state.append(correction)
        return accepted
