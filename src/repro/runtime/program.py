"""The layer program: one declarative description of a transformer layer.

A :class:`ModelProgram` is the single source of truth for what one forward
pass computes: every named op (projections with their tensor roles and
block grids, attention batched matmuls, norms, streaming elementwise work)
with its shapes and Megatron-style sharding layout.  Two very different
consumers walk the same program:

- the execution driver (:mod:`repro.runtime.driver`), which runs the ops
  against an :class:`~repro.runtime.context.ExecutionContext` (dense or
  factorized weights, cached or not, canonical or mesh-sharded);
- the analytic hardware model (:mod:`repro.hwmodel.workload`), which maps
  each op to FLOP/byte counts for the roofline projection.

Because both derive from this one object, the projection can never drift
from the executed code: decomposing a tensor changes the program, and both
the runtime and the hwmodel see the change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Tuple

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - layering: runtime sits below models
    from repro.models.config import ModelConfig

# Op kinds.  ``proj`` is a GEMM against a weight tensor (dense layers emit
# one, factorized layers three: ``.u1`` / ``.core`` / ``.u2``); the
# ``attn_*`` kinds are the weightless batched matmuls and softmax of
# self-attention; ``norm``, ``embed``, and ``elementwise`` are streaming.
PROJ = "proj"
NORM = "norm"
EMBED = "embed"
ELEMENTWISE = "elementwise"
ATTN_SCORES = "attn_scores"
ATTN_SOFTMAX = "attn_softmax"
ATTN_CONTEXT = "attn_context"

ATTN_KINDS = (ATTN_SCORES, ATTN_SOFTMAX, ATTN_CONTEXT)
OP_KINDS = (PROJ, NORM, EMBED, ELEMENTWISE) + ATTN_KINDS


@dataclass(frozen=True)
class OpSpec:
    """One named op of the layer program (shape-level, batch-free).

    ``parallelism`` / ``shard_dim`` declare the op's Megatron-style layout
    (see :class:`repro.hwmodel.workload.Op` for the vocabulary); the walker
    in :mod:`repro.hwmodel.workload` combines these with a concrete
    (batch, seq_len) to produce FLOP/byte counts.

    For ``proj`` ops ``in_features``/``out_features`` are the GEMM shape
    and ``role`` names the paper tensor (``w_q`` … ``w_d``/``w_out``) the
    weight fills — the key execution contexts use to locate weights.  For
    attention ops ``in_features`` carries the head dim and ``shard_dim``
    the head count.  For ``norm``/``embed``/``elementwise`` ops
    ``in_features`` is the normalized/streamed width.
    """

    name: str
    kind: str
    role: str = ""
    in_features: int = 0
    out_features: int = 0
    parallelism: str = "replicated"
    shard_dim: int = 0

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ConfigError(f"unknown op kind {self.kind!r}")


@dataclass(frozen=True)
class AttentionSpec:
    """Canonical attention geometry of one layer."""

    n_heads: int
    n_kv_heads: int
    head_dim: int
    causal: bool
    rope: bool

    @property
    def kv_group(self) -> int:
        """Query heads served by each KV head (1 = no GQA)."""
        return self.n_heads // self.n_kv_heads


@dataclass(frozen=True)
class LayerProgram:
    """One transformer layer as an ordered tuple of named ops."""

    index: int
    attention: AttentionSpec
    attn_roles: Tuple[str, ...]
    mlp_roles: Tuple[str, ...]
    ops: Tuple[OpSpec, ...]

    @property
    def roles(self) -> Tuple[str, ...]:
        return self.attn_roles + self.mlp_roles

    def projections(self) -> Iterator[OpSpec]:
        for op in self.ops:
            if op.kind == PROJ:
                yield op


@dataclass(frozen=True)
class ModelProgram:
    """A full forward pass: prologue, layers, epilogue."""

    config: ModelConfig
    prologue: Tuple[OpSpec, ...]
    layers: Tuple[LayerProgram, ...]
    epilogue: Tuple[OpSpec, ...]
    decomposed: Dict[Tuple[int, str], int] = field(default_factory=dict)

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    def all_ops(self) -> Iterator[OpSpec]:
        """Every op of the pass in execution order."""
        yield from self.prologue
        for layer in self.layers:
            yield from layer.ops
        yield from self.epilogue

    @property
    def n_ops(self) -> int:
        return sum(1 for _ in self.all_ops())


@dataclass(frozen=True)
class StageProgram:
    """One pipeline stage's contiguous slice of a :class:`ModelProgram`.

    Stage 0 keeps the prologue (embedding), the last stage keeps the
    epilogue (final norm + LM head); middle stages are pure layer runs that
    map hidden states to hidden states.  ``layers`` preserves the parent
    program's layer indices, so per-layer bookkeeping (decomposed rank
    sets, KV caches) stays addressable by global layer id while each stage
    executes — and caches — only its own ``n_layers`` slice.
    """

    config: ModelConfig
    stage: int
    n_stages: int
    layer_lo: int
    layer_hi: int
    prologue: Tuple[OpSpec, ...]
    layers: Tuple[LayerProgram, ...]
    epilogue: Tuple[OpSpec, ...]
    decomposed: Dict[Tuple[int, str], int] = field(default_factory=dict)

    @property
    def has_embedding(self) -> bool:
        return self.stage == 0

    @property
    def has_head(self) -> bool:
        return self.stage == self.n_stages - 1

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def layer_span(self) -> Tuple[int, int]:
        return (self.layer_lo, self.layer_hi)

    def all_ops(self) -> Iterator[OpSpec]:
        """Every op this stage executes, in order."""
        yield from self.prologue
        for layer in self.layers:
            yield from layer.ops
        yield from self.epilogue

    @property
    def n_ops(self) -> int:
        return sum(1 for _ in self.all_ops())


def partition_program(
    program: ModelProgram,
    pp: int,
    cut_points: Optional[Tuple[int, ...]] = None,
) -> Tuple[StageProgram, ...]:
    """Cut a :class:`ModelProgram` into ``pp`` contiguous stage programs.

    Layers split by the same largest-first balance heuristic as the tensor
    block grids (:meth:`DeviceMesh.stage_spans`); ``cut_points`` overrides
    the interior boundaries.  The stages tile the layer range exactly once:
    concatenating their layer tuples reproduces ``program.layers``.
    """
    from repro.parallel.mesh import DeviceMesh

    spans = DeviceMesh(tp=1, pp=pp).stage_spans(program.n_layers, cut_points)
    stages = []
    for stage, (lo, hi) in enumerate(spans):
        stages.append(
            StageProgram(
                config=program.config,
                stage=stage,
                n_stages=pp,
                layer_lo=lo,
                layer_hi=hi,
                prologue=program.prologue if stage == 0 else (),
                layers=program.layers[lo:hi],
                epilogue=program.epilogue if stage == pp - 1 else (),
                decomposed={
                    key: rank
                    for key, rank in program.decomposed.items()
                    if lo <= key[0] < hi
                },
            )
        )
    return tuple(stages)


def role_parallelism(config: ModelConfig, role: str) -> Tuple[str, int]:
    """How a role's GEMM shards: Megatron column/row parallel + granularity.

    Q/K/V and FFN-in are column-parallel (Q by query head, K/V by KV
    head); the attention output and FFN-down are row-parallel (their input
    axis is what shards).  The granularity is the finest splittable unit:
    heads for attention projections, individual columns/rows for the MLP.
    """
    if role == "w_q":
        return ("column", config.n_heads)
    if role in ("w_k", "w_v"):
        return ("column", config.kv_heads)
    if role == "w_so":
        return ("row", config.n_heads)
    if role in ("w_g", "w_u", "w_int"):
        return ("column", config.mlp_hidden)
    if role in ("w_d", "w_out"):
        return ("row", config.mlp_hidden)
    raise ConfigError(f"no tensor-parallel layout for role {role!r}")


def _projection_specs(
    name: str,
    role: str,
    height: int,
    width: int,
    mode: str,
    shard_dim: int,
    rank: Optional[int],
) -> Tuple[OpSpec, ...]:
    """One dense GEMM, or the three GEMMs of a Tucker-2 factor chain.

    The factor chain shards along its contraction-free rank axis: U1
    column-parallel over rank, the core fully sharded, U2 row-parallel over
    rank.  All three bottom out at ``shard_dim=rank``, so low-rank chains
    (rank < n_gpus) stop sharding — decomposition trades away TP scaling.
    """
    if rank is None:
        return (OpSpec(name, PROJ, role, height, width, mode, shard_dim),)
    return (
        OpSpec(f"{name}.u1", PROJ, role, height, rank, "column", rank),
        OpSpec(f"{name}.core", PROJ, role, rank, rank, "sharded", rank),
        OpSpec(f"{name}.u2", PROJ, role, rank, width, "row", rank),
    )


def build_layer_program(
    config: ModelConfig,
    index: int,
    decomposed: Optional[Dict[Tuple[int, str], int]] = None,
) -> LayerProgram:
    """The op list of decoder/encoder layer ``index`` under a rank set."""
    from repro.models.config import ATTENTION_ROLES

    decomposed = decomposed or {}
    prefix = f"layer{index}"
    attention = AttentionSpec(
        n_heads=config.n_heads,
        n_kv_heads=config.kv_heads if config.family == "llama" else config.n_heads,
        head_dim=config.head_dim,
        causal=config.family == "llama",
        rope=config.family == "llama",
    )
    attn_roles = tuple(r for r in config.tensor_roles if r in ATTENTION_ROLES)
    mlp_roles = tuple(r for r in config.tensor_roles if r not in ATTENTION_ROLES)

    ops = [OpSpec(f"{prefix}.attn_norm", NORM, in_features=config.dim)]
    for role in config.tensor_roles:
        height, width = config.tensor_shape(role)
        mode, shard_dim = role_parallelism(config, role)
        ops.extend(
            _projection_specs(
                f"{prefix}.{role}",
                role,
                height,
                width,
                mode,
                shard_dim,
                decomposed.get((index, role)),
            )
        )
    for suffix, kind in (
        ("qk", ATTN_SCORES),
        ("softmax", ATTN_SOFTMAX),
        ("pv", ATTN_CONTEXT),
    ):
        ops.append(
            OpSpec(
                f"{prefix}.attn.{suffix}",
                kind,
                in_features=config.head_dim,
                parallelism="sharded",
                shard_dim=config.n_heads,
            )
        )
    ops.append(OpSpec(f"{prefix}.mlp_norm", NORM, in_features=config.dim))
    # Residual adds and activation functions: streaming traffic only.
    ops.append(OpSpec(f"{prefix}.elementwise", ELEMENTWISE, in_features=config.dim))
    return LayerProgram(
        index=index,
        attention=attention,
        attn_roles=attn_roles,
        mlp_roles=mlp_roles,
        ops=tuple(ops),
    )


def build_model_program(config: ModelConfig, decomposition=None) -> ModelProgram:
    """Flatten one forward pass of ``config`` into a :class:`ModelProgram`.

    ``decomposition`` is an optional
    :class:`~repro.decomposition.config.DecompositionConfig`; decomposed
    (layer, role) pairs contribute their three-GEMM factor chain instead of
    one dense GEMM, exactly as the executed
    :class:`~repro.nn.factorized.FactorizedLinear` does.
    """
    decomposed: Dict[Tuple[int, str], int] = {}
    if decomposition is not None and not decomposition.is_identity:
        decomposition.validate(config)
        decomposed = decomposition.pruned_rank_set()

    prologue = (OpSpec("embed", EMBED, in_features=config.dim),)
    layers = tuple(
        build_layer_program(config, index, decomposed)
        for index in range(config.n_layers)
    )
    epilogue = (
        OpSpec("final_norm", NORM, in_features=config.dim),
        OpSpec(
            "lm_head",
            PROJ,
            role="lm_head",
            in_features=config.dim,
            out_features=config.vocab_size,
            parallelism="column",
            shard_dim=config.vocab_size,
        ),
    )
    return ModelProgram(
        config=config,
        prologue=prologue,
        layers=layers,
        epilogue=epilogue,
        decomposed=decomposed,
    )
