"""Pluggable execution contexts for the runtime driver.

The driver in :mod:`repro.runtime.driver` runs one fixed op schedule — the
layer program — and delegates every weight-touching or topology-dependent
step to an :class:`ExecutionContext`:

- ``project``: the rank's output columns of a (possibly factorized) role
  projection, in the canonical block-grid reduction layout;
- ``norm`` / ``embed`` / ``logits``: the replicated streaming ops;
- ``rope`` / ``expand_kv``: position rotation and GQA head expansion for
  the context's (possibly rank-local) head slice;
- ``gather``: identity on a single device, an all-gather on a mesh.

The canonical single-process context delegates to the model's modules (so
autograd and the fixed ``blocked_project`` reduction layout are preserved
bit for bit), while :class:`repro.parallel.executor.ShardedContext` runs
the same schedule over one rank's weight shard and a collective group.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError
from repro.tensor.tensor import Tensor


def kv_expand_plan(
    n_q_heads: int, kv_group: int, q_start: int = 0, kv_start: int = 0
) -> tuple:
    """The local KV head index serving each query head, precomputed.

    The head-to-head wiring depends only on the context's geometry, so
    every context materializes this once at construction instead of
    re-deriving it (and re-slicing per head) on every attention call.
    """
    return tuple(
        head // kv_group - kv_start for head in range(q_start, q_start + n_q_heads)
    )


def expand_kv_heads(
    x: Tensor,
    n_q_heads: int,
    kv_group: int,
    q_start: int = 0,
    kv_start: int = 0,
    plan: Optional[tuple] = None,
) -> Tensor:
    """Repeat each KV head to serve its group of query heads (GQA).

    Built from basic head slices concatenated along the head axis (not a
    fancy-indexed copy): concatenation guarantees a C-ordered result, so
    the batched matmuls that follow see the same memory layout — and
    produce the same bytes — whether computed over all heads (canonical,
    ``q_start == kv_start == 0``) or over one rank's head run (``q_start``
    the rank's first query head, ``kv_start`` its first covering KV head).

    ``plan`` is an optional precomputed :func:`kv_expand_plan`; passing it
    skips the per-call index derivation.
    """
    if kv_group == 1:
        return x
    if plan is None:
        plan = kv_expand_plan(n_q_heads, kv_group, q_start, kv_start)
    parts = [x[:, local : local + 1] for local in plan]
    return Tensor.concatenate(parts, axis=1)


class ExecutionContext:
    """Strategy bundle the driver runs a layer program against.

    Subclasses fix the weight flavor (dense vs. factorized — resolved per
    role by ``project``), the device topology (``gather`` and the local
    head counts), and the output head (``logits``).  Geometry attributes
    are *local*: a tensor-parallel rank reports only its own head slice.
    """

    n_layers: int
    n_q_heads: int
    n_kv_heads: int
    head_dim: int
    kv_group: int
    causal: bool

    def embed(self, tokens) -> Tensor:
        """Token ids (B, T) to hidden states (B, T, D)."""
        raise NotImplementedError

    def norm(self, layer: int, which: str, x: Tensor) -> Tensor:
        """Pre-sublayer normalization; ``which`` is ``"attn"`` or ``"mlp"``."""
        raise NotImplementedError

    def project(self, layer: int, role: str, x: Tensor) -> Tensor:
        """This context's output columns of the role's blocked projection."""
        raise NotImplementedError

    def rope(self, x: Tensor, offset) -> Tensor:
        """Rotary rotation at absolute positions (identity without RoPE)."""
        return x

    def expand_kv(self, x: Tensor) -> Tensor:
        """GQA expansion restricted to this context's query heads."""
        return expand_kv_heads(
            x,
            self.n_q_heads,
            self.kv_group,
            plan=getattr(self, "_kv_plan", None),
        )

    def gather(self, x: Tensor) -> Tensor:
        """Reassemble a sharded activation (identity on a single device)."""
        return x

    def logits(self, x: Tensor) -> Tensor:
        """Final norm + LM-head projection of (B, T, D) hidden states."""
        raise NotImplementedError


class CanonicalBlocksContext(ExecutionContext):
    """Single-process execution over Llama-style decoder block modules.

    ``blocks`` is any sequence of modules with ``attn_norm`` / ``attn``
    (a :class:`~repro.nn.attention.MultiHeadAttention`) / ``mlp_norm`` /
    ``mlp`` (a :class:`~repro.nn.mlp.SwiGluMLP`) attributes —
    :class:`~repro.models.llama.LlamaBlock` in practice.  All projections
    go through the modules' own ``forward_blocked`` with their stored block
    grids, so gradients flow and the bytes match the pre-runtime forwards
    exactly.  Module lookups are dynamic: swapping a ``Linear`` for a
    :class:`~repro.nn.factorized.FactorizedLinear` (decomposition) is
    picked up without rebuilding the context.
    """

    causal = True
    fast_kind = "canonical"

    def __init__(
        self,
        blocks,
        embed=None,
        logits_fn=None,
        rope=None,
        final_norm=None,
        lm_head=None,
        vocab_edges=None,
    ) -> None:
        self.blocks = list(blocks)
        if not self.blocks:
            raise ConfigError("context needs at least one decoder block")
        attn = self.blocks[0].attn
        self.n_layers = len(self.blocks)
        self.n_q_heads = attn.n_heads
        self.n_kv_heads = attn.n_kv_heads
        self.head_dim = attn.head_dim
        self.kv_group = attn.n_heads // attn.n_kv_heads
        self._kv_plan = kv_expand_plan(self.n_q_heads, self.kv_group)
        self._embed = embed
        self._logits_fn = logits_fn
        self._rope = rope if rope is not None else attn.rope
        # Structured head description for the no-grad fast path (see
        # repro.runtime.fastpath).  ``logits_fn`` stays authoritative for
        # the Tensor-graph path; without these the context simply never
        # takes the fast path.
        self._final_norm = final_norm
        self._lm_head = lm_head
        self._head_edges = tuple(vocab_edges) if vocab_edges else ()

    def embed(self, tokens) -> Tensor:
        if self._embed is None:
            raise ConfigError("this context was built without an embedding")
        return self._embed(tokens)

    def norm(self, layer: int, which: str, x: Tensor) -> Tensor:
        block = self.blocks[layer]
        return block.attn_norm(x) if which == "attn" else block.mlp_norm(x)

    def project(self, layer: int, role: str, x: Tensor) -> Tensor:
        block = self.blocks[layer]
        if role in ("w_q",):
            return block.attn.w_q.forward_blocked(x, block.attn._q_edges)
        if role in ("w_k", "w_v"):
            module = getattr(block.attn, role)
            return module.forward_blocked(x, block.attn._kv_edges)
        if role == "w_so":
            return block.attn.w_so.forward_blocked(x, block.attn._out_edges)
        if role in ("w_g", "w_u"):
            module = getattr(block.mlp, role)
            return module.forward_blocked(x, block.mlp._hidden_edges)
        if role == "w_d":
            return block.mlp.w_d.forward_blocked(x, block.mlp._out_edges)
        raise ConfigError(f"unknown Llama tensor role {role!r}")

    def rope(self, x: Tensor, offset) -> Tensor:
        if self._rope is None:
            return x
        return self._rope.apply(x, offset=offset)

    def logits(self, x: Tensor) -> Tensor:
        if self._logits_fn is None:
            raise ConfigError("this context was built without an output head")
        return self._logits_fn(x)


class AttentionModuleContext(ExecutionContext):
    """Single-layer adapter over one bare :class:`MultiHeadAttention`.

    Lets the encoder (BERT) and standalone attention modules share the
    runtime attention kernel without a surrounding decoder block: only the
    attention-role projections and geometry are wired; norms, MLP, and the
    output head are never consulted by the kernel.
    """

    n_layers = 1

    def __init__(self, attn) -> None:
        self.attn = attn
        self.n_q_heads = attn.n_heads
        self.n_kv_heads = attn.n_kv_heads
        self.head_dim = attn.head_dim
        self.kv_group = attn.n_heads // attn.n_kv_heads
        self._kv_plan = kv_expand_plan(self.n_q_heads, self.kv_group)
        self.causal = attn.causal

    def project(self, layer: int, role: str, x: Tensor) -> Tensor:
        if role == "w_q":
            return self.attn.w_q.forward_blocked(x, self.attn._q_edges)
        if role in ("w_k", "w_v"):
            module = getattr(self.attn, role)
            return module.forward_blocked(x, self.attn._kv_edges)
        if role == "w_so":
            return self.attn.w_so.forward_blocked(x, self.attn._out_edges)
        raise ConfigError(f"attention context has no role {role!r}")

    def rope(self, x: Tensor, offset) -> Tensor:
        if self.attn.rope is None:
            return x
        return self.attn.rope.apply(x, offset=offset)

    def __repr__(self) -> str:
        return f"AttentionModuleContext({self.attn!r})"


__all__ = [
    "AttentionModuleContext",
    "CanonicalBlocksContext",
    "ExecutionContext",
    "expand_kv_heads",
    "kv_expand_plan",
]
