"""repro.runtime — the shared layer-program execution layer.

One :class:`ModelProgram` (declarative: named ops, shapes, roles, sharding
layouts) is consumed by two walkers that can therefore never drift apart:
the execution driver (:func:`run_model` over an :class:`ExecutionContext`)
and the analytic hardware model (:mod:`repro.hwmodel.workload`).  One
:class:`DecodeSession` owns the greedy generation loop every frontend
(model API, evaluation harness, serving engine, tensor-parallel facade)
drives.
"""

from repro.runtime.context import (
    AttentionModuleContext,
    CanonicalBlocksContext,
    ExecutionContext,
    expand_kv_heads,
    kv_expand_plan,
)
from repro.runtime.decode import DecodeSession, DecodeState
from repro.runtime.driver import (
    ModelRuntime,
    attention,
    causal_mask,
    run_layer,
    run_model,
    swiglu_mlp,
)
from repro.runtime.profiler import OpProfiler
from repro.runtime.speculative import (
    SpecStats,
    SpeculativeConfig,
    SpeculativeSession,
)
from repro.runtime.workspace import Workspace
from repro.runtime.program import (
    AttentionSpec,
    LayerProgram,
    ModelProgram,
    OpSpec,
    build_layer_program,
    build_model_program,
    role_parallelism,
)

__all__ = [
    "AttentionModuleContext",
    "AttentionSpec",
    "CanonicalBlocksContext",
    "DecodeSession",
    "DecodeState",
    "ExecutionContext",
    "LayerProgram",
    "ModelProgram",
    "ModelRuntime",
    "OpProfiler",
    "OpSpec",
    "SpecStats",
    "SpeculativeConfig",
    "SpeculativeSession",
    "Workspace",
    "attention",
    "build_layer_program",
    "build_model_program",
    "causal_mask",
    "expand_kv_heads",
    "kv_expand_plan",
    "role_parallelism",
    "run_layer",
    "run_model",
    "swiglu_mlp",
]
