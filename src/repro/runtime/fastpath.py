"""No-grad inference fast path for the runtime driver.

:func:`repro.runtime.driver.run_model` dispatches here when gradients
cannot be needed: the kernels below execute the same layer schedule as the
Tensor-graph driver directly on raw ``np.ndarray``s — no autograd nodes,
no backward closures, and (after warmup) no per-step allocation, since
every intermediate is written with ``out=`` into a
:class:`~repro.runtime.workspace.Workspace` buffer.

Selection rule
--------------
A context takes the fast path when all of the following hold:

- the module-level switch is enabled (see :func:`disabled`);
- the context declares a ``fast_kind`` (``"canonical"`` for
  :class:`~repro.runtime.context.CanonicalBlocksContext` built with an
  output head, ``"sharded"`` for the tensor-parallel rank context);
- for canonical contexts, the model is in eval mode (``module.eval()``)
  and every projection is a recognized ``Linear`` / ``FactorizedLinear`` /
  ``QuantizedLinear`` / ``QuantizedFactorizedLinear`` flavor.  Training
  forwards (``model.train()``) always keep the Tensor-graph path so
  autograd works unchanged.

Quantized projections store int8 grids with per-output-column fp32
scales.  Their kernels dequantize into the workspace's tag-validated
dequant cache (see :meth:`~repro.runtime.workspace.Workspace.cache`):
each projection's fp32 block is materialized once and reused across
decode steps while the grid identity is unchanged, so the warm loop
runs pure GEMVs.  The cache has an explicit byte budget; once exhausted,
kernels stream one column block at a time through shared scratch
(bounded by the largest block, never a full fp32 weight copy) at the
cost of per-step dequantization.  Elementwise dequantization of a block
equals the same columns of the full dequantized matrix, and sgemm
results are independent of the operand's parent stride, so cached and
streaming modes are both bit-identical to the Tensor path dequantizing
the whole grid.

Weight arrays are *referenced*, never copied, so in-place optimizer
updates are picked up automatically; a cheap id-based signature is checked
per forward so decomposition swaps (``Linear`` -> ``FactorizedLinear``)
and ``load_state_dict`` rebinds trigger a rebuild of the cached views.

Bit-for-bit contract
--------------------
Every kernel mirrors the Tensor path's exact NumPy op sequence: identical
ufuncs in identical order with identical float32 scalar operands, GEMMs
against the *same* weight views (layouts included — BLAS results are not
layout-invariant), and ``out=`` targets whose 2-D cores keep BLAS-
compatible strides so NumPy never falls back to its differently-ordered
non-BLAS loop.  Logits from this path are byte-identical to the Tensor
driver across all three cache regimes and all world sizes; the identity
sweep in ``tests/runtime/test_fastpath.py`` enforces it.

The returned logits array is always freshly allocated (callers hold it
across steps); everything else lives in the arena.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.runtime.profiler import OpProfiler
from repro.runtime.workspace import Workspace

NEG_INF = -1e9  # matches repro.runtime.driver.NEG_INF
_NEG_INF32 = np.asarray(NEG_INF, dtype=np.float32)
_RMS_EPS = 1e-6  # matches repro.parallel.executor._RMS_EPS

_ENABLED = True


@contextmanager
def disabled():
    """Force the Tensor-graph path (used by benchmarks and identity tests)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


def enable_profiling(ctx) -> OpProfiler:
    """Attach (or return) the :class:`OpProfiler` recording ``ctx``'s ops."""
    profiler = ctx.__dict__.get("_fast_profiler")
    if profiler is None:
        profiler = OpProfiler()
        ctx._fast_profiler = profiler
    return profiler


def disable_profiling(ctx) -> None:
    ctx.__dict__.pop("_fast_profiler", None)


def workspace_of(ctx) -> Optional[Workspace]:
    """The context's arena, once a fast forward has run (else None)."""
    state = ctx.__dict__.get("_fast_state")
    return None if state is None else state.ws


# ---------------------------------------------------------------------------
# Extracted weight views
# ---------------------------------------------------------------------------

class FastProjection:
    """One role's weight views in the canonical blocked layout.

    Exactly one of ``weight`` / ``grid`` is set: fp32 storage keeps the
    dense weight (or U2 of a factor chain) in ``weight``; quantized
    storage keeps the int8 grid in ``grid`` with per-output-column fp32
    ``scales``.  A quantized factor chain additionally carries grid +
    scales for the replicated U1/core prefix.
    """

    __slots__ = ("weight", "edges", "bias", "u1", "core",
                 "grid", "scales", "u1_grid", "u1_scales",
                 "core_grid", "core_scales", "out_width", "key")

    def __init__(self, weight, edges, bias=None, u1=None, core=None,
                 grid=None, scales=None, u1_grid=None, u1_scales=None,
                 core_grid=None, core_scales=None, key="") -> None:
        self.weight = weight      # dense weight, or U2 for a factor chain
        self.edges = tuple(edges)
        self.bias = bias
        self.u1 = u1
        self.core = core
        self.grid = grid          # int8 dense grid, or U2 grid (quantized)
        self.scales = scales
        self.u1_grid = u1_grid
        self.u1_scales = u1_scales
        self.core_grid = core_grid
        self.core_scales = core_scales
        self.out_width = weight.shape[1] if weight is not None else grid.shape[1]
        self.key = key            # stable per-projection dequant-cache key


class FastLayer:
    __slots__ = ("attn_norm", "attn_eps", "mlp_norm", "mlp_eps", "proj")

    def __init__(self, attn_norm, attn_eps, mlp_norm, mlp_eps, proj) -> None:
        self.attn_norm = attn_norm
        self.attn_eps = attn_eps
        self.mlp_norm = mlp_norm
        self.mlp_eps = mlp_eps
        self.proj = proj          # role -> FastProjection


class FastHead:
    """Final norm + LM head: a blocked projection or a tied-table slice."""

    __slots__ = ("norm", "eps", "proj", "tied", "edges", "width")

    def __init__(self, norm, eps, proj=None, tied=None, edges=(), width=0) -> None:
        self.norm = norm
        self.eps = eps
        self.proj = proj          # FastProjection (untied head)
        self.tied = tied          # (D, V)-transposed embedding view (tied head)
        self.edges = tuple(edges)
        self.width = width


class FastState:
    """Everything one context needs to run the no-graph kernels."""

    __slots__ = (
        "ctx", "sig", "ws", "embed_table", "embed_checked", "layers", "head",
        "rope", "gather", "plan", "scale", "inv_dim", "n_layers", "n_q_heads",
        "n_kv_heads", "head_dim", "kv_group", "causal",
    )

    def __init__(self, ctx, sig, ws, embed_table, embed_checked, layers, head,
                 rope, gather, plan, model_dim=None) -> None:
        self.ctx = ctx
        self.sig = sig
        self.ws = ws
        self.embed_table = embed_table
        self.embed_checked = embed_checked
        self.layers: List[FastLayer] = layers
        self.head: Optional[FastHead] = head
        self.rope = rope
        self.gather: Optional[Callable] = gather
        self.plan: Tuple[int, ...] = plan
        self.n_layers = ctx.n_layers
        self.n_q_heads = ctx.n_q_heads
        self.n_kv_heads = ctx.n_kv_heads
        self.head_dim = ctx.head_dim
        self.kv_group = ctx.kv_group
        self.causal = ctx.causal
        # float32 constants mirroring the Tensor path's scalar coercions.
        # A middle pipeline stage carries no embedding table, so the norm's
        # 1/D constant comes from the explicit model width instead.
        self.scale = np.float32(1.0 / float(np.sqrt(ctx.head_dim)))
        if model_dim is None:
            model_dim = embed_table.shape[1]
        self.inv_dim = np.float32(1.0 / model_dim)


_CANONICAL_ROLES = (
    ("w_q", "attn", "_q_edges"),
    ("w_k", "attn", "_kv_edges"),
    ("w_v", "attn", "_kv_edges"),
    ("w_so", "attn", "_out_edges"),
    ("w_g", "mlp", "_hidden_edges"),
    ("w_u", "mlp", "_hidden_edges"),
    ("w_d", "mlp", "_out_edges"),
)


def _module_sig(module) -> Optional[tuple]:
    """Identity tuple of a recognized projection flavor (None: unknown)."""
    bias = getattr(module, "bias", None)
    bias_id = 0 if bias is None else id(bias.data)
    grid = getattr(module, "grid", None)
    if grid is not None:
        return (id(module), id(grid), id(module.scales), bias_id)
    u2_grid = getattr(module, "u2_grid", None)
    if u2_grid is not None:
        return (id(module), id(module.u1_grid), id(module.core_grid),
                id(u2_grid), bias_id)
    u1 = getattr(module, "u1", None)
    if u1 is not None:
        return (id(module), id(u1.data), id(module.core.data),
                id(module.u2.data), bias_id)
    weight = getattr(module, "weight", None)
    if weight is None:
        return None
    return (id(module), id(weight.data), bias_id)


def _canonical_signature(ctx) -> Optional[tuple]:
    """Cheap per-forward eligibility + invalidation key (None: Tensor path)."""
    blocks = ctx.blocks
    if getattr(blocks[0], "training", True):
        return None
    if ctx._embed is None or ctx._final_norm is None or not ctx._head_edges:
        return None
    try:
        parts = [id(ctx._embed.weight.data), id(ctx._final_norm.weight.data)]
        head = ctx._lm_head
        if head is not None:
            sig = _module_sig(head)
            if sig is None:
                return None
            parts.extend(sig)
        for block in blocks:
            parts.append(id(block.attn_norm.weight.data))
            parts.append(id(block.mlp_norm.weight.data))
            for role, owner_name, _ in _CANONICAL_ROLES:
                sig = _module_sig(getattr(getattr(block, owner_name), role))
                if sig is None:
                    return None
                parts.extend(sig)
    except AttributeError:
        return None
    return tuple(parts)


def _fast_projection(module, edges, key="") -> FastProjection:
    bias = getattr(module, "bias", None)
    bias_arr = None if bias is None else bias.data
    if getattr(module, "grid", None) is not None:
        return FastProjection(None, edges, bias_arr,
                              grid=module.grid, scales=module.scales, key=key)
    if getattr(module, "u2_grid", None) is not None:
        return FastProjection(None, edges, bias_arr,
                              grid=module.u2_grid, scales=module.u2_scales,
                              u1_grid=module.u1_grid,
                              u1_scales=module.u1_scales,
                              core_grid=module.core_grid,
                              core_scales=module.core_scales, key=key)
    if getattr(module, "u1", None) is not None:
        return FastProjection(module.u2.data, edges, bias_arr,
                              u1=module.u1.data, core=module.core.data)
    return FastProjection(module.weight.data, edges, bias_arr)


def _build_canonical(ctx, sig, ws) -> Optional[FastState]:
    layers = []
    for index, block in enumerate(ctx.blocks):
        proj = {}
        for role, owner_name, edges_attr in _CANONICAL_ROLES:
            owner = getattr(block, owner_name)
            proj[role] = _fast_projection(getattr(owner, role),
                                          getattr(owner, edges_attr),
                                          key=f"L{index}.{role}")
        layers.append(FastLayer(
            block.attn_norm.weight.data, np.float32(block.attn_norm.eps),
            block.mlp_norm.weight.data, np.float32(block.mlp_norm.eps),
            proj,
        ))
    final_norm = ctx._final_norm
    if ctx._lm_head is not None:
        head = FastHead(final_norm.weight.data, np.float32(final_norm.eps),
                        proj=_fast_projection(ctx._lm_head, ctx._head_edges,
                                              key="head"))
    else:
        tied = ctx._embed.weight.data.T
        head = FastHead(final_norm.weight.data, np.float32(final_norm.eps),
                        tied=tied, edges=ctx._head_edges, width=tied.shape[1])
    return FastState(
        ctx, sig, ws,
        embed_table=ctx._embed.weight.data, embed_checked=True,
        layers=layers, head=head, rope=ctx._rope, gather=None,
        plan=ctx._kv_plan,
    )


def _from_shard(ps, key="") -> FastProjection:
    if getattr(ps, "grid", None) is not None:
        return FastProjection(None, ps.edges, ps.bias,
                              grid=ps.grid, scales=ps.scales,
                              u1_grid=ps.u1_grid, u1_scales=ps.u1_scales,
                              core_grid=ps.core_grid,
                              core_scales=ps.core_scales, key=key)
    if ps.factorized:
        return FastProjection(ps.weight, ps.edges, ps.bias,
                              u1=ps.u1, core=ps.core)
    return FastProjection(ps.weight, ps.edges, ps.bias)


def _build_sharded(ctx, sig, ws) -> FastState:
    shard = ctx.shard
    layers = []
    for index, layer_shard in enumerate(shard.layers):
        proj = {}
        for role in ("w_q", "w_k", "w_v", "w_so", "w_g", "w_u", "w_d"):
            proj[role] = _from_shard(getattr(layer_shard, role),
                                     key=f"L{index}.{role}")
        layers.append(FastLayer(
            layer_shard.attn_norm, np.float32(_RMS_EPS),
            layer_shard.mlp_norm, np.float32(_RMS_EPS),
            proj,
        ))
    if not shard.has_head:
        # A non-last pipeline stage returns hidden states — no head.
        head = None
    elif shard.lm_head is not None:
        head = FastHead(shard.final_norm, np.float32(_RMS_EPS),
                        proj=_from_shard(shard.lm_head, key="head"))
    else:
        # Tied head: GLOBAL vocab edges slice the full transposed table;
        # the rank's output chunk is packed contiguously (executor layout).
        head = FastHead(shard.final_norm, np.float32(_RMS_EPS),
                        tied=shard.embed.T, edges=shard.vocab_edges,
                        width=shard.vocab_hi - shard.vocab_lo)
    group, rank = ctx.group, ctx.rank

    def gather(array: np.ndarray) -> np.ndarray:
        return group.all_gather(rank, array, axis=-1)

    return FastState(
        ctx, sig, ws,
        embed_table=shard.embed, embed_checked=False,
        layers=layers, head=head, rope=ctx._rope, gather=gather,
        plan=ctx._kv_plan, model_dim=shard.config.dim,
    )


def active_state(ctx) -> Optional[FastState]:
    """The context's (possibly rebuilt) fast state, or None for Tensor path."""
    if not _ENABLED:
        return None
    kind = getattr(ctx, "fast_kind", None)
    if kind is None:
        return None
    state = ctx.__dict__.get("_fast_state")
    if kind == "canonical":
        sig = _canonical_signature(ctx)
        if sig is None:
            return None
        if state is not None and state.sig == sig:
            return state
        ws = Workspace() if state is None else state.ws
        state = _build_canonical(ctx, sig, ws)
    elif kind == "sharded":
        if state is not None:
            return state
        state = _build_sharded(ctx, ("sharded",), Workspace())
    else:
        return None
    if state is not None:
        ctx._fast_state = state
    return state


# ---------------------------------------------------------------------------
# Profiling regions
# ---------------------------------------------------------------------------

class _Region:
    """Null-safe op-region timer; near-free when no profiler is attached."""

    __slots__ = ("prof", "ws", "_t0", "_b0")

    def __init__(self, prof, ws) -> None:
        self.prof = prof
        self.ws = ws
        self._t0 = 0.0
        self._b0 = 0

    def start(self) -> None:
        if self.prof is not None:
            self._b0 = self.ws.bytes_allocated
            self._t0 = perf_counter()

    def stop(self, name: str) -> None:
        if self.prof is not None:
            self.prof.add(name, perf_counter() - self._t0,
                          self.ws.bytes_allocated - self._b0)


# ---------------------------------------------------------------------------
# Kernels — each mirrors the Tensor path's numpy op stream exactly
# ---------------------------------------------------------------------------

def _blocked_into(x: np.ndarray, weight: np.ndarray, edges, out: np.ndarray) -> None:
    """``blocked_project`` into ``out``: one GEMM per column block.

    Writing each block straight into ``out[..., a:b]`` is value-identical
    to fresh-array-then-concatenate: the slice keeps a unit inner stride,
    so BLAS runs with a wider ldc — and sgemm results are ldc-independent.
    """
    if len(edges) == 1:
        np.matmul(x, weight, out=out)
        return
    for a, b in edges:
        np.matmul(x, weight[:, a:b], out=out[..., a:b])


def _dequant_scratch(ws: Workspace, grid: np.ndarray, scales: np.ndarray,
                     name: str) -> np.ndarray:
    """Dequantize a whole (small) grid into a reusable workspace buffer.

    ``int8 * fp32-scale`` with an fp32 ``out=`` is elementwise-identical
    to ``grid.astype(float32) * scales[None, :]`` — the Tensor reference's
    dequantization — so GEMMs against the scratch see the same bytes.
    """
    out = ws.buf(name, grid.shape)
    np.multiply(grid, scales[None, :], out=out)
    return out


def _dequant(ws: Workspace, grid: np.ndarray, scales: np.ndarray,
             key: str, scratch: str) -> np.ndarray:
    """The grid's fp32 dequantization, cached when the budget allows.

    A cache hit with an unchanged (grid, scales) identity costs nothing —
    the warm decode loop then runs pure GEMVs on previously dequantized
    weights, which is what keeps quantized decode within a hair of the
    fp32 fast path (NumPy's elementwise int8→fp32 multiply costs several
    times the GEMV it would feed).  Over budget, every call streams
    through shared :meth:`Workspace.buf` scratch instead.  Cached or
    streamed, the buffer holds exactly ``fl(grid * scales)`` — the same
    operand bytes — so bit identity is unaffected by the caching policy.
    """
    cached = ws.cache(key, grid.shape, (id(grid), id(scales)))
    if cached is None:
        return _dequant_scratch(ws, grid, scales, scratch)
    out, fresh = cached
    if fresh:
        np.multiply(grid, scales[None, :], out=out)
    return out


def _quant_blocked_into(ws: Workspace, x: np.ndarray, p: FastProjection,
                        out: np.ndarray) -> None:
    """Quantized ``blocked_project``: dequantize, then GEMM per block.

    With dequant-cache budget the full grid is dequantized once and column
    blocks are GEMMed as slices (sgemm results are independent of the
    operand's parent stride).  Over budget, the scratch holds one column
    block at a time — bounded by the largest block, never a full fp32 copy
    of the weight.  A block's dequantized values equal the same columns of
    the full dequantized matrix, so both modes are bit-identical to
    :func:`_blocked_into` over the full dequant.
    """
    grid, scales = p.grid, p.scales
    cached = ws.cache("deq." + p.key, grid.shape, (id(grid), id(scales)))
    if cached is not None:
        w, fresh = cached
        if fresh:
            np.multiply(grid, scales[None, :], out=w)
        _blocked_into(x, w, p.edges, out)
        return
    if len(p.edges) == 1:
        w = _dequant_scratch(ws, grid, scales, "deq.blk")
        np.matmul(x, w, out=out)
        return
    for a, b in p.edges:
        w = ws.buf("deq.blk", (grid.shape[0], b - a))
        np.multiply(grid[:, a:b], scales[a:b][None, :], out=w)
        np.matmul(x, w, out=out[..., a:b])


def _quant_prefix(ws: Workspace, p: FastProjection, x: np.ndarray,
                  name: str) -> np.ndarray:
    """The factor chain's ``(x @ U1) @ core`` on dequantized factors."""
    u1 = _dequant(ws, p.u1_grid, p.u1_scales, "deq." + p.key + ".u1", "deq.u1")
    core = _dequant(ws, p.core_grid, p.core_scales,
                    "deq." + p.key + ".core", "deq.core")
    low = ws.buf(name + ".r1", x.shape[:-1] + (u1.shape[1],))
    np.matmul(x, u1, out=low)
    mid = ws.buf(name + ".r2", x.shape[:-1] + (core.shape[1],))
    np.matmul(low, core, out=mid)
    return mid


def _project(state: FastState, layer: int, role: str, x: np.ndarray,
             name: str, region: _Region) -> np.ndarray:
    p = state.layers[layer].proj[role]
    ws = state.ws
    region.start()
    if p.u1_grid is not None:
        x = _quant_prefix(ws, p, x, name)
    elif p.u1 is not None:
        low = ws.buf(name + ".r1", x.shape[:-1] + (p.u1.shape[1],))
        np.matmul(x, p.u1, out=low)
        mid = ws.buf(name + ".r2", x.shape[:-1] + (p.core.shape[1],))
        np.matmul(low, p.core, out=mid)
        x = mid
    out = ws.buf(name, x.shape[:-1] + (p.out_width,))
    if p.grid is not None:
        _quant_blocked_into(ws, x, p, out)
    else:
        _blocked_into(x, p.weight, p.edges, out)
    if p.bias is not None:
        np.add(out, p.bias, out=out)
    region.stop(f"layer{layer}.{role}")
    return out


def _rms_norm(state: FastState, x: np.ndarray, weight: np.ndarray,
              eps: np.float32) -> np.ndarray:
    # Mirrors F.rms_norm: x * ((x*x).mean(-1, keepdims) + eps)**-0.5 * w,
    # with mean computed as sum * float32(1/D) exactly like Tensor.mean.
    ws = state.ws
    squares = ws.buf("norm.sq", x.shape)
    np.multiply(x, x, out=squares)
    stat = ws.buf("norm.stat", x.shape[:-1] + (1,))
    np.sum(squares, axis=-1, keepdims=True, out=stat)
    np.multiply(stat, state.inv_dim, out=stat)
    np.add(stat, eps, out=stat)
    np.power(stat, -0.5, out=stat)
    out = ws.buf("normed", x.shape)
    np.multiply(x, stat, out=out)
    np.multiply(out, weight, out=out)
    return out


def _embed(state: FastState, ids: np.ndarray, region: _Region) -> np.ndarray:
    region.start()
    table = state.embed_table
    if state.embed_checked:
        # Mirrors Embedding.forward's validation, messages included.
        if not np.issubdtype(ids.dtype, np.integer):
            raise ShapeError(f"embedding ids must be integers, got {ids.dtype}")
        n = table.shape[0]
        if ids.min(initial=0) < 0 or ids.max(initial=0) >= n:
            raise ShapeError(
                f"embedding ids out of range [0, {n}): "
                f"[{ids.min()}, {ids.max()}]"
            )
    out = state.ws.buf("x", ids.shape + (table.shape[1],))
    np.take(table, ids, axis=0, out=out)
    region.stop("embed")
    return out


def _rope_apply(state: FastState, x: np.ndarray, offset, name: str) -> np.ndarray:
    # Mirrors RotaryEmbedding.apply: same table views/gathers, and the
    # rotation as mul/mul/sub + mul/mul/add (a - b == a + (-b) bitwise).
    rope = state.rope
    if rope is None:
        return x
    ws = state.ws
    batch, _, seq_len, dim = x.shape
    half = dim // 2
    if np.ndim(offset) == 0:
        offset = int(offset)
        if offset < 0 or offset + seq_len > rope.max_seq_len:
            raise ShapeError(
                f"positions [{offset}, {offset + seq_len}) exceed RoPE table "
                f"{rope.max_seq_len}"
            )
        cos = rope._cos[offset : offset + seq_len][None, None, :, :]
        sin = rope._sin[offset : offset + seq_len][None, None, :, :]
    else:
        offsets = np.asarray(offset, dtype=np.int64)
        if offsets.shape != (batch,):
            raise ShapeError(
                f"per-row offsets must have shape ({batch},), got {offsets.shape}"
            )
        if np.any(offsets < 0) or np.any(offsets >= rope.max_seq_len):
            raise ShapeError(
                f"row offsets {offsets} exceed RoPE table {rope.max_seq_len}"
            )
        positions = offsets[:, None] + np.arange(seq_len, dtype=np.int64)[None, :]
        np.minimum(positions, rope.max_seq_len - 1, out=positions)
        cos = ws.buf("rope.cos", (batch, seq_len, half))
        sin = ws.buf("rope.sin", (batch, seq_len, half))
        np.take(rope._cos, positions, axis=0, out=cos)
        np.take(rope._sin, positions, axis=0, out=sin)
        cos = cos[:, None, :, :]
        sin = sin[:, None, :, :]
    out = ws.buf(name, x.shape)
    scratch = ws.buf("rope.tmp", x.shape[:-1] + (half,))
    x1 = x[..., :half]
    x2 = x[..., half:]
    first = out[..., :half]
    second = out[..., half:]
    np.multiply(x1, cos, out=first)
    np.multiply(x2, sin, out=scratch)
    np.subtract(first, scratch, out=first)
    np.multiply(x2, cos, out=second)
    np.multiply(x1, sin, out=scratch)
    np.add(second, scratch, out=second)
    return out


def _expand_kv(state: FastState, x: np.ndarray, name: str) -> np.ndarray:
    # The expansion *plan* (which local KV head serves each query head) is
    # hoisted to context construction; here it drives plain head copies
    # into a capacity-backed buffer — value-identical to the Tensor path's
    # slice-concatenate, which also materializes a (B, Hq, T, Dh) copy.
    if state.kv_group == 1:
        return x
    batch, _, total, head_dim = x.shape
    out = state.ws.seq_buf(name, (batch, state.n_q_heads, total, head_dim), axis=2)
    for q_head, local in enumerate(state.plan):
        out[:, q_head] = x[:, local]
    return out


def _softmax_inplace(state: FastState, scores: np.ndarray) -> None:
    # Mirrors F.softmax: subtract running max (x + (-max) == x - max
    # bitwise), exp, divide by the sum.  Reductions run over the
    # contiguous last axis exactly as on a fresh array.
    stat = state.ws.buf("softmax.stat", scores.shape[:-1] + (1,))
    np.max(scores, axis=-1, keepdims=True, out=stat)
    np.subtract(scores, stat, out=scores)
    np.exp(scores, out=scores)
    np.sum(scores, axis=-1, keepdims=True, out=stat)
    np.divide(scores, stat, out=scores)


def _split_heads(x: np.ndarray, batch: int, seq_len: int, n_heads: int,
                 head_dim: int) -> np.ndarray:
    return x.reshape(batch, seq_len, n_heads, head_dim).transpose(0, 2, 1, 3)


def _finish_attention(state: FastState, layer: int, scores: np.ndarray,
                      values: np.ndarray, batch: int, seq_len: int,
                      region: _Region) -> np.ndarray:
    ws = state.ws
    head_dim = state.head_dim
    context = ws.buf("attn.ctx", (batch, state.n_q_heads, seq_len, head_dim))
    region.start()
    np.matmul(scores, values, out=context)
    region.stop(f"layer{layer}.attn.pv")
    region.start()
    merged = ws.buf("attn.merged", (batch, seq_len, state.n_q_heads * head_dim))
    np.copyto(merged.reshape(batch, seq_len, state.n_q_heads, head_dim),
              context.transpose(0, 2, 1, 3))
    if state.gather is not None:
        merged = state.gather(merged)
    region.stop(f"layer{layer}.attn.merge")
    out = _project(state, layer, "w_so", merged, "attn.out", region)
    if state.gather is not None:
        out = state.gather(out)
    return out


def _attention_dense(state: FastState, layer: int, x: np.ndarray,
                     pad_mask, cache, region: _Region) -> np.ndarray:
    from repro.runtime.driver import causal_mask

    ws = state.ws
    batch, seq_len, _ = x.shape
    offset = 0 if cache is None else cache.seq_len
    head_dim = state.head_dim
    q = _project(state, layer, "w_q", x, "q", region)
    k = _project(state, layer, "w_k", x, "k", region)
    v = _project(state, layer, "w_v", x, "v", region)
    qh = _split_heads(q, batch, seq_len, state.n_q_heads, head_dim)
    kh = _split_heads(k, batch, seq_len, state.n_kv_heads, head_dim)
    vh = _split_heads(v, batch, seq_len, state.n_kv_heads, head_dim)
    region.start()
    qh = _rope_apply(state, qh, offset, "q.rot")
    kh = _rope_apply(state, kh, offset, "k.rot")
    region.stop(f"layer{layer}.attn.rope")
    if cache is not None:
        region.start()
        keys, values = cache.append(kh, vh)
        region.stop(f"layer{layer}.attn.cache")
    else:
        keys, values = kh, vh
    total = offset + seq_len
    region.start()
    keys = _expand_kv(state, keys, "k.exp")
    values = _expand_kv(state, values, "v.exp")
    region.stop(f"layer{layer}.attn.expand")
    scores = ws.seq_buf("scores", (batch, state.n_q_heads, seq_len, total), axis=3)
    region.start()
    np.matmul(qh, keys.transpose(0, 1, 3, 2), out=scores)
    np.multiply(scores, state.scale, out=scores)
    region.stop(f"layer{layer}.attn.qk")
    region.start()
    # A single cached decode step attends everything before it — no mask.
    if state.causal and (seq_len > 1 or cache is None):
        mask = causal_mask(seq_len, offset=offset)
        np.copyto(scores, _NEG_INF32, where=mask[None, None, :, :])
    if pad_mask is not None:
        pad = np.asarray(pad_mask, dtype=bool)
        expected = (batch, offset + seq_len if cache is not None else seq_len)
        if pad.shape != expected:
            raise ShapeError(f"pad_mask shape {pad.shape} != {expected}")
        np.copyto(scores, _NEG_INF32, where=pad[:, None, None, :])
    _softmax_inplace(state, scores)
    region.stop(f"layer{layer}.attn.softmax")
    return _finish_attention(state, layer, scores, values, batch, seq_len, region)


def _attention_ragged(state: FastState, layer: int, x: np.ndarray,
                      ragged, region: _Region) -> np.ndarray:
    if not state.causal:
        raise ShapeError("ragged cached attention requires a causal decoder")
    ws = state.ws
    batch, max_new, _ = x.shape
    if len(ragged) != batch:
        raise ShapeError(
            f"ragged batch mismatch: {batch} rows, {len(ragged)} caches"
        )
    lengths = ragged.new_lengths
    if np.any(lengths < 1) or np.any(lengths > max_new):
        raise ShapeError(f"row lengths {lengths} out of range [1, {max_new}]")
    offsets = ragged.offsets
    head_dim = state.head_dim
    q = _project(state, layer, "w_q", x, "q", region)
    k = _project(state, layer, "w_k", x, "k", region)
    v = _project(state, layer, "w_v", x, "v", region)
    qh = _split_heads(q, batch, max_new, state.n_q_heads, head_dim)
    kh = _split_heads(k, batch, max_new, state.n_kv_heads, head_dim)
    vh = _split_heads(v, batch, max_new, state.n_kv_heads, head_dim)
    region.start()
    qh = _rope_apply(state, qh, offsets, "q.rot")
    kh = _rope_apply(state, kh, offsets, "k.rot")
    region.stop(f"layer{layer}.attn.rope")
    totals = offsets + lengths
    # pad_to floors the padded width so a pipeline's row-microbatches
    # reduce over exactly the widths the full-batch pass would.
    max_total = max(int(totals.max()), getattr(ragged, "pad_to", 0))
    # zero=True: freshly grown capacity starts as exact 0.0f (never NaN
    # garbage).  Stale finite values beyond a row's extent are harmless:
    # those key positions are masked, their softmax weight underflows to
    # exactly 0.0, and 0.0 * finite == 0.0 bit for bit.
    full_k = ws.seq_buf("ragged.k", (batch, state.n_kv_heads, max_total, head_dim),
                        axis=2, zero=True)
    full_v = ws.seq_buf("ragged.v", (batch, state.n_kv_heads, max_total, head_dim),
                        axis=2, zero=True)
    region.start()
    for row, cache in enumerate(ragged.caches):
        valid = int(lengths[row])
        row_keys, row_values = cache.append(
            kh[row : row + 1, :, :valid], vh[row : row + 1, :, :valid]
        )
        full_k[row, :, : totals[row]] = row_keys[0]
        full_v[row, :, : totals[row]] = row_values[0]
    region.stop(f"layer{layer}.attn.cache")
    region.start()
    keys = _expand_kv(state, full_k, "k.exp")
    values = _expand_kv(state, full_v, "v.exp")
    region.stop(f"layer{layer}.attn.expand")
    scores = ws.seq_buf("scores", (batch, state.n_q_heads, max_new, max_total),
                        axis=3)
    region.start()
    np.matmul(qh, keys.transpose(0, 1, 3, 2), out=scores)
    np.multiply(scores, state.scale, out=scores)
    region.stop(f"layer{layer}.attn.qk")
    region.start()
    key_pos = np.arange(max_total, dtype=np.int64)[None, None, :]
    query_pos = (
        offsets[:, None, None] + np.arange(max_new, dtype=np.int64)[None, :, None]
    )
    invalid = (key_pos > query_pos) | (key_pos >= totals[:, None, None])
    np.copyto(scores, _NEG_INF32, where=invalid[:, None, :, :])
    _softmax_inplace(state, scores)
    region.stop(f"layer{layer}.attn.softmax")
    return _finish_attention(state, layer, scores, values, batch, max_new, region)


def _swiglu_mlp(state: FastState, layer: int, x: np.ndarray,
                region: _Region) -> np.ndarray:
    gate = _project(state, layer, "w_g", x, "mlp.gate", region)
    up = _project(state, layer, "w_u", x, "mlp.up", region)
    region.start()
    # Mirrors F.silu(gate) * up: sigmoid as 1/(1 + exp(-g)), then g * sig,
    # then * up — same ufuncs, same order.
    act = state.ws.buf("mlp.act", gate.shape)
    np.negative(gate, out=act)
    np.exp(act, out=act)
    np.add(act, 1.0, out=act)
    np.divide(1.0, act, out=act)
    np.multiply(gate, act, out=act)
    np.multiply(act, up, out=act)
    region.stop(f"layer{layer}.mlp.act")
    hidden = state.gather(act) if state.gather is not None else act
    out = _project(state, layer, "w_d", hidden, "mlp.out", region)
    return state.gather(out) if state.gather is not None else out


def _run_layer(state: FastState, layer: int, x: np.ndarray, pad_mask, cache,
               region: _Region) -> np.ndarray:
    from repro.nn.kv_cache import RaggedLayerCaches

    lay = state.layers[layer]
    region.start()
    normed = _rms_norm(state, x, lay.attn_norm, lay.attn_eps)
    region.stop(f"layer{layer}.attn_norm")
    if isinstance(cache, RaggedLayerCaches):
        attn_out = _attention_ragged(state, layer, normed, cache, region)
    else:
        attn_out = _attention_dense(state, layer, normed, pad_mask, cache, region)
    ws = state.ws
    region.start()
    mid = ws.buf("stream.mid", x.shape)
    np.add(x, attn_out, out=mid)
    region.stop(f"layer{layer}.residual")
    region.start()
    normed = _rms_norm(state, mid, lay.mlp_norm, lay.mlp_eps)
    region.stop(f"layer{layer}.mlp_norm")
    mlp_out = _swiglu_mlp(state, layer, normed, region)
    region.start()
    out = ws.buf("stream.out", x.shape)
    np.add(mid, mlp_out, out=out)
    region.stop(f"layer{layer}.residual")
    return out


def _logits(state: FastState, x: np.ndarray, region: _Region) -> np.ndarray:
    ws = state.ws
    head = state.head
    region.start()
    normed = _rms_norm(state, x, head.norm, head.eps)
    region.stop("final_norm")
    batch, seq_len, dim = x.shape
    region.start()
    if head.proj is not None:
        p = head.proj
        hidden = normed
        if p.u1_grid is not None:
            hidden = _quant_prefix(ws, p, hidden, "lm_head")
        elif p.u1 is not None:
            low = ws.buf("lm_head.r1", hidden.shape[:-1] + (p.u1.shape[1],))
            np.matmul(hidden, p.u1, out=low)
            mid = ws.buf("lm_head.r2", hidden.shape[:-1] + (p.core.shape[1],))
            np.matmul(low, p.core, out=mid)
            hidden = mid
        width = p.out_width
        if state.gather is None:
            out = np.empty((batch, seq_len, width), dtype=np.float32)
        else:
            out = ws.buf("lm_head.local", (batch, seq_len, width))
        if p.grid is not None:
            _quant_blocked_into(ws, hidden, p, out)
        else:
            _blocked_into(hidden, p.weight, p.edges, out)
        if p.bias is not None:
            np.add(out, p.bias, out=out)
        if state.gather is None:
            result = out
        else:
            result = state.gather(out)
            if result is out:
                # A size-1 gather returns its input — a view of the reused
                # workspace buffer.  Logits escape this call, so detach.
                result = result.copy()
    else:
        # Tied head: GEMMs against the same transposed-table views the
        # Tensor path slices (identical memory layout, identical bytes).
        flat = normed.reshape(batch * seq_len, dim)
        if state.gather is None:
            out = np.empty((batch * seq_len, head.width), dtype=np.float32)
        else:
            out = ws.buf("lm_head.local", (batch * seq_len, head.width))
        position = 0
        for a, b in head.edges:
            np.matmul(flat, head.tied[:, a:b],
                      out=out[:, position : position + (b - a)])
            position += b - a
        result = out.reshape(batch, seq_len, head.width)
        if state.gather is not None:
            gathered = state.gather(result)
            # Size-1 gathers hand the workspace view straight back; copy so
            # the escaping logits survive the next forward's buffer reuse.
            result = gathered.copy() if gathered is result else gathered
    region.stop("lm_head")
    return result


def run_model_fast(state: FastState, tokens: np.ndarray, pad_mask=None,
                   caches=None, hidden=None, skip_head=False) -> np.ndarray:
    """(B, T) ids -> freshly allocated (B, T, vocab) logits, no autograd.

    On a pipeline stage, ``hidden`` replaces the embedding with the
    previous stage's replicated (B, T, D) block, and a head-less state
    returns a fresh copy of the hidden output (the internal layer buffer
    is workspace-owned and reused on the next call, so it must not escape).
    """
    region = _Region(state.ctx.__dict__.get("_fast_profiler"), state.ws)
    if hidden is not None:
        x = np.asarray(hidden, dtype=np.float32)
    else:
        x = _embed(state, tokens, region)
    for layer in range(state.n_layers):
        cache = None if caches is None else caches.layers[layer]
        x = _run_layer(state, layer, x, pad_mask, cache, region)
    if state.head is None or skip_head:
        return x.copy()
    return _logits(state, x, region)


def logits_fast(state: FastState, hidden: np.ndarray) -> np.ndarray:
    """Epilogue only: final norm + LM head over replicated hidden states.

    Used when a pipelined forward runs its layers in row-microbatches but
    defers the head to one full-batch call — the head GEMM against the
    transposed tied-embedding view is the one kernel whose low-order bits
    depend on the row count, so it must see the same row count as the
    canonical pass.
    """
    region = _Region(state.ctx.__dict__.get("_fast_profiler"), state.ws)
    return _logits(state, np.asarray(hidden, dtype=np.float32), region)


__all__ = [
    "FastState",
    "OpProfiler",
    "Workspace",
    "active_state",
    "disable_profiling",
    "disabled",
    "enable_profiling",
    "logits_fast",
    "run_model_fast",
    "workspace_of",
]
