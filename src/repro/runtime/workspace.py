"""Preallocated buffer arena for the inference fast path.

The fast-path kernels in :mod:`repro.runtime.fastpath` never allocate
result arrays in the hot loop: every intermediate — projection outputs,
rotated queries, attention scores, softmax statistics — is written with
``out=`` into a named buffer owned by a :class:`Workspace`.  Buffers are
keyed by ``(name, shape, dtype)``, so a steady-state decode loop (constant
shapes step after step) touches only existing memory; a new shape (the
prefill, a differently composed ragged batch) materializes its own buffer
once and reuses it from then on.

Sequence-length-dependent buffers go through :meth:`Workspace.seq_buf`,
which backs the designated axis with geometrically grown capacity (the
same strategy as :class:`~repro.nn.kv_cache.LayerKVCache`) and returns an
exact-shape basic-slice view.  Views keep the backing buffer's unit inner
stride, so the GEMMs writing into them stay on the BLAS path — the bit
pattern of every result is identical to a freshly allocated output.

Quantized projections additionally use :meth:`Workspace.cache`: a
*content-tagged* buffer region with an explicit byte budget
(:data:`DEFAULT_DEQUANT_CACHE_BYTES`).  Dequantized weights are written
once and reused across decode steps as long as their tag (the identity of
the int8 grid + scales) is unchanged; when the budget is exhausted the
kernels fall back to streaming blockwise dequantization through ordinary
:meth:`Workspace.buf` scratch, bounded by the largest single block.  The
budget is what keeps the dequant footprint a tunable scratch cost rather
than an unconditional fp32 copy of every quantized weight.

``allocations`` / ``bytes_allocated`` count *backing-array* creations
only.  They are the regression surface for the zero-allocation-per-step
contract: once the decode loop is warm, both counters must stop moving.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

_INITIAL_CAPACITY = 32

#: Default budget for the tag-validated dequantized-weight cache.  Sized so
#: every model in the registry that fits this repo's CPU-scale serving also
#: fits its dequantized working set; cut it (down to 0) to trade decode
#: throughput for strictly-bounded streaming dequant scratch.
DEFAULT_DEQUANT_CACHE_BYTES = 64 << 20


class Workspace:
    """Named reusable buffers with allocation accounting."""

    __slots__ = ("_exact", "_grown", "_cache", "cache_limit", "cache_bytes",
                 "allocations", "bytes_allocated")

    def __init__(self, cache_limit: Optional[int] = None) -> None:
        self._exact: Dict[tuple, np.ndarray] = {}
        self._grown: Dict[tuple, np.ndarray] = {}
        self._cache: Dict[tuple, Tuple[np.ndarray, tuple]] = {}
        self.cache_limit = (
            DEFAULT_DEQUANT_CACHE_BYTES if cache_limit is None else cache_limit
        )
        self.cache_bytes = 0
        self.allocations = 0
        self.bytes_allocated = 0

    def _allocate(self, shape: Tuple[int, ...], dtype, zero: bool) -> np.ndarray:
        array = np.zeros(shape, dtype=dtype) if zero else np.empty(shape, dtype=dtype)
        self.allocations += 1
        self.bytes_allocated += array.nbytes
        return array

    def buf(self, name: str, shape: Tuple[int, ...], dtype=np.float32) -> np.ndarray:
        """The exact-shape buffer registered under ``(name, shape, dtype)``.

        Contents are whatever the previous use left behind; every caller
        must fully overwrite the region it reads back.
        """
        key = (name, shape, np.dtype(dtype).str)
        array = self._exact.get(key)
        if array is None:
            array = self._allocate(shape, dtype, zero=False)
            self._exact[key] = array
        return array

    def cache(
        self,
        name: str,
        shape: Tuple[int, ...],
        tag: tuple,
        dtype=np.float32,
    ) -> Optional[Tuple[np.ndarray, bool]]:
        """A content-tagged buffer under the dequant-cache budget.

        Returns ``(array, fresh)`` — ``fresh`` is True when the caller must
        (re)fill the buffer: on first allocation and whenever ``tag``
        differs from the tag recorded at the last fill.  With an unchanged
        tag the previous contents are valid, so a warm decode loop skips
        the fill entirely.  Returns ``None`` when allocating would exceed
        ``cache_limit``; callers then stream through :meth:`buf` scratch.

        Tags are identity-based by convention (``id`` of the source
        arrays): the cache assumes quantized grids are immutable once
        built — rebinding to new arrays retags, in-place mutation does
        not.  Entries are never evicted; per-projection structural names
        keep the entry count bounded by the model's projection count.
        """
        key = (name, shape, np.dtype(dtype).str)
        entry = self._cache.get(key)
        if entry is not None:
            array, stored = entry
            if stored != tag:
                self._cache[key] = (array, tag)
                return array, True
            return array, False
        nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        if self.cache_bytes + nbytes > self.cache_limit:
            return None
        array = self._allocate(shape, dtype, zero=False)
        self.cache_bytes += nbytes
        self._cache[key] = (array, tag)
        return array, True

    def seq_buf(
        self,
        name: str,
        shape: Tuple[int, ...],
        axis: int,
        dtype=np.float32,
        zero: bool = False,
    ) -> np.ndarray:
        """A ``shape``-d view of a buffer grown geometrically along ``axis``.

        ``zero`` zero-fills the backing array at (re)allocation only: grown
        regions start as exact 0.0f, never ``np.empty`` garbage.  Stale
        values from earlier (shorter) uses are *not* re-zeroed — callers
        relying on zeros beyond their write extent must mask those
        positions downstream (the ragged attention path does: masked
        positions get an exact-zero softmax weight, and ``0.0 * finite``
        is exactly ``0.0``, so stale finite values cannot perturb a bit).
        """
        axis = axis % len(shape)
        fixed = shape[:axis] + shape[axis + 1 :]
        key = (name, fixed, axis, np.dtype(dtype).str)
        needed = shape[axis]
        array = self._grown.get(key)
        if array is None or array.shape[axis] < needed:
            capacity = _INITIAL_CAPACITY if array is None else array.shape[axis]
            while capacity < needed:
                capacity *= 2
            full = shape[:axis] + (capacity,) + shape[axis + 1 :]
            array = self._allocate(full, dtype, zero=zero)
            self._grown[key] = array
        index = (slice(None),) * axis + (slice(0, needed),)
        return array[index]

    def __repr__(self) -> str:
        return (
            f"Workspace(buffers="
            f"{len(self._exact) + len(self._grown) + len(self._cache)}, "
            f"allocations={self.allocations}, "
            f"bytes={self.bytes_allocated:,})"
        )


__all__ = ["DEFAULT_DEQUANT_CACHE_BYTES", "Workspace"]
