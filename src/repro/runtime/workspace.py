"""Preallocated buffer arena for the inference fast path.

The fast-path kernels in :mod:`repro.runtime.fastpath` never allocate
result arrays in the hot loop: every intermediate — projection outputs,
rotated queries, attention scores, softmax statistics — is written with
``out=`` into a named buffer owned by a :class:`Workspace`.  Buffers are
keyed by ``(name, shape, dtype)``, so a steady-state decode loop (constant
shapes step after step) touches only existing memory; a new shape (the
prefill, a differently composed ragged batch) materializes its own buffer
once and reuses it from then on.

Sequence-length-dependent buffers go through :meth:`Workspace.seq_buf`,
which backs the designated axis with geometrically grown capacity (the
same strategy as :class:`~repro.nn.kv_cache.LayerKVCache`) and returns an
exact-shape basic-slice view.  Views keep the backing buffer's unit inner
stride, so the GEMMs writing into them stay on the BLAS path — the bit
pattern of every result is identical to a freshly allocated output.

``allocations`` / ``bytes_allocated`` count *backing-array* creations
only.  They are the regression surface for the zero-allocation-per-step
contract: once the decode loop is warm, both counters must stop moving.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

_INITIAL_CAPACITY = 32


class Workspace:
    """Named reusable buffers with allocation accounting."""

    __slots__ = ("_exact", "_grown", "allocations", "bytes_allocated")

    def __init__(self) -> None:
        self._exact: Dict[tuple, np.ndarray] = {}
        self._grown: Dict[tuple, np.ndarray] = {}
        self.allocations = 0
        self.bytes_allocated = 0

    def _allocate(self, shape: Tuple[int, ...], dtype, zero: bool) -> np.ndarray:
        array = np.zeros(shape, dtype=dtype) if zero else np.empty(shape, dtype=dtype)
        self.allocations += 1
        self.bytes_allocated += array.nbytes
        return array

    def buf(self, name: str, shape: Tuple[int, ...], dtype=np.float32) -> np.ndarray:
        """The exact-shape buffer registered under ``(name, shape, dtype)``.

        Contents are whatever the previous use left behind; every caller
        must fully overwrite the region it reads back.
        """
        key = (name, shape, np.dtype(dtype).str)
        array = self._exact.get(key)
        if array is None:
            array = self._allocate(shape, dtype, zero=False)
            self._exact[key] = array
        return array

    def seq_buf(
        self,
        name: str,
        shape: Tuple[int, ...],
        axis: int,
        dtype=np.float32,
        zero: bool = False,
    ) -> np.ndarray:
        """A ``shape``-d view of a buffer grown geometrically along ``axis``.

        ``zero`` zero-fills the backing array at (re)allocation only: grown
        regions start as exact 0.0f, never ``np.empty`` garbage.  Stale
        values from earlier (shorter) uses are *not* re-zeroed — callers
        relying on zeros beyond their write extent must mask those
        positions downstream (the ragged attention path does: masked
        positions get an exact-zero softmax weight, and ``0.0 * finite``
        is exactly ``0.0``, so stale finite values cannot perturb a bit).
        """
        axis = axis % len(shape)
        fixed = shape[:axis] + shape[axis + 1 :]
        key = (name, fixed, axis, np.dtype(dtype).str)
        needed = shape[axis]
        array = self._grown.get(key)
        if array is None or array.shape[axis] < needed:
            capacity = _INITIAL_CAPACITY if array is None else array.shape[axis]
            while capacity < needed:
                capacity *= 2
            full = shape[:axis] + (capacity,) + shape[axis + 1 :]
            array = self._allocate(full, dtype, zero=zero)
            self._grown[key] = array
        index = (slice(None),) * axis + (slice(0, needed),)
        return array[index]

    def __repr__(self) -> str:
        return (
            f"Workspace(buffers={len(self._exact) + len(self._grown)}, "
            f"allocations={self.allocations}, "
            f"bytes={self.bytes_allocated:,})"
        )


__all__ = ["Workspace"]
