"""Compression arithmetic from Section 2.3 of the paper.

For a weight matrix of shape (H, W) decomposed at pruned rank PR, the
parameter count becomes ``H*PR + PR^2 + PR*W`` and the compression ratio is
``H*W / (H*PR + PR^2 + PR*W)``.  Compression exceeds 1 exactly when PR is
below the paper's break-even bound

    PR < (sqrt((H+W)^2 + 4*H*W) - (H+W)) / 2
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import DecompositionError


def factorized_parameters(height: int, width: int, rank: int) -> int:
    """Parameters of the U1/core/U2 chain replacing an (H, W) matrix."""
    _check_dims(height, width, rank)
    return height * rank + rank * rank + rank * width


def dense_parameters(height: int, width: int) -> int:
    return height * width


def compression_ratio(height: int, width: int, rank: int) -> float:
    """``H*W / (H*PR + PR^2 + PR*W)`` — the paper's compression ratio."""
    return dense_parameters(height, width) / factorized_parameters(height, width, rank)


def breakeven_rank(height: int, width: int) -> float:
    """Largest (real-valued) rank at which decomposition still saves memory.

    Solves ``H*W = H*PR + PR^2 + PR*W`` for PR; the paper states the bound
    ``PR < (sqrt((H+W)^2 + 4HW) - (H+W)) / 2``.
    """
    _check_dims(height, width, 1)
    total = height + width
    return (math.sqrt(total * total + 4.0 * height * width) - total) / 2.0


def saves_memory(height: int, width: int, rank: int) -> bool:
    """True when the factorized form has strictly fewer parameters."""
    return factorized_parameters(height, width, rank) < dense_parameters(height, width)


def relative_error(original: np.ndarray, approximation: np.ndarray) -> float:
    """Frobenius relative error ``||T - K|| / ||T||`` (Section 2.1)."""
    original = np.asarray(original, dtype=np.float64)
    approximation = np.asarray(approximation, dtype=np.float64)
    if original.shape != approximation.shape:
        raise DecompositionError(
            f"shape mismatch: {original.shape} vs {approximation.shape}"
        )
    denom = np.linalg.norm(original)
    if denom == 0.0:
        return 0.0 if np.linalg.norm(approximation) == 0.0 else math.inf
    return float(np.linalg.norm(original - approximation) / denom)


def _check_dims(height: int, width: int, rank: int) -> None:
    if height <= 0 or width <= 0:
        raise DecompositionError(f"invalid matrix shape ({height}, {width})")
    if rank <= 0:
        raise DecompositionError(f"rank must be positive, got {rank}")
