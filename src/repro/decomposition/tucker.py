"""Tucker decomposition via Higher-Order Orthogonal Iteration (Algorithm 1).

Implements the general N-mode machinery (unfolding, mode products, HOSVD)
and the paper's Algorithm 1 (HOI), plus the Tucker-2 specialization used on
transformer weight matrices:

    T(n1, n2) ~= U1(n1, pr) @ core(pr, pr) @ U2(pr, n2)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.decomposition.metrics import relative_error
from repro.decomposition.svd import leading_left_singular_vectors
from repro.errors import DecompositionError
from repro.tensor.random import orthonormal_columns


def unfold(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` unfolding: move ``mode`` to the front and flatten the rest."""
    tensor = np.asarray(tensor)
    if not 0 <= mode < tensor.ndim:
        raise DecompositionError(f"mode {mode} out of range for ndim {tensor.ndim}")
    return np.moveaxis(tensor, mode, 0).reshape(tensor.shape[mode], -1)


def fold(matrix: np.ndarray, mode: int, shape: Sequence[int]) -> np.ndarray:
    """Inverse of :func:`unfold` for a target tensor ``shape``."""
    shape = tuple(shape)
    moved_shape = (shape[mode],) + shape[:mode] + shape[mode + 1 :]
    return np.moveaxis(np.asarray(matrix).reshape(moved_shape), 0, mode)


def mode_product(tensor: np.ndarray, matrix: np.ndarray, mode: int) -> np.ndarray:
    """The i-mode product ``T x_i M`` from Section 2.1.

    ``matrix`` has shape (rows, tensor.shape[mode]); the result replaces the
    ``mode`` dimension by ``rows``.
    """
    tensor = np.asarray(tensor)
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise DecompositionError(f"mode_product needs a matrix, got {matrix.shape}")
    if matrix.shape[1] != tensor.shape[mode]:
        raise DecompositionError(
            f"mode-{mode} product mismatch: matrix {matrix.shape} vs tensor "
            f"{tensor.shape}"
        )
    unfolded = unfold(tensor, mode)
    result = matrix @ unfolded
    new_shape = list(tensor.shape)
    new_shape[mode] = matrix.shape[0]
    return fold(result, mode, new_shape)


def multi_mode_product(
    tensor: np.ndarray, matrices: Sequence[Optional[np.ndarray]]
) -> np.ndarray:
    """Apply one matrix per mode (entries may be None to skip a mode)."""
    result = np.asarray(tensor)
    for mode, matrix in enumerate(matrices):
        if matrix is not None:
            result = mode_product(result, matrix, mode)
    return result


@dataclass
class TuckerResult:
    """Core tensor, factor matrices, and convergence diagnostics."""

    core: np.ndarray
    factors: List[np.ndarray]
    iterations: int
    converged: bool
    fit_history: List[float]

    @property
    def ranks(self) -> Tuple[int, ...]:
        return self.core.shape

    def reconstruct(self) -> np.ndarray:
        """``core x_1 U1 x_2 U2 ... x_N UN`` — the approximation K."""
        result = self.core
        for mode, factor in enumerate(self.factors):
            result = mode_product(result, factor, mode)
        return result

    def parameters(self) -> int:
        return self.core.size + sum(f.size for f in self.factors)

    def error(self, original: np.ndarray) -> float:
        return relative_error(original, self.reconstruct())


def _validate_ranks(shape: Tuple[int, ...], ranks: Sequence[int]) -> Tuple[int, ...]:
    ranks = tuple(int(r) for r in ranks)
    if len(ranks) != len(shape):
        raise DecompositionError(
            f"need one rank per mode: shape {shape}, ranks {ranks}"
        )
    for dim, rank in zip(shape, ranks):
        if not 1 <= rank <= dim:
            raise DecompositionError(f"rank {rank} out of range [1, {dim}]")
    return ranks


def hosvd(tensor: np.ndarray, ranks: Sequence[int]) -> TuckerResult:
    """Truncated higher-order SVD: the standard non-iterative initialization.

    Each factor is the leading left singular basis of the mode unfolding;
    the core is the projection of T onto those bases.
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    ranks = _validate_ranks(tensor.shape, ranks)
    factors = [
        leading_left_singular_vectors(unfold(tensor, mode), rank)
        for mode, rank in enumerate(ranks)
    ]
    core = multi_mode_product(tensor, [f.T for f in factors])
    return TuckerResult(
        core=core, factors=factors, iterations=0, converged=True, fit_history=[]
    )


def hoi(
    tensor: np.ndarray,
    ranks: Sequence[int],
    max_iterations: int = 50,
    tolerance: float = 1e-8,
    init: str = "hosvd",
    rng: Optional[np.random.Generator] = None,
) -> TuckerResult:
    """Algorithm 1: Tucker decomposition via Higher-Order Orthogonal Iteration.

    Parameters
    ----------
    tensor:
        The input tensor T of any order >= 2.
    ranks:
        Decomposition ranks (r_1, ..., r_N), one per mode.
    max_iterations:
        Upper bound on alternating sweeps.
    tolerance:
        Convergence criterion on the change in reconstruction fit between
        sweeps.
    init:
        ``"hosvd"`` (default, deterministic) or ``"random"`` — the paper's
        "initialize with orthonormal columns" step.
    rng:
        Required for ``init="random"``.
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    if tensor.ndim < 2:
        raise DecompositionError("HOI requires a tensor of order >= 2")
    ranks = _validate_ranks(tensor.shape, ranks)

    if init == "hosvd":
        factors = hosvd(tensor, ranks).factors
    elif init == "random":
        if rng is None:
            rng = np.random.default_rng(0)
        factors = [
            orthonormal_columns(rng, dim, rank)
            for dim, rank in zip(tensor.shape, ranks)
        ]
    else:
        raise DecompositionError(f"unknown init {init!r}")

    norm_t = np.linalg.norm(tensor)
    previous_fit = -np.inf
    fit_history: List[float] = []
    converged = False
    iterations = 0

    for iterations in range(1, max_iterations + 1):
        for mode in range(tensor.ndim):
            # Project onto every factor except ``mode``, then refresh that
            # factor from the leading singular basis of the projection.
            projections = [
                factors[m].T if m != mode else None for m in range(tensor.ndim)
            ]
            partial = multi_mode_product(tensor, projections)
            factors[mode] = leading_left_singular_vectors(
                unfold(partial, mode), ranks[mode]
            )
        core = multi_mode_product(tensor, [f.T for f in factors])
        # For orthonormal factors, ||T - K||^2 = ||T||^2 - ||core||^2, so the
        # fit can be tracked without reconstructing K.
        core_norm = np.linalg.norm(core)
        if norm_t == 0.0:
            fit = 1.0
        else:
            residual_sq = max(norm_t**2 - core_norm**2, 0.0)
            fit = 1.0 - np.sqrt(residual_sq) / norm_t
        fit_history.append(float(fit))
        if abs(fit - previous_fit) < tolerance:
            converged = True
            break
        previous_fit = fit

    core = multi_mode_product(tensor, [f.T for f in factors])
    return TuckerResult(
        core=core,
        factors=factors,
        iterations=iterations,
        converged=converged,
        fit_history=fit_history,
    )


def tucker2(
    matrix: np.ndarray,
    rank: int,
    method: str = "hoi",
    max_iterations: int = 50,
    tolerance: float = 1e-8,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Second-order Tucker decomposition of a weight matrix (Section 2.3).

    Returns (U1, core, U2) with shapes (H, PR), (PR, PR), (PR, W) such that
    ``U1 @ core @ U2`` approximates ``matrix``.  ``method`` may be ``"hoi"``
    (Algorithm 1) or ``"svd"`` (direct truncated SVD, the closed-form optimum
    for matrices); both yield the same subspaces for order-2 tensors.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise DecompositionError(f"tucker2 expects a matrix, got {matrix.shape}")
    if method == "svd":
        from repro.decomposition.svd import truncated_svd

        u, s, vt = truncated_svd(matrix, rank)
        return u, np.diag(s), vt
    if method == "hoi":
        result = hoi(
            matrix, (rank, rank), max_iterations=max_iterations, tolerance=tolerance
        )
        u1, u2 = result.factors
        # Orientation: T ~= U1 @ core @ U2 with U2 of shape (PR, W).
        return u1, result.core, u2.T
    raise DecompositionError(f"unknown tucker2 method {method!r}")
