"""Definition 1: the design goal of low-rank decomposition.

Given an accuracy-drop tolerance τ, find the configuration γ minimizing
``Latency(γ) × Energy(γ)`` (energy-delay product) subject to
``max(Accuracy_original - Accuracy(γ), 0) < τ``.

The search evaluates a candidate set (typically the characterization-pruned
space of Table 4 recipes) with a caller-supplied accuracy function and the
analytic hardware model for latency/energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.decomposition.config import DecompositionConfig
from repro.errors import ConfigError
from repro.models.config import ModelConfig


@dataclass(frozen=True)
class CandidateOutcome:
    """One evaluated point of the Definition 1 search."""

    config: DecompositionConfig
    accuracy: float
    latency_s: float
    energy_j: float

    @property
    def energy_delay_product(self) -> float:
        return self.latency_s * self.energy_j

    def accuracy_drop(self, baseline_accuracy: float) -> float:
        """max(Accuracy_original - Accuracy(γ), 0) from Definition 1."""
        return max(baseline_accuracy - self.accuracy, 0.0)


@dataclass
class DesignGoalResult:
    """Winner and full frontier of a Definition 1 search."""

    best: Optional[CandidateOutcome]
    feasible: List[CandidateOutcome]
    infeasible: List[CandidateOutcome]
    baseline_accuracy: float
    tolerance: float

    @property
    def satisfied(self) -> bool:
        return self.best is not None


def design_goal_search(
    model_config: ModelConfig,
    candidates: Sequence[DecompositionConfig],
    accuracy_fn: Callable[[DecompositionConfig], float],
    baseline_accuracy: float,
    tolerance: float,
    serving=None,
) -> DesignGoalResult:
    """Solve Definition 1 over ``candidates``.

    ``accuracy_fn`` maps a configuration to task accuracy (the caller
    decides whether that is a live evaluation of a decomposed model or a
    cached table).  Latency and energy come from
    :func:`repro.hwmodel.profile` under ``serving``.
    """
    from repro.hwmodel import ServingConfig, profile

    if not 0.0 < tolerance <= 1.0:
        raise ConfigError(f"tolerance must be in (0, 1], got {tolerance}")
    if serving is None:
        serving = ServingConfig()

    baseline_profile = profile(model_config, serving)
    feasible: List[CandidateOutcome] = []
    infeasible: List[CandidateOutcome] = []
    for candidate in candidates:
        candidate.validate(model_config)
        accuracy = accuracy_fn(candidate)
        if candidate.is_identity:
            result = baseline_profile
        else:
            result = profile(
                model_config,
                serving,
                decomposition=candidate,
                host_overhead_s=baseline_profile.overhead_s,
            )
        outcome = CandidateOutcome(
            config=candidate,
            accuracy=accuracy,
            latency_s=result.latency_s,
            energy_j=result.energy_j,
        )
        if outcome.accuracy_drop(baseline_accuracy) < tolerance:
            feasible.append(outcome)
        else:
            infeasible.append(outcome)

    best = min(feasible, key=lambda o: o.energy_delay_product) if feasible else None
    return DesignGoalResult(
        best=best,
        feasible=feasible,
        infeasible=infeasible,
        baseline_accuracy=baseline_accuracy,
        tolerance=tolerance,
    )
