"""Non-uniform rank allocation under a parameter budget.

The paper studies homogeneous decomposition (same rank everywhere) and
names rank selection as the axis future algorithm-level work should
exploit.  This module implements that extension: given a set of (layer,
role) tensors and a total parameter budget, allocate per-tensor ranks
greedily by marginal spectral energy — each next rank unit goes to the
tensor whose next singular value retains the most energy per parameter
spent.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.decomposition.config import DecompositionConfig
from repro.decomposition.metrics import factorized_parameters
from repro.decomposition.svd import singular_values
from repro.errors import DecompositionError


@dataclass(frozen=True)
class RankAllocation:
    """Chosen per-tensor ranks and the resulting accounting."""

    ranks: Dict[Tuple[int, str], int]
    parameters_used: int
    budget: int
    retained_energy: float  # fraction of total squared spectral mass kept

    def to_config(self, method: str = "svd") -> DecompositionConfig:
        """Materialize the allocation as a decomposition configuration."""
        layers = tuple(sorted({layer for layer, _ in self.ranks}))
        roles = tuple(dict.fromkeys(role for _, role in self.ranks))
        return DecompositionConfig(
            layers=layers, roles=roles, rank=1, ranks=dict(self.ranks), method=method
        )


def _marginal_gain(spectrum: np.ndarray, current_rank: int, step_cost: int) -> float:
    """Energy retained per parameter by adding one more rank."""
    if current_rank >= spectrum.size:
        return -1.0
    return float(spectrum[current_rank] ** 2) / step_cost


def allocate_ranks(
    model,
    layers: Iterable[int],
    roles: Iterable[str],
    budget: int,
) -> RankAllocation:
    """Greedy spectral rank allocation over the targeted tensors.

    Every tensor starts at rank 1 (the minimum valid pruned rank); the
    remaining budget is spent one rank at a time on the tensor with the
    best energy-per-parameter marginal gain.  ``budget`` is the total
    parameter count allowed for all factorized replacements together.
    """
    layers = sorted(set(int(l) for l in layers))
    roles = list(dict.fromkeys(roles))
    if not layers or not roles:
        raise DecompositionError("allocation needs at least one layer and role")

    spectra: Dict[Tuple[int, str], np.ndarray] = {}
    shapes: Dict[Tuple[int, str], Tuple[int, int]] = {}
    for layer in layers:
        for role in roles:
            owner, attr = model.tensor_slot(layer, role)
            weight = getattr(owner, attr).weight.data
            spectra[(layer, role)] = singular_values(weight)
            shapes[(layer, role)] = weight.shape

    ranks = {key: 1 for key in spectra}
    used = sum(
        factorized_parameters(shapes[key][0], shapes[key][1], 1) for key in ranks
    )
    if used > budget:
        raise DecompositionError(
            f"budget {budget} cannot cover rank-1 for {len(ranks)} tensors "
            f"(needs {used})"
        )

    # Max-heap of marginal gains (negated for heapq).
    heap: List[Tuple[float, Tuple[int, str]]] = []
    for key in ranks:
        height, width = shapes[key]
        step = height + width + (2 * ranks[key] + 1)  # cost of rank r -> r+1
        gain = _marginal_gain(spectra[key], ranks[key], step)
        if gain > 0:
            heapq.heappush(heap, (-gain, key))

    while heap:
        neg_gain, key = heapq.heappop(heap)
        height, width = shapes[key]
        current = ranks[key]
        step = height + width + (2 * current + 1)
        if used + step > budget:
            continue  # this tensor's step doesn't fit; try cheaper ones
        # Recompute in case rank moved since the entry was pushed.
        gain = _marginal_gain(spectra[key], current, step)
        if gain <= 0:
            continue
        if -neg_gain > gain * (1 + 1e-12):
            heapq.heappush(heap, (-gain, key))
            continue
        ranks[key] = current + 1
        used += step
        next_step = height + width + (2 * ranks[key] + 1)
        next_gain = _marginal_gain(spectra[key], ranks[key], next_step)
        if next_gain > 0:
            heapq.heappush(heap, (-next_gain, key))

    total_energy = sum(float((s**2).sum()) for s in spectra.values())
    kept = sum(
        float((spectra[key][: ranks[key]] ** 2).sum()) for key in ranks
    )
    retained = kept / total_energy if total_energy > 0 else 1.0
    return RankAllocation(
        ranks=ranks, parameters_used=used, budget=budget, retained_energy=retained
    )


def uniform_rank_for_budget(
    model, layers: Sequence[int], roles: Sequence[str], budget: int
) -> int:
    """Largest uniform rank whose total factorized parameters fit ``budget``."""
    layers = sorted(set(layers))
    roles = list(dict.fromkeys(roles))
    shapes = []
    for layer in layers:
        for role in roles:
            owner, attr = model.tensor_slot(layer, role)
            shapes.append(getattr(owner, attr).weight.data.shape)
    best = 0
    rank = 1
    while True:
        total = sum(factorized_parameters(h, w, rank) for h, w in shapes)
        if total > budget or rank > min(min(h, w) for h, w in shapes):
            break
        best = rank
        rank += 1
    if best == 0:
        raise DecompositionError(f"budget {budget} cannot cover uniform rank 1")
    return best
