"""Activation-aware low-rank decomposition (ASVD-style extension).

Plain Tucker-2 minimizes weight-space reconstruction error ``||W - W'||``,
but what matters at inference is *output* error ``||XW - XW'||`` for the
activations X the model actually sees.  Scaling each input channel by its
typical activation magnitude before factorizing (and unscaling the left
factor afterwards) reweights the SVD toward the directions that carry
signal — the idea behind ASVD/SVD-LLM, implemented here as an extension
the paper's future-work section motivates.

Pipeline: record per-channel input scales on a calibration corpus
(:func:`collect_input_scales`), factorize with
:func:`activation_aware_tucker2`, or do both across a model with
:func:`decompose_model_activation_aware`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from repro.decomposition.apply import DecompositionReport, TensorReport
from repro.decomposition.config import DecompositionConfig
from repro.decomposition.metrics import relative_error
from repro.decomposition.svd import truncated_svd
from repro.errors import DecompositionError
from repro.nn import FactorizedLinear, Linear
from repro.nn.module import Module
from repro.tensor.tensor import Tensor


class _RecordingLinear(Module):
    """Wraps a Linear, accumulating mean |input| per input feature."""

    def __init__(self, inner: Linear) -> None:
        super().__init__()
        self.inner = inner
        self.sum_abs = np.zeros(inner.in_features, dtype=np.float64)
        self.count = 0

    def forward(self, x: Tensor) -> Tensor:
        self._record(x)
        return self.inner(x)

    def forward_blocked(self, x: Tensor, edges) -> Tensor:
        self._record(x)
        return self.inner.forward_blocked(x, edges)

    def _record(self, x: Tensor) -> None:
        flat = np.abs(x.data.reshape(-1, x.shape[-1]))
        self.sum_abs += flat.sum(axis=0)
        self.count += flat.shape[0]

    def scales(self) -> np.ndarray:
        if self.count == 0:
            raise DecompositionError("recorder saw no activations")
        return (self.sum_abs / self.count).astype(np.float64)


def collect_input_scales(
    model,
    tokenizer,
    sentences: Sequence[str],
    targets: Iterable[Tuple[int, str]],
    batch_size: int = 16,
) -> Dict[Tuple[int, str], np.ndarray]:
    """Mean absolute input activation per channel for each target tensor.

    Temporarily swaps each target :class:`Linear` for a recording wrapper,
    streams the calibration ``sentences`` through the model, and restores
    the original modules.
    """
    targets = list(targets)
    if not sentences:
        raise DecompositionError("calibration requires at least one sentence")
    recorders: Dict[Tuple[int, str], _RecordingLinear] = {}
    for layer, role in targets:
        owner, attr = model.tensor_slot(layer, role)
        module = getattr(owner, attr)
        if not isinstance(module, Linear):
            raise DecompositionError(
                f"({layer}, {role}) holds {type(module).__name__}; calibrate "
                "dense Linear layers only"
            )
        recorder = _RecordingLinear(module)
        setattr(owner, attr, recorder)
        recorders[(layer, role)] = recorder
    try:
        for start in range(0, len(sentences), batch_size):
            chunk = list(sentences[start : start + batch_size])
            ids, pad_mask = tokenizer.encode_batch(chunk, add_eos=True)
            model(ids, pad_mask=pad_mask)
    finally:
        for (layer, role), recorder in recorders.items():
            owner, attr = model.tensor_slot(layer, role)
            setattr(owner, attr, recorder.inner)
    return {key: recorder.scales() for key, recorder in recorders.items()}


def activation_aware_tucker2(
    weight: np.ndarray,
    rank: int,
    scales: np.ndarray,
    eps: float = 1e-6,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Tucker-2 of ``diag(s) @ W`` with the scaling folded back into U1.

    Minimizes ``||diag(s) (W - W')||_F`` — the whitened objective that
    weights input channels by their typical activation magnitude — instead
    of plain ``||W - W'||_F``.
    """
    weight = np.asarray(weight, dtype=np.float64)
    scales = np.asarray(scales, dtype=np.float64)
    if weight.ndim != 2:
        raise DecompositionError(f"expected a weight matrix, got {weight.shape}")
    if scales.shape != (weight.shape[0],):
        raise DecompositionError(
            f"scales shape {scales.shape} != in_features ({weight.shape[0]},)"
        )
    if np.any(scales < 0):
        raise DecompositionError("activation scales must be non-negative")
    # Normalize to mean 1 so eps has a scale-free meaning.
    mean = scales.mean()
    if mean > 0:
        scales = scales / mean
    safe = np.maximum(scales, eps)
    scaled = weight * safe[:, None]
    u, s, vt = truncated_svd(scaled, rank)
    u1 = (u / safe[:, None]).astype(np.float64)
    return u1, np.diag(s), vt


def decompose_model_activation_aware(
    model,
    config: DecompositionConfig,
    tokenizer,
    calibration_sentences: Sequence[str],
    batch_size: int = 16,
) -> DecompositionReport:
    """Activation-aware counterpart of
    :func:`repro.decomposition.apply.decompose_model`.

    Same surgery and report shape; restore with the standard
    :func:`repro.decomposition.apply.restore`.
    """
    config.validate(model.config)
    targets = list(config.pairs())
    scales = collect_input_scales(
        model, tokenizer, calibration_sentences, targets, batch_size=batch_size
    )
    report = DecompositionReport(
        config=config, model_parameters_before=model.num_parameters()
    )
    for layer, role in targets:
        owner, attr = model.tensor_slot(layer, role)
        module = getattr(owner, attr)
        if isinstance(module, FactorizedLinear):
            raise DecompositionError(
                f"tensor ({layer}, {role}) is already decomposed; restore first"
            )
        rank = config.rank_for(layer, role)
        weight = module.weight.data
        u1, core, u2 = activation_aware_tucker2(weight, rank, scales[(layer, role)])
        bias = None if module.bias is None else module.bias.data.copy()
        factorized = FactorizedLinear(u1, core, u2, bias=bias)
        setattr(owner, attr, factorized)
        report._originals[(layer, role)] = module
        report.tensors.append(
            TensorReport(
                layer=layer,
                role=role,
                shape=(module.in_features, module.out_features),
                rank=rank,
                dense_parameters=module.num_weight_parameters(),
                factorized_parameters=factorized.num_weight_parameters(),
                reconstruction_error=relative_error(weight, factorized.reconstruct()),
            )
        )
    report.model_parameters_after = model.num_parameters()
    return report


def output_error(
    weight: np.ndarray, approximation: np.ndarray, activations: np.ndarray
) -> float:
    """Relative output error ``||XW - XW'|| / ||XW||`` on sample inputs."""
    activations = np.asarray(activations, dtype=np.float64)
    reference = activations @ np.asarray(weight, dtype=np.float64)
    approximated = activations @ np.asarray(approximation, dtype=np.float64)
    return relative_error(reference, approximated)
