"""Apply (and undo) a decomposition configuration on a live model.

``decompose_model`` swaps each targeted :class:`~repro.nn.Linear` for a
:class:`~repro.nn.FactorizedLinear` built from the Tucker-2 factors of its
trained weight.  The returned report records per-tensor reconstruction
errors and parameter movement, and retains the original layers so
``restore`` can undo the surgery bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.decomposition.config import DecompositionConfig
from repro.decomposition.metrics import relative_error
from repro.decomposition.tucker import tucker2
from repro.errors import DecompositionError
from repro.nn import FactorizedLinear, Linear


@dataclass
class TensorReport:
    """Outcome of decomposing a single weight tensor."""

    layer: int
    role: str
    shape: Tuple[int, int]
    rank: int
    dense_parameters: int
    factorized_parameters: int
    reconstruction_error: float

    @property
    def parameters_saved(self) -> int:
        return self.dense_parameters - self.factorized_parameters


@dataclass
class DecompositionReport:
    """Aggregate outcome of :func:`decompose_model`."""

    config: DecompositionConfig
    tensors: List[TensorReport] = field(default_factory=list)
    model_parameters_before: int = 0
    model_parameters_after: int = 0
    _originals: Dict[Tuple[int, str], Linear] = field(default_factory=dict, repr=False)

    @property
    def parameters_saved(self) -> int:
        return self.model_parameters_before - self.model_parameters_after

    @property
    def parameter_reduction(self) -> float:
        """Fractional reduction in total model parameters (0..1)."""
        if self.model_parameters_before == 0:
            return 0.0
        return self.parameters_saved / self.model_parameters_before

    @property
    def mean_reconstruction_error(self) -> float:
        if not self.tensors:
            return 0.0
        return float(np.mean([t.reconstruction_error for t in self.tensors]))

    def summary(self) -> str:
        return (
            f"decomposed {len(self.tensors)} tensors "
            f"({self.config.describe()}): "
            f"params {self.model_parameters_before:,} -> "
            f"{self.model_parameters_after:,} "
            f"({100 * self.parameter_reduction:.1f}% reduction), "
            f"mean rel. error {self.mean_reconstruction_error:.3f}"
        )


def decompose_model(model, config: DecompositionConfig) -> DecompositionReport:
    """Decompose ``model`` in place according to ``config``.

    ``model`` must expose ``config`` (a :class:`ModelConfig`) and
    ``tensor_slot(layer, role)``; both :class:`LlamaModel` and
    :class:`BertModel` do.  Returns a report that can later be passed to
    :func:`restore`.
    """
    config.validate(model.config)
    report = DecompositionReport(
        config=config, model_parameters_before=model.num_parameters()
    )
    for layer, role in config.pairs():
        owner, attribute = model.tensor_slot(layer, role)
        layer_module = getattr(owner, attribute)
        if isinstance(layer_module, FactorizedLinear):
            raise DecompositionError(
                f"tensor ({layer}, {role}) is already decomposed; restore first"
            )
        if not isinstance(layer_module, Linear):
            raise DecompositionError(
                f"tensor slot ({layer}, {role}) holds {type(layer_module).__name__}, "
                "expected Linear"
            )
        rank = config.rank_for(layer, role)
        weight = layer_module.weight.data
        u1, core, u2 = tucker2(weight, rank, method=config.method)
        bias = None if layer_module.bias is None else layer_module.bias.data.copy()
        factorized = FactorizedLinear(u1, core, u2, bias=bias)
        setattr(owner, attribute, factorized)
        report._originals[(layer, role)] = layer_module
        report.tensors.append(
            TensorReport(
                layer=layer,
                role=role,
                shape=(layer_module.in_features, layer_module.out_features),
                rank=rank,
                dense_parameters=layer_module.num_weight_parameters(),
                factorized_parameters=factorized.num_weight_parameters(),
                reconstruction_error=relative_error(weight, factorized.reconstruct()),
            )
        )
    report.model_parameters_after = model.num_parameters()
    return report


def shape_model_spectrum(model, decay: float = 0.5) -> int:
    """Impose an exponentially decaying singular spectrum on every
    decomposable weight of ``model``, in place; returns the tensor count.

    See :func:`~repro.decomposition.svd.impose_spectrum` — this puts a
    randomly initialized model into the "draftable" regime where its
    low-rank variants track it closely, as trained weights do.  Must run
    *before* any variant is materialized (slots must still hold dense
    :class:`~repro.nn.Linear` layers).
    """
    from repro.decomposition.svd import impose_spectrum

    shaped = 0
    for layer in range(model.config.n_layers):
        for role in model.tensor_roles:
            owner, attribute = model.tensor_slot(layer, role)
            module = getattr(owner, attribute)
            if not isinstance(module, Linear):
                raise DecompositionError(
                    f"tensor slot ({layer}, {role}) holds "
                    f"{type(module).__name__}; shape the spectrum before "
                    "decomposing"
                )
            weight = module.weight.data
            weight[...] = impose_spectrum(weight, decay).astype(weight.dtype)
            shaped += 1
    return shaped


def restore(model, report: DecompositionReport) -> None:
    """Undo :func:`decompose_model`, reinstating the original dense layers."""
    for (layer, role), original in report._originals.items():
        owner, attribute = model.tensor_slot(layer, role)
        current = getattr(owner, attribute)
        if not isinstance(current, FactorizedLinear):
            raise DecompositionError(
                f"tensor ({layer}, {role}) is not decomposed; cannot restore"
            )
        setattr(owner, attribute, original)


class decomposed:
    """Context manager: decompose on entry, restore on exit.

    Example
    -------
    >>> with decomposed(model, config) as report:
    ...     accuracy = evaluate(model, tasks)
    """

    def __init__(self, model, config: DecompositionConfig) -> None:
        self._model = model
        self._config = config
        self.report: DecompositionReport = None

    def __enter__(self) -> DecompositionReport:
        self.report = decompose_model(self._model, self._config)
        return self.report

    def __exit__(self, exc_type, exc, tb) -> None:
        restore(self._model, self.report)
