"""CP (CANDECOMP/PARAFAC) decomposition via alternating least squares.

The paper's related work (Phan et al. [34]) uses CP as the alternative
low-rank format for CNN compression; this module provides it as an
ablation baseline against Tucker.  A rank-R CP of an order-N tensor stores
one (dim_n, R) factor per mode (and a scale vector), i.e. for a weight
matrix W (H x W): ``W ~= A @ diag(s) @ B.T`` with ``R * (H + W) + R``
parameters — no core tensor, unlike Tucker-2's ``r^2`` core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.decomposition.metrics import relative_error
from repro.decomposition.tucker import unfold
from repro.errors import DecompositionError


def khatri_rao(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Column-wise Khatri-Rao product of a list of (d_i, R) matrices."""
    if not matrices:
        raise DecompositionError("khatri_rao needs at least one matrix")
    rank = matrices[0].shape[1]
    for matrix in matrices:
        if matrix.ndim != 2 or matrix.shape[1] != rank:
            raise DecompositionError("khatri_rao matrices must share column count")
    result = matrices[0]
    for matrix in matrices[1:]:
        rows_a, rows_b = result.shape[0], matrix.shape[0]
        result = (result[:, None, :] * matrix[None, :, :]).reshape(
            rows_a * rows_b, rank
        )
    return result


@dataclass
class CPResult:
    """Weights (scale vector) and per-mode factors of a CP decomposition."""

    weights: np.ndarray          # (R,)
    factors: List[np.ndarray]    # mode-n factor (dim_n, R)
    iterations: int
    converged: bool

    @property
    def rank(self) -> int:
        return int(self.weights.shape[0])

    def reconstruct(self) -> np.ndarray:
        shape = tuple(factor.shape[0] for factor in self.factors)
        first = self.factors[0] * self.weights[None, :]
        rest = khatri_rao(self.factors[1:]) if len(self.factors) > 1 else np.ones((1, self.rank))
        return (first @ rest.T).reshape(shape)

    def parameters(self) -> int:
        return self.rank + sum(factor.size for factor in self.factors)

    def error(self, original: np.ndarray) -> float:
        return relative_error(original, self.reconstruct())


def cp_parameters(dims: Sequence[int], rank: int) -> int:
    """Parameter count of a rank-``rank`` CP over ``dims``."""
    if rank <= 0 or any(d <= 0 for d in dims):
        raise DecompositionError("dims and rank must be positive")
    return rank + rank * sum(dims)


def cp_als(
    tensor: np.ndarray,
    rank: int,
    max_iterations: int = 100,
    tolerance: float = 1e-7,
    rng: Optional[np.random.Generator] = None,
) -> CPResult:
    """Rank-``rank`` CP decomposition by alternating least squares."""
    tensor = np.asarray(tensor, dtype=np.float64)
    if tensor.ndim < 2:
        raise DecompositionError("cp_als requires an order >= 2 tensor")
    if rank <= 0:
        raise DecompositionError(f"rank must be positive, got {rank}")
    if rng is None:
        rng = np.random.default_rng(0)

    n_modes = tensor.ndim
    factors = [
        rng.normal(size=(dim, rank)) / np.sqrt(dim) for dim in tensor.shape
    ]
    weights = np.ones(rank)
    norm_t = np.linalg.norm(tensor)
    previous_error = np.inf
    converged = False
    iterations = 0

    for iterations in range(1, max_iterations + 1):
        for mode in range(n_modes):
            others = [factors[m] for m in range(n_modes) if m != mode]
            # Khatri-Rao over the *other* modes in reverse order matches the
            # unfolding convention of ``unfold`` (mode moved to the front).
            kr = khatri_rao(others)
            gram = np.ones((rank, rank))
            for factor in others:
                gram *= factor.T @ factor
            unfolded = unfold(tensor, mode)
            factors[mode] = unfolded @ kr @ np.linalg.pinv(gram)
            # Normalize columns into the weight vector for stability.
            norms = np.linalg.norm(factors[mode], axis=0)
            norms = np.where(norms == 0.0, 1.0, norms)
            factors[mode] = factors[mode] / norms
            weights = norms
        result = CPResult(weights, [f.copy() for f in factors], iterations, False)
        error = result.error(tensor) if norm_t > 0 else 0.0
        if abs(previous_error - error) < tolerance:
            converged = True
            break
        previous_error = error

    # Fold the weights into the first factor only at reconstruction time;
    # keep them explicit in the result.
    return CPResult(weights, factors, iterations, converged)


def cp_matrix(
    matrix: np.ndarray, rank: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CP of a matrix: returns (A, s, B) with ``matrix ~= A @ diag(s) @ B.T``.

    For matrices the optimal CP equals the truncated SVD, so this is
    computed in closed form.
    """
    from repro.decomposition.svd import truncated_svd

    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise DecompositionError("cp_matrix expects a matrix")
    u, s, vt = truncated_svd(matrix, rank)
    return u, s, vt.T
