"""The decomposition configuration γ (Definitions 2-4) and its validity.

A configuration names the decomposed layers, the decomposed tensor roles
within each layer (homogeneous across layers, as in Section 3.1), and the
pruned rank for each (layer, role) pair.  The common case — one uniform
rank — has a convenience constructor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import ConfigError
from repro.models.config import ModelConfig


@dataclass(frozen=True)
class DecompositionConfig:
    """γ(m) = (PR(m), Decomp_Layers(m), Decomp_Tensors(m)).

    Parameters
    ----------
    layers:
        Zero-based indices of the decomposed layers (Definition 2).
    roles:
        Names of the decomposed weight tensors within each decomposed layer
        (Definition 2); the same set applies to every layer (Section 3.1's
        homogeneous scheme).
    rank:
        The uniform pruned rank applied to every (layer, role) pair
        (Definition 3).  Per-pair overrides may be supplied via ``ranks``.
    ranks:
        Optional mapping ``(layer, role) -> rank`` overriding ``rank``.
    method:
        ``"hoi"`` (Algorithm 1) or ``"svd"``.
    bits:
        Optional post-training weight-quantization width applied to every
        per-layer projection (dense or factorized) after decomposition —
        the second axis of the rank × bits joint design space.  ``None``
        keeps fp32 weights.  Note ``bits`` composes with *any* rank
        configuration, including the identity (dense int8).
    """

    layers: Tuple[int, ...]
    roles: Tuple[str, ...]
    rank: int = 1
    ranks: Mapping[Tuple[int, str], int] = field(default_factory=dict)
    method: str = "hoi"
    bits: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "layers", tuple(sorted(set(int(l) for l in self.layers))))
        object.__setattr__(self, "roles", tuple(dict.fromkeys(self.roles)))
        object.__setattr__(self, "ranks", dict(self.ranks))
        if self.rank <= 0:
            raise ConfigError(f"pruned rank must be positive, got {self.rank}")
        if self.method not in ("hoi", "svd"):
            raise ConfigError(f"unknown decomposition method {self.method!r}")
        if self.bits is not None:
            from repro.nn.quantized import SUPPORTED_BITS

            if self.bits not in SUPPORTED_BITS:
                raise ConfigError(
                    f"bits must be one of {SUPPORTED_BITS}, got {self.bits}"
                )
        for (layer, role), rank in self.ranks.items():
            if rank <= 0:
                raise ConfigError(f"override rank for ({layer}, {role}) must be positive")

    # -- constructors ------------------------------------------------------
    @classmethod
    def identity(cls) -> "DecompositionConfig":
        """The no-decomposition configuration (empty layer/tensor sets)."""
        return cls(layers=(), roles=())

    @classmethod
    def uniform(
        cls,
        layers: Iterable[int],
        roles: Iterable[str],
        rank: int = 1,
        method: str = "hoi",
    ) -> "DecompositionConfig":
        """Homogeneous configuration: same roles and rank in every layer."""
        return cls(layers=tuple(layers), roles=tuple(roles), rank=rank, method=method)

    @classmethod
    def all_tensors(
        cls, model_config: ModelConfig, layers: Iterable[int], rank: int = 1
    ) -> "DecompositionConfig":
        """Decompose every Figure-4 tensor of the model in ``layers``."""
        return cls.uniform(layers, model_config.tensor_roles, rank=rank)

    # -- queries -----------------------------------------------------------
    @property
    def is_identity(self) -> bool:
        return not self.layers or not self.roles

    def rank_for(self, layer: int, role: str) -> int:
        """Pruned rank for a specific (layer, role) pair."""
        return int(self.ranks.get((layer, role), self.rank))

    def pairs(self) -> Iterable[Tuple[int, str]]:
        """All decomposed (layer, role) pairs, layer-major order."""
        for layer in self.layers:
            for role in self.roles:
                yield layer, role

    def pruned_rank_set(self) -> Dict[Tuple[int, str], int]:
        """PR(m) from Definition 3 as an explicit mapping."""
        return {(layer, role): self.rank_for(layer, role) for layer, role in self.pairs()}

    # -- validation (Proposition 3.1) ---------------------------------------
    def validate(self, model_config: ModelConfig) -> None:
        """Check validity of γ against a model (Proposition 3.1).

        Conditions enforced:

        1. every decomposed layer index is within [0, N_Layers);
        2. every decomposed role is a decomposable tensor of the family;
        3. every (layer, role) pruned rank is within [1, rank(l, k)], where
           rank(l, k) = min(H, W) of that weight matrix (Definition 3);
        4. the pruned-rank set covers exactly the decomposed layer x tensor
           combinations (the coverage condition of Proposition 3.1).
        """
        for layer in self.layers:
            if not 0 <= layer < model_config.n_layers:
                raise ConfigError(
                    f"layer {layer} out of range [0, {model_config.n_layers}) "
                    f"for {model_config.name}"
                )
        for role in self.roles:
            if role not in model_config.tensor_roles:
                raise ConfigError(
                    f"role {role!r} is not decomposable in {model_config.name}; "
                    f"available: {model_config.tensor_roles}"
                )
        for (layer, role), rank in self.pruned_rank_set().items():
            height, width = model_config.tensor_shape(role)
            max_rank = min(height, width)
            if not 1 <= rank <= max_rank:
                raise ConfigError(
                    f"rank {rank} for ({layer}, {role}) out of [1, {max_rank}]"
                )
        # Coverage: overrides must not name pairs outside Layers x Tensors.
        for layer, role in self.ranks:
            if layer not in self.layers or role not in self.roles:
                raise ConfigError(
                    f"rank override for ({layer}, {role!r}) names an undecomposed pair"
                )

    def is_valid(self, model_config: ModelConfig) -> bool:
        """Boolean form of :meth:`validate` — Val(γ) in Proposition 3.1."""
        try:
            self.validate(model_config)
        except ConfigError:
            return False
        return True

    def describe(self) -> str:
        suffix = "" if self.bits is None else f" int{self.bits}"
        if self.is_identity:
            return f"identity (no decomposition){suffix}"
        layers = ",".join(str(l) for l in self.layers)
        roles = ",".join(self.roles)
        return (
            f"rank={self.rank} layers=[{layers}] tensors=[{roles}] "
            f"method={self.method}{suffix}"
        )
