"""Truncated singular value decomposition used inside Algorithm 1.

``A = SVD(k, B)`` in the paper's notation computes the k leading left
singular vectors of B.  NumPy's LAPACK-backed full SVD is exact and fast at
the matrix sizes this library handles.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import DecompositionError


def truncated_svd(matrix: np.ndarray, rank: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rank-``rank`` truncated SVD: returns (U_k, s_k, Vt_k).

    ``U_k`` is (m, k) with orthonormal columns, ``s_k`` the k largest
    singular values in descending order, ``Vt_k`` is (k, n).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise DecompositionError(f"truncated_svd expects a matrix, got {matrix.shape}")
    max_rank = min(matrix.shape)
    if not 1 <= rank <= max_rank:
        raise DecompositionError(
            f"rank {rank} out of range [1, {max_rank}] for shape {matrix.shape}"
        )
    u, s, vt = np.linalg.svd(matrix, full_matrices=False)
    return u[:, :rank], s[:rank], vt[:rank, :]


def leading_left_singular_vectors(matrix: np.ndarray, rank: int) -> np.ndarray:
    """The ``A = SVD(k, B)`` primitive of Algorithm 1."""
    u, _, _ = truncated_svd(matrix, rank)
    return u


def best_rank_k_approximation(matrix: np.ndarray, rank: int) -> np.ndarray:
    """Eckart-Young optimal rank-k approximation of ``matrix``."""
    u, s, vt = truncated_svd(matrix, rank)
    return (u * s) @ vt


def singular_values(matrix: np.ndarray) -> np.ndarray:
    """All singular values of ``matrix`` in descending order."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise DecompositionError(f"expected a matrix, got shape {matrix.shape}")
    return np.linalg.svd(matrix, compute_uv=False)


def randomized_svd(
    matrix: np.ndarray,
    rank: int,
    oversampling: int = 10,
    power_iterations: int = 2,
    rng: "np.random.Generator" = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Randomized truncated SVD (Halko, Martinsson & Tropp 2011).

    Projects onto a random range sketch of width ``rank + oversampling``
    with a few power iterations, then takes an exact SVD of the small
    projected matrix.  Orders of magnitude faster than LAPACK for the
    4096-wide matrices of paper-scale models, at negligible accuracy cost
    for the low ranks decomposition uses.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise DecompositionError(f"randomized_svd expects a matrix, got {matrix.shape}")
    max_rank = min(matrix.shape)
    if not 1 <= rank <= max_rank:
        raise DecompositionError(
            f"rank {rank} out of range [1, {max_rank}] for shape {matrix.shape}"
        )
    if rng is None:
        rng = np.random.default_rng(0)
    sketch_width = min(rank + max(oversampling, 0), max_rank)
    sketch = rng.normal(size=(matrix.shape[1], sketch_width))
    sample = matrix @ sketch
    for _ in range(max(power_iterations, 0)):
        sample = matrix @ (matrix.T @ sample)
    basis, _ = np.linalg.qr(sample)
    small = basis.T @ matrix
    u_small, s, vt = np.linalg.svd(small, full_matrices=False)
    u = basis @ u_small
    return u[:, :rank], s[:rank], vt[:rank, :]


def impose_spectrum(matrix: np.ndarray, decay: float) -> np.ndarray:
    """Rebuild ``matrix`` with an exponentially decaying singular spectrum.

    Keeps the singular *vectors* but replaces the singular values with
    ``s_1 * exp(-decay * i)`` (``i`` zero-based), modelling the fast
    spectral decay trained transformer weights exhibit (the regime where
    low-rank decomposition is near-exact — the paper's premise).  Randomly
    initialized weights have a flat spectrum, so rank-k variants of them
    agree with the dense model on almost nothing; shaped weights make a
    rank-8 drafter a faithful proxy, which is what the speculative-decoding
    benchmark needs to measure a realistic acceptance rate.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise DecompositionError(f"impose_spectrum expects a matrix, got {matrix.shape}")
    if decay < 0.0:
        raise DecompositionError(f"decay must be non-negative, got {decay}")
    u, s, vt = np.linalg.svd(matrix, full_matrices=False)
    top = s[0] if s.size and s[0] > 0.0 else 1.0
    shaped = top * np.exp(-decay * np.arange(s.size))
    return (u * shaped) @ vt


def effective_rank(matrix: np.ndarray, energy: float = 0.99) -> int:
    """Smallest rank capturing ``energy`` of the squared spectral mass.

    A diagnostic used when characterizing how compressible a trained weight
    matrix is before choosing a pruned rank.
    """
    if not 0.0 < energy <= 1.0:
        raise DecompositionError(f"energy must be in (0, 1], got {energy}")
    values = singular_values(matrix) ** 2
    total = values.sum()
    if total == 0.0:
        return 1
    cumulative = np.cumsum(values) / total
    return int(np.searchsorted(cumulative, energy) + 1)
