"""Layer-choice recipes: the paper's Table 4 plus spacing heuristics.

Table 4 lists, for each parameter-reduction target on Llama-2-7B, the
(1-based) decoder layers that are decomposed with rank 1 and all tensors.
The recipes follow the characterization insights of Section 3.4: avoid the
first two and the last layers at low reduction, and spread decomposed
layers apart.

``scale_recipe`` maps a 32-layer recipe onto models with fewer layers by
preserving each layer's fractional position, so the tiny trained models can
replay the case study.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.errors import ConfigError

# Paper Table 4: parameter-reduction percent -> 1-based decomposed layers of
# the 32-layer Llama-2-7B.
PAPER_TABLE4: Dict[int, Tuple[int, ...]] = {
    6: (3, 30),
    9: (3, 18, 32),
    15: (3, 9, 15, 21, 27),
    21: (5, 9, 13, 17, 21, 25, 29),
    33: (3, 6, 9, 12, 15, 18, 21, 24, 27, 30, 32),
    48: (1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25, 27, 29, 31),
    60: (2, 4, 6, 8, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 21, 23, 25, 27, 29, 31),
    75: (
        2, 4, 6, 8, 10, 11, 12, 13, 14, 15, 16, 17, 18,
        19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30,
    ),
    84: (
        1, 3, 5, 7, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19,
        20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32,
    ),
    96: tuple(range(1, 33)),
}

PAPER_N_LAYERS = 32


def table4_layers(reduction_percent: int, zero_based: bool = True) -> Tuple[int, ...]:
    """The Table 4 layer set for a reduction target, 0-based by default."""
    try:
        layers = PAPER_TABLE4[reduction_percent]
    except KeyError:
        raise ConfigError(
            f"no Table 4 recipe for {reduction_percent}%; "
            f"available: {sorted(PAPER_TABLE4)}"
        ) from None
    if zero_based:
        return tuple(layer - 1 for layer in layers)
    return layers


def scale_recipe(layers_1based: Sequence[int], n_layers: int) -> Tuple[int, ...]:
    """Map a 32-layer recipe to an ``n_layers`` model, 0-based output.

    Each 1-based source layer l is placed at the same fractional depth:
    ``round((l - 1) / 31 * (n_layers - 1))``.  Duplicates collapse, so the
    scaled recipe may contain fewer layers than the original — the
    parameter-reduction fraction scales accordingly.
    """
    if n_layers <= 0:
        raise ConfigError("n_layers must be positive")
    scaled = sorted(
        {
            round((layer - 1) / (PAPER_N_LAYERS - 1) * (n_layers - 1))
            for layer in layers_1based
        }
    )
    return tuple(scaled)


def scaled_table4(n_layers: int) -> Dict[int, Tuple[int, ...]]:
    """Every Table 4 recipe scaled to an ``n_layers`` model (0-based)."""
    return {
        percent: scale_recipe(layers, n_layers)
        for percent, layers in PAPER_TABLE4.items()
    }


def spread_layers(n_layers: int, count: int, avoid_edges: int = 0) -> Tuple[int, ...]:
    """``count`` layer indices spread as far apart as possible (0-based).

    ``avoid_edges`` keeps that many layers untouched at each end of the
    stack, implementing the "avoid the first/last layers" insight.
    """
    if count <= 0:
        return ()
    low, high = avoid_edges, n_layers - 1 - avoid_edges
    if high < low:
        raise ConfigError(
            f"cannot avoid {avoid_edges} edge layers in a {n_layers}-layer model"
        )
    available = high - low + 1
    if count > available:
        raise ConfigError(f"cannot place {count} layers in {available} positions")
    if count == 1:
        return ((low + high) // 2,)
    positions = [
        low + round(i * (high - low) / (count - 1)) for i in range(count)
    ]
    deduped = sorted(set(positions))
    # Rounding can collide for large counts; fall back to filling gaps.
    cursor = low
    while len(deduped) < count:
        if cursor not in deduped:
            deduped.append(cursor)
            deduped.sort()
        cursor += 1
    return tuple(deduped)


def consecutive_layers(start: int, count: int, n_layers: int) -> Tuple[int, ...]:
    """``count`` adjacent layer indices beginning at ``start`` (0-based)."""
    if start < 0 or start + count > n_layers:
        raise ConfigError(
            f"consecutive run [{start}, {start + count}) exceeds {n_layers} layers"
        )
    return tuple(range(start, start + count))


def suggest_layers(
    model_config,
    target_reduction: float,
    rank: int = 1,
    avoid_edges: int = 2,
) -> Tuple[int, ...]:
    """Build a layer set for a reduction target using the paper's insights.

    Applies Section 3.4 directly: decompose *all* tensors at rank 1, avoid
    the first ``avoid_edges`` and last layers while possible, and spread
    the decomposed layers as far apart as the count allows.  Returns the
    smallest spread layer set whose all-tensor decomposition reaches
    ``target_reduction`` (a fraction in (0, 1)).
    """
    from repro.models.params import parameter_reduction

    if not 0.0 < target_reduction < 1.0:
        raise ConfigError(f"target_reduction must be in (0, 1), got {target_reduction}")
    n_layers = model_config.n_layers
    roles = model_config.tensor_roles
    for count in range(1, n_layers + 1):
        edges = avoid_edges
        # Relax the edge exclusion when the count no longer fits inside it.
        while edges > 0 and count > n_layers - 2 * edges:
            edges -= 1
        layers = spread_layers(n_layers, count, avoid_edges=edges)
        if parameter_reduction(model_config, layers, roles, rank) >= target_reduction:
            return layers
    return tuple(range(n_layers))


def strided_layers(n_layers: int, stride: int, offset: int = 0) -> Tuple[int, ...]:
    """Every ``stride``-th layer starting at ``offset`` (0-based).

    Figure 8 compares stride-1 (consecutive) against larger strides (the
    paper's "every sixth layer").
    """
    if stride <= 0:
        raise ConfigError("stride must be positive")
    return tuple(range(offset, n_layers, stride))
