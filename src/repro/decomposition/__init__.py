"""The paper's contribution: Tucker decomposition of transformer weights.

- :mod:`repro.decomposition.tucker` — Algorithm 1 (HOI), HOSVD, mode algebra.
- :mod:`repro.decomposition.svd` — truncated SVD primitives.
- :mod:`repro.decomposition.config` — γ configurations (Definitions 2-4).
- :mod:`repro.decomposition.space` — design space S_LR (Theorem 3.2, Table 2).
- :mod:`repro.decomposition.apply` — surgery on live models.
- :mod:`repro.decomposition.metrics` — compression/error arithmetic.
- :mod:`repro.decomposition.recipes` — Table 4 layer sets and heuristics.
"""

from repro.decomposition.apply import (
    DecompositionReport,
    TensorReport,
    decompose_model,
    decomposed,
    restore,
    shape_model_spectrum,
)
from repro.decomposition.config import DecompositionConfig
from repro.decomposition.cp import CPResult, cp_als, cp_matrix, cp_parameters, khatri_rao
from repro.decomposition.objective import (
    CandidateOutcome,
    DesignGoalResult,
    design_goal_search,
)
from repro.decomposition.metrics import (
    breakeven_rank,
    compression_ratio,
    dense_parameters,
    factorized_parameters,
    relative_error,
    saves_memory,
)
from repro.decomposition.activation_aware import (
    activation_aware_tucker2,
    collect_input_scales,
    decompose_model_activation_aware,
    output_error,
)
from repro.decomposition.allocation import (
    RankAllocation,
    allocate_ranks,
    uniform_rank_for_budget,
)
from repro.decomposition.recipes import (
    PAPER_TABLE4,
    consecutive_layers,
    scale_recipe,
    scaled_table4,
    spread_layers,
    strided_layers,
    suggest_layers,
    table4_layers,
)
from repro.decomposition.space import (
    count_design_space,
    design_space_log2,
    design_space_size,
    enumerate_design_space,
    format_scale,
    model_design_space_size,
    pruned_design_space,
)
from repro.decomposition.svd import (
    best_rank_k_approximation,
    effective_rank,
    impose_spectrum,
    randomized_svd,
    singular_values,
    truncated_svd,
)
from repro.decomposition.tucker import (
    TuckerResult,
    fold,
    hoi,
    hosvd,
    mode_product,
    multi_mode_product,
    tucker2,
    unfold,
)

__all__ = [
    "DecompositionConfig",
    "CPResult",
    "cp_als",
    "cp_matrix",
    "cp_parameters",
    "khatri_rao",
    "CandidateOutcome",
    "DesignGoalResult",
    "design_goal_search",
    "DecompositionReport",
    "TensorReport",
    "decompose_model",
    "decomposed",
    "restore",
    "shape_model_spectrum",
    "tucker2",
    "hoi",
    "hosvd",
    "TuckerResult",
    "unfold",
    "fold",
    "mode_product",
    "multi_mode_product",
    "truncated_svd",
    "randomized_svd",
    "best_rank_k_approximation",
    "singular_values",
    "effective_rank",
    "impose_spectrum",
    "compression_ratio",
    "factorized_parameters",
    "dense_parameters",
    "breakeven_rank",
    "saves_memory",
    "relative_error",
    "design_space_size",
    "design_space_log2",
    "model_design_space_size",
    "enumerate_design_space",
    "count_design_space",
    "pruned_design_space",
    "format_scale",
    "PAPER_TABLE4",
    "table4_layers",
    "scale_recipe",
    "scaled_table4",
    "spread_layers",
    "consecutive_layers",
    "strided_layers",
    "suggest_layers",
    "RankAllocation",
    "allocate_ranks",
    "uniform_rank_for_budget",
    "activation_aware_tucker2",
    "collect_input_scales",
    "decompose_model_activation_aware",
    "output_error",
]
