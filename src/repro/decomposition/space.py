"""The decomposition design space S_LR (Definition 5, Theorem 3.2, Table 2).

Provides the closed-form size of the design space, exhaustive enumeration
for small models (used to verify the theorem), and the characterization-
driven pruned space the paper reduces to (rank-1, all tensors, recipe layer
sets — "from O(2^37) to O(32)" for Llama-2-7B).
"""

from __future__ import annotations

import math
from dataclasses import replace
from itertools import chain, combinations
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.decomposition.config import DecompositionConfig
from repro.errors import ConfigError
from repro.models.config import ModelConfig


def design_space_size(
    n_layers: int, n_tensors: int, rank_choices: int, bit_choices: int = 1
) -> int:
    """|S_LR(m)| from Theorem 3.2, with an optional quantization axis.

    ``(2^N_Layers - 1) * (2^N_Tensors - 1) * rank_choices * bit_choices + 1``
    where ``rank_choices`` is the number of available pruned ranks for a
    uniform decomposition, ``bit_choices`` the number of weight-precision
    options (fp32 plus each quantized width — the rank × bits joint space;
    the default 1 reproduces the paper's decomposition-only count), and
    the ``+ 1`` counts the identity configuration.
    """
    if n_layers < 0 or n_tensors < 0 or rank_choices < 0 or bit_choices < 1:
        raise ConfigError("design-space dimensions must be non-negative")
    return (2**n_layers - 1) * (2**n_tensors - 1) * rank_choices * bit_choices + 1


def design_space_log2(
    n_layers: int, n_tensors: int, rank_choices: int = 1, bit_choices: int = 1
) -> float:
    """log2 of the design-space size (the paper's O(2^x) scale in Table 2).

    Table 2 reports the big-O scale from the subset choices alone, i.e.
    ``2^(N_Layers + N_Tensors)``; pass ``rank_choices=1`` to match it.
    """
    return math.log2(design_space_size(n_layers, n_tensors, rank_choices, bit_choices))


def model_design_space_size(
    config: ModelConfig,
    rank_choices: Optional[int] = None,
    bit_choices: int = 1,
) -> int:
    """Design-space size of a registered model.

    ``rank_choices`` defaults to the smallest weight-matrix dimension, the
    maximum uniform pruned rank available (Definition 3's rank(l, k) bound).
    """
    if rank_choices is None:
        rank_choices = min(
            min(shape) for shape in config.tensor_shapes().values()
        )
    return design_space_size(
        config.n_layers, config.n_tensors, rank_choices, bit_choices
    )


def _non_empty_subsets(items: Tuple) -> Iterator[Tuple]:
    return chain.from_iterable(
        combinations(items, size) for size in range(1, len(items) + 1)
    )


def enumerate_design_space(
    config: ModelConfig, rank_choices: Iterable[int]
) -> Iterator[DecompositionConfig]:
    """Exhaustively yield every valid uniform configuration.

    Yields the identity configuration first, then every (layer subset,
    tensor subset, rank) combination.  Only feasible for small models; used
    to verify Theorem 3.2 by brute force.
    """
    yield DecompositionConfig.identity()
    layers = tuple(range(config.n_layers))
    roles = config.tensor_roles
    ranks = tuple(rank_choices)
    for layer_subset in _non_empty_subsets(layers):
        for role_subset in _non_empty_subsets(roles):
            for rank in ranks:
                yield DecompositionConfig.uniform(layer_subset, role_subset, rank=rank)


def count_design_space(config: ModelConfig, rank_choices: Iterable[int]) -> int:
    """Brute-force |S_LR| (for testing Theorem 3.2 on small models)."""
    return sum(1 for _ in enumerate_design_space(config, rank_choices))


def pruned_design_space(
    config: ModelConfig,
    layer_sets: Iterable[Tuple[int, ...]],
    rank: int = 1,
    bit_widths: Iterable[Optional[int]] = (None,),
) -> List[DecompositionConfig]:
    """The reduced space after the paper's characterization insights.

    Rank is pinned to 1, all tensors are decomposed, and only the supplied
    layer sets (e.g. the Table 4 recipes) are explored — collapsing
    O(2^(L+K)) to O(#recipes).

    ``bit_widths`` crosses each point with weight-quantization widths
    (``None`` = fp32); every non-fp32 width also contributes a dense
    quantized point (identity rank, quantized weights), since bits is an
    axis independent of decomposition.  The default keeps the paper's
    decomposition-only space.
    """
    space = [DecompositionConfig.identity()]
    layer_sets = list(layer_sets)
    for bits in dict.fromkeys(bit_widths):
        if bits is not None:
            space.append(replace(DecompositionConfig.identity(), bits=bits))
        for layer_set in layer_sets:
            point = DecompositionConfig.all_tensors(config, layer_set, rank=rank)
            if bits is not None:
                point = replace(point, bits=bits)
            space.append(point)
    return space


def format_scale(size: int) -> str:
    """Human-readable O(2^x) rendering used by Table 2."""
    if size <= 1:
        return "O(1)"
    return f"O(2^{int(round(math.log2(size)))})"
