"""Generators for the paper's analytic tables (Table 1 and Table 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.macs import model_macs
from repro.analysis.vision import resnet50_macs, resnet50_size_bytes
from repro.decomposition.space import format_scale
from repro.models import get_config
from repro.models.params import (
    BYTES_PER_PARAM_FP16,
    head_parameters,
    model_size_bytes,
    total_parameters,
)

# Table 1 reports sizes in decimal units (219.0 MB = 109.5M params * 2B).
MB = 10**6
GB = 10**9


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1."""

    model: str
    model_type: str
    size_bytes: int
    macs: int

    @property
    def size_mb(self) -> float:
        return self.size_bytes / MB

    @property
    def compute_to_model_size_ratio(self) -> float:
        """MACs per byte of FP16 weights (the paper's reuse metric)."""
        return self.macs / self.size_bytes


def table1_rows(batch: int = 1, seq_len: int = 128) -> List[Table1Row]:
    """Table 1: size, MACs, and compute-to-model-size ratio.

    Language-model rows use the paper's setting (batch 1, sequence 128).
    The ResNet-50 MAC count here is the standard single-crop value
    (~4.1 GMACs); the paper reports 8.21 B, which corresponds to counting
    each MAC as two operations (FLOPs) — both conventions yield the same
    *ordering* and a CNN ratio far above the language models'.
    """
    rows = [
        Table1Row(
            model="resnet50",
            model_type="Computer Vision",
            size_bytes=resnet50_size_bytes(),
            macs=resnet50_macs(batch),
        )
    ]
    for name, kind, include_head in (
        # BERT-Base is counted as the 110M-parameter encoder (the paper's
        # SQuAD fine-tune has a negligible QA head, not the 23M MLM head).
        ("bert-base", "Language Model", False),
        ("llama2-7b", "Large Language Model", True),
    ):
        config = get_config(name)
        size = model_size_bytes(config)
        if not include_head:
            size -= head_parameters(config) * BYTES_PER_PARAM_FP16
        rows.append(
            Table1Row(
                model=name,
                model_type=kind,
                size_bytes=size,
                macs=model_macs(config, batch, seq_len, include_head=include_head),
            )
        )
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    lines = [
        f"{'model':<12}{'type':<24}{'size':>10}{'MACs':>12}{'MACs/byte':>12}"
    ]
    for row in rows:
        size = (
            f"{row.size_bytes / GB:.1f} GB"
            if row.size_bytes >= GB
            else f"{row.size_mb:.1f} MB"
        )
        lines.append(
            f"{row.model:<12}{row.model_type:<24}{size:>10}"
            f"{row.macs / 1e9:>10.2f} B{row.compute_to_model_size_ratio:>12.1f}"
        )
    return "\n".join(lines)


# Paper Table 2 uses these per-layer decomposable-tensor counts.  Note the
# paper counts 5 tensors for Llama 2 in Table 2 while its Figure 4 shows 7;
# we reproduce the table with the paper's printed counts and additionally
# report the Figure-4-consistent count.
PAPER_TABLE2_TENSOR_COUNTS: Dict[str, int] = {
    "bert-base": 6,
    "bert-large": 6,
    "llama2-7b": 5,
    "llama2-70b": 5,
}


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2."""

    model: str
    n_layers: int
    n_tensors_paper: int
    n_tensors_fig4: int

    @property
    def scale_paper(self) -> str:
        """O(2^x) using the paper's printed tensor counts."""
        size = 2 ** (self.n_layers + self.n_tensors_paper)
        return format_scale(size)

    @property
    def log2_paper(self) -> int:
        return self.n_layers + self.n_tensors_paper

    @property
    def log2_fig4(self) -> int:
        return self.n_layers + self.n_tensors_fig4


def table2_rows() -> List[Table2Row]:
    rows = []
    for name, paper_count in PAPER_TABLE2_TENSOR_COUNTS.items():
        config = get_config(name)
        rows.append(
            Table2Row(
                model=name,
                n_layers=config.n_layers,
                n_tensors_paper=paper_count,
                n_tensors_fig4=config.n_tensors,
            )
        )
    return rows


def format_table2(rows: List[Table2Row]) -> str:
    lines = [f"{'model':<12}{'layers':>7}{'tensors':>9}{'space':>10}"]
    for row in rows:
        lines.append(
            f"{row.model:<12}{row.n_layers:>7}{row.n_tensors_paper:>9}{row.scale_paper:>10}"
        )
    return "\n".join(lines)
