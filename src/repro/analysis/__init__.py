"""Analytic model analysis: MAC counting and the paper's Tables 1-2."""

from repro.analysis.macs import (
    attention_bmm_macs,
    conv2d_macs,
    linear_macs,
    macs_per_parameter,
    model_macs,
    transformer_layer_macs,
)
from repro.analysis.tables import (
    PAPER_TABLE2_TENSOR_COUNTS,
    Table1Row,
    Table2Row,
    format_table1,
    format_table2,
    table1_rows,
    table2_rows,
)
from repro.analysis.vision import (
    ConvSpec,
    resnet50_convs,
    resnet50_macs,
    resnet50_params,
    resnet50_size_bytes,
)

__all__ = [
    "linear_macs",
    "attention_bmm_macs",
    "conv2d_macs",
    "transformer_layer_macs",
    "model_macs",
    "macs_per_parameter",
    "ConvSpec",
    "resnet50_convs",
    "resnet50_params",
    "resnet50_macs",
    "resnet50_size_bytes",
    "Table1Row",
    "Table2Row",
    "table1_rows",
    "table2_rows",
    "format_table1",
    "format_table2",
    "PAPER_TABLE2_TENSOR_COUNTS",
]
