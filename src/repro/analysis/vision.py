"""Analytic ResNet-50 inventory for Table 1's CNN comparison point.

ResNet-50 (He et al., 2016) at 224x224 input: a 7x7 stem, four stages of
bottleneck blocks [3, 4, 6, 3], and a 1000-way classifier.  Only shapes are
modeled — enough to count parameters and MACs exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.macs import conv2d_macs, linear_macs


@dataclass(frozen=True)
class ConvSpec:
    """One convolution: shapes sufficient for MAC/param counting."""

    name: str
    in_channels: int
    out_channels: int
    kernel: int
    out_size: int  # output spatial resolution (square)

    @property
    def params(self) -> int:
        return self.in_channels * self.out_channels * self.kernel * self.kernel

    @property
    def macs(self) -> int:
        return conv2d_macs(
            self.out_size, self.out_size, self.in_channels, self.out_channels, self.kernel
        )


def _bottleneck(
    name: str, in_ch: int, mid_ch: int, in_size: int, out_size: int, downsample: bool
) -> List[ConvSpec]:
    """One bottleneck block: 1x1 reduce, 3x3 (strided if downsampling),
    1x1 expand, plus a 1x1 projection on the shortcut when shapes change.

    Following torchvision's ResNet-50, the stride sits in the 3x3 conv, so
    the 1x1 reduction runs at the *input* resolution.
    """
    out_ch = mid_ch * 4
    convs = [
        ConvSpec(f"{name}.conv1", in_ch, mid_ch, 1, in_size),
        ConvSpec(f"{name}.conv2", mid_ch, mid_ch, 3, out_size),
        ConvSpec(f"{name}.conv3", mid_ch, out_ch, 1, out_size),
    ]
    if downsample:
        convs.append(ConvSpec(f"{name}.proj", in_ch, out_ch, 1, out_size))
    return convs


def resnet50_convs() -> List[ConvSpec]:
    """Every convolution in ResNet-50 at 224x224 input."""
    convs: List[ConvSpec] = [ConvSpec("stem", 3, 64, 7, 112)]
    stage_plan: List[Tuple[str, int, int, int, int, int]] = [
        # (name, blocks, mid channels, input channels, in res, out res)
        ("stage1", 3, 64, 64, 56, 56),
        ("stage2", 4, 128, 256, 56, 28),
        ("stage3", 6, 256, 512, 28, 14),
        ("stage4", 3, 512, 1024, 14, 7),
    ]
    for name, blocks, mid, in_ch, in_size, out_size in stage_plan:
        for block in range(blocks):
            block_in = in_ch if block == 0 else mid * 4
            block_in_size = in_size if block == 0 else out_size
            convs.extend(
                _bottleneck(
                    f"{name}.block{block}", block_in, mid, block_in_size, out_size,
                    downsample=(block == 0),
                )
            )
    return convs


def resnet50_params() -> int:
    """Total parameters: convs + batch-norm scales/shifts + classifier."""
    convs = resnet50_convs()
    conv_params = sum(c.params for c in convs)
    bn_params = sum(2 * c.out_channels for c in convs)
    fc_params = 2048 * 1000 + 1000
    return conv_params + bn_params + fc_params


def resnet50_macs(batch: int = 1) -> int:
    """Forward MACs at 224x224 (per the Table 1 setting)."""
    conv_macs = sum(c.macs for c in resnet50_convs())
    fc_macs = linear_macs(1, 2048, 1000)
    return batch * (conv_macs + fc_macs)


def resnet50_size_bytes(bytes_per_param: int = 2) -> int:
    """Model size at the given precision (FP16 by default, as in Table 1)."""
    return resnet50_params() * bytes_per_param
