"""MAC (multiply-accumulate) counting for transformer and CNN layers.

Backs Table 1: model size, computation count, and the compute-to-model-size
ratio that motivates the paper (language models sit far below CNNs, hence
the memory-bound regime).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError
from repro.models.config import ModelConfig


def linear_macs(tokens: int, in_features: int, out_features: int) -> int:
    """MACs of a dense projection applied to ``tokens`` activations."""
    if tokens <= 0 or in_features <= 0 or out_features <= 0:
        raise ConfigError("linear_macs arguments must be positive")
    return tokens * in_features * out_features


def attention_bmm_macs(batch: int, seq_len: int, n_heads: int, head_dim: int) -> int:
    """MACs of the two batched matmuls (QK^T and PV) in self-attention."""
    return 2 * batch * n_heads * seq_len * seq_len * head_dim


def conv2d_macs(
    out_height: int,
    out_width: int,
    in_channels: int,
    out_channels: int,
    kernel: int,
    groups: int = 1,
) -> int:
    """MACs of a 2-D convolution producing (out_channels, H, W)."""
    if groups <= 0 or in_channels % groups:
        raise ConfigError(f"invalid groups {groups} for {in_channels} channels")
    per_position = (in_channels // groups) * kernel * kernel
    return out_height * out_width * out_channels * per_position


def transformer_layer_macs(config: ModelConfig, batch: int, seq_len: int) -> int:
    """MACs of one encoder/decoder layer at (batch, seq_len)."""
    tokens = batch * seq_len
    total = 0
    for role in config.tensor_roles:
        height, width = config.tensor_shape(role)
        total += linear_macs(tokens, height, width)
    total += attention_bmm_macs(batch, seq_len, config.n_heads, config.head_dim)
    return total


def model_macs(
    config: ModelConfig,
    batch: int = 1,
    seq_len: int = 128,
    include_head: bool = True,
) -> int:
    """Forward-pass MACs of the full language model.

    The paper's Table 1 reports "# Computations (MACs)" at batch 1 and
    sequence length 128, which the defaults reproduce.
    """
    tokens = batch * seq_len
    total = config.n_layers * transformer_layer_macs(config, batch, seq_len)
    if include_head:
        total += linear_macs(tokens, config.dim, config.vocab_size)
    return total


def macs_per_parameter(
    config: ModelConfig, batch: int = 1, seq_len: int = 128
) -> float:
    """MACs per model parameter — the reuse measure behind Table 1."""
    from repro.models.params import total_parameters

    return model_macs(config, batch, seq_len) / total_parameters(config)
