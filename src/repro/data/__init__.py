"""Synthetic knowledge world and corpus generation."""

from repro.data.corpus import CorpusConfig, build_corpus, corpus_stats, corpus_vocabulary
from repro.data.world import PersonFacts, World

__all__ = [
    "World",
    "PersonFacts",
    "CorpusConfig",
    "build_corpus",
    "corpus_vocabulary",
    "corpus_stats",
]
