"""A procedural knowledge world backing the synthetic benchmark suite.

The world is a small relational universe — people, cities, countries,
foods, professions, pets, colors, sports, everyday scripts, and simple
arithmetic — generated deterministically from a seed.  A training corpus is
rendered from its facts (:mod:`repro.data.corpus`) and the seven benchmark
tasks (:mod:`repro.eval.tasks`) are built from the same facts, so a model
trained on the corpus holds genuine, measurable knowledge that degrades
gracefully under weight decomposition.

Design choices mirror the difficulty gradient of the paper's benchmarks:

- single-hop facts (ARC-Easy analogue) are stated directly, in both
  declarative and question form, for every person;
- two-hop facts (ARC-Challenge analogue) are never stated directly for
  held-out people — the model must compose ``person -> city`` with
  ``city -> country``;
- a subset of countries carries a frequently repeated *myth* capital and a
  rarely stated true capital (TruthfulQA analogue), so a corpus-statistics
  learner confidently prefers the falsehood;
- everyday scripts give HellaSwag-style continuations; two-party object
  possession gives WinoGrande-style binary coreference; small arithmetic
  stories give GSM8K-style generative problems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ConfigError

PEOPLE = (
    "alice", "bob", "carol", "dave", "erin", "frank", "grace", "henry",
    "iris", "jack", "karen", "leo", "mona", "nina", "oscar", "paula",
    "quinn", "ruth", "sam", "tina",
)
CITIES = (
    "parana", "romara", "berlio", "madrix", "lisbos", "vienne",
    "osloda", "helsor", "dublio", "pragma", "warsaw", "athens",
)
COUNTRIES = (
    "gallia", "italos", "germia", "espara", "lusita", "austor",
    "norvia", "finnor", "hibern", "bohemi", "polona", "hellas",
)
FOODS = (
    "sushi", "pasta", "tacos", "curry", "salad", "bread",
    "cheese", "soup", "rice", "stew",
)
PROFESSIONS = (
    "doctor", "teacher", "farmer", "lawyer", "painter",
    "baker", "pilot", "singer", "writer", "nurse",
)
ANIMALS = (
    "cat", "dog", "bird", "fish", "rabbit",
    "horse", "turtle", "hamster", "goat", "duck",
)
COLORS = ("red", "blue", "green", "yellow", "purple", "orange", "black", "white")
SPORTS = ("tennis", "soccer", "chess", "golf", "hockey", "rugby", "boxing", "rowing")
OBJECTS = ("ball", "book", "key", "hat", "coin", "map")
PLACES = ("park", "beach", "station", "museum", "garden", "harbor")
COUNT_NOUNS = ("apples", "books", "coins", "pens", "shells", "stamps")

# (location, activity, consequence) everyday scripts for the HellaSwag
# analogue.  The consequence is predictable from the activity, not the
# location, so corrupted endings are clearly wrong yet grammatical.
SCRIPTS: Tuple[Tuple[str, str, str], ...] = (
    ("kitchen", "cooks dinner", "eats dinner"),
    ("park", "plays football", "gets tired"),
    ("library", "reads a book", "learns a lot"),
    ("pool", "swims laps", "gets wet"),
    ("market", "buys apples", "carries apples"),
    ("studio", "paints a picture", "shows the picture"),
    ("garden", "plants seeds", "waters the seeds"),
    ("garage", "fixes the car", "drives the car"),
)

MAX_OPERAND = 10  # arithmetic stories use a + b with 1 <= a, b <= MAX_OPERAND


@dataclass(frozen=True)
class PersonFacts:
    """Everything the world knows about one person."""

    name: str
    city: str
    food: str
    profession: str
    animal: str
    color: str
    sport: str


@dataclass
class World:
    """The complete synthetic universe, fully determined by ``seed``."""

    seed: int
    people: Tuple[PersonFacts, ...]
    capital_of: Dict[str, str]  # country -> true capital city
    country_of_city: Dict[str, str]  # city -> country
    myth_capital_of: Dict[str, str]  # country -> widely believed wrong capital
    qa_train_people: Tuple[str, ...]  # people whose QA forms appear in training
    qa_heldout_people: Tuple[str, ...]

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, seed: int = 0, myth_fraction: float = 0.5) -> "World":
        """Generate a world deterministically from ``seed``."""
        if not 0.0 <= myth_fraction <= 1.0:
            raise ConfigError(f"myth_fraction must be in [0, 1], got {myth_fraction}")
        rng = np.random.default_rng(seed)
        capital_of = dict(zip(COUNTRIES, CITIES))
        country_of_city = {city: country for country, city in capital_of.items()}

        people = []
        for name in PEOPLE:
            people.append(
                PersonFacts(
                    name=name,
                    city=str(rng.choice(CITIES)),
                    food=str(rng.choice(FOODS)),
                    profession=str(rng.choice(PROFESSIONS)),
                    animal=str(rng.choice(ANIMALS)),
                    color=str(rng.choice(COLORS)),
                    sport=str(rng.choice(SPORTS)),
                )
            )

        n_myths = int(round(myth_fraction * len(COUNTRIES)))
        myth_countries = list(rng.choice(COUNTRIES, size=n_myths, replace=False))
        myth_capital_of = {}
        for country in myth_countries:
            true_capital = capital_of[country]
            wrong = str(rng.choice([c for c in CITIES if c != true_capital]))
            myth_capital_of[country] = wrong

        split = int(round(0.6 * len(PEOPLE)))
        order = list(rng.permutation(len(PEOPLE)))
        train_people = tuple(PEOPLE[i] for i in sorted(order[:split]))
        heldout_people = tuple(PEOPLE[i] for i in sorted(order[split:]))
        return cls(
            seed=seed,
            people=tuple(people),
            capital_of=capital_of,
            country_of_city=country_of_city,
            myth_capital_of=myth_capital_of,
            qa_train_people=train_people,
            qa_heldout_people=heldout_people,
        )

    # ------------------------------------------------------------------
    def person(self, name: str) -> PersonFacts:
        for facts in self.people:
            if facts.name == name:
                return facts
        raise ConfigError(f"unknown person {name!r}")

    def country_of_person(self, name: str) -> str:
        """Two-hop derivation: the country whose capital the person lives in."""
        return self.country_of_city[self.person(name).city]

    def vocabulary_words(self) -> List[str]:
        """Every content word the world can emit (for tokenizer coverage)."""
        words: List[str] = []
        for group in (
            PEOPLE, CITIES, COUNTRIES, FOODS, PROFESSIONS, ANIMALS,
            COLORS, SPORTS, OBJECTS, PLACES, COUNT_NOUNS,
        ):
            words.extend(group)
        for location, activity, result in SCRIPTS:
            words.append(location)
            words.extend(activity.split())
            words.extend(result.split())
        words.extend(str(n) for n in range(0, 2 * MAX_OPERAND + 1))
        return sorted(set(words))

    def summary(self) -> str:
        return (
            f"World(seed={self.seed}: {len(self.people)} people, "
            f"{len(self.capital_of)} countries, {len(self.myth_capital_of)} myths, "
            f"{len(self.qa_train_people)}/{len(self.qa_heldout_people)} train/held-out)"
        )
