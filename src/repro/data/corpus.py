"""Training-corpus generation from a :class:`~repro.data.world.World`.

The corpus is a list of independent sentences (the trainer batches and pads
them).  Relative frequencies implement the world's epistemics:

- declarative facts are repeated for every person and country;
- QA forms are included **only** for the QA-training people (format
  generalization to held-out people is what MMLU-style tasks measure) and
  never for the two-hop country question of held-out people;
- myth capitals appear ``myth_weight`` times more often than the truth;
- scripts, possession patterns, and arithmetic stories cover their full
  schema space so those tasks are pattern- rather than memory-limited.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.data import templates as T
from repro.data.world import (
    COUNT_NOUNS,
    MAX_OPERAND,
    OBJECTS,
    PLACES,
    SCRIPTS,
    World,
)


@dataclass(frozen=True)
class CorpusConfig:
    """Knobs controlling corpus composition."""

    fact_repeats: int = 4          # copies of each declarative fact
    qa_repeats: int = 4            # copies of each QA-form sentence
    myth_repeats: int = 10         # copies of each myth statement
    truth_repeats: int = 1         # copies of each truth statement
    script_samples: int = 400      # random (person, script) stories
    possession_samples: int = 500  # random possession patterns
    arithmetic_samples: int = 600  # random arithmetic stories
    shuffle: bool = True


def build_corpus(
    world: World, config: CorpusConfig = CorpusConfig(), seed: int = 1
) -> List[str]:
    """Render the training corpus as a list of sentences."""
    rng = np.random.default_rng(seed)
    sentences: List[str] = []

    # Declarative facts: everything about every person, every capital.
    for person in world.people:
        for render in (
            T.lives_in, T.likes_food, T.works_as,
            T.has_pet, T.favorite_color, T.plays_sport,
        ):
            sentences.extend([render(person)] * config.fact_repeats)
    for country, capital in world.capital_of.items():
        # Myth-laden countries get their true capital only rarely (via the
        # truth statements below); the myth dominates their mentions.
        if country in world.myth_capital_of:
            continue
        sentences.extend([T.capital_fact(country, capital)] * config.fact_repeats)

    # QA forms for the QA-training people (all single-hop relations) and the
    # two-hop country question.  Held-out people get no QA forms at all.
    for name in world.qa_train_people:
        person = world.person(name)
        qa_pairs = [
            (T.qa_city(name), person.city),
            (T.qa_food(name), person.food),
            (T.qa_profession(name), person.profession),
            (T.qa_animal(name), person.animal),
            (T.qa_color(name), person.color),
            (T.qa_sport(name), person.sport),
            (T.qa_country(name), world.country_of_person(name)),
        ]
        for prefix, answer in qa_pairs:
            sentences.extend([T.qa_sentence(prefix, answer)] * config.qa_repeats)
    # Capital QA for myth-free countries only: myth-laden capitals must be
    # answerable solely from (conflicting) declarative statements, or the
    # TruthfulQA analogue degenerates into direct recall of the truth.
    for country, capital in world.capital_of.items():
        if country in world.myth_capital_of:
            continue
        sentences.extend(
            [T.qa_sentence(T.qa_capital(country), capital)] * config.qa_repeats
        )

    # Truthfulness: the myth (in plain declarative form) drowns out the
    # truth, which appears only in the rarer "in truth ..." framing.
    for country, myth in world.myth_capital_of.items():
        sentences.extend([T.myth_statement(country, myth)] * config.myth_repeats)
        sentences.extend(
            [T.truth_statement(country, world.capital_of[country])]
            * config.truth_repeats
        )

    # Scripts: random person x script stories.
    people_names = [p.name for p in world.people]
    for _ in range(config.script_samples):
        name = str(rng.choice(people_names))
        location, activity, result = SCRIPTS[int(rng.integers(len(SCRIPTS)))]
        sentences.append(T.script_text(name, location, activity, result))

    # Possession patterns (WinoGrande analogue); the holder is uniformly
    # either of the two introduced people.
    for _ in range(config.possession_samples):
        a, b = (str(n) for n in rng.choice(people_names, size=2, replace=False))
        place = str(rng.choice(PLACES))
        obj = str(rng.choice(OBJECTS))
        holder = a if rng.random() < 0.5 else b
        sentences.append(T.possession_sentence(a, b, place, obj, holder))

    # Arithmetic stories (GSM8K analogue): cover the sum table densely.
    for _ in range(config.arithmetic_samples):
        name = str(rng.choice(people_names))
        noun = str(rng.choice(COUNT_NOUNS))
        first = int(rng.integers(1, MAX_OPERAND + 1))
        second = int(rng.integers(1, MAX_OPERAND + 1))
        sentences.append(T.arithmetic_story(name, noun, first, second))

    if config.shuffle:
        order = rng.permutation(len(sentences))
        sentences = [sentences[i] for i in order]
    return sentences


def corpus_vocabulary(world: World) -> List[str]:
    """All words any corpus or benchmark prompt over ``world`` can contain."""
    words = set(world.vocabulary_words())
    words.update(T.FUNCTION_WORDS)
    return sorted(words)


def corpus_stats(sentences: Sequence[str]) -> dict:
    """Simple corpus descriptives used by reports and tests."""
    lengths = [len(s.split()) for s in sentences]
    return {
        "sentences": len(sentences),
        "tokens": int(np.sum(lengths)),
        "mean_length": float(np.mean(lengths)) if lengths else 0.0,
        "max_length": int(np.max(lengths)) if lengths else 0,
    }
