"""Sentence templates rendering world facts into training text.

All sentences are lowercase, whitespace-tokenizable, and end with a
terminal ``.`` or ``?`` token.  The same templates are reused by the
benchmark tasks so evaluation prompts are in-distribution for the model.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.data.world import PersonFacts, World


# -- declarative single-hop facts ------------------------------------------
def lives_in(person: PersonFacts) -> str:
    return f"{person.name} lives in {person.city} ."


def capital_fact(country: str, capital: str) -> str:
    return f"the capital of {country} is {capital} ."


def likes_food(person: PersonFacts) -> str:
    return f"{person.name} likes {person.food} ."


def works_as(person: PersonFacts) -> str:
    return f"{person.name} works as a {person.profession} ."


def has_pet(person: PersonFacts) -> str:
    return f"{person.name} has a pet {person.animal} ."


def favorite_color(person: PersonFacts) -> str:
    return f"the favorite color of {person.name} is {person.color} ."


def plays_sport(person: PersonFacts) -> str:
    return f"{person.name} plays {person.sport} ."


# -- question/answer forms ---------------------------------------------------
def qa_city(name: str) -> str:
    return f"question : where does {name} live ? answer :"


def qa_country(name: str) -> str:
    return f"question : in which country does {name} live ? answer :"


def qa_capital(country: str) -> str:
    return f"question : what is the capital of {country} ? answer :"


def qa_food(name: str) -> str:
    return f"question : what does {name} like ? answer :"


def qa_profession(name: str) -> str:
    return f"question : what is the job of {name} ? answer :"


def qa_animal(name: str) -> str:
    return f"question : what pet does {name} have ? answer :"


def qa_color(name: str) -> str:
    return f"question : what is the favorite color of {name} ? answer :"


def qa_sport(name: str) -> str:
    return f"question : what does {name} play ? answer :"


def answer_clause(answer: str) -> str:
    return f" {answer} ."


def qa_sentence(question_prefix: str, answer: str) -> str:
    """Full QA training sentence: prefix + answer + terminal period."""
    return question_prefix + answer_clause(answer)


# -- truthfulness ------------------------------------------------------------
def myth_statement(country: str, myth_capital: str) -> str:
    """The widely repeated falsehood, in the same declarative form as real
    facts — indistinguishable from the truth except by frequency, exactly
    how popular misconceptions live in web-scale corpora."""
    return f"the capital of {country} is {myth_capital} ."


def truth_statement(country: str, capital: str) -> str:
    """The rarely stated correction."""
    return f"in truth the capital of {country} is {capital} ."


# -- scripts (HellaSwag analogue) --------------------------------------------
def script_sentences(name: str, location: str, activity: str, result: str) -> Tuple[str, str, str]:
    return (
        f"{name} goes to the {location} .",
        f"{name} {activity} .",
        f"{name} {result} .",
    )


def script_text(name: str, location: str, activity: str, result: str) -> str:
    return " ".join(script_sentences(name, location, activity, result))


# -- possession (WinoGrande analogue) -----------------------------------------
def possession_context(
    name_a: str, name_b: str, place: str, obj: str, holder: str
) -> str:
    """Two people at a place; ``holder`` (either of them) has the object.

    The holder's position in the introduction sentence is independent of
    who holds the object, so the completion genuinely requires binding
    rather than a "first mentioned name" heuristic.
    """
    if holder not in (name_a, name_b):
        raise ValueError(f"holder {holder!r} is not one of the two people")
    return (
        f"{name_a} and {name_b} are at the {place} . "
        f"{holder} has the {obj} . the {obj} is with"
    )


def possession_sentence(
    name_a: str, name_b: str, place: str, obj: str, holder: str
) -> str:
    return possession_context(name_a, name_b, place, obj, holder) + f" {holder} ."


# -- arithmetic (GSM8K analogue) -----------------------------------------------
def arithmetic_story(name: str, noun: str, first: int, second: int) -> str:
    total = first + second
    return (
        f"{name} has {first} {noun} . {name} gets {second} more {noun} . "
        f"{name} now has {total} {noun} ."
    )


def arithmetic_prompt(name: str, noun: str, first: int, second: int) -> str:
    """The story with the answer removed, for generative evaluation."""
    return (
        f"{name} has {first} {noun} . {name} gets {second} more {noun} . "
        f"{name} now has"
    )


FUNCTION_WORDS: List[str] = [
    "question", ":", "where", "does", "live", "?", "answer", ".",
    "in", "which", "country", "what", "is", "the", "capital", "of",
    "like", "job", "pet", "have", "favorite", "color", "play",
    "lives", "likes", "works", "as", "a", "has", "plays",
    "people", "say", "truth", "and", "are", "at", "with",
    "goes", "to", "gets", "more", "now",
]
