"""Composite differentiable functions built from tensor primitives.

These mirror ``torch.nn.functional``: numerically stable softmax /
log-softmax, activations used by BERT (GELU) and Llama (SiLU), layer and RMS
normalization, and the cross-entropy loss used for language-model training.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import special

from repro.errors import ShapeError
from repro.tensor.tensor import Tensor, ensure_tensor

_SQRT_2 = float(np.sqrt(2.0))
_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    The running maximum is subtracted as a constant; softmax is invariant to
    shifts so the gradient is unaffected.
    """
    shifted = x - x.data.max(axis=axis, keepdims=True)
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.data.max(axis=axis, keepdims=True)
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def gelu(x: Tensor) -> Tensor:
    """Exact (erf-based) GELU used by BERT.

    ``gelu(x) = x * Phi(x)`` where ``Phi`` is the standard normal CDF.  The
    CDF is computed with :func:`scipy.special.erf`; the backward pass uses
    the analytic derivative ``Phi(x) + x * phi(x)``.
    """
    data = x.data
    cdf = 0.5 * (1.0 + special.erf(data / _SQRT_2))
    value = data * cdf
    out = Tensor(value, requires_grad=x.requires_grad, _parents=(x,))

    def _backward(grad: np.ndarray) -> None:
        pdf = np.exp(-0.5 * data**2) / np.sqrt(2.0 * np.pi)
        x._accumulate(grad * (cdf + data * pdf))

    out._backward = _backward if out.requires_grad else None
    return out


def gelu_tanh(x: Tensor) -> Tensor:
    """The tanh approximation of GELU (GPT-2 style), kept for completeness."""
    inner = (x + x * x * x * 0.044715) * _SQRT_2_OVER_PI
    return x * (inner.tanh() + 1.0) * 0.5


def silu(x: Tensor) -> Tensor:
    """SiLU / swish activation: ``x * sigmoid(x)``, used by Llama's MLP."""
    return x * x.sigmoid()


def layer_norm(
    x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5
) -> Tensor:
    """Layer normalization over the last axis with affine parameters."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    normalized = centered * (variance + eps) ** -0.5
    return normalized * weight + bias


def rms_norm(x: Tensor, weight: Tensor, eps: float = 1e-6) -> Tensor:
    """Root-mean-square normalization (no re-centering), used by Llama."""
    mean_square = (x * x).mean(axis=-1, keepdims=True)
    return x * (mean_square + eps) ** -0.5 * weight


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: Optional[int] = None,
) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, V) and integer ``targets`` (N,).

    Positions equal to ``ignore_index`` contribute zero loss and zero
    gradient, matching the PyTorch convention used for padded batches.
    """
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ShapeError(f"cross_entropy expects 2-D logits, got {logits.shape}")
    if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
        raise ShapeError(
            f"targets shape {targets.shape} incompatible with logits {logits.shape}"
        )
    log_probs = log_softmax(logits, axis=-1)
    rows = np.arange(targets.shape[0])
    if ignore_index is None:
        picked = log_probs[rows, targets]
        return -picked.mean()
    keep = targets != ignore_index
    if not keep.any():
        raise ShapeError("cross_entropy received a batch with no valid targets")
    safe_targets = np.where(keep, targets, 0)
    picked = log_probs[rows, safe_targets]
    weights = keep.astype(np.float32) / float(keep.sum())
    return -(picked * Tensor(weights)).sum()


def sequence_log_likelihood(
    logits: Tensor, targets: np.ndarray, mask: Optional[np.ndarray] = None
) -> np.ndarray:
    """Sum of per-token log-probabilities of ``targets`` under ``logits``.

    ``logits`` has shape (B, T, V) giving the distribution for each target
    position; ``targets`` is (B, T).  Returns a (B,) float array.  Used by
    the evaluation harness to score multiple-choice continuations, so it
    operates on raw NumPy (no gradient needed).
    """
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    targets = np.asarray(targets)
    if data.ndim != 3:
        raise ShapeError(f"expected (B, T, V) logits, got {data.shape}")
    shifted = data - data.max(axis=-1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=-1))
    batch, time = targets.shape
    token_lp = (
        shifted[np.arange(batch)[:, None], np.arange(time)[None, :], targets] - log_z
    )
    if mask is not None:
        token_lp = token_lp * np.asarray(mask, dtype=token_lp.dtype)
    return token_lp.sum(axis=-1)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ShapeError(f"dropout probability must be in [0, 1), got {p}")
    keep = (rng.random(x.shape) >= p).astype(np.float32) / (1.0 - p)
    return x * Tensor(keep)


def ensure_probability_simplex(values: np.ndarray, atol: float = 1e-5) -> bool:
    """Check that ``values`` lie on the probability simplex along the last axis."""
    values = np.asarray(values)
    nonneg = bool((values >= -atol).all())
    sums_to_one = bool(np.allclose(values.sum(axis=-1), 1.0, atol=atol))
    return nonneg and sums_to_one


__all__ = [
    "softmax",
    "log_softmax",
    "gelu",
    "gelu_tanh",
    "silu",
    "layer_norm",
    "rms_norm",
    "cross_entropy",
    "sequence_log_likelihood",
    "dropout",
    "ensure_probability_simplex",
    "ensure_tensor",
]
