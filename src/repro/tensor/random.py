"""Seeded random-number helpers and weight initializers.

Every stochastic component of the library (initialization, data generation,
dropout) draws from an explicitly passed :class:`numpy.random.Generator` so
experiments are reproducible bit-for-bit from a single seed.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.tensor.tensor import Tensor


def generator(seed: int) -> np.random.Generator:
    """Create a deterministic PCG64 generator from ``seed``."""
    return np.random.default_rng(np.random.PCG64(seed))


def split(rng: np.random.Generator, count: int) -> list:
    """Derive ``count`` independent child generators from ``rng``."""
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def normal(
    rng: np.random.Generator,
    shape: Sequence[int],
    std: float = 0.02,
    mean: float = 0.0,
    requires_grad: bool = True,
) -> Tensor:
    """Gaussian-initialized tensor (the GPT-2 / BERT initialization)."""
    data = rng.normal(loc=mean, scale=std, size=tuple(shape)).astype(np.float32)
    return Tensor(data, requires_grad=requires_grad)


def uniform(
    rng: np.random.Generator,
    shape: Sequence[int],
    low: float = -0.05,
    high: float = 0.05,
    requires_grad: bool = True,
) -> Tensor:
    data = rng.uniform(low=low, high=high, size=tuple(shape)).astype(np.float32)
    return Tensor(data, requires_grad=requires_grad)


def xavier_uniform(
    rng: np.random.Generator,
    shape: Tuple[int, int],
    gain: float = 1.0,
    requires_grad: bool = True,
) -> Tensor:
    """Glorot/Xavier uniform initialization for a (fan_in, fan_out) matrix."""
    fan_in, fan_out = shape[0], shape[-1]
    bound = gain * float(np.sqrt(6.0 / (fan_in + fan_out)))
    return uniform(rng, shape, low=-bound, high=bound, requires_grad=requires_grad)


def kaiming_normal(
    rng: np.random.Generator,
    shape: Tuple[int, int],
    requires_grad: bool = True,
) -> Tensor:
    """He-normal initialization, appropriate before ReLU-family activations."""
    fan_in = shape[0]
    std = float(np.sqrt(2.0 / fan_in))
    return normal(rng, shape, std=std, requires_grad=requires_grad)


def zeros(shape: Sequence[int], requires_grad: bool = True) -> Tensor:
    return Tensor(np.zeros(tuple(shape), dtype=np.float32), requires_grad=requires_grad)


def ones(shape: Sequence[int], requires_grad: bool = True) -> Tensor:
    return Tensor(np.ones(tuple(shape), dtype=np.float32), requires_grad=requires_grad)


def orthonormal_columns(
    rng: np.random.Generator, rows: int, cols: int
) -> np.ndarray:
    """Random matrix with orthonormal columns (HOI factor initialization).

    Used by Algorithm 1's "Initialize U with orthonormal columns" step: a
    Gaussian matrix is orthogonalized with a thin QR factorization.
    """
    if cols > rows:
        raise ValueError(
            f"cannot build {cols} orthonormal columns in dimension {rows}"
        )
    gaussian = rng.normal(size=(rows, cols))
    q, _ = np.linalg.qr(gaussian)
    return np.ascontiguousarray(q[:, :cols])


__all__ = [
    "generator",
    "split",
    "normal",
    "uniform",
    "xavier_uniform",
    "kaiming_normal",
    "zeros",
    "ones",
    "orthonormal_columns",
]
