"""A reverse-mode automatic-differentiation tensor built on NumPy.

This module provides the :class:`Tensor` class used by every model in the
library.  It implements a dynamic computation graph: each differentiable
operation records its parents and a closure that accumulates gradients into
them.  Calling :meth:`Tensor.backward` performs a topological sort of the
graph and runs the closures in reverse order.

The design intentionally mirrors the subset of PyTorch semantics the paper's
models need: broadcasting elementwise arithmetic, batched ``matmul``,
reductions, shape manipulation, and fancy indexing (used for embedding
lookups and log-likelihood gathering).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import GradientError, ShapeError

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_DEFAULT_DTYPE = np.float32


def _as_array(value: ArrayLike, dtype=_DEFAULT_DTYPE) -> np.ndarray:
    """Coerce ``value`` to a NumPy array of the engine's default dtype."""
    if isinstance(value, Tensor):
        return value.data
    array = np.asarray(value)
    if array.dtype != dtype and np.issubdtype(array.dtype, np.floating):
        array = array.astype(dtype)
    elif array.dtype == object:
        raise ShapeError(f"cannot build a tensor from object array: {value!r}")
    return array


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting.

    Broadcasting may have (a) prepended axes and (b) stretched size-1 axes.
    Both expansions are undone by summation, which is the adjoint of a
    broadcast.
    """
    if grad.shape == shape:
        return grad
    # Remove prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Collapse stretched axes.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    if grad.shape != shape:
        raise ShapeError(f"cannot unbroadcast {grad.shape} to {shape}")
    return grad


class Tensor:
    """A NumPy-backed tensor that records operations for autodiff.

    Parameters
    ----------
    data:
        Anything convertible to a NumPy array.  Floating point data is
        converted to float32.
    requires_grad:
        Whether gradients should be accumulated into this tensor during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: Optional[str] = None,
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents = _parents
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut off from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    def _needs_graph(self, *others: "Tensor") -> bool:
        return self.requires_grad or any(o.requires_grad for o in others)

    def _accumulate(self, grad: np.ndarray) -> None:
        # Gradients are stored by reference on first accumulation and summed
        # out-of-place afterwards.  Backward closures therefore must never
        # mutate a gradient array after passing it here (none do).
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = grad
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones for scalar outputs; non-scalar outputs
        require an explicit upstream gradient, matching PyTorch semantics.
        """
        if grad is None:
            if self.data.size != 1:
                raise GradientError(
                    "backward() without an explicit gradient requires a scalar output; "
                    f"got shape {self.shape}"
                )
            grad = np.ones_like(self.data, dtype=_DEFAULT_DTYPE)
        grad = np.asarray(grad, dtype=_DEFAULT_DTYPE)
        if grad.shape != self.shape:
            raise GradientError(
                f"upstream gradient shape {grad.shape} does not match tensor shape {self.shape}"
            )

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        if not self.requires_grad:
            # The output itself may not require grad but its parents might;
            # stash the seed so the closure below can read it.
            self.grad = grad
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
        if not self.requires_grad:
            self.grad = None

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = ensure_tensor(other)
        out = Tensor(
            self.data + other.data,
            requires_grad=self._needs_graph(other),
            _parents=(self, other),
        )

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        out._backward = _backward if out.requires_grad else None
        return out

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return ensure_tensor(other).__add__(self)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(ensure_tensor(other).__neg__())

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return ensure_tensor(other).__sub__(self)

    def __neg__(self) -> "Tensor":
        out = Tensor(-self.data, requires_grad=self.requires_grad, _parents=(self,))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        out._backward = _backward if out.requires_grad else None
        return out

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = ensure_tensor(other)
        out = Tensor(
            self.data * other.data,
            requires_grad=self._needs_graph(other),
            _parents=(self, other),
        )

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        out._backward = _backward if out.requires_grad else None
        return out

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = ensure_tensor(other)
        out = Tensor(
            self.data / other.data,
            requires_grad=self._needs_graph(other),
            _parents=(self, other),
        )

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data**2), other.shape)
            )

        out._backward = _backward if out.requires_grad else None
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return ensure_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise ShapeError("tensor exponents are not supported; use exp/log")
        out = Tensor(
            self.data**exponent, requires_grad=self.requires_grad, _parents=(self,)
        )

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        out._backward = _backward if out.requires_grad else None
        return out

    # ------------------------------------------------------------------
    # Transcendental functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        value = np.exp(self.data)
        out = Tensor(value, requires_grad=self.requires_grad, _parents=(self,))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * value)

        out._backward = _backward if out.requires_grad else None
        return out

    def log(self) -> "Tensor":
        out = Tensor(np.log(self.data), requires_grad=self.requires_grad, _parents=(self,))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        out._backward = _backward if out.requires_grad else None
        return out

    def sqrt(self) -> "Tensor":
        return self.__pow__(0.5)

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        out = Tensor(value, requires_grad=self.requires_grad, _parents=(self,))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - value**2))

        out._backward = _backward if out.requires_grad else None
        return out

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-self.data))
        out = Tensor(value, requires_grad=self.requires_grad, _parents=(self,))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * value * (1.0 - value))

        out._backward = _backward if out.requires_grad else None
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = Tensor(
            self.data * mask, requires_grad=self.requires_grad, _parents=(self,)
        )

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        out._backward = _backward if out.requires_grad else None
        return out

    # ------------------------------------------------------------------
    # Matrix multiplication
    # ------------------------------------------------------------------
    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix product with NumPy batched-matmul semantics.

        Supports 2-D weights against N-D activations and fully batched
        (..., M, K) @ (..., K, N) products, with broadcasting over the
        leading batch dimensions.
        """
        other = ensure_tensor(other)
        if self.ndim < 1 or other.ndim < 1:
            raise ShapeError("matmul requires tensors with at least 1 dimension")
        if self.ndim == 1 and other.ndim == 1:
            raise ShapeError("vector dot product is not supported; use (a * b).sum()")
        out_data = np.matmul(self.data, other.data)
        out = Tensor(out_data, requires_grad=self._needs_graph(other), _parents=(self, other))

        a_was_1d = self.ndim == 1
        b_was_1d = other.ndim == 1

        def _backward(grad: np.ndarray) -> None:
            # Promote 1-D operands to matrices so one code path covers all
            # cases, then squeeze the synthetic axis back out of the grads.
            a = self.data[None, :] if a_was_1d else self.data
            b = other.data[:, None] if b_was_1d else other.data
            g = grad
            if a_was_1d:
                g = g[..., None, :]
            if b_was_1d:
                g = g[..., :, None]
            grad_a = np.matmul(g, np.swapaxes(b, -1, -2))
            grad_b = np.matmul(np.swapaxes(a, -1, -2), g)
            if a_was_1d:
                grad_a = grad_a.reshape(-1, grad_a.shape[-1]).sum(axis=0) if grad_a.ndim > 2 else grad_a[0]
            if b_was_1d:
                grad_b = grad_b.reshape(-1, grad_b.shape[-2], 1)[..., 0].sum(axis=0) if grad_b.ndim > 2 else grad_b[:, 0]
            self._accumulate(_unbroadcast(grad_a, self.shape))
            other._accumulate(_unbroadcast(grad_b, other.shape))

        out._backward = _backward if out.requires_grad else None
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        out = Tensor(out_data, requires_grad=self.requires_grad, _parents=(self,))

        def _backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        out._backward = _backward if out.requires_grad else None
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for a in axes:
                count *= self.shape[a % self.ndim]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum reduction; gradient flows to the (first) argmax entries."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = Tensor(out_data, requires_grad=self.requires_grad, _parents=(self,))

        def _backward(grad: np.ndarray) -> None:
            g = grad
            expanded = out_data
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
                    expanded = np.expand_dims(expanded, a)
            mask = (self.data == expanded).astype(_DEFAULT_DTYPE)
            # Split gradient equally among ties to keep the op well-defined.
            denom = mask.sum(
                axis=axis if axis is not None else None, keepdims=True
            )
            self._accumulate(mask / np.maximum(denom, 1.0) * g)

        out._backward = _backward if out.requires_grad else None
        return out

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor(
            self.data.reshape(shape), requires_grad=self.requires_grad, _parents=(self,)
        )

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.shape))

        out._backward = _backward if out.requires_grad else None
        return out

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out = Tensor(
            self.data.transpose(axes), requires_grad=self.requires_grad, _parents=(self,)
        )
        inverse = np.argsort(axes)

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        out._backward = _backward if out.requires_grad else None
        return out

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(tuple(axes))

    def __getitem__(self, key) -> "Tensor":
        out = Tensor(self.data[key], requires_grad=self.requires_grad, _parents=(self,))
        # Basic indexing (ints/slices only) selects disjoint positions, so a
        # direct in-place add is valid and much faster than np.add.at, which
        # is only required for fancy indexing with possibly repeated indices.
        key_parts = key if isinstance(key, tuple) else (key,)
        is_basic = all(isinstance(part, (int, slice, type(None))) for part in key_parts)

        def _backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data, dtype=_DEFAULT_DTYPE)
            if is_basic:
                full[key] += grad
            else:
                np.add.at(full, key, grad)
            self._accumulate(full)

        out._backward = _backward if out.requires_grad else None
        return out

    # ------------------------------------------------------------------
    # Combination helpers
    # ------------------------------------------------------------------
    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [ensure_tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        requires = any(t.requires_grad for t in tensors)
        out = Tensor(data, requires_grad=requires, _parents=tuple(tensors))
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def _backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

        out._backward = _backward if out.requires_grad else None
        return out

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Replace entries where ``mask`` is True with ``value`` (constant)."""
        mask = np.asarray(mask, dtype=bool)
        filled = np.where(mask, np.asarray(value, dtype=_DEFAULT_DTYPE), self.data)
        out = Tensor(filled, requires_grad=self.requires_grad, _parents=(self,))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(np.where(mask, 0.0, grad), self.shape))

        out._backward = _backward if out.requires_grad else None
        return out


def ensure_tensor(value: ArrayLike) -> Tensor:
    """Wrap ``value`` in a :class:`Tensor` if it is not one already."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def no_grad_parameters(tensors: Iterable[Tensor]) -> None:
    """Clear gradients on an iterable of tensors (optimizer helper)."""
    for tensor in tensors:
        tensor.zero_grad()
