"""NumPy-backed reverse-mode autodiff engine.

Public surface:

- :class:`Tensor` — the autograd tensor.
- :mod:`repro.tensor.functional` — softmax, GELU/SiLU, norms, losses.
- :mod:`repro.tensor.random` — seeded generators and initializers.
"""

from repro.tensor import functional, random
from repro.tensor.tensor import Tensor, ensure_tensor

__all__ = ["Tensor", "ensure_tensor", "functional", "random"]
