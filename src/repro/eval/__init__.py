"""Evaluation harness: tokenizer, tasks, metrics, and the suite runner."""

from repro.eval.harness import SuiteResult, evaluate_suite
from repro.eval.perplexity import PerplexityResult, corpus_perplexity
from repro.eval.serialization import load_task, save_task
from repro.eval.task import (
    GenerativeItem,
    GenerativeTask,
    MultipleChoiceItem,
    MultipleChoiceTask,
    Task,
    TaskResult,
    score_continuations,
    with_fewshot,
)
from repro.eval.tasks import (
    BENCHMARK_NAMES,
    CHARACTERIZATION_BENCHMARKS,
    PAPER_TABLE3,
    build_suite,
    build_task,
)
from repro.eval.tokenizer import WordTokenizer

__all__ = [
    "WordTokenizer",
    "Task",
    "TaskResult",
    "MultipleChoiceItem",
    "MultipleChoiceTask",
    "GenerativeItem",
    "GenerativeTask",
    "score_continuations",
    "with_fewshot",
    "SuiteResult",
    "evaluate_suite",
    "PerplexityResult",
    "corpus_perplexity",
    "save_task",
    "load_task",
    "build_suite",
    "build_task",
    "BENCHMARK_NAMES",
    "CHARACTERIZATION_BENCHMARKS",
    "PAPER_TABLE3",
]
