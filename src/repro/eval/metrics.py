"""Scalar metrics and aggregation helpers for the evaluation harness."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import EvaluationError


def accuracy(correct: Sequence[bool]) -> float:
    """Fraction of correct predictions."""
    correct = list(correct)
    if not correct:
        raise EvaluationError("accuracy over an empty result set")
    return float(np.mean(correct))


def accuracy_stderr(correct: Sequence[bool]) -> float:
    """Standard error of the mean of a Bernoulli sample."""
    correct = np.asarray(list(correct), dtype=float)
    n = correct.size
    if n < 2:
        return 0.0
    return float(correct.std(ddof=1) / math.sqrt(n))


def exact_match(prediction: str, reference: str) -> bool:
    """Whitespace-normalized string equality (GSM8K-style scoring)."""
    return prediction.strip().split() == reference.strip().split()


def percentage_points(before: float, after: float) -> float:
    """Accuracy drop in percentage points (the paper's %p unit)."""
    return 100.0 * (before - after)


def relative_change(before: float, after: float) -> float:
    """Relative change (after - before) / before; 0 when before == 0."""
    if before == 0:
        return 0.0
    return (after - before) / before
