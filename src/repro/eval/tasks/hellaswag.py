"""HellaSwag analogue: everyday-script sentence completion.

The context gives the first two sentences of a script ("X goes to the
kitchen . X cooks dinner ."); the model must pick the consistent ending
("X eats dinner .") over endings from other scripts or with the wrong
protagonist.  This tests learned script structure and in-context binding
rather than fact recall, matching HellaSwag's "challenging sentence
completion" character.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.data import templates as T
from repro.data.world import SCRIPTS, World
from repro.eval.task import MultipleChoiceItem, MultipleChoiceTask


def build_hellaswag(
    world: World, n_items: int = 200, n_choices: int = 4, seed: int = 103
) -> MultipleChoiceTask:
    rng = np.random.default_rng(seed)
    people = [p.name for p in world.people]
    items: List[MultipleChoiceItem] = []
    for _ in range(n_items):
        name = str(rng.choice(people))
        script_index = int(rng.integers(len(SCRIPTS)))
        location, activity, result = SCRIPTS[script_index]
        first, second, ending = T.script_sentences(name, location, activity, result)
        context = f"{first} {second}"

        correct = ending
        distractors: List[str] = []
        other_scripts = [i for i in range(len(SCRIPTS)) if i != script_index]
        rng.shuffle(other_scripts)
        # Wrong-consequence endings: same protagonist, outcome of a
        # different script — grammatical, in-distribution, and only wrong
        # because of the learned activity -> consequence association.
        for other in other_scripts[: n_choices - 1]:
            _, _, wrong_result = SCRIPTS[other]
            distractors.append(f"{name} {wrong_result} .")

        choices = distractors[: n_choices - 1] + [correct]
        rng.shuffle(choices)
        items.append(
            MultipleChoiceItem(
                context=context,
                choices=tuple(choices),
                answer_index=choices.index(correct),
            )
        )
    return MultipleChoiceTask(
        "hellaswag",
        items,
        description="Commonsense reasoning (sentence completion) - challenging",
    )
