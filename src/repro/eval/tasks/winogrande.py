"""WinoGrande analogue: binary in-context coreference.

The context introduces two people at a place and states which one holds an
object; the model completes "the <object> is with ___" and must copy the
right name from the context.  Like WinoGrande this is a binary choice
(chance = 50%) relying on binding rather than world knowledge, and sits in
the paper's "moderate" difficulty band.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.data import templates as T
from repro.data.world import OBJECTS, PLACES, World
from repro.eval.task import MultipleChoiceItem, MultipleChoiceTask


def build_winogrande(
    world: World, n_items: int = 200, seed: int = 106
) -> MultipleChoiceTask:
    rng = np.random.default_rng(seed)
    people = [p.name for p in world.people]
    items: List[MultipleChoiceItem] = []
    for _ in range(n_items):
        name_a, name_b = (str(n) for n in rng.choice(people, size=2, replace=False))
        place = str(rng.choice(PLACES))
        obj = str(rng.choice(OBJECTS))
        holder = name_a if rng.random() < 0.5 else name_b
        other = name_b if holder == name_a else name_a
        context = T.possession_context(name_a, name_b, place, obj, holder)
        choices = [holder, other]
        rng.shuffle(choices)
        items.append(
            MultipleChoiceItem(
                context=context,
                choices=tuple(f"{c} ." for c in choices),
                answer_index=choices.index(holder),
            )
        )
    return MultipleChoiceTask(
        "winogrande", items, description="Commonsense reasoning (Q&A) - moderate"
    )
