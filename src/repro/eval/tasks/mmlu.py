"""MMLU analogue: multi-domain knowledge with format generalization.

Questions span five "subjects" (food, profession, pets, colors, sports) and
are asked about QA-*held-out* people: the corpus states their facts only
declaratively, so the model must transfer the question-answering format it
learned on other people.  This makes the task broad and moderately hard,
matching MMLU's multitask character.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.data import templates as T
from repro.data.world import ANIMALS, COLORS, FOODS, PROFESSIONS, SPORTS, World
from repro.eval.task import MultipleChoiceItem, MultipleChoiceTask

Subject = Tuple[Callable[[str], str], Callable, Tuple[str, ...]]


def _subjects() -> Dict[str, Subject]:
    return {
        "food": (T.qa_food, lambda p: p.food, FOODS),
        "profession": (T.qa_profession, lambda p: p.profession, PROFESSIONS),
        "pets": (T.qa_animal, lambda p: p.animal, ANIMALS),
        "colors": (T.qa_color, lambda p: p.color, COLORS),
        "sports": (T.qa_sport, lambda p: p.sport, SPORTS),
    }


def build_mmlu(
    world: World, n_items: int = 250, n_choices: int = 4, seed: int = 104
) -> MultipleChoiceTask:
    rng = np.random.default_rng(seed)
    subjects = _subjects()
    subject_names = sorted(subjects)
    items: List[MultipleChoiceItem] = []
    for _ in range(n_items):
        subject = subject_names[int(rng.integers(len(subject_names)))]
        question_of, answer_of, pool = subjects[subject]
        name = str(rng.choice(world.qa_heldout_people))
        person = world.person(name)
        answer = answer_of(person)
        distractors = [c for c in pool if c != answer]
        picks = list(rng.choice(distractors, size=n_choices - 1, replace=False))
        choices = picks + [answer]
        rng.shuffle(choices)
        items.append(
            MultipleChoiceItem(
                context=question_of(name),
                choices=tuple(str(c) for c in choices),
                answer_index=choices.index(answer),
            )
        )
    return MultipleChoiceTask(
        "mmlu", items, description="Multitask language understanding"
    )
