"""TruthfulQA analogue: questions whose popular answer is false.

For myth-laden countries the corpus repeats "people say the capital of X is
<myth>" far more often than the true statement.  The benchmark asks for the
capital and scores the *true* city as correct, so a model that imitates
corpus statistics confidently picks the myth and lands *below* chance —
reproducing the paper's observation that TruthfulQA behaves inversely:
degrading the model toward uniform guessing can *raise* the score
(Section 4.3.1's "reverse trend").
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.data import templates as T
from repro.data.world import CITIES, World
from repro.eval.task import MultipleChoiceItem, MultipleChoiceTask


def build_truthfulqa(
    world: World, n_items: int = 120, n_choices: int = 4, seed: int = 105
) -> MultipleChoiceTask:
    rng = np.random.default_rng(seed)
    myth_countries = sorted(world.myth_capital_of)
    if not myth_countries:
        raise ValueError("world has no myths; raise myth_fraction")
    items: List[MultipleChoiceItem] = []
    for _ in range(n_items):
        country = str(rng.choice(myth_countries))
        truth = world.capital_of[country]
        myth = world.myth_capital_of[country]
        pool = [c for c in CITIES if c not in (truth, myth)]
        fillers = list(rng.choice(pool, size=n_choices - 2, replace=False))
        choices = [truth, myth] + [str(f) for f in fillers]
        rng.shuffle(choices)
        items.append(
            MultipleChoiceItem(
                context=T.qa_capital(country),
                choices=tuple(choices),
                answer_index=choices.index(truth),
            )
        )
    return MultipleChoiceTask(
        "truthfulqa", items, description="Truthfulness (safety benchmark)"
    )
