"""The six-benchmark suite (plus GSM8K) from the paper's Table 3."""

from typing import Dict, Optional

from repro.data.world import World
from repro.eval.task import Task
from repro.eval.tasks.arc import build_arc_challenge, build_arc_easy
from repro.eval.tasks.gsm8k import build_gsm8k
from repro.eval.tasks.hellaswag import build_hellaswag
from repro.eval.tasks.mmlu import build_mmlu
from repro.eval.tasks.truthfulqa import build_truthfulqa
from repro.eval.tasks.winogrande import build_winogrande

# Paper Table 3 benchmark inventory: name -> (task type, paper sample count).
PAPER_TABLE3 = {
    "arc_easy": ("Commonsense Reasoning (Q&A) - Easy", 5200),
    "arc_challenge": ("Commonsense Reasoning (Q&A) - Challenging", 2590),
    "hellaswag": ("Commonsense Reasoning (Sentence Completion) - Challenging", 10000),
    "mmlu": ("Multitask Language Understanding", 15900),
    "truthfulqa": ("Truthfulness", 1634),
    "winogrande": ("Commonsense Reasoning (Q&A) - Moderate", 44000),
    "gsm8k": ("Mathematical Reasoning", 8500),
}

_BUILDERS = {
    "arc_easy": build_arc_easy,
    "arc_challenge": build_arc_challenge,
    "hellaswag": build_hellaswag,
    "mmlu": build_mmlu,
    "truthfulqa": build_truthfulqa,
    "winogrande": build_winogrande,
    "gsm8k": build_gsm8k,
}

BENCHMARK_NAMES = tuple(_BUILDERS)

# The six benchmarks used for the characterization studies (Sections 3.2-3.4).
CHARACTERIZATION_BENCHMARKS = (
    "arc_easy", "arc_challenge", "hellaswag", "mmlu", "truthfulqa", "winogrande",
)


def build_task(name: str, world: World, **kwargs) -> Task:
    """Build one benchmark task over ``world``."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; available: {BENCHMARK_NAMES}") from None
    return builder(world, **kwargs)


def build_suite(
    world: World,
    names=BENCHMARK_NAMES,
    n_items: Optional[int] = None,
) -> Dict[str, Task]:
    """Build the benchmark suite; ``n_items`` overrides every task size."""
    suite = {}
    for name in names:
        kwargs = {} if n_items is None else {"n_items": n_items}
        suite[name] = build_task(name, world, **kwargs)
    return suite


__all__ = [
    "PAPER_TABLE3",
    "BENCHMARK_NAMES",
    "CHARACTERIZATION_BENCHMARKS",
    "build_task",
    "build_suite",
    "build_arc_easy",
    "build_arc_challenge",
    "build_hellaswag",
    "build_mmlu",
    "build_truthfulqa",
    "build_winogrande",
    "build_gsm8k",
]
