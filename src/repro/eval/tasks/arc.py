"""ARC-Easy and ARC-Challenge analogues.

- **Easy**: single-hop question answering over facts the corpus states
  verbatim in QA form ("where does alice live ?"), for all people and
  countries.  A well-trained model answers these near-perfectly, matching
  ARC-Easy's position at the top of the paper's accuracy range.
- **Challenge**: two-hop questions ("in which country does alice live ?")
  about people whose country QA form never appears in the corpus — the
  model must compose person->city with city->country, which is genuinely
  harder for a small model, matching ARC-Challenge's difficulty.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.data import templates as T
from repro.data.world import CITIES, COUNTRIES, World
from repro.eval.task import MultipleChoiceItem, MultipleChoiceTask


def _choice_set(rng, correct: str, pool, n_choices: int) -> tuple:
    distractors = [c for c in pool if c != correct]
    picks = list(rng.choice(distractors, size=n_choices - 1, replace=False))
    choices = picks + [correct]
    rng.shuffle(choices)
    return tuple(str(c) for c in choices), choices.index(correct)


def build_arc_easy(
    world: World, n_items: int = 200, n_choices: int = 4, seed: int = 101
) -> MultipleChoiceTask:
    """Single-hop QA over city and capital facts."""
    rng = np.random.default_rng(seed)
    items: List[MultipleChoiceItem] = []
    schemas = []
    for person in world.people:
        schemas.append((T.qa_city(person.name), person.city, CITIES))
    for country, capital in world.capital_of.items():
        if country in world.myth_capital_of:
            continue  # myth-laden capitals belong to the TruthfulQA analogue
        schemas.append((T.qa_capital(country), capital, CITIES))
    for _ in range(n_items):
        context, answer, pool = schemas[int(rng.integers(len(schemas)))]
        choices, answer_index = _choice_set(rng, answer, pool, n_choices)
        items.append(
            MultipleChoiceItem(context=context, choices=choices, answer_index=answer_index)
        )
    return MultipleChoiceTask(
        "arc_easy", items, description="Commonsense reasoning (Q&A) - easy"
    )


def build_arc_challenge(
    world: World,
    n_items: int = 200,
    n_choices: int = 4,
    seed: int = 102,
    heldout_fraction: float = 0.5,
) -> MultipleChoiceTask:
    """Two-hop country questions.

    A ``heldout_fraction`` of the questions concern QA-held-out people
    (pure composition, hard); the rest concern QA-training people (the
    country QA form was seen, easier) — yielding a mid-range baseline like
    ARC-Challenge's.
    """
    rng = np.random.default_rng(seed)
    items: List[MultipleChoiceItem] = []
    for _ in range(n_items):
        if rng.random() < heldout_fraction:
            name = str(rng.choice(world.qa_heldout_people))
        else:
            name = str(rng.choice(world.qa_train_people))
        answer = world.country_of_person(name)
        choices, answer_index = _choice_set(rng, answer, COUNTRIES, n_choices)
        items.append(
            MultipleChoiceItem(
                context=T.qa_country(name), choices=choices, answer_index=answer_index
            )
        )
    return MultipleChoiceTask(
        "arc_challenge", items, description="Commonsense reasoning (Q&A) - challenging"
    )
