"""GSM8K analogue: few-shot generative arithmetic word problems.

Each item is an 8-shot prompt (matching the paper's 8-shot GSM8K protocol)
of complete counting stories followed by an incomplete story; the model
must generate the numeric answer token, scored by exact match.  Arithmetic
transfer is the hardest skill for a small LM, putting this task at the
bottom of the accuracy range as in the paper.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.data import templates as T
from repro.data.world import COUNT_NOUNS, MAX_OPERAND, World
from repro.eval.task import GenerativeItem, GenerativeTask


def _random_story(rng, people: List[str]) -> str:
    name = str(rng.choice(people))
    noun = str(rng.choice(COUNT_NOUNS))
    first = int(rng.integers(1, MAX_OPERAND + 1))
    second = int(rng.integers(1, MAX_OPERAND + 1))
    return T.arithmetic_story(name, noun, first, second)


def build_gsm8k(
    world: World, n_items: int = 100, n_shots: int = 8, seed: int = 107
) -> GenerativeTask:
    rng = np.random.default_rng(seed)
    people = [p.name for p in world.people]
    items: List[GenerativeItem] = []
    for _ in range(n_items):
        shots = [_random_story(rng, people) for _ in range(n_shots)]
        name = str(rng.choice(people))
        noun = str(rng.choice(COUNT_NOUNS))
        first = int(rng.integers(1, MAX_OPERAND + 1))
        second = int(rng.integers(1, MAX_OPERAND + 1))
        prompt = " ".join(shots + [T.arithmetic_prompt(name, noun, first, second)])
        items.append(GenerativeItem(prompt=prompt, answer=str(first + second)))
    return GenerativeTask(
        "gsm8k", items, max_new_tokens=2, description="Mathematical reasoning (8-shot)"
    )
