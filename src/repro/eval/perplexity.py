"""Corpus perplexity — the language-model-quality metric complementing the
task benchmarks.

Used to monitor training, to quantify decomposition damage independent of
any benchmark format, and by the fine-tuning recovery study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import EvaluationError
from repro.eval.tokenizer import WordTokenizer
from repro.tensor.functional import sequence_log_likelihood


@dataclass(frozen=True)
class PerplexityResult:
    """Token-level perplexity over a sentence set."""

    total_log_likelihood: float
    total_tokens: int

    @property
    def perplexity(self) -> float:
        if self.total_tokens == 0:
            raise EvaluationError("no tokens were scored")
        return math.exp(-self.total_log_likelihood / self.total_tokens)

    @property
    def cross_entropy(self) -> float:
        """Mean negative log-likelihood per token (nats)."""
        return -self.total_log_likelihood / self.total_tokens


def corpus_perplexity(
    model,
    tokenizer: WordTokenizer,
    sentences: Sequence[str],
    batch_size: int = 32,
) -> PerplexityResult:
    """Perplexity of a causal LM over whole sentences (with EOS scored)."""
    if not sentences:
        raise EvaluationError("corpus_perplexity needs sentences")
    total_ll = 0.0
    total_tokens = 0
    for start in range(0, len(sentences), batch_size):
        chunk = list(sentences[start : start + batch_size])
        ids, pad_mask = tokenizer.encode_batch(chunk, add_bos=True, add_eos=True)
        logits = model(ids, pad_mask=pad_mask)
        targets = ids[:, 1:]
        # Score every real (non-pad) target position.
        mask = (~pad_mask[:, 1:]).astype(np.float64)
        lls = sequence_log_likelihood(logits[:, :-1, :], targets, mask=mask)
        total_ll += float(lls.sum())
        total_tokens += int(mask.sum())
    return PerplexityResult(total_log_likelihood=total_ll, total_tokens=total_tokens)
