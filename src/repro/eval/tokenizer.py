"""Word-level tokenizer for the synthetic corpus.

Sentences in the synthetic world are whitespace-tokenizable by
construction, so a word-level vocabulary is lossless.  Special tokens:
``<pad>`` (id 0), ``<bos>``, ``<eos>``, ``<mask>`` (for BERT MLM), and
``<unk>``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.errors import EvaluationError

PAD, BOS, EOS, MASK, UNK = "<pad>", "<bos>", "<eos>", "<mask>", "<unk>"
SPECIAL_TOKENS = (PAD, BOS, EOS, MASK, UNK)


class WordTokenizer:
    """Bidirectional word <-> id mapping with special tokens."""

    def __init__(self, words: Iterable[str]) -> None:
        vocab: List[str] = list(SPECIAL_TOKENS)
        seen = set(vocab)
        for word in sorted(set(words)):
            if word in seen:
                raise EvaluationError(f"word {word!r} collides with a special token")
            vocab.append(word)
            seen.add(word)
        self._id_to_word: List[str] = vocab
        self._word_to_id: Dict[str, int] = {w: i for i, w in enumerate(vocab)}

    # -- vocabulary --------------------------------------------------------
    @property
    def vocab_size(self) -> int:
        return len(self._id_to_word)

    @property
    def pad_id(self) -> int:
        return self._word_to_id[PAD]

    @property
    def bos_id(self) -> int:
        return self._word_to_id[BOS]

    @property
    def eos_id(self) -> int:
        return self._word_to_id[EOS]

    @property
    def mask_id(self) -> int:
        return self._word_to_id[MASK]

    @property
    def unk_id(self) -> int:
        return self._word_to_id[UNK]

    def id_of(self, word: str) -> int:
        return self._word_to_id.get(word, self.unk_id)

    def word_of(self, token_id: int) -> str:
        if not 0 <= token_id < self.vocab_size:
            raise EvaluationError(f"token id {token_id} out of range")
        return self._id_to_word[token_id]

    def __contains__(self, word: str) -> bool:
        return word in self._word_to_id

    # -- encoding -----------------------------------------------------------
    def encode(self, text: str, add_bos: bool = True, add_eos: bool = False) -> List[int]:
        ids = [self.id_of(word) for word in text.split()]
        if add_bos:
            ids.insert(0, self.bos_id)
        if add_eos:
            ids.append(self.eos_id)
        return ids

    def decode(self, ids: Sequence[int], skip_special: bool = True) -> str:
        words = []
        special_ids = {self._word_to_id[t] for t in SPECIAL_TOKENS}
        for token_id in ids:
            if skip_special and int(token_id) in special_ids:
                continue
            words.append(self.word_of(int(token_id)))
        return " ".join(words)

    def encode_batch(
        self, texts: Sequence[str], add_bos: bool = True, add_eos: bool = False
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Encode and left-align pad a batch.

        Returns (ids, pad_mask): ids is (B, T_max) int64, pad_mask is (B,
        T_max) bool and True at padding positions.
        """
        encoded = [self.encode(t, add_bos=add_bos, add_eos=add_eos) for t in texts]
        if not encoded:
            raise EvaluationError("encode_batch received no texts")
        max_len = max(len(e) for e in encoded)
        ids = np.full((len(encoded), max_len), self.pad_id, dtype=np.int64)
        mask = np.ones((len(encoded), max_len), dtype=bool)
        for row, tokens in enumerate(encoded):
            ids[row, : len(tokens)] = tokens
            mask[row, : len(tokens)] = False
        return ids, mask

    # -- persistence -----------------------------------------------------------
    def state(self) -> List[str]:
        """The full ordered vocabulary, enough to reconstruct the tokenizer."""
        return list(self._id_to_word)

    @classmethod
    def from_state(cls, vocab: Sequence[str]) -> "WordTokenizer":
        if tuple(vocab[: len(SPECIAL_TOKENS)]) != SPECIAL_TOKENS:
            raise EvaluationError("vocabulary state does not start with special tokens")
        return cls(vocab[len(SPECIAL_TOKENS) :])
