"""Task abstractions mirroring EleutherAI's lm-evaluation-harness.

Two evaluation modes, matching how the paper's benchmarks are scored:

- **Multiple choice** (ARC, HellaSwag, MMLU, TruthfulQA, WinoGrande): each
  candidate continuation is scored by the sum of its token
  log-probabilities given the context; the highest-scoring (optionally
  length-normalized) candidate is the prediction.
- **Generative** (GSM8K): the model greedily decodes after a few-shot
  prompt and the first generated answer token is compared exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EvaluationError
from repro.eval.metrics import accuracy, accuracy_stderr, exact_match
from repro.eval.tokenizer import WordTokenizer
from repro.runtime.decode import DecodeSession
from repro.tensor.functional import sequence_log_likelihood


@dataclass(frozen=True)
class MultipleChoiceItem:
    """One question: a context and candidate continuations."""

    context: str
    choices: Tuple[str, ...]
    answer_index: int

    def __post_init__(self) -> None:
        if not 0 <= self.answer_index < len(self.choices):
            raise EvaluationError(
                f"answer index {self.answer_index} out of range for "
                f"{len(self.choices)} choices"
            )


@dataclass(frozen=True)
class GenerativeItem:
    """One generative problem: a prompt and the reference answer string."""

    prompt: str
    answer: str


@dataclass
class TaskResult:
    """Outcome of evaluating one task."""

    task: str
    metric: str
    value: float
    stderr: float
    n_items: int
    per_item: List[bool] = field(default_factory=list, repr=False)

    def __str__(self) -> str:
        return (
            f"{self.task}: {self.metric}={100 * self.value:.1f}% "
            f"(+/-{100 * self.stderr:.1f}, n={self.n_items})"
        )


def _pad_batch(
    sequences: Sequence[Sequence[int]], pad_id: int
) -> Tuple[np.ndarray, np.ndarray]:
    max_len = max(len(s) for s in sequences)
    ids = np.full((len(sequences), max_len), pad_id, dtype=np.int64)
    pad_mask = np.ones((len(sequences), max_len), dtype=bool)
    for row, seq in enumerate(sequences):
        ids[row, : len(seq)] = seq
        pad_mask[row, : len(seq)] = False
    return ids, pad_mask


def score_continuations(
    model,
    tokenizer: WordTokenizer,
    context: str,
    choices: Sequence[str],
    batch_size: int = 16,
) -> np.ndarray:
    """Log-likelihood of each choice continuation given ``context``.

    Returns an array of shape (len(choices),) of summed token
    log-probabilities — the quantity lm-evaluation-harness calls
    ``loglikelihood``.
    """
    context_ids = tokenizer.encode(context, add_bos=True)
    sequences: List[List[int]] = []
    continuation_spans: List[Tuple[int, int]] = []
    for choice in choices:
        choice_ids = tokenizer.encode(choice, add_bos=False)
        if not choice_ids:
            raise EvaluationError(f"empty choice in context {context!r}")
        sequences.append(context_ids + choice_ids)
        continuation_spans.append((len(context_ids), len(context_ids) + len(choice_ids)))

    scores = np.empty(len(sequences), dtype=np.float64)
    for start in range(0, len(sequences), batch_size):
        chunk = sequences[start : start + batch_size]
        spans = continuation_spans[start : start + batch_size]
        ids, pad_mask = _pad_batch(chunk, tokenizer.pad_id)
        logits = model(ids, pad_mask=pad_mask)
        # Position t predicts token t+1: score tokens in [span_start, span_end)
        # using logits at [span_start - 1, span_end - 1).
        targets = ids[:, 1:]
        mask = np.zeros_like(targets, dtype=np.float64)
        for row, (span_start, span_end) in enumerate(spans):
            mask[row, span_start - 1 : span_end - 1] = 1.0
        scores[start : start + len(chunk)] = sequence_log_likelihood(
            logits[:, :-1, :], targets, mask=mask
        )
    return scores


def with_fewshot(
    items: Sequence[MultipleChoiceItem],
    n_shots: int,
    seed: int = 0,
) -> List[MultipleChoiceItem]:
    """Prepend ``n_shots`` solved exemplars to every item's context.

    Exemplars are drawn from *other* items of the same task (question plus
    its correct answer), mirroring lm-evaluation-harness's k-shot protocol.
    """
    if n_shots < 0:
        raise EvaluationError(f"n_shots must be non-negative, got {n_shots}")
    items = list(items)
    if n_shots == 0:
        return items
    if len(items) < n_shots + 1:
        raise EvaluationError(
            f"need at least {n_shots + 1} items for {n_shots}-shot prompting"
        )
    rng = np.random.default_rng(seed)
    shot_items: List[MultipleChoiceItem] = []
    for index, item in enumerate(items):
        pool = [i for i in range(len(items)) if i != index]
        picks = rng.choice(pool, size=n_shots, replace=False)
        exemplars = []
        for pick in picks:
            other = items[pick]
            exemplars.append(f"{other.context} {other.choices[other.answer_index]}")
        prefix = " ".join(exemplars)
        shot_items.append(
            MultipleChoiceItem(
                context=f"{prefix} {item.context}",
                choices=item.choices,
                answer_index=item.answer_index,
            )
        )
    return shot_items


class Task:
    """Base class carrying a name and frozen item list."""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description

    def __len__(self) -> int:
        raise NotImplementedError

    def evaluate(self, model, tokenizer: WordTokenizer, limit: Optional[int] = None) -> TaskResult:
        raise NotImplementedError


class MultipleChoiceTask(Task):
    """Log-likelihood ranking over candidate continuations.

    ``length_normalize`` divides each choice's log-likelihood by its token
    count (the harness's ``acc_norm``), removing length bias when choices
    differ in length.  The synthetic tasks use single-word or equal-length
    choices, so plain accuracy and acc_norm agree; the flag exists for
    parity and for custom tasks.
    """

    def __init__(
        self,
        name: str,
        items: Sequence[MultipleChoiceItem],
        description: str = "",
        length_normalize: bool = False,
    ) -> None:
        super().__init__(name, description)
        if not items:
            raise EvaluationError(f"task {name!r} has no items")
        self.items = list(items)
        self.length_normalize = length_normalize

    def __len__(self) -> int:
        return len(self.items)

    def predict(self, model, tokenizer: WordTokenizer, item: MultipleChoiceItem) -> int:
        scores = score_continuations(model, tokenizer, item.context, item.choices)
        if self.length_normalize:
            lengths = np.array([len(c.split()) for c in item.choices], dtype=np.float64)
            scores = scores / np.maximum(lengths, 1.0)
        return int(np.argmax(scores))

    def evaluate(
        self, model, tokenizer: WordTokenizer, limit: Optional[int] = None
    ) -> TaskResult:
        items = self.items if limit is None else self.items[:limit]
        correct = [
            self.predict(model, tokenizer, item) == item.answer_index for item in items
        ]
        return TaskResult(
            task=self.name,
            metric="acc_norm" if self.length_normalize else "acc",
            value=accuracy(correct),
            stderr=accuracy_stderr(correct),
            n_items=len(items),
            per_item=correct,
        )


class GenerativeTask(Task):
    """Greedy generation scored by exact match on the answer tokens."""

    def __init__(
        self,
        name: str,
        items: Sequence[GenerativeItem],
        max_new_tokens: int = 4,
        description: str = "",
    ) -> None:
        super().__init__(name, description)
        if not items:
            raise EvaluationError(f"task {name!r} has no items")
        self.items = list(items)
        self.max_new_tokens = max_new_tokens

    def __len__(self) -> int:
        return len(self.items)

    def predict(self, model, tokenizer: WordTokenizer, item: GenerativeItem) -> str:
        prompt_ids = np.asarray(tokenizer.encode(item.prompt, add_bos=True))
        # The same runtime DecodeSession the serving engine's decode
        # stepping is built on (and model.greedy_generate delegates to);
        # models without the cached-decoding surface (test stubs) keep the
        # plain greedy_generate entry point.
        if DecodeSession.supports(model):
            generated = DecodeSession(model).generate(
                prompt_ids, self.max_new_tokens, stop_token=tokenizer.eos_id
            )
        else:
            generated = model.greedy_generate(
                prompt_ids, self.max_new_tokens, stop_token=tokenizer.eos_id
            )
        new_tokens = generated[len(prompt_ids) :]
        words = tokenizer.decode(new_tokens).split()
        return words[0] if words else ""

    def evaluate(
        self, model, tokenizer: WordTokenizer, limit: Optional[int] = None
    ) -> TaskResult:
        items = self.items if limit is None else self.items[:limit]
        correct = [
            exact_match(self.predict(model, tokenizer, item), item.answer)
            for item in items
        ]
        return TaskResult(
            task=self.name,
            metric="exact_match",
            value=accuracy(correct),
            stderr=accuracy_stderr(correct),
            n_items=len(items),
            per_item=correct,
        )
