"""Suite-level evaluation runner (the lm-evaluation-harness equivalent)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.eval.task import Task, TaskResult
from repro.eval.tokenizer import WordTokenizer


@dataclass
class SuiteResult:
    """Results of evaluating a model on a set of benchmarks."""

    results: Dict[str, TaskResult] = field(default_factory=dict)

    def accuracy(self, task: str) -> float:
        return self.results[task].value

    @property
    def task_names(self) -> Sequence[str]:
        return list(self.results)

    @property
    def mean_accuracy(self) -> float:
        """Unweighted mean across tasks (the paper's 'aggregate accuracy')."""
        return float(np.mean([r.value for r in self.results.values()]))

    def as_dict(self) -> Dict[str, float]:
        return {name: result.value for name, result in self.results.items()}

    def table(self) -> str:
        """Fixed-width summary table."""
        lines = [f"{'benchmark':<15}{'metric':<13}{'score':>8}{'n':>7}"]
        for name, result in self.results.items():
            lines.append(
                f"{name:<15}{result.metric:<13}{100 * result.value:>7.1f}%{result.n_items:>7}"
            )
        lines.append(f"{'mean':<15}{'':<13}{100 * self.mean_accuracy:>7.1f}%")
        return "\n".join(lines)


def evaluate_suite(
    model,
    tokenizer: WordTokenizer,
    tasks: Mapping[str, Task],
    limit: Optional[int] = None,
) -> SuiteResult:
    """Evaluate ``model`` on every task; ``limit`` caps items per task."""
    was_training = getattr(model, "training", False)
    if hasattr(model, "eval"):
        model.eval()
    try:
        suite = SuiteResult()
        for name, task in tasks.items():
            suite.results[name] = task.evaluate(model, tokenizer, limit=limit)
        return suite
    finally:
        if was_training and hasattr(model, "train"):
            model.train()
