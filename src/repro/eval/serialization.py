"""Benchmark-task serialization (JSONL, one item per line).

Lets a generated synthetic suite be frozen to disk and shared — the
equivalent of distributing the datasets the paper's benchmarks come from,
so two machines can evaluate on literally identical items.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import EvaluationError
from repro.eval.task import (
    GenerativeItem,
    GenerativeTask,
    MultipleChoiceItem,
    MultipleChoiceTask,
    Task,
)


def save_task(task: Task, path) -> None:
    """Write a task to JSONL: a header line then one line per item."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        if isinstance(task, MultipleChoiceTask):
            header = {
                "kind": "multiple_choice",
                "name": task.name,
                "description": task.description,
                "length_normalize": task.length_normalize,
            }
            handle.write(json.dumps(header) + "\n")
            for item in task.items:
                handle.write(
                    json.dumps(
                        {
                            "context": item.context,
                            "choices": list(item.choices),
                            "answer_index": item.answer_index,
                        }
                    )
                    + "\n"
                )
        elif isinstance(task, GenerativeTask):
            header = {
                "kind": "generative",
                "name": task.name,
                "description": task.description,
                "max_new_tokens": task.max_new_tokens,
            }
            handle.write(json.dumps(header) + "\n")
            for item in task.items:
                handle.write(
                    json.dumps({"prompt": item.prompt, "answer": item.answer}) + "\n"
                )
        else:
            raise EvaluationError(f"cannot serialize task type {type(task).__name__}")


def load_task(path) -> Union[MultipleChoiceTask, GenerativeTask]:
    """Rebuild a task written by :func:`save_task`."""
    path = Path(path)
    if not path.exists():
        raise EvaluationError(f"task file not found: {path}")
    with path.open() as handle:
        lines = [line for line in handle if line.strip()]
    if not lines:
        raise EvaluationError(f"empty task file: {path}")
    header = json.loads(lines[0])
    kind = header.get("kind")
    if kind == "multiple_choice":
        items = [
            MultipleChoiceItem(
                context=record["context"],
                choices=tuple(record["choices"]),
                answer_index=record["answer_index"],
            )
            for record in map(json.loads, lines[1:])
        ]
        return MultipleChoiceTask(
            header["name"],
            items,
            description=header.get("description", ""),
            length_normalize=header.get("length_normalize", False),
        )
    if kind == "generative":
        items = [
            GenerativeItem(prompt=record["prompt"], answer=record["answer"])
            for record in map(json.loads, lines[1:])
        ]
        return GenerativeTask(
            header["name"],
            items,
            max_new_tokens=header.get("max_new_tokens", 4),
            description=header.get("description", ""),
        )
    raise EvaluationError(f"unknown task kind {kind!r} in {path}")
