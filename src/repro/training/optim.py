"""Optimizers: SGD (with momentum), Adam, and AdamW.

Each optimizer owns a list of parameters and mutates their ``data`` arrays
in :meth:`step` from the gradients accumulated by ``backward``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer: parameter bookkeeping and gradient utilities."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ConfigError("optimizer received no parameters")
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def clip_grad_norm(self, max_norm: float) -> float:
        """Scale all gradients so their global L2 norm is at most ``max_norm``.

        Returns the pre-clip norm (useful for logging/divergence detection).
        """
        total = 0.0
        for param in self.parameters:
            if param.grad is not None:
                total += float(np.sum(param.grad.astype(np.float64) ** 2))
        norm = float(np.sqrt(total))
        if norm > max_norm > 0:
            scale = max_norm / (norm + 1e-12)
            for param in self.parameters:
                if param.grad is not None:
                    param.grad *= scale
        return norm

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self, parameters: Iterable[Parameter], lr: float, momentum: float = 0.0
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                update = velocity
            else:
                update = param.grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        decoupled_weight_decay: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ConfigError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self.decoupled = bool(decoupled_weight_decay)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay and not self.decoupled:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            if self.weight_decay and self.decoupled:
                param.data -= self.lr * self.weight_decay * param.data
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(
            parameters,
            lr=lr,
            betas=betas,
            eps=eps,
            weight_decay=weight_decay,
            decoupled_weight_decay=True,
        )
