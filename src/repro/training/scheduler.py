"""Learning-rate schedules."""

from __future__ import annotations

import math

from repro.errors import ConfigError
from repro.training.optim import Optimizer


class Scheduler:
    """Base: call :meth:`step` once per optimizer step."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_count = 0

    def lr_at(self, step: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        self.step_count += 1
        lr = self.lr_at(self.step_count)
        self.optimizer.lr = lr
        return lr


class ConstantLR(Scheduler):
    def lr_at(self, step: int) -> float:
        return self.base_lr


class WarmupCosine(Scheduler):
    """Linear warmup to the base LR then cosine decay to ``min_lr``."""

    def __init__(
        self,
        optimizer: Optimizer,
        warmup_steps: int,
        total_steps: int,
        min_lr: float = 0.0,
    ) -> None:
        super().__init__(optimizer)
        if warmup_steps < 0 or total_steps <= 0:
            raise ConfigError("invalid warmup/total step counts")
        if warmup_steps >= total_steps:
            raise ConfigError(
                f"warmup ({warmup_steps}) must be shorter than total ({total_steps})"
            )
        self.warmup_steps = int(warmup_steps)
        self.total_steps = int(total_steps)
        self.min_lr = float(min_lr)

    def lr_at(self, step: int) -> float:
        if self.warmup_steps and step <= self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        progress = (step - self.warmup_steps) / max(
            self.total_steps - self.warmup_steps, 1
        )
        progress = min(progress, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine
