"""Optimizers, schedules, trainers, and checkpointing."""

from repro.training.checkpoint import load_checkpoint, save_checkpoint
from repro.training.optim import SGD, Adam, AdamW, Optimizer
from repro.training.scheduler import ConstantLR, Scheduler, WarmupCosine
from repro.training.trainer import (
    TrainConfig,
    TrainLog,
    mask_tokens,
    train_causal_lm,
    train_masked_lm,
)

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "Scheduler",
    "ConstantLR",
    "WarmupCosine",
    "TrainConfig",
    "TrainLog",
    "train_causal_lm",
    "train_masked_lm",
    "mask_tokens",
    "save_checkpoint",
    "load_checkpoint",
]
