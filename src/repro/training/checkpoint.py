"""Checkpointing: model weights + tokenizer vocabulary in one ``.npz``."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.errors import CheckpointError
from repro.eval.tokenizer import WordTokenizer
from repro.models import ModelConfig, build_model

_CONFIG_KEY = "__config_json__"
_VOCAB_KEY = "__vocab_json__"


def save_checkpoint(
    path, model, tokenizer: Optional[WordTokenizer] = None
) -> None:
    """Serialize a model (and optionally its tokenizer) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = dict(model.state_dict())
    config_json = json.dumps(_config_dict(model.config))
    arrays[_CONFIG_KEY] = np.frombuffer(config_json.encode(), dtype=np.uint8)
    if tokenizer is not None:
        vocab_json = json.dumps(tokenizer.state())
        arrays[_VOCAB_KEY] = np.frombuffer(vocab_json.encode(), dtype=np.uint8)
    np.savez_compressed(path, **arrays)


def _config_dict(config: ModelConfig) -> dict:
    return {
        field: getattr(config, field)
        for field in config.__dataclass_fields__
    }


def load_checkpoint(path) -> Tuple[object, Optional[WordTokenizer]]:
    """Rebuild a model (and tokenizer, if present) from ``path``."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint not found: {path}")
    with np.load(path, allow_pickle=False) as data:
        if _CONFIG_KEY not in data:
            raise CheckpointError(f"{path} is not a repro checkpoint (missing config)")
        config_json = bytes(data[_CONFIG_KEY]).decode()
        config = ModelConfig(**json.loads(config_json))
        model = build_model(config)
        state = {
            key: data[key]
            for key in data.files
            if key not in (_CONFIG_KEY, _VOCAB_KEY)
        }
        model.load_state_dict(state)
        tokenizer = None
        if _VOCAB_KEY in data:
            vocab = json.loads(bytes(data[_VOCAB_KEY]).decode())
            tokenizer = WordTokenizer.from_state(vocab)
    return model, tokenizer
