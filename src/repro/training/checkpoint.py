"""Checkpointing: model weights + tokenizer vocabulary in one ``.npz``.

Saves are atomic (written to a temporary file in the target directory and
``os.replace``-d into place), so a crash mid-write can never leave a
truncated checkpoint behind; corrupt or non-checkpoint files surface as
:class:`~repro.errors.CheckpointError` rather than raw ``zipfile`` noise.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.errors import CheckpointError
from repro.eval.tokenizer import WordTokenizer
from repro.models import ModelConfig, build_model

_CONFIG_KEY = "__config_json__"
_VOCAB_KEY = "__vocab_json__"


def save_checkpoint(
    path, model, tokenizer: Optional[WordTokenizer] = None
) -> None:
    """Serialize a model (and optionally its tokenizer) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = dict(model.state_dict())
    config_json = json.dumps(_config_dict(model.config))
    arrays[_CONFIG_KEY] = np.frombuffer(config_json.encode(), dtype=np.uint8)
    if tokenizer is not None:
        vocab_json = json.dumps(tokenizer.state())
        arrays[_VOCAB_KEY] = np.frombuffer(vocab_json.encode(), dtype=np.uint8)
    # Write-then-rename: readers only ever see complete checkpoints.
    descriptor, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def _config_dict(config: ModelConfig) -> dict:
    return {
        field: getattr(config, field)
        for field in config.__dataclass_fields__
    }


def load_checkpoint(path) -> Tuple[object, Optional[WordTokenizer]]:
    """Rebuild a model (and tokenizer, if present) from ``path``."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint not found: {path}")
    try:
        data = np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, ValueError, OSError, EOFError) as exc:
        raise CheckpointError(f"corrupt checkpoint {path}: {exc}") from exc
    with data:
        if _CONFIG_KEY not in data:
            raise CheckpointError(f"{path} is not a repro checkpoint (missing config)")
        config_json = bytes(data[_CONFIG_KEY]).decode()
        config = ModelConfig(**json.loads(config_json))
        model = build_model(config)
        state = {
            key: data[key]
            for key in data.files
            if key not in (_CONFIG_KEY, _VOCAB_KEY)
        }
        model.load_state_dict(state)
        tokenizer = None
        if _VOCAB_KEY in data:
            vocab = json.loads(bytes(data[_VOCAB_KEY]).decode())
            tokenizer = WordTokenizer.from_state(vocab)
    return model, tokenizer
