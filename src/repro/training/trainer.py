"""Training loops for the tiny causal-LM (Llama) and masked-LM (BERT).

Batches are whole sentences padded to the batch maximum; the causal loss is
masked at padding, and the MLM loss only scores masked positions.  Both
trainers are deterministic given their seeds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.eval.tokenizer import WordTokenizer
from repro.training.optim import AdamW
from repro.training.scheduler import WarmupCosine


@dataclass
class TrainConfig:
    """Hyper-parameters for a training run.

    ``grad_accumulation`` splits each optimizer step over that many
    micro-batches of ``batch_size`` sentences — the standard trick for
    training with an effective batch larger than memory allows.
    """

    steps: int = 600
    batch_size: int = 64
    lr: float = 3e-3
    weight_decay: float = 0.01
    warmup_steps: int = 50
    grad_clip: float = 1.0
    log_every: int = 50
    seed: int = 7
    grad_accumulation: int = 1

    def __post_init__(self) -> None:
        if self.grad_accumulation < 1:
            raise ConfigError(
                f"grad_accumulation must be >= 1, got {self.grad_accumulation}"
            )


@dataclass
class TrainLog:
    """Loss trajectory and timing of a run."""

    losses: List[float] = field(default_factory=list)
    steps: int = 0
    seconds: float = 0.0

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ConfigError("no training steps were logged")
        return self.losses[-1]

    def smoothed_final_loss(self, window: int = 20) -> float:
        tail = self.losses[-window:]
        return float(np.mean(tail)) if tail else float("nan")


class _SentenceSampler:
    """Uniform sampler over pre-tokenized sentences."""

    def __init__(
        self, sentences: Sequence[str], tokenizer: WordTokenizer, max_len: int
    ) -> None:
        if not sentences:
            raise ConfigError("empty corpus")
        self.encoded = []
        for sentence in sentences:
            ids = tokenizer.encode(sentence, add_bos=True, add_eos=True)
            self.encoded.append(ids[:max_len])
        self.pad_id = tokenizer.pad_id

    def batch(self, rng: np.random.Generator, batch_size: int):
        picks = rng.integers(0, len(self.encoded), size=batch_size)
        chosen = [self.encoded[i] for i in picks]
        max_len = max(len(c) for c in chosen)
        ids = np.full((batch_size, max_len), self.pad_id, dtype=np.int64)
        real = np.zeros((batch_size, max_len), dtype=bool)
        for row, seq in enumerate(chosen):
            ids[row, : len(seq)] = seq
            real[row, : len(seq)] = True
        return ids, real


def train_causal_lm(
    model,
    tokenizer: WordTokenizer,
    sentences: Sequence[str],
    config: TrainConfig = TrainConfig(),
    verbose: bool = False,
) -> TrainLog:
    """Train a :class:`LlamaModel` with next-token prediction."""
    rng = np.random.default_rng(config.seed)
    sampler = _SentenceSampler(sentences, tokenizer, model.config.max_seq_len)
    optimizer = AdamW(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)
    scheduler = WarmupCosine(optimizer, config.warmup_steps, config.steps)
    log = TrainLog()
    model.train()
    start = time.perf_counter()
    for step in range(1, config.steps + 1):
        optimizer.zero_grad()
        step_loss = 0.0
        for _ in range(config.grad_accumulation):
            ids, real = sampler.batch(rng, config.batch_size)
            # Targets are the next token; only score positions whose
            # *target* is a real (non-pad) token.
            loss_mask = real[:, 1:]
            loss = model.loss(ids, loss_mask=loss_mask) * (
                1.0 / config.grad_accumulation
            )
            loss.backward()
            step_loss += loss.item()
        optimizer.clip_grad_norm(config.grad_clip)
        optimizer.step()
        scheduler.step()
        log.losses.append(step_loss)
        if verbose and (step % config.log_every == 0 or step == 1):
            print(f"step {step:>5}  loss {step_loss:.4f}  lr {optimizer.lr:.2e}")
    log.steps = config.steps
    log.seconds = time.perf_counter() - start
    model.eval()
    return log


def train_masked_lm(
    model,
    tokenizer: WordTokenizer,
    sentences: Sequence[str],
    config: TrainConfig = TrainConfig(),
    mask_prob: float = 0.15,
    verbose: bool = False,
) -> TrainLog:
    """Train a :class:`BertModel` with BERT's masked-token objective."""
    if not 0.0 < mask_prob < 1.0:
        raise ConfigError(f"mask_prob must be in (0, 1), got {mask_prob}")
    rng = np.random.default_rng(config.seed)
    sampler = _SentenceSampler(sentences, tokenizer, model.config.max_seq_len)
    optimizer = AdamW(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)
    scheduler = WarmupCosine(optimizer, config.warmup_steps, config.steps)
    log = TrainLog()
    model.train()
    start = time.perf_counter()
    for step in range(1, config.steps + 1):
        ids, real = sampler.batch(rng, config.batch_size)
        corrupted, targets = mask_tokens(ids, real, tokenizer, rng, mask_prob)
        optimizer.zero_grad()
        loss = model.mlm_loss(corrupted, targets)
        loss.backward()
        optimizer.clip_grad_norm(config.grad_clip)
        optimizer.step()
        scheduler.step()
        log.losses.append(loss.item())
        if verbose and (step % config.log_every == 0 or step == 1):
            print(f"step {step:>5}  loss {loss.item():.4f}  lr {optimizer.lr:.2e}")
    log.steps = config.steps
    log.seconds = time.perf_counter() - start
    model.eval()
    return log


def mask_tokens(
    ids: np.ndarray,
    real: np.ndarray,
    tokenizer: WordTokenizer,
    rng: np.random.Generator,
    mask_prob: float = 0.15,
):
    """BERT masking: replace sampled real positions with ``<mask>``.

    Returns (corrupted ids, targets) where targets hold the original id at
    masked positions and -1 elsewhere.  At least one position per batch is
    always masked so the loss is defined.
    """
    ids = np.asarray(ids)
    maskable = real.copy()
    maskable[:, 0] = False  # never mask <bos>
    lottery = rng.random(ids.shape) < mask_prob
    chosen = lottery & maskable
    if not chosen.any():
        rows, cols = np.nonzero(maskable)
        pick = int(rng.integers(len(rows)))
        chosen[rows[pick], cols[pick]] = True
    corrupted = ids.copy()
    corrupted[chosen] = tokenizer.mask_id
    targets = np.where(chosen, ids, -1)
    return corrupted, targets
