"""Token and learned positional embeddings."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.nn.module import Module, Parameter
from repro.tensor import random as trandom
from repro.tensor.tensor import Tensor


class Embedding(Module):
    """A lookup table mapping integer ids to dense vectors.

    The forward pass uses autograd fancy indexing, so gradients scatter-add
    back into the table rows that were used.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
        std: float = 0.02,
    ) -> None:
        super().__init__()
        self.num_embeddings = int(num_embeddings)
        self.embedding_dim = int(embedding_dim)
        if rng is not None:
            weight = trandom.normal(rng, (self.num_embeddings, self.embedding_dim), std=std)
        else:
            weight = trandom.zeros((self.num_embeddings, self.embedding_dim))
        self.weight = Parameter(weight, name="weight")

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids)
        if not np.issubdtype(ids.dtype, np.integer):
            raise ShapeError(f"embedding ids must be integers, got {ids.dtype}")
        if ids.min(initial=0) < 0 or ids.max(initial=0) >= self.num_embeddings:
            raise ShapeError(
                f"embedding ids out of range [0, {self.num_embeddings}): "
                f"[{ids.min()}, {ids.max()}]"
            )
        return self.weight[ids]

    def __repr__(self) -> str:
        return f"Embedding(vocab={self.num_embeddings}, dim={self.embedding_dim})"


class PositionalEmbedding(Module):
    """BERT-style learned absolute positional embedding."""

    def __init__(
        self,
        max_positions: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.max_positions = int(max_positions)
        self.table = Embedding(max_positions, embedding_dim, rng=rng)

    def forward(self, seq_len: int) -> Tensor:
        if seq_len > self.max_positions:
            raise ShapeError(
                f"sequence length {seq_len} exceeds max positions {self.max_positions}"
            )
        return self.table(np.arange(seq_len))
