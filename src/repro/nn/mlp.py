"""Feed-forward blocks: BERT's GELU MLP and Llama's SwiGLU MLP.

Weight-tensor naming follows the paper's Figure 4:

- BERT: W_Int (intermediate) and W_Out (output).
- Llama: W_G (gate projection), W_U (up projection), W_D (down projection).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.linear import Linear, block_edges
from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class GeluMLP(Module):
    """BERT's two-layer feed-forward: ``W_Out(gelu(W_Int(x)))``."""

    def __init__(
        self,
        dim: int,
        hidden_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.dim = int(dim)
        self.hidden_dim = int(hidden_dim)
        self.w_int = Linear(dim, hidden_dim, bias=True, rng=rng)
        self.w_out = Linear(hidden_dim, dim, bias=True, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.w_out(F.gelu(self.w_int(x)))


class SwiGluMLP(Module):
    """Llama's gated feed-forward: ``W_D(silu(W_G(x)) * W_U(x))``.

    ``n_blocks`` fixes the column-block reduction layout of all three
    GEMMs (see :func:`~repro.nn.linear.blocked_project`); Llama blocks pass
    ``config.n_heads`` so the MLP shards along the same block grid as
    attention under tensor parallelism.  The default of 1 keeps the plain
    single-GEMM layout.
    """

    def __init__(
        self,
        dim: int,
        hidden_dim: int,
        rng: Optional[np.random.Generator] = None,
        n_blocks: int = 1,
    ) -> None:
        super().__init__()
        self.dim = int(dim)
        self.hidden_dim = int(hidden_dim)
        self.n_blocks = int(n_blocks)
        self.w_g = Linear(dim, hidden_dim, bias=False, rng=rng)
        self.w_u = Linear(dim, hidden_dim, bias=False, rng=rng)
        self.w_d = Linear(hidden_dim, dim, bias=False, rng=rng)
        self._hidden_edges = block_edges(hidden_dim, self.n_blocks)
        self._out_edges = block_edges(dim, self.n_blocks)

    def forward(self, x: Tensor) -> Tensor:
        gate = self.w_g.forward_blocked(x, self._hidden_edges)
        up = self.w_u.forward_blocked(x, self._hidden_edges)
        return self.w_d.forward_blocked(F.silu(gate) * up, self._out_edges)
