"""Feed-forward blocks: BERT's GELU MLP and Llama's SwiGLU MLP.

Weight-tensor naming follows the paper's Figure 4:

- BERT: W_Int (intermediate) and W_Out (output).
- Llama: W_G (gate projection), W_U (up projection), W_D (down projection).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class GeluMLP(Module):
    """BERT's two-layer feed-forward: ``W_Out(gelu(W_Int(x)))``."""

    def __init__(
        self,
        dim: int,
        hidden_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.dim = int(dim)
        self.hidden_dim = int(hidden_dim)
        self.w_int = Linear(dim, hidden_dim, bias=True, rng=rng)
        self.w_out = Linear(hidden_dim, dim, bias=True, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.w_out(F.gelu(self.w_int(x)))


class SwiGluMLP(Module):
    """Llama's gated feed-forward: ``W_D(silu(W_G(x)) * W_U(x))``."""

    def __init__(
        self,
        dim: int,
        hidden_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.dim = int(dim)
        self.hidden_dim = int(hidden_dim)
        self.w_g = Linear(dim, hidden_dim, bias=False, rng=rng)
        self.w_u = Linear(dim, hidden_dim, bias=False, rng=rng)
        self.w_d = Linear(hidden_dim, dim, bias=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.w_d(F.silu(self.w_g(x)) * self.w_u(x))
