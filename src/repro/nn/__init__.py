"""Neural-network building blocks on top of :mod:`repro.tensor`."""

from repro.nn.attention import MultiHeadAttention, causal_mask
from repro.nn.embedding import Embedding, PositionalEmbedding
from repro.nn.factorized import FactorizedLinear
from repro.nn.kv_cache import (
    LayerKVCache,
    ModelKVCache,
    RaggedLayerCaches,
    RaggedModelCaches,
)
from repro.nn.linear import Linear
from repro.nn.mlp import GeluMLP, SwiGluMLP
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.normalization import LayerNorm, RMSNorm
from repro.nn.quantized import (
    QuantizedFactorizedLinear,
    QuantizedLinear,
    quantize_module,
)
from repro.nn.rope import RotaryEmbedding

__all__ = [
    "Module",
    "ModuleList",
    "Parameter",
    "Linear",
    "FactorizedLinear",
    "QuantizedLinear",
    "QuantizedFactorizedLinear",
    "quantize_module",
    "Embedding",
    "PositionalEmbedding",
    "LayerNorm",
    "RMSNorm",
    "RotaryEmbedding",
    "MultiHeadAttention",
    "causal_mask",
    "LayerKVCache",
    "ModelKVCache",
    "RaggedLayerCaches",
    "RaggedModelCaches",
    "GeluMLP",
    "SwiGluMLP",
]
