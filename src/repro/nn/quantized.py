"""Real int8 weight storage for the inference fast path.

:mod:`repro.compression.quantization` simulates quantization: weights are
rounded to an integer grid and immediately dequantized, so serving still
pays full fp32 memory and bandwidth.  The modules here keep the *storage*
quantized — an ``int8`` grid plus one fp32 scale per output column — and
dequantize on the way into each GEMM.

Quantization math
-----------------
:func:`quantize_weight` is symmetric per-output-channel rounding: each
column of an (in_features, out_features) matrix gets the scale
``max_abs / qmax`` (``1.0`` for all-zero columns so the grid stays zero),
and the grid is ``clip(round(weight / scale), -qmax - 1, qmax)``.  The grid
is returned in the narrowest dtype that holds it — ``int8`` for every
supported width.  Scales are kept in fp32 and accounted as 4 bytes per
column by :func:`quantized_weight_bytes`.

Per-output-column scales make every slicing the serving stack performs
self-contained: a Megatron column shard ``grid[:, lo:hi]`` pairs with
``scales[lo:hi]`` and needs nothing from other ranks, and each factor of a
U·Γ·V chain carries its own scales.

Bit-identity contract
---------------------
``forward`` / ``forward_blocked`` here dequantize the full grid and run
the ordinary Tensor-graph projection — this *is* the simulated-quantization
reference.  The fast-path kernels in :mod:`repro.runtime.fastpath`
dequantize block-by-block into workspace scratch instead; because
elementwise dequantization of a column block equals the same columns of the
full dequantized matrix, and BLAS GEMM results depend only on the operand
values and their C-contiguous layout (not the stride of the parent they
were sliced from), the two paths agree bit for bit.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import DecompositionError
from repro.nn.factorized import FactorizedLinear
from repro.nn.linear import Linear, blocked_project
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor

SUPPORTED_BITS = (2, 3, 4, 8)


def quantize_weight(
    weight: np.ndarray, bits: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric per-output-channel quantization.

    Returns (integer grid in the narrowest dtype that holds it — ``int8``
    for bits <= 8 — and per-column fp32 scales).  ``weight`` is
    (in_features, out_features); each output column gets its own scale,
    the convention GPTQ-style weight quantizers use.
    """
    if bits not in SUPPORTED_BITS:
        raise DecompositionError(f"bits must be one of {SUPPORTED_BITS}, got {bits}")
    weight = np.asarray(weight, dtype=np.float32)
    if weight.ndim != 2:
        raise DecompositionError(f"expected a matrix, got {weight.shape}")
    qmax = 2 ** (bits - 1) - 1
    max_abs = np.abs(weight).max(axis=0)
    scales = np.where(max_abs > 0, max_abs / qmax, 1.0).astype(np.float32)
    grid = np.clip(np.round(weight / scales[None, :]), -qmax - 1, qmax)
    return grid.astype(np.int8), scales


def dequantize_weight(grid: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Invert :func:`quantize_weight` up to rounding error."""
    return (np.asarray(grid, dtype=np.float32) * np.asarray(scales)[None, :]).astype(
        np.float32
    )


def quantized_weight_bytes(shape: Tuple[int, int], bits: int) -> float:
    """Storage of a quantized (H, W) matrix: packed ints + fp32 scales.

    The scale term is 4 bytes per output column, matching the fp32 scales
    :func:`quantize_weight` actually returns and the quantized modules
    actually keep — not the fp16 scales some deployments pack down to.
    """
    height, width = shape
    return height * width * bits / 8.0 + width * 4.0


class QuantizedLinear(Module):
    """A :class:`Linear` whose weight is stored as an int8 grid + scales.

    The grid and scales are plain ndarrays, deliberately *not*
    :class:`Parameter` objects: quantized storage is a post-training
    artifact derived from the dense checkpoint, so it stays out of
    ``state_dict`` / ``named_parameters`` (the bias, if any, remains a
    real Parameter).  The Tensor-path ``forward`` dequantizes the full
    grid — it is the simulated-quantization reference the fast path must
    match bit for bit.
    """

    def __init__(
        self,
        grid: np.ndarray,
        scales: np.ndarray,
        bits: int,
        bias: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        grid = np.ascontiguousarray(grid)
        if grid.dtype != np.int8:
            raise DecompositionError(f"grid must be int8, got {grid.dtype}")
        if grid.ndim != 2:
            raise DecompositionError(f"expected a matrix grid, got {grid.shape}")
        scales = np.ascontiguousarray(scales, dtype=np.float32)
        if scales.shape != (grid.shape[1],):
            raise DecompositionError(
                f"scales {scales.shape} must be one per output column of {grid.shape}"
            )
        self.grid = grid
        self.scales = scales
        self.bits = int(bits)
        self.in_features, self.out_features = grid.shape
        self.bias = Parameter(bias, name="bias") if bias is not None else None

    @classmethod
    def from_linear(cls, module: Linear, bits: int) -> "QuantizedLinear":
        grid, scales = quantize_weight(module.weight.data, bits)
        bias = module.bias.data.copy() if module.bias is not None else None
        return cls(grid, scales, bits, bias)

    def dequantize(self) -> np.ndarray:
        """Full fp32 (in, out) weight — the reference-path operand."""
        return dequantize_weight(self.grid, self.scales)

    def forward(self, x: Tensor) -> Tensor:
        out = x @ Tensor(self.dequantize())
        if self.bias is not None:
            out = out + self.bias
        return out

    def forward_blocked(self, x: Tensor, edges: Sequence[Tuple[int, int]]) -> Tensor:
        out = blocked_project(x, Tensor(self.dequantize()), edges)
        if self.bias is not None:
            out = out + self.bias
        return out

    # -- metadata ---------------------------------------------------------
    def num_weight_parameters(self) -> int:
        return int(self.grid.size)

    def weight_bytes(self) -> float:
        """Actual bytes held for the weight: grid + fp32 scales."""
        return float(self.grid.nbytes + self.scales.nbytes)

    def __repr__(self) -> str:
        return (
            f"QuantizedLinear(in={self.in_features}, out={self.out_features}, "
            f"bits={self.bits})"
        )


class QuantizedFactorizedLinear(Module):
    """A :class:`FactorizedLinear` with every factor stored quantized.

    Each factor (U1, core, U2) keeps its own int8 grid and per-output-
    column fp32 scales, so the chain composes with tensor parallelism the
    same way the fp32 chain does: U1/core replicate whole, U2 shards by
    output columns with matching scale slices.
    """

    def __init__(
        self,
        u1_grid: np.ndarray,
        u1_scales: np.ndarray,
        core_grid: np.ndarray,
        core_scales: np.ndarray,
        u2_grid: np.ndarray,
        u2_scales: np.ndarray,
        bits: int,
        bias: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        factors = []
        for grid, scales in (
            (u1_grid, u1_scales),
            (core_grid, core_scales),
            (u2_grid, u2_scales),
        ):
            grid = np.ascontiguousarray(grid)
            if grid.dtype != np.int8:
                raise DecompositionError(f"grid must be int8, got {grid.dtype}")
            scales = np.ascontiguousarray(scales, dtype=np.float32)
            if grid.ndim != 2 or scales.shape != (grid.shape[1],):
                raise DecompositionError(
                    f"factor grid {grid.shape} / scales {scales.shape} mismatch"
                )
            factors.append((grid, scales))
        (self.u1_grid, self.u1_scales) = factors[0]
        (self.core_grid, self.core_scales) = factors[1]
        (self.u2_grid, self.u2_scales) = factors[2]
        if (
            self.u1_grid.shape[1] != self.core_grid.shape[0]
            or self.core_grid.shape[1] != self.u2_grid.shape[0]
        ):
            raise DecompositionError(
                "factor chain mismatch: "
                f"{self.u1_grid.shape} @ {self.core_grid.shape} @ {self.u2_grid.shape}"
            )
        self.bits = int(bits)
        self.in_features = self.u1_grid.shape[0]
        self.out_features = self.u2_grid.shape[1]
        self.rank = self.core_grid.shape[0]
        self.bias = Parameter(bias, name="bias") if bias is not None else None

    @classmethod
    def from_factorized(
        cls, module: FactorizedLinear, bits: int
    ) -> "QuantizedFactorizedLinear":
        u1_grid, u1_scales = quantize_weight(module.u1.data, bits)
        core_grid, core_scales = quantize_weight(module.core.data, bits)
        u2_grid, u2_scales = quantize_weight(module.u2.data, bits)
        bias = module.bias.data.copy() if module.bias is not None else None
        return cls(
            u1_grid, u1_scales, core_grid, core_scales, u2_grid, u2_scales, bits, bias
        )

    def dequantize_u1(self) -> np.ndarray:
        return dequantize_weight(self.u1_grid, self.u1_scales)

    def dequantize_core(self) -> np.ndarray:
        return dequantize_weight(self.core_grid, self.core_scales)

    def dequantize_u2(self) -> np.ndarray:
        return dequantize_weight(self.u2_grid, self.u2_scales)

    def prefix(self, x: Tensor) -> Tensor:
        """The shared low-rank prefix ``(x @ U1) @ core`` on dequantized factors."""
        return (x @ Tensor(self.dequantize_u1())) @ Tensor(self.dequantize_core())

    def forward(self, x: Tensor) -> Tensor:
        out = self.prefix(x) @ Tensor(self.dequantize_u2())
        if self.bias is not None:
            out = out + self.bias
        return out

    def forward_blocked(self, x: Tensor, edges: Sequence[Tuple[int, int]]) -> Tensor:
        out = blocked_project(self.prefix(x), Tensor(self.dequantize_u2()), edges)
        if self.bias is not None:
            out = out + self.bias
        return out

    # -- metadata ---------------------------------------------------------
    def num_weight_parameters(self) -> int:
        return int(self.u1_grid.size + self.core_grid.size + self.u2_grid.size)

    def weight_bytes(self) -> float:
        return float(
            self.u1_grid.nbytes
            + self.u1_scales.nbytes
            + self.core_grid.nbytes
            + self.core_scales.nbytes
            + self.u2_grid.nbytes
            + self.u2_scales.nbytes
        )

    def reconstruct(self) -> np.ndarray:
        """Dense (H, W) approximation from the dequantized chain."""
        return (
            self.dequantize_u1() @ self.dequantize_core() @ self.dequantize_u2()
        ).astype(np.float32)

    def __repr__(self) -> str:
        return (
            f"QuantizedFactorizedLinear(in={self.in_features}, "
            f"out={self.out_features}, rank={self.rank}, bits={self.bits})"
        )


def quantize_module(module: Module, bits: int) -> Module:
    """Build the quantized twin of a projection module.

    ``Linear`` becomes :class:`QuantizedLinear`; ``FactorizedLinear``
    becomes :class:`QuantizedFactorizedLinear` (each factor quantized
    independently — the compound-compression case).
    """
    if isinstance(module, FactorizedLinear):
        return QuantizedFactorizedLinear.from_factorized(module, bits)
    if isinstance(module, Linear):
        return QuantizedLinear.from_linear(module, bits)
    raise DecompositionError(
        f"cannot quantize {type(module).__name__}; expected Linear or FactorizedLinear"
    )
