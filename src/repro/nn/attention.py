"""Multi-head self-attention for both encoder (BERT) and decoder (Llama).

The four projection weights (W_Q, W_K, W_V, W_SO in the paper's Figure 4)
are separate :class:`Linear` modules so that the decomposition machinery can
target each of them individually.  The attention math itself lives in the
shared runtime kernels (:mod:`repro.runtime.driver`); this module owns the
weights, the block-grid reduction layout, and the geometry, and runs the
kernels through a single-layer execution context.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.nn.linear import Linear, block_edges
from repro.nn.module import Module
from repro.nn.rope import RotaryEmbedding
from repro.runtime.context import AttentionModuleContext
from repro.runtime.driver import NEG_INF, attention as _attention_kernel, causal_mask
from repro.tensor.tensor import Tensor

_NEG_INF = NEG_INF

__all__ = ["MultiHeadAttention", "causal_mask"]


class MultiHeadAttention(Module):
    """Self-attention with optional causal masking and rotary embeddings.

    Parameters
    ----------
    dim:
        Model (residual stream) width.
    n_heads:
        Number of attention heads; ``dim`` must be divisible by it.
    causal:
        True for decoder (Llama) blocks, False for encoder (BERT) blocks.
    rope:
        Rotary embedding table shared across layers, or None for models with
        absolute positional embeddings.
    bias:
        Whether projections carry biases (BERT yes, Llama no).
    """

    def __init__(
        self,
        dim: int,
        n_heads: int,
        causal: bool,
        rope: Optional[RotaryEmbedding] = None,
        bias: bool = False,
        rng: Optional[np.random.Generator] = None,
        n_kv_heads: int = 0,
    ) -> None:
        super().__init__()
        if dim % n_heads != 0:
            raise ShapeError(f"dim {dim} not divisible by n_heads {n_heads}")
        self.dim = int(dim)
        self.n_heads = int(n_heads)
        self.head_dim = dim // n_heads
        self.n_kv_heads = int(n_kv_heads) or self.n_heads
        if self.n_heads % self.n_kv_heads != 0:
            raise ShapeError(
                f"n_heads {n_heads} not divisible by n_kv_heads {self.n_kv_heads}"
            )
        self.causal = bool(causal)
        self.rope = rope
        kv_dim = self.n_kv_heads * self.head_dim
        self.w_q = Linear(dim, dim, bias=bias, rng=rng)
        self.w_k = Linear(dim, kv_dim, bias=bias, rng=rng)
        self.w_v = Linear(dim, kv_dim, bias=bias, rng=rng)
        self.w_so = Linear(dim, dim, bias=bias, rng=rng)
        # Fixed reduction layout: Q/K/V project one head at a time and the
        # output projection runs in n_heads column blocks, so the
        # tensor-parallel executor (repro.parallel), which computes the same
        # blocks head-sharded, matches this forward bit for bit.
        self._q_edges = block_edges(dim, self.n_heads)
        self._kv_edges = block_edges(kv_dim, self.n_kv_heads)
        self._out_edges = block_edges(dim, self.n_heads)
        self._runtime_ctx = AttentionModuleContext(self)

    def forward(
        self,
        x: Tensor,
        pad_mask: Optional[np.ndarray] = None,
        cache=None,
    ) -> Tensor:
        """Attend over ``x`` (B, T, D).

        ``pad_mask`` is an optional boolean (B, T) array, True at padding
        positions that must not be attended to.  ``cache`` is an optional
        :class:`~repro.nn.kv_cache.LayerKVCache` holding keys/values of
        previously processed positions; when given, ``x`` contains only the
        *new* positions, the cache is extended in place, and gradients do
        not flow into cached history (inference-only path).

        ``cache`` may instead be a
        :class:`~repro.nn.kv_cache.RaggedLayerCaches` bundling one cache per
        batch row, in which case ``x`` is a right-padded batch of new
        positions for *independent* sequences at different depths (the
        continuous-batching path); padded slots produce garbage that the
        caller discards.
        """
        return _attention_kernel(
            self._runtime_ctx, 0, x, pad_mask=pad_mask, cache=cache
        )
