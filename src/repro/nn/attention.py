"""Multi-head self-attention for both encoder (BERT) and decoder (Llama).

The four projection weights (W_Q, W_K, W_V, W_SO in the paper's Figure 4)
are separate :class:`Linear` modules so that the decomposition machinery can
target each of them individually.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.nn.kv_cache import RaggedLayerCaches
from repro.nn.linear import Linear, block_edges
from repro.nn.module import Module
from repro.nn.rope import RotaryEmbedding
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor

_NEG_INF = -1e9


def causal_mask(seq_len: int, offset: int = 0) -> np.ndarray:
    """Boolean mask that is True at disallowed (future) positions.

    Shape (seq_len, offset + seq_len): query position i (absolute position
    ``offset + i``) may attend keys at absolute positions <= offset + i.
    """
    total = offset + seq_len
    query_pos = offset + np.arange(seq_len)[:, None]
    key_pos = np.arange(total)[None, :]
    return key_pos > query_pos


class MultiHeadAttention(Module):
    """Self-attention with optional causal masking and rotary embeddings.

    Parameters
    ----------
    dim:
        Model (residual stream) width.
    n_heads:
        Number of attention heads; ``dim`` must be divisible by it.
    causal:
        True for decoder (Llama) blocks, False for encoder (BERT) blocks.
    rope:
        Rotary embedding table shared across layers, or None for models with
        absolute positional embeddings.
    bias:
        Whether projections carry biases (BERT yes, Llama no).
    """

    def __init__(
        self,
        dim: int,
        n_heads: int,
        causal: bool,
        rope: Optional[RotaryEmbedding] = None,
        bias: bool = False,
        rng: Optional[np.random.Generator] = None,
        n_kv_heads: int = 0,
    ) -> None:
        super().__init__()
        if dim % n_heads != 0:
            raise ShapeError(f"dim {dim} not divisible by n_heads {n_heads}")
        self.dim = int(dim)
        self.n_heads = int(n_heads)
        self.head_dim = dim // n_heads
        self.n_kv_heads = int(n_kv_heads) or self.n_heads
        if self.n_heads % self.n_kv_heads != 0:
            raise ShapeError(
                f"n_heads {n_heads} not divisible by n_kv_heads {self.n_kv_heads}"
            )
        self.causal = bool(causal)
        self.rope = rope
        kv_dim = self.n_kv_heads * self.head_dim
        self.w_q = Linear(dim, dim, bias=bias, rng=rng)
        self.w_k = Linear(dim, kv_dim, bias=bias, rng=rng)
        self.w_v = Linear(dim, kv_dim, bias=bias, rng=rng)
        self.w_so = Linear(dim, dim, bias=bias, rng=rng)
        # Fixed reduction layout: Q/K/V project one head at a time and the
        # output projection runs in n_heads column blocks, so the
        # tensor-parallel executor (repro.parallel), which computes the same
        # blocks head-sharded, matches this forward bit for bit.
        self._q_edges = block_edges(dim, self.n_heads)
        self._kv_edges = block_edges(kv_dim, self.n_kv_heads)
        self._out_edges = block_edges(dim, self.n_heads)

    def _split_heads(self, x: Tensor, batch: int, seq_len: int, n_heads: int) -> Tensor:
        return x.reshape(batch, seq_len, n_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _expand_kv(self, x: Tensor) -> Tensor:
        """Repeat each KV head to serve its group of query heads (GQA).

        Built from basic head slices concatenated along the head axis (not
        a fancy-indexed copy): concatenation guarantees a C-ordered result,
        so the batched matmuls that follow see the same memory layout —
        and produce the same bytes — whether computed over all heads here
        or over a head subset on one tensor-parallel rank.
        """
        if self.n_kv_heads == self.n_heads:
            return x
        groups = self.n_heads // self.n_kv_heads
        parts = []
        for head in range(self.n_kv_heads):
            parts.extend([x[:, head : head + 1]] * groups)
        return Tensor.concatenate(parts, axis=1)

    def forward(
        self,
        x: Tensor,
        pad_mask: Optional[np.ndarray] = None,
        cache=None,
    ) -> Tensor:
        """Attend over ``x`` (B, T, D).

        ``pad_mask`` is an optional boolean (B, T) array, True at padding
        positions that must not be attended to.  ``cache`` is an optional
        :class:`~repro.nn.kv_cache.LayerKVCache` holding keys/values of
        previously processed positions; when given, ``x`` contains only the
        *new* positions, the cache is extended in place, and gradients do
        not flow into cached history (inference-only path).

        ``cache`` may instead be a
        :class:`~repro.nn.kv_cache.RaggedLayerCaches` bundling one cache per
        batch row, in which case ``x`` is a right-padded batch of new
        positions for *independent* sequences at different depths (the
        continuous-batching path); padded slots produce garbage that the
        caller discards.
        """
        if x.ndim != 3:
            raise ShapeError(f"attention expects (B, T, D), got {x.shape}")
        if isinstance(cache, RaggedLayerCaches):
            return self._forward_ragged(x, cache)
        batch, seq_len, _ = x.shape
        offset = 0 if cache is None else cache.seq_len
        q = self._split_heads(
            self.w_q.forward_blocked(x, self._q_edges), batch, seq_len, self.n_heads
        )
        k = self._split_heads(
            self.w_k.forward_blocked(x, self._kv_edges), batch, seq_len, self.n_kv_heads
        )
        v = self._split_heads(
            self.w_v.forward_blocked(x, self._kv_edges), batch, seq_len, self.n_kv_heads
        )
        if self.rope is not None:
            q = self.rope.apply(q, offset=offset)
            k = self.rope.apply(k, offset=offset)
        if cache is not None:
            full_k, full_v = cache.append(k.data, v.data)
            k, v = Tensor(full_k), Tensor(full_v)
        k = self._expand_kv(k)
        v = self._expand_kv(v)
        scale = 1.0 / float(np.sqrt(self.head_dim))
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale
        # A single cached decode step attends everything before it — no mask.
        if self.causal and (seq_len > 1 or cache is None):
            scores = scores.masked_fill(
                causal_mask(seq_len, offset=offset)[None, None, :, :], _NEG_INF
            )
        if pad_mask is not None:
            pad_mask = np.asarray(pad_mask, dtype=bool)
            expected = (batch, offset + seq_len if cache is not None else seq_len)
            if pad_mask.shape != expected:
                raise ShapeError(
                    f"pad_mask shape {pad_mask.shape} != {expected}"
                )
            scores = scores.masked_fill(pad_mask[:, None, None, :], _NEG_INF)
        weights = F.softmax(scores, axis=-1)
        context = weights @ v
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq_len, self.dim)
        return self.w_so.forward_blocked(merged, self._out_edges)

    def _forward_ragged(self, x: Tensor, ragged: RaggedLayerCaches) -> Tensor:
        """Batched attention over independent sequences of unequal depth.

        Row ``b`` of ``x`` holds ``ragged.new_lengths[b]`` valid new
        positions (right-padded to the batch maximum) for a sequence whose
        cache already stores ``ragged.offsets[b]`` positions.  Each row's
        valid prefix is appended to its own cache; attention then runs as
        one padded batched softmax with a combined causal + ragged-length
        mask.  Outputs at padded slots are garbage by construction.
        """
        if not self.causal:
            raise ShapeError("ragged cached attention requires a causal decoder")
        batch, max_new, _ = x.shape
        if len(ragged) != batch:
            raise ShapeError(
                f"ragged batch mismatch: {batch} rows, {len(ragged)} caches"
            )
        lengths = ragged.new_lengths
        if np.any(lengths < 1) or np.any(lengths > max_new):
            raise ShapeError(
                f"row lengths {lengths} out of range [1, {max_new}]"
            )
        offsets = ragged.offsets
        q = self._split_heads(
            self.w_q.forward_blocked(x, self._q_edges), batch, max_new, self.n_heads
        )
        k = self._split_heads(
            self.w_k.forward_blocked(x, self._kv_edges), batch, max_new, self.n_kv_heads
        )
        v = self._split_heads(
            self.w_v.forward_blocked(x, self._kv_edges), batch, max_new, self.n_kv_heads
        )
        if self.rope is not None:
            q = self.rope.apply(q, offset=offsets)
            k = self.rope.apply(k, offset=offsets)
        totals = offsets + lengths
        max_total = int(totals.max())
        full_k = np.zeros(
            (batch, self.n_kv_heads, max_total, self.head_dim), dtype=np.float32
        )
        full_v = np.zeros_like(full_k)
        for row, cache in enumerate(ragged.caches):
            valid = int(lengths[row])
            row_keys, row_values = cache.append(
                k.data[row : row + 1, :, :valid], v.data[row : row + 1, :, :valid]
            )
            full_k[row, :, : totals[row]] = row_keys[0]
            full_v[row, :, : totals[row]] = row_values[0]
        keys = self._expand_kv(Tensor(full_k))
        values = self._expand_kv(Tensor(full_v))
        scale = 1.0 / float(np.sqrt(self.head_dim))
        scores = (q @ keys.transpose(0, 1, 3, 2)) * scale  # (B, H, T, max_total)
        key_pos = np.arange(max_total, dtype=np.int64)[None, None, :]
        query_pos = offsets[:, None, None] + np.arange(max_new, dtype=np.int64)[None, :, None]
        invalid = (key_pos > query_pos) | (key_pos >= totals[:, None, None])
        scores = scores.masked_fill(invalid[:, None, :, :], _NEG_INF)
        weights = F.softmax(scores, axis=-1)
        context = weights @ values
        merged = context.transpose(0, 2, 1, 3).reshape(batch, max_new, self.dim)
        return self.w_so.forward_blocked(merged, self._out_edges)
