"""Factorized (Tucker-2 decomposed) linear layer.

A dense ``Linear`` with weight W (H x W) is replaced by the chain

    y = ((x @ U1) @ core) @ U2 + bias

with U1 (H, PR), core (PR, PR), U2 (PR, W) — exactly the three smaller
fully-connected layers described in Section 2.3 of the paper.  The layer
keeps enough metadata to report compression and to reconstruct the dense
approximation.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import DecompositionError
from repro.nn.linear import Linear, blocked_project
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor


class FactorizedLinear(Module):
    """The decomposed replacement for a :class:`Linear` layer."""

    def __init__(
        self,
        u1: np.ndarray,
        core: np.ndarray,
        u2: np.ndarray,
        bias: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        # SVD-derived factors arrive Fortran-ordered; BLAS results are not
        # layout-invariant, so normalize to C order here — the layout the
        # tensor-parallel executor's chunk copies will also have.
        u1 = np.ascontiguousarray(u1, dtype=np.float32)
        core = np.ascontiguousarray(core, dtype=np.float32)
        u2 = np.ascontiguousarray(u2, dtype=np.float32)
        if u1.ndim != 2 or core.ndim != 2 or u2.ndim != 2:
            raise DecompositionError("factors must be matrices")
        if u1.shape[1] != core.shape[0] or core.shape[1] != u2.shape[0]:
            raise DecompositionError(
                f"factor chain mismatch: {u1.shape} @ {core.shape} @ {u2.shape}"
            )
        self.in_features = u1.shape[0]
        self.out_features = u2.shape[1]
        self.rank = core.shape[0]
        self.u1 = Parameter(u1, name="u1")
        self.core = Parameter(core, name="core")
        self.u2 = Parameter(u2, name="u2")
        self.bias = Parameter(bias, name="bias") if bias is not None else None

    def forward(self, x: Tensor) -> Tensor:
        out = self.prefix(x) @ self.u2
        if self.bias is not None:
            out = out + self.bias
        return out

    def prefix(self, x: Tensor) -> Tensor:
        """The shared low-rank prefix ``(x @ U1) @ core``.

        Under tensor parallelism U1 and the core are replicated (their
        contraction axes cannot shard below the rank), so every rank
        computes this identical prefix before projecting its own column
        blocks of U2.
        """
        return (x @ self.u1) @ self.core

    def forward_blocked(self, x: Tensor, edges: Sequence[Tuple[int, int]]) -> Tensor:
        """Like :meth:`forward`, with the U2 GEMM column-blocked.

        Same reduction-layout contract as :meth:`Linear.forward_blocked`:
        the ``edges`` partition the *output* width, so sharded executors
        holding contiguous U2 column blocks reproduce these bytes exactly.
        """
        out = blocked_project(self.prefix(x), self.u2, edges)
        if self.bias is not None:
            out = out + self.bias
        return out

    # -- metadata ---------------------------------------------------------
    def num_weight_parameters(self) -> int:
        """Parameters in the factor chain: H*PR + PR^2 + PR*W."""
        return self.u1.size + self.core.size + self.u2.size

    def dense_parameters(self) -> int:
        """Parameters of the dense layer this factorization replaced."""
        return self.in_features * self.out_features

    def compression_ratio(self) -> float:
        """The paper's ``HW / (H*PR + PR^2 + PR*W)`` ratio."""
        return self.dense_parameters() / self.num_weight_parameters()

    def reconstruct(self) -> np.ndarray:
        """Dense (H, W) approximation ``U1 @ core @ U2``."""
        return (self.u1.data @ self.core.data @ self.u2.data).astype(np.float32)

    def to_linear(self) -> Linear:
        """Materialize the reconstruction as a dense :class:`Linear`."""
        layer = Linear(self.in_features, self.out_features, bias=self.bias is not None)
        layer.weight.data = self.reconstruct()
        if self.bias is not None:
            layer.bias.data = self.bias.data.copy()
        return layer

    def __repr__(self) -> str:
        return (
            f"FactorizedLinear(in={self.in_features}, out={self.out_features}, "
            f"rank={self.rank}, compression={self.compression_ratio():.1f}x)"
        )
