"""Rotary positional embedding (RoPE) as used by Llama.

Uses the half-split formulation: the head dimension is split into two
halves (x1, x2) and rotated by position-dependent angles:

    out = concat(x1 * cos - x2 * sin,  x2 * cos + x1 * sin)
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.tensor.tensor import Tensor


class RotaryEmbedding:
    """Precomputed cos/sin tables applied to (B, H, T, Dh) query/key tensors."""

    def __init__(self, head_dim: int, max_seq_len: int, theta: float = 10000.0) -> None:
        if head_dim % 2 != 0:
            raise ShapeError(f"RoPE head_dim must be even, got {head_dim}")
        self.head_dim = int(head_dim)
        self.max_seq_len = int(max_seq_len)
        self.theta = float(theta)
        half = head_dim // 2
        inv_freq = 1.0 / (theta ** (np.arange(half, dtype=np.float64) / half))
        angles = np.outer(np.arange(max_seq_len, dtype=np.float64), inv_freq)
        # Shape (T, half); broadcast over batch and head axes at apply time.
        self._cos = np.cos(angles).astype(np.float32)
        self._sin = np.sin(angles).astype(np.float32)

    def apply(self, x: Tensor, offset=0) -> Tensor:
        """Rotate a (B, H, T, Dh) tensor by absolute positions.

        ``offset`` shifts the position index — used by incremental decoding
        where ``x`` holds tokens starting at position ``offset``.  It may be
        a scalar (all rows share the offset) or a length-B integer array of
        per-row offsets (ragged batched decoding, where each sequence sits
        at a different depth).  In the per-row case, positions of *padded*
        tail slots may exceed the table; they are clamped, since their
        values are masked out downstream anyway.
        """
        if x.ndim != 4:
            raise ShapeError(f"RoPE expects (B, H, T, Dh), got {x.shape}")
        batch, _, seq_len, dim = x.shape
        if dim != self.head_dim:
            raise ShapeError(f"head_dim mismatch: table {self.head_dim}, input {dim}")
        half = dim // 2
        if np.ndim(offset) == 0:
            offset = int(offset)
            if offset < 0 or offset + seq_len > self.max_seq_len:
                raise ShapeError(
                    f"positions [{offset}, {offset + seq_len}) exceed RoPE table "
                    f"{self.max_seq_len}"
                )
            cos = Tensor(self._cos[offset : offset + seq_len][None, None, :, :])
            sin = Tensor(self._sin[offset : offset + seq_len][None, None, :, :])
        else:
            offsets = np.asarray(offset, dtype=np.int64)
            if offsets.shape != (batch,):
                raise ShapeError(
                    f"per-row offsets must have shape ({batch},), got {offsets.shape}"
                )
            if np.any(offsets < 0) or np.any(offsets >= self.max_seq_len):
                raise ShapeError(
                    f"row offsets {offsets} exceed RoPE table {self.max_seq_len}"
                )
            positions = offsets[:, None] + np.arange(seq_len, dtype=np.int64)[None, :]
            positions = np.minimum(positions, self.max_seq_len - 1)
            # (B, T, half) tables broadcast over the head axis.
            cos = Tensor(self._cos[positions][:, None, :, :])
            sin = Tensor(self._sin[positions][:, None, :, :])
        x1 = x[:, :, :, :half]
        x2 = x[:, :, :, half:]
        rotated_first = x1 * cos - x2 * sin
        rotated_second = x2 * cos + x1 * sin
        return Tensor.concatenate([rotated_first, rotated_second], axis=-1)
