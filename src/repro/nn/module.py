"""Module/Parameter system: a small subset of ``torch.nn``.

Modules register parameters and sub-modules simply by attribute assignment;
:meth:`Module.named_parameters` walks the attribute tree in insertion order,
so state dicts are deterministic.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import CheckpointError
from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor; identical to :class:`Tensor` with grad enabled."""

    def __init__(self, data, name=None) -> None:
        if isinstance(data, Tensor):
            data = data.data
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural-network components.

    Sub-classes assign :class:`Parameter`, :class:`Module`, or
    :class:`ModuleList` instances as attributes in ``__init__`` and implement
    :meth:`forward`.
    """

    def __init__(self) -> None:
        self.training = True

    # -- attribute walking ------------------------------------------------
    def named_children(self) -> Iterator[Tuple[str, "Module"]]:
        for key, value in vars(self).items():
            if isinstance(value, Module):
                yield key, value
            elif isinstance(value, ModuleList):
                for index, child in enumerate(value):
                    yield f"{key}.{index}", child

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self.named_children():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for key, value in vars(self).items():
            if isinstance(value, Parameter):
                yield (f"{prefix}.{key}" if prefix else key), value
        for name, child in self.named_children():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar parameters in this module tree."""
        return sum(param.size for param in self.parameters())

    # -- train / eval ------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for _, module in self.named_modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- state dict ---------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter's array, keyed by dotted path."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise CheckpointError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != param.shape:
                raise CheckpointError(
                    f"parameter {name!r}: checkpoint shape {value.shape} != model shape {param.shape}"
                )
            param.data = value.copy()

    # -- call protocol -------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(params={self.num_parameters():,})"


class ModuleList:
    """An ordered container of modules discovered by the attribute walker."""

    def __init__(self, modules=()) -> None:
        self._modules: List[Module] = list(modules)

    def append(self, module: Module) -> None:
        self._modules.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules)

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return self._modules[index]

    def __setitem__(self, index: int, module: Module) -> None:
        self._modules[index] = module

    def __repr__(self) -> str:
        return f"ModuleList(len={len(self)})"
