"""Key/value cache for incremental autoregressive decoding.

One :class:`LayerKVCache` per decoder layer stores the keys and values of
all previously processed positions (post-RoPE, pre-GQA-expansion), so each
new token costs one forward pass over a single position instead of the
whole context.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ShapeError


class LayerKVCache:
    """Grows along the sequence axis as tokens are appended."""

    def __init__(self) -> None:
        self.keys: Optional[np.ndarray] = None    # (B, H_kv, T, Dh)
        self.values: Optional[np.ndarray] = None

    @property
    def seq_len(self) -> int:
        return 0 if self.keys is None else self.keys.shape[2]

    def append(self, keys: np.ndarray, values: np.ndarray) -> tuple:
        """Append new positions; returns the full (keys, values) so far."""
        keys = np.asarray(keys)
        values = np.asarray(values)
        if keys.ndim != 4 or values.shape != keys.shape:
            raise ShapeError(
                f"cache entries must be matching (B, H, T, Dh); got "
                f"{keys.shape} / {values.shape}"
            )
        if self.keys is None:
            self.keys = keys.copy()
            self.values = values.copy()
        else:
            if keys.shape[:2] != self.keys.shape[:2] or keys.shape[3] != self.keys.shape[3]:
                raise ShapeError(
                    f"cache shape mismatch: stored {self.keys.shape}, new {keys.shape}"
                )
            self.keys = np.concatenate([self.keys, keys], axis=2)
            self.values = np.concatenate([self.values, values], axis=2)
        return self.keys, self.values


class ModelKVCache:
    """Per-layer caches plus the global position counter."""

    def __init__(self, n_layers: int) -> None:
        if n_layers <= 0:
            raise ShapeError("n_layers must be positive")
        self.layers: List[LayerKVCache] = [LayerKVCache() for _ in range(n_layers)]

    @property
    def seq_len(self) -> int:
        return self.layers[0].seq_len

    def __getitem__(self, index: int) -> LayerKVCache:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)
