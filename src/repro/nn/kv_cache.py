"""Key/value caches for incremental autoregressive decoding.

One :class:`LayerKVCache` per decoder layer stores the keys and values of
all previously processed positions (post-RoPE, pre-GQA-expansion), so each
new token costs one forward pass over a single position instead of the
whole context.

Storage is a preallocated buffer grown by geometric doubling: appending a
token is an O(1) amortized copy into the next free slots, and ``append``
returns zero-copy *views* of the valid prefix.  (The original implementation
re-``np.concatenate``-d the whole history every token — O(T^2) over a
generation.)

:class:`RaggedLayerCaches` / :class:`RaggedModelCaches` bundle several
independent per-sequence caches into one batch object so a single forward
pass can serve sequences of different lengths — the interface the
continuous-batching engine in :mod:`repro.serving` drives.  Any object with
the ``seq_len`` / ``append`` contract (e.g. the block-pool backed caches in
:mod:`repro.serving.pool`) can participate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ShapeError

_INITIAL_CAPACITY = 16


class LayerKVCache:
    """Grows along the sequence axis as tokens are appended."""

    def __init__(self) -> None:
        self._keys: Optional[np.ndarray] = None    # (B, H_kv, capacity, Dh)
        self._values: Optional[np.ndarray] = None
        self._len = 0

    @property
    def seq_len(self) -> int:
        return self._len

    @property
    def capacity(self) -> int:
        """Currently allocated sequence slots (grows geometrically)."""
        return 0 if self._keys is None else self._keys.shape[2]

    @property
    def keys(self) -> Optional[np.ndarray]:
        """View of the valid (B, H_kv, seq_len, Dh) key prefix."""
        if self._len == 0:
            return None
        return self._keys[:, :, : self._len]

    @property
    def values(self) -> Optional[np.ndarray]:
        if self._len == 0:
            return None
        return self._values[:, :, : self._len]

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._len + extra
        capacity = self.capacity
        if needed <= capacity:
            return
        new_capacity = max(capacity, _INITIAL_CAPACITY)
        while new_capacity < needed:
            new_capacity *= 2
        batch, heads, _, head_dim = self._keys.shape
        grown_keys = np.empty(
            (batch, heads, new_capacity, head_dim), dtype=self._keys.dtype
        )
        grown_values = np.empty_like(grown_keys)
        grown_keys[:, :, : self._len] = self._keys[:, :, : self._len]
        grown_values[:, :, : self._len] = self._values[:, :, : self._len]
        self._keys = grown_keys
        self._values = grown_values

    def append(self, keys: np.ndarray, values: np.ndarray) -> tuple:
        """Append new positions; returns the full (keys, values) so far."""
        keys = np.asarray(keys)
        values = np.asarray(values)
        if keys.ndim != 4 or values.shape != keys.shape:
            raise ShapeError(
                f"cache entries must be matching (B, H, T, Dh); got "
                f"{keys.shape} / {values.shape}"
            )
        new_tokens = keys.shape[2]
        if self._keys is None:
            batch, heads, _, head_dim = keys.shape
            capacity = max(new_tokens, _INITIAL_CAPACITY)
            self._keys = np.empty((batch, heads, capacity, head_dim), dtype=keys.dtype)
            self._values = np.empty_like(self._keys)
        else:
            stored = self._keys.shape
            if keys.shape[:2] != stored[:2] or keys.shape[3] != stored[3]:
                raise ShapeError(
                    f"cache shape mismatch: stored "
                    f"{(stored[0], stored[1], self._len, stored[3])}, new {keys.shape}"
                )
            self._ensure_capacity(new_tokens)
        self._keys[:, :, self._len : self._len + new_tokens] = keys
        self._values[:, :, self._len : self._len + new_tokens] = values
        self._len += new_tokens
        return self.keys, self.values

    def truncate(self, length: int) -> None:
        """Roll the cache back to its first ``length`` positions.

        Speculative decoding appends draft positions optimistically and
        discards the rejected suffix; truncation is O(1) — the buffer keeps
        its capacity and later appends overwrite the abandoned slots.
        """
        length = int(length)
        if length < 0:
            raise ShapeError(f"cannot truncate to negative length {length}")
        if length > self._len:
            raise ShapeError(
                f"cannot truncate to {length}: cache holds {self._len} positions"
            )
        self._len = length


class ModelKVCache:
    """Per-layer caches plus the global position counter."""

    def __init__(self, n_layers: int) -> None:
        if n_layers <= 0:
            raise ShapeError("n_layers must be positive")
        self.layers: List[LayerKVCache] = [LayerKVCache() for _ in range(n_layers)]

    @property
    def seq_len(self) -> int:
        return self.layers[0].seq_len

    def truncate(self, length: int) -> None:
        """Roll every layer back to ``length`` positions (draft rollback)."""
        for layer in self.layers:
            layer.truncate(length)

    def note_tokens(self, tokens) -> None:
        """Scheduler token-note protocol: a no-op for growable caches.

        Sequence caches that share state across requests (the paged store
        in :mod:`repro.serving.paged`) use the noted token ids to key
        their prefix index; a private cache has nothing to index.  Part of
        the common cache contract so schedulers can note unconditionally.
        """

    def __getitem__(self, index: int) -> LayerKVCache:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)


class RaggedLayerCaches:
    """One decoder layer's caches for a *batch* of independent sequences.

    Row ``b`` of the batched input contributes ``new_lengths[b]`` valid
    (right-padded) positions which are appended to ``caches[b]``; each
    sequence keeps its own history length, so the batch is "ragged".
    :class:`~repro.nn.attention.MultiHeadAttention` dispatches on this type
    to run the padded batched attention path.
    """

    def __init__(
        self,
        caches: Sequence[object],
        new_lengths: np.ndarray,
        pad_to: int = 0,
    ) -> None:
        self.caches = list(caches)
        self.new_lengths = np.asarray(new_lengths, dtype=np.int64)
        # Floor on the padded KV width of the batched attention.  A
        # pipeline's row-microbatches pass the *whole* batch's maximum
        # total so every chunk reduces over exactly the widths the
        # full-batch pass would — the padded tail is masked and
        # contributes exact zeros, keeping chunked execution bit-identical.
        self.pad_to = int(pad_to)
        if self.new_lengths.ndim != 1 or len(self.caches) != self.new_lengths.shape[0]:
            raise ShapeError(
                f"need one cache per row: {len(self.caches)} caches, "
                f"lengths shape {self.new_lengths.shape}"
            )
        if len(self.caches) == 0:
            raise ShapeError("ragged batch must contain at least one sequence")
        if np.any(self.new_lengths < 0):
            raise ShapeError("new_lengths must be non-negative")

    def __len__(self) -> int:
        return len(self.caches)

    @property
    def offsets(self) -> np.ndarray:
        """Per-row history length (absolute position of each row's first
        new token)."""
        return np.asarray([cache.seq_len for cache in self.caches], dtype=np.int64)


class RaggedModelCaches:
    """Batch view over per-sequence :class:`ModelKVCache`-compatible caches.

    Exposes ``.layers`` like :class:`ModelKVCache` so the model's cached
    forward loop works unchanged.
    """

    def __init__(
        self,
        caches: Sequence[object],
        new_lengths: np.ndarray,
        pad_to: int = 0,
    ) -> None:
        if not caches:
            raise ShapeError("ragged batch must contain at least one sequence")
        n_layers = len(caches[0].layers)
        for cache in caches:
            if len(cache.layers) != n_layers:
                raise ShapeError("all sequence caches must have the same layer count")
        self.sequences = list(caches)
        self.layers: List[RaggedLayerCaches] = [
            RaggedLayerCaches(
                [cache.layers[i] for cache in caches], new_lengths, pad_to=pad_to
            )
            for i in range(n_layers)
        ]

    def __len__(self) -> int:
        return len(self.layers)
