"""LayerNorm (BERT) and RMSNorm (Llama) modules."""

from __future__ import annotations

from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor import random as trandom
from repro.tensor.tensor import Tensor


class LayerNorm(Module):
    """Layer normalization with learned scale and shift (BERT-style)."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = int(dim)
        self.eps = float(eps)
        self.weight = Parameter(trandom.ones((self.dim,)), name="weight")
        self.bias = Parameter(trandom.zeros((self.dim,)), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)

    def __repr__(self) -> str:
        return f"LayerNorm(dim={self.dim})"


class RMSNorm(Module):
    """Root-mean-square normalization with learned scale (Llama-style)."""

    def __init__(self, dim: int, eps: float = 1e-6) -> None:
        super().__init__()
        self.dim = int(dim)
        self.eps = float(eps)
        self.weight = Parameter(trandom.ones((self.dim,)), name="weight")

    def forward(self, x: Tensor) -> Tensor:
        return F.rms_norm(x, self.weight, eps=self.eps)

    def __repr__(self) -> str:
        return f"RMSNorm(dim={self.dim})"
