"""Dense linear layer with ``x @ W + b`` convention.

The weight is stored as (in_features, out_features), matching the paper's
H x W orientation for decomposition: the Tucker-2 factorization produces
``W ~= U1 @ core @ U2`` with U1 (H, PR), core (PR, PR), U2 (PR, W).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import random as trandom
from repro.tensor.tensor import Tensor


class Linear(Module):
    """Affine projection ``y = x @ weight + bias``.

    Parameters
    ----------
    in_features, out_features:
        Matrix dimensions (H, W in the paper's notation).
    bias:
        Whether to include an additive bias.  Llama-style models use
        bias-free projections; BERT-style models use biases.
    rng:
        Seeded generator used for initialization; if omitted the weight is
        zero-initialized (useful for tests and manual loading).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        if rng is not None:
            weight = trandom.xavier_uniform(rng, (self.in_features, self.out_features))
        else:
            weight = trandom.zeros((self.in_features, self.out_features))
        self.weight = Parameter(weight, name="weight")
        self.bias = Parameter(trandom.zeros((self.out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def num_weight_parameters(self) -> int:
        """Parameters in the decomposable weight matrix (bias excluded)."""
        return self.weight.size

    def __repr__(self) -> str:
        has_bias = self.bias is not None
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={has_bias})"
