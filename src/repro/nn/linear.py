"""Dense linear layer with ``x @ W + b`` convention.

The weight is stored as (in_features, out_features), matching the paper's
H x W orientation for decomposition: the Tucker-2 factorization produces
``W ~= U1 @ core @ U2`` with U1 (H, PR), core (PR, PR), U2 (PR, W).

Blocked projection
------------------
:func:`block_edges` / :func:`blocked_project` compute a projection one
contiguous *column block* at a time.  This fixes the floating-point
reduction granularity of every GEMM: a block's result depends only on the
(in, block) weight slice, never on which other columns share the kernel
call.  BLAS output is not invariant under column partitioning, so fixing
the block layout in the canonical single-process forward is what lets the
tensor-parallel executor in :mod:`repro.parallel` — which computes the same
blocks distributed across ranks and concatenates — reproduce the canonical
logits *bit for bit*.  Only basic slices (``W[:, a:b]`` views) are used;
fancy-indexed copies may change memory order and therefore GEMM results.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.nn.module import Module, Parameter
from repro.tensor import random as trandom
from repro.tensor.tensor import Tensor


def block_edges(width: int, n_blocks: int) -> List[Tuple[int, int]]:
    """Split ``[0, width)`` into ``n_blocks`` contiguous spans.

    Sizes differ by at most one (larger blocks first, matching
    ``np.array_split``).  When ``n_blocks`` exceeds ``width`` the block
    count is clamped so no span is empty.
    """
    if width <= 0 or n_blocks <= 0:
        raise ShapeError(f"width {width} and n_blocks {n_blocks} must be positive")
    n_blocks = min(n_blocks, width)
    base, extra = divmod(width, n_blocks)
    edges: List[Tuple[int, int]] = []
    start = 0
    for index in range(n_blocks):
        stop = start + base + (1 if index < extra else 0)
        edges.append((start, stop))
        start = stop
    return edges


def blocked_project(x: Tensor, weight: Tensor, edges: Sequence[Tuple[int, int]]) -> Tensor:
    """``x @ weight`` computed one column block at a time.

    Each block is an independent GEMM against the basic-slice view
    ``weight[:, a:b]``; the blocks are concatenated along the last axis.
    With a single block this is exactly ``x @ weight``.  The block
    decomposition — not just the result — is the contract: any executor
    that computes the same blocks (in any order, on any rank) and
    concatenates them reproduces these bytes exactly.
    """
    if len(edges) == 1:
        return x @ weight
    parts = [x @ weight[:, a:b] for a, b in edges]
    return Tensor.concatenate(parts, axis=-1)


class Linear(Module):
    """Affine projection ``y = x @ weight + bias``.

    Parameters
    ----------
    in_features, out_features:
        Matrix dimensions (H, W in the paper's notation).
    bias:
        Whether to include an additive bias.  Llama-style models use
        bias-free projections; BERT-style models use biases.
    rng:
        Seeded generator used for initialization; if omitted the weight is
        zero-initialized (useful for tests and manual loading).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        if rng is not None:
            weight = trandom.xavier_uniform(rng, (self.in_features, self.out_features))
        else:
            weight = trandom.zeros((self.in_features, self.out_features))
        self.weight = Parameter(weight, name="weight")
        self.bias = Parameter(trandom.zeros((self.out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def forward_blocked(self, x: Tensor, edges: Sequence[Tuple[int, int]]) -> Tensor:
        """Projection with a fixed column-block reduction layout.

        The bias (if any) is added full-width after concatenation; element
        wise addition is positionally exact, so blocking only the GEMMs is
        enough for bit-reproducibility under sharding.
        """
        out = blocked_project(x, self.weight, edges)
        if self.bias is not None:
            out = out + self.bias
        return out

    def num_weight_parameters(self) -> int:
        """Parameters in the decomposable weight matrix (bias excluded)."""
        return self.weight.size

    def __repr__(self) -> str:
        has_bias = self.bias is not None
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={has_bias})"
