"""Extension: post-decomposition fine-tuning recovery (Section 6 preview)."""

from benchmarks.conftest import run_once
from repro.experiments.finetune import format_finetune_recovery, run_finetune_recovery


def test_finetune_recovers_accuracy(benchmark, capsys, trained):
    result = run_once(
        benchmark,
        run_finetune_recovery,
        reduction_target=15,
        reference_target=9,
        steps=80,
        limit=30,
    )

    with capsys.disabled():
        print("\n[Extension] Fine-tuning recovery after decomposition")
        print(format_finetune_recovery(result))

    # The paper's Section 6: fine-tuning recovers compressed-model accuracy
    # (their single epoch lifts a 15% model to a 9% model's level).
    assert result.mean_finetuned > result.mean_decomposed
    assert result.mean_finetuned > result.mean_reference - 0.12
