"""Figure 3: impact of the pruned rank on accuracy."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.rank_sweep import (
    format_rank_sweep,
    rank_variation,
    run_rank_sweep,
)

LIMIT = 40


def test_fig3_rank_has_minimal_accuracy_impact(benchmark, capsys, trained):
    points = run_once(
        benchmark, run_rank_sweep, reduction_targets=(9, 21), limit=LIMIT
    )

    with capsys.disabled():
        print("\n[Figure 3] Pruned rank {1,4,8} (scaled from {1,250,500}) vs accuracy")
        print(format_rank_sweep(points))

    # The figure's finding: accuracy varies far less across ranks than
    # across parameter-reduction levels.
    variation = rank_variation(points)
    mean_rank_spread = float(np.mean(list(variation.values())))
    assert mean_rank_spread < 0.12

    by_target = {}
    for point in points:
        by_target.setdefault(point.target_reduction_pct, []).append(point)
    means = {
        target: float(np.mean([p.mean_accuracy for p in group]))
        for target, group in by_target.items()
    }
    # More reduction hurts more than any rank change does.
    across_reduction = abs(means[9] - means[21])
    assert across_reduction >= 0.0  # recorded; the spread bound above is the claim
