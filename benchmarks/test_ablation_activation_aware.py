"""Ablation: plain vs activation-aware (ASVD-style) decomposition.

Both factorize the same tensors at the same rank (identical parameter
count); the activation-aware variant whitens by calibration activation
scales.  Reported: task accuracy of each on the trained model.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.decomposition import (
    DecompositionConfig,
    decompose_model_activation_aware,
    decomposed,
    restore,
)
from repro.eval import build_suite, corpus_perplexity, evaluate_suite
from repro.experiments import get_corpus, get_world

LIMIT = 40
LAYERS = (3, 8)
RANK = 2


def test_activation_aware_vs_plain(benchmark, capsys, trained):
    model, tokenizer = trained
    suite = build_suite(get_world(), names=("arc_easy", "arc_challenge", "winogrande"))
    config = DecompositionConfig.all_tensors(model.config, LAYERS, rank=RANK)
    calibration = list(get_corpus()[:64])
    eval_sentences = list(get_corpus()[100:164])

    def drive():
        with decomposed(model, config):
            plain_acc = evaluate_suite(model, tokenizer, suite, limit=LIMIT).mean_accuracy
            plain_ppl = corpus_perplexity(model, tokenizer, eval_sentences).perplexity
        report = decompose_model_activation_aware(model, config, tokenizer, calibration)
        try:
            aware_acc = evaluate_suite(model, tokenizer, suite, limit=LIMIT).mean_accuracy
            aware_ppl = corpus_perplexity(model, tokenizer, eval_sentences).perplexity
        finally:
            restore(model, report)
        return plain_acc, plain_ppl, aware_acc, aware_ppl, report.parameter_reduction

    plain_acc, plain_ppl, aware_acc, aware_ppl, reduction = run_once(benchmark, drive)

    with capsys.disabled():
        print(
            f"\n[Ablation] rank-{RANK} on layers {LAYERS} "
            f"({100 * reduction:.1f}% fewer params)"
        )
        print(f"  plain tucker-2:      acc {100 * plain_acc:.1f}%, ppl {plain_ppl:.2f}")
        print(f"  activation-aware:    acc {100 * aware_acc:.1f}%, ppl {aware_ppl:.2f}")

    # Same budget; activation-aware must be at least competitive on
    # perplexity (its training-distribution objective).
    assert aware_ppl <= plain_ppl * 1.25
    assert aware_acc >= plain_acc - 0.12
