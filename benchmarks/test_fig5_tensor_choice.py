"""Figure 5: per-tensor decomposition sensitivity."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.tensor_choice import (
    format_tensor_choice,
    run_single_tensor_sensitivity,
)

LIMIT = 30


def test_fig5_tensor_sensitivity(benchmark, capsys, trained):
    def drive():
        one = run_single_tensor_sensitivity(scope="one_layer", limit=LIMIT)
        all_layers = run_single_tensor_sensitivity(scope="all_layers", limit=LIMIT)
        return one, all_layers

    one, all_layers = run_once(benchmark, drive)

    with capsys.disabled():
        print("\n[Figure 5] Decomposing each tensor role individually (rank 1)")
        print(format_tensor_choice(one + all_layers))

    # Observation 1: within a scope, roles are roughly equally sensitive —
    # no single role is an outlier versus the group (attention vs MLP
    # groups may differ; the spread across all 7 roles stays bounded).
    one_means = np.array([p.mean_accuracy for p in one])
    assert one_means.max() - one_means.min() < 0.30

    # Decomposing a role in all layers always hurts at least as much as in
    # a single layer.
    for single, everywhere in zip(one, all_layers):
        assert everywhere.mean_accuracy <= single.mean_accuracy + 0.10
