"""Ablation: uniform vs spectral (non-uniform) rank allocation.

The paper studies homogeneous ranks and motivates smarter allocation as
future work; this bench compares both at an identical parameter budget on
the trained model, reporting retained spectral energy and task accuracy.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.decomposition import (
    DecompositionConfig,
    allocate_ranks,
    decomposed,
    factorized_parameters,
    uniform_rank_for_budget,
)
from repro.eval import build_suite, evaluate_suite
from repro.experiments import get_world

LIMIT = 40
LAYERS = (2, 5, 8)


def test_spectral_allocation_vs_uniform(benchmark, capsys, trained):
    model, tokenizer = trained
    roles = model.config.tensor_roles
    # Budget: what a uniform rank-4 allocation would cost.
    budget = sum(
        factorized_parameters(*model.config.tensor_shape(role), 4)
        for _ in LAYERS
        for role in roles
    )
    suite = build_suite(get_world(), names=("arc_easy", "arc_challenge", "mmlu"))

    def drive():
        allocation = allocate_ranks(model, LAYERS, roles, budget)
        with decomposed(model, allocation.to_config()):
            spectral = evaluate_suite(model, tokenizer, suite, limit=LIMIT)
        uniform_rank = uniform_rank_for_budget(model, LAYERS, roles, budget)
        uniform_config = DecompositionConfig.uniform(LAYERS, roles, rank=uniform_rank)
        with decomposed(model, uniform_config):
            uniform = evaluate_suite(model, tokenizer, suite, limit=LIMIT)
        return allocation, spectral, uniform, uniform_rank

    allocation, spectral, uniform, uniform_rank = run_once(benchmark, drive)

    with capsys.disabled():
        ranks = sorted(set(allocation.ranks.values()))
        print(
            f"\n[Ablation] budget {budget:,} params over {len(LAYERS)} layers x "
            f"{len(roles)} roles"
        )
        print(f"  uniform rank {uniform_rank}: mean acc {100 * uniform.mean_accuracy:.1f}%")
        print(
            f"  spectral allocation (ranks {ranks[0]}..{ranks[-1]}): "
            f"mean acc {100 * spectral.mean_accuracy:.1f}%, "
            f"energy retained {100 * allocation.retained_energy:.1f}%"
        )

    assert allocation.parameters_used <= budget
    # Spectral allocation must be at least competitive with uniform.
    assert spectral.mean_accuracy >= uniform.mean_accuracy - 0.10
